#!/usr/bin/env python3
"""Sensitivity of control CPR to the machine: width and branch latency.

The paper's central claim is that control CPR pays off more the more
parallel the machine is (Table 2's left-to-right growth) and the longer
the exposed branch latency is. This example evaluates three benchmark
proxies across the paper's five machines *and* a branch-latency sweep on
the medium machine.

Run:  python examples/machine_sweep.py
"""

from repro import (
    MEDIUM,
    PAPER_PROCESSORS,
    estimate_program_cycles,
    get_workload,
)
from repro.pipeline import build_workload

WORKLOADS = ["cmp", "wc", "099.go"]


def speedup(build, machine):
    base = estimate_program_cycles(
        build.baseline, machine, build.baseline_profile
    ).total
    cpr = estimate_program_cycles(
        build.transformed, machine, build.transformed_profile
    ).total
    return base / cpr


def main():
    builds = {}
    for name in WORKLOADS:
        workload = get_workload(name)
        builds[name] = build_workload(
            workload.name, workload.compile(), workload.inputs
        )

    print("Speedup vs machine width (paper Table 2 shape):")
    header = f"{'benchmark':<10}" + "".join(
        f"{m.name:>12}" for m in PAPER_PROCESSORS
    )
    print(header)
    for name in WORKLOADS:
        row = f"{name:<10}"
        for machine in PAPER_PROCESSORS:
            row += f"{speedup(builds[name], machine):>12.2f}"
        print(row)

    print("\nSpeedup vs exposed branch latency (medium machine):")
    print(f"{'benchmark':<10}" + "".join(
        f"{f'lat={lat}':>12}" for lat in (1, 2, 3)
    ))
    for name in WORKLOADS:
        row = f"{name:<10}"
        for latency in (1, 2, 3):
            machine = MEDIUM.with_branch_latency(latency)
            row += f"{speedup(builds[name], machine):>12.2f}"
        print(row)
    print(
        "\nReading: biased branch-bound code (cmp, wc) gains with width"
        "\nand with branch latency; unbiased code (go) stays flat — the"
        "\nexit-weight heuristic correctly refuses to transform it."
    )


if __name__ == "__main__":
    main()
