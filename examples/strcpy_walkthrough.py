#!/usr/bin/env python3
"""The paper's Section 6 worked example, step by step.

Reproduces Figures 6-7: the 4x-unrolled string copy loop through FRP
conversion, predicate speculation, match (two CPR blocks: fall-through then
taken variation), restructure, off-trace motion, and dead-code elimination
— printing the IR after each phase, then the paper's summary numbers
(on-trace/compensation op counts and the dependence height on the
infinite-resource machine).

Run:  python examples/strcpy_walkthrough.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from conftest import build_strcpy_program  # noqa: E402

from repro.analysis import LivenessAnalysis  # noqa: E402
from repro.core import CPRConfig, apply_icbm, speculate_block  # noqa: E402
from repro.ir import verify_procedure  # noqa: E402
from repro.machine import INFINITE  # noqa: E402
from repro.opt import frp_convert_block  # noqa: E402
from repro.sched import schedule_block  # noqa: E402
from repro.sim.profiler import profile_program  # noqa: E402


def banner(title):
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main():
    program = build_strcpy_program(unroll=4)
    proc = program.procedure("main")
    loop = proc.block("Loop")
    baseline_ops = len(loop.ops)

    banner("Figure 6(b): unrolled superblock (baseline)")
    print(loop.format())
    base_height = schedule_block(
        loop, INFINITE, liveness=LivenessAnalysis(proc)
    ).length
    print(f"\n[{baseline_ops} ops; dependence height {base_height} cycles"
          f" on the infinite machine]")

    banner("Figure 6(c): after FRP conversion")
    frp_convert_block(proc, loop)
    print(loop.format())

    banner("Figure 7(a): after predicate speculation")
    speculate_block(proc, loop, LivenessAnalysis(proc))
    print(loop.format())

    banner("Figures 7(b)-(c): after match + restructure + off-trace motion")

    def setup(interp):
        data = [(i % 9) + 1 for i in range(41)] + [0]
        interp.poke_array("A", data)
        return (interp.segment_base("A"), interp.segment_base("B"))

    profile = profile_program(program, inputs=[setup])
    # The paper blocks this example into two 2-branch CPR blocks so both
    # restructure variations appear; max_branches=2 reproduces that.
    config = CPRConfig(
        exit_weight_threshold=0.5,
        max_branches=2,
        enable_speculation=False,  # already applied above
    )
    report = apply_icbm(proc, profile, config)
    verify_procedure(proc)
    print(proc.format())

    banner("Summary (paper Section 6)")
    on_trace = len(proc.block("Loop").ops)
    compensation = sum(
        len(block.ops)
        for block in proc.blocks
        if block.label.name.startswith("Cmp")
    )
    height = schedule_block(
        proc.block("Loop"), INFINITE, liveness=LivenessAnalysis(proc)
    ).length
    (block_report,) = report.blocks
    print(f"CPR blocks formed:      {len(block_report.cpr_blocks)} "
          f"(taken variations: {block_report.taken_variations})")
    print(f"on-trace loop ops:      {baseline_ops} -> {on_trace} "
          f"(paper: 30 -> 28)")
    print(f"compensation ops:       {compensation} (paper: 11)")
    print(f"dependence height:      {base_height} -> {height} "
          f"(paper: 8 -> 7)")


if __name__ == "__main__":
    main()
