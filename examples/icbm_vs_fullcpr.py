#!/usr/bin/env python3
"""ICBM versus full (redundant) CPR, side by side on one kernel.

The paper's Section 4 frames ICBM against full CPR [SK95]: both collapse
the branch chain's height, but full CPR computes every branch's
fully-resolved predicate with its own quadratic wired-and tree (no
profile, all paths fast) while ICBM keeps exactly one path fast and pays a
compensation block. This example transforms the same unrolled scan loop
both ways and prints the resulting code and costs.

Run:  python examples/icbm_vs_fullcpr.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from conftest import build_strcpy_program  # noqa: E402

from repro.analysis import LivenessAnalysis  # noqa: E402
from repro.core import (  # noqa: E402
    CPRConfig,
    apply_full_cpr,
    apply_icbm,
    speculate_block,
)
from repro.ir import verify_procedure  # noqa: E402
from repro.machine import SEQUENTIAL, WIDE  # noqa: E402
from repro.opt import frp_convert_procedure  # noqa: E402
from repro.perf import estimate_program_cycles, operation_counts  # noqa: E402
from repro.sim.profiler import profile_program  # noqa: E402


def make_setup():
    def setup(target):
        data = [(i % 9) + 1 for i in range(41)] + [0]
        target.poke_array("A", data)
        return (target.segment_base("A"), target.segment_base("B"))

    return setup


def measure(tag, program, baseline, base_profile):
    profile = profile_program(program, inputs=[make_setup()])
    counts = operation_counts(program, profile)
    base_counts = operation_counts(baseline, base_profile)
    s_tot, _, d_tot, d_br = counts.ratios_against(base_counts)
    row = f"{tag:<10}"
    for machine in (SEQUENTIAL, WIDE):
        base = estimate_program_cycles(
            baseline, machine, base_profile
        ).total
        ours = estimate_program_cycles(program, machine, profile).total
        row += f"{base / ours:>10.2f}"
    row += f"{s_tot:>10.2f}{d_tot:>10.2f}{d_br:>10.2f}"
    print(row)


def main():
    baseline = build_strcpy_program(unroll=8)
    base_profile = profile_program(baseline, inputs=[make_setup()])

    # ICBM build.
    icbm = build_strcpy_program(unroll=8)
    proc = icbm.procedure("main")
    frp_convert_procedure(proc)
    icbm_profile = profile_program(icbm, inputs=[make_setup()])
    apply_icbm(proc, icbm_profile, CPRConfig())
    verify_procedure(proc)

    # Full CPR build.
    full = build_strcpy_program(unroll=8)
    full_proc = full.procedure("main")
    frp_convert_procedure(full_proc)
    for block in full_proc.blocks:
        if block.exit_branches():
            speculate_block(
                full_proc, block, LivenessAnalysis(full_proc)
            )
    report = apply_full_cpr(full_proc)
    verify_procedure(full_proc)

    print("8x-unrolled strcpy loop, transformed both ways:\n")
    print(
        f"{'scheme':<10}{'seq spdup':>10}{'wide spdup':>10}"
        f"{'S tot':>10}{'D tot':>10}{'D br':>10}"
    )
    measure("ICBM", icbm, baseline, base_profile)
    measure("full CPR", full, baseline, base_profile)
    print(
        f"\nfull CPR added {report.added_compares} lookahead compares "
        f"(n(n+1)/2 for n=8 branches: 36) —\nthe quadratic growth the "
        "paper cites as its reason to prefer ICBM, which keeps\n"
        "the executed-op count *below* the baseline (irredundancy) "
        "instead."
    )


if __name__ == "__main__":
    main()
