#!/usr/bin/env python3
"""Quickstart: compile a mini-C kernel, apply control CPR, measure it.

Walks the full pipeline on a small byte-scanning loop:

1. compile mini-C to the PlayDoh-style predicated IR;
2. run it in the functional simulator (collecting a branch profile);
3. build the classically optimized superblock baseline;
4. apply FRP conversion + the ICBM control CPR transformation;
5. compare estimated cycles on the paper's five EPIC machines.

Run:  python examples/quickstart.py
"""

from repro import (
    PAPER_PROCESSORS,
    build_workload,
    compile_source,
    estimate_program_cycles,
    operation_counts,
)

SOURCE = """
int TEXT[600];
int STATS[4];

int main(int n) {
    int i = 0;
    int vowels = 0;
    int newlines = 0;
    while (i < n) {
        int c = TEXT[i];
        if (c == 0) { break; }
        if (c == 10) { newlines += 1; }
        if (c == 97 || c == 101) { vowels += 1; }
        i += 1;
    }
    STATS[0] = vowels;
    STATS[1] = newlines;
    return vowels;
}
"""


def make_input():
    # Deterministic English-ish bytes: vowels ~12%, newlines ~2%.
    data, state = [], 42
    for _ in range(500):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        roll = state % 100
        if roll < 2:
            data.append(10)
        elif roll < 14:
            data.append(97 if roll % 2 else 101)
        else:
            data.append(98 + state % 24)
    data.append(0)

    def setup(interp):
        interp.poke_array("TEXT", data)
        return (len(data),)

    return setup


def main():
    program = compile_source(SOURCE, name="quickstart")
    print("Compiled mini-C to IR:")
    print("\n".join(program.format().splitlines()[:14]))
    print("  ...\n")

    build = build_workload("quickstart", program, [make_input()])
    report = build.icbm_report
    print(
        f"ICBM transformed {report.transformed_cpr_blocks} of "
        f"{report.total_cpr_blocks} CPR blocks "
        f"(dead ops removed: {report.dce_removed})\n"
    )

    base_counts = operation_counts(build.baseline, build.baseline_profile)
    cpr_counts = operation_counts(
        build.transformed, build.transformed_profile
    )
    _, _, d_tot, d_br = cpr_counts.ratios_against(base_counts)
    print(f"dynamic ops ratio  (CPR/baseline): {d_tot:.2f}")
    print(f"dynamic branch ratio (CPR/baseline): {d_br:.2f}\n")

    print(f"{'machine':<12} {'baseline':>10} {'CPR':>10} {'speedup':>8}")
    for machine in PAPER_PROCESSORS:
        base = estimate_program_cycles(
            build.baseline, machine, build.baseline_profile
        ).total
        cpr = estimate_program_cycles(
            build.transformed, machine, build.transformed_profile
        ).total
        print(
            f"{machine.name:<12} {base:>10.0f} {cpr:>10.0f} "
            f"{base / cpr:>8.2f}"
        )


if __name__ == "__main__":
    main()
