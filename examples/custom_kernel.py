#!/usr/bin/env python3
"""Bring your own kernel: evaluate control CPR on custom mini-C code.

Shows the intended downstream-user workflow: write a kernel in the mini-C
language, wrap it as a Workload with an input generator, and let
``evaluate_workload`` run the paper's whole methodology (baseline build,
ICBM build, differential verification, per-machine estimation).

The kernel here is a saturating histogram — runs of biased branches
(bounds checks that never fire) around memory traffic, a shape control CPR
likes.

Run:  python examples/custom_kernel.py
"""

from repro.perf import evaluate_workload
from repro.workloads.base import Lcg, Workload

SOURCE = """
int SAMPLES[2100];
int HIST[64];

int main(int n) {
    int clipped = 0;
    int i = 0;
    while (i < n) {
        int s = SAMPLES[i];
        if (s < 0) { return 0 - 1; }
        int bucket = s >> 4;
        if (bucket > 63) { bucket = 63; clipped += 1; }
        int count = HIST[bucket];
        if (count < 1000000) {
            HIST[bucket] = count + 1;
        }
        i += 1;
    }
    return clipped;
}
"""


def make_workload():
    rng = Lcg(seed=777)
    samples = rng.ints(2000, 0, 1023)

    def setup(interp):
        interp.poke_array("SAMPLES", samples)
        return (len(samples),)

    return Workload(
        name="histogram",
        source=SOURCE,
        inputs=[setup],
        description="saturating histogram with never-failing checks",
    )


def main():
    result = evaluate_workload(make_workload())
    print("Per-machine estimated speedup from control CPR:")
    for name in ("sequential", "narrow", "medium", "wide", "infinite"):
        print(f"  {name:<12} {result.speedup(name):6.2f}")
    s_tot, s_br, d_tot, d_br = result.count_ratios()
    print("\nOperation-count ratios (transformed / baseline):")
    print(f"  static ops      {s_tot:6.2f}")
    print(f"  static branches {s_br:6.2f}")
    print(f"  dynamic ops     {d_tot:6.2f}")
    print(f"  dynamic branches{d_br:6.2f}")
    report = result.build.icbm_report
    print(
        f"\nICBM: {report.transformed_cpr_blocks}/"
        f"{report.total_cpr_blocks} CPR blocks transformed; every build "
        "stage was differentially verified against the original program."
    )
    print(
        "\nNote the paper's Section 7 effect: the histogram's critical "
        "path is the\nload-increment-store recurrence, so removing "
        "branches pays off on the\n1-wide sequential machine (every op "
        "saved is a cycle saved) but not on\nmachines whose branch units "
        "were never saturated."
    )


if __name__ == "__main__":
    main()
