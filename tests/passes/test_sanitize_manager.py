"""Sanitizer battery wired into the transactional pass manager.

Covers the miscompile-to-bundle path end to end (a fault-injected
clobbered predicate must be flagged, rolled back, and shrunk to a
minimal repro bundle) and the cache-safety rules: a cache-restored
procedure is re-sanitized after adoption, a poisoned entry is dropped
rather than shipped, and a sanitizer failure is never memoized.
"""

import pytest

from repro.errors import SanitizerError
from repro.farm.cache import PassCache
from repro.ir.cloning import clone_procedure
from repro.ir.operands import PredReg
from repro.passes import BuildReport, PassManager
from repro.passes.incidents import (
    ACTION_FLAGGED,
    ACTION_ROLLED_BACK,
)
from repro.pipeline import PipelineOptions, build_workload
from repro.reduce import load_bundle_procedure, verify_bundle
from repro.robustness import FaultPlan, FaultSpec
from repro.workloads.registry import get_workload


def _op_count(proc) -> int:
    return sum(len(block.ops) for block in proc)


def _clobber_guard(proc):
    """A pass that reads an undefined predicate: the planted miscompile."""
    target = proc.blocks[0].ops[0]
    target.guard = PredReg(77)
    return None


# ----------------------------------------------------------------------
# Planted miscompile -> incident -> rollback -> bundle
# ----------------------------------------------------------------------
def test_clobbered_predicate_is_flagged_rolled_back_and_bundled(tmp_path):
    workload = get_workload("strcpy")
    plan = FaultPlan(
        [FaultSpec(pass_name="icbm", kind="clobber-pred")], seed=3
    )
    options = PipelineOptions(
        sanitize="fast", repro_dir=str(tmp_path), fault_plan=plan
    )
    build = build_workload(
        workload.name,
        workload.compile(),
        workload.inputs,
        options,
        entry=workload.entry,
    )
    report = build.build_report
    flagged = [
        i for i in report.incidents if i.error_type == "SanitizerError"
    ]
    assert flagged, report.incidents
    incident = flagged[0]
    assert incident.action == ACTION_ROLLED_BACK
    assert incident.bundle is not None
    # The bundle is minimal and re-triggers the identical finding after a
    # round-trip through the IR text parser.
    assert _op_count(load_bundle_procedure(incident.bundle)) <= 5
    assert verify_bundle(incident.bundle)
    # The round-trip survives Incident serialization too.
    rebuilt = BuildReport.from_dict(report.to_dict())
    assert rebuilt.incidents[0].bundle == incident.bundle


def test_strict_mode_raises_sanitizer_error():
    workload = get_workload("strcpy")
    plan = FaultPlan(
        [FaultSpec(pass_name="icbm", kind="clobber-pred")], seed=3
    )
    options = PipelineOptions(
        sanitize="fast", fault_plan=plan, resilient=False
    )
    with pytest.raises(SanitizerError):
        build_workload(
            workload.name,
            workload.compile(),
            workload.inputs,
            options,
            entry=workload.entry,
        )


# ----------------------------------------------------------------------
# Cache safety
# ----------------------------------------------------------------------
def test_sanitizer_failure_is_never_memoized(tmp_path):
    program = get_workload("cmp").compile()
    cache = PassCache(tmp_path / "cache")
    manager = PassManager(
        program,
        report=BuildReport(),
        cache=cache,
        context_key="ctx",
        sanitize="fast",
    )
    results = manager.run_pass("bad-pass", _clobber_guard)
    assert results == {}  # rolled back everywhere
    assert manager.report.rolled_back == len(program.procedures)
    assert cache.entry_count("txn.pkl") == 0


def test_poisoned_cache_entry_is_resanitized_and_dropped(tmp_path):
    cache = PassCache(tmp_path / "cache")

    def nop(proc):
        return 7

    # Populate the cache with a clean committed transaction.
    first = get_workload("cmp").compile()
    PassManager(
        first, report=BuildReport(), cache=cache, context_key="ctx",
        sanitize="fast",
    ).run_pass("nop", nop)
    assert cache.entry_count("txn.pkl") == 1

    # Poison it in place: same key, corrupted payload.
    fresh = get_workload("cmp").compile()
    proc = fresh.procedures["main"]
    key = PassManager(
        fresh, report=BuildReport(), cache=cache, context_key="ctx",
        sanitize="fast",
    )._cache_key("nop", proc)
    assert key is not None
    poisoned = clone_procedure(proc, preserve_uids=True)
    poisoned.blocks[0].ops[0].guard = PredReg(77)
    cache.put_transaction(key, poisoned, 7)

    # A warm run must re-sanitize after adoption, drop the entry, record
    # the flag, and fall through to a clean fresh run.
    before_ir = proc.format()
    report = BuildReport()
    manager = PassManager(
        fresh, report=report, cache=cache, context_key="ctx",
        sanitize="fast",
    )
    results = manager.run_pass("nop", nop)
    assert results["main"] == 7
    assert proc.format() == before_ir  # the poison never shipped
    flagged = [i for i in report.incidents if i.action == ACTION_FLAGGED]
    assert flagged and flagged[0].severity == "warning"
    # The fresh run re-stored a clean entry under the same key.
    replacement, _, _ = cache.get_transaction(key)
    from repro.sanitize import run_battery

    assert run_battery(replacement) == []


def test_unsanitized_run_would_have_shipped_the_poison(tmp_path):
    # Control experiment for the test above: without --sanitize the
    # adoption path trusts the cache, which is exactly the hole the
    # re-sanitize closes.
    cache = PassCache(tmp_path / "cache")

    def nop(proc):
        return 7

    first = get_workload("cmp").compile()
    PassManager(
        first, report=BuildReport(), cache=cache, context_key="ctx",
    ).run_pass("nop", nop)
    fresh = get_workload("cmp").compile()
    proc = fresh.procedures["main"]
    key = PassManager(
        fresh, report=BuildReport(), cache=cache, context_key="ctx",
    )._cache_key("nop", proc)
    poisoned = clone_procedure(proc, preserve_uids=True)
    poisoned.blocks[0].ops[0].guard = PredReg(77)
    cache.put_transaction(key, poisoned, 7)

    manager = PassManager(
        fresh, report=BuildReport(), cache=cache, context_key="ctx",
    )
    manager.run_pass("nop", nop)
    assert manager.cache_restores == 1
    from repro.sanitize import run_battery

    assert run_battery(proc)  # the poison is live in the program
