"""Transactional pass manager: snapshot/rollback, ladders, incidents.

The central invariant: a failed pass transaction restores the procedure to
a *byte-identical* pre-pass state — same formatted IR, same operation uids
(so profile side tables stay valid) — while the rest of the build proceeds.
"""

import pytest

from repro.errors import (
    BudgetExceeded,
    TransformError,
    VerificationError,
)
from repro.ir.cloning import restore_procedure, snapshot_procedure
from repro.ir.opcodes import Opcode
from repro.passes import BuildReport, PassManager, Rung, TransactionPolicy
from repro.passes.manager import run_inputs
from repro.pipeline import PipelineOptions, build_workload
from repro.robustness import FaultPlan, FaultSpec
from repro.sim.interpreter import DEFAULT_FUEL
from repro.workloads.registry import get_workload


def _ir(proc):
    return proc.format()


def _uids(proc):
    return [op.uid for op in proc.all_ops()]


def _program_ops(program):
    return [
        op.format()
        for proc in program.procedures.values()
        for block in proc.blocks
        for op in block.ops
    ]


# ----------------------------------------------------------------------
# Snapshot / restore primitive
# ----------------------------------------------------------------------
def test_snapshot_restore_is_byte_identical_including_uids():
    program = get_workload("cmp").compile()
    proc = program.procedures["main"]
    before_ir, before_uids = _ir(proc), _uids(proc)
    snapshot = snapshot_procedure(proc)

    proc.blocks[0].ops.pop()
    proc.blocks[-1].ops.clear()
    assert _ir(proc) != before_ir

    restored = restore_procedure(proc, snapshot)
    assert restored is proc  # identity preserved: Program refs stay valid
    assert _ir(proc) == before_ir
    assert _uids(proc) == before_uids


def test_snapshot_supports_repeated_restores():
    program = get_workload("strcpy").compile()
    proc = program.procedures["main"]
    before = _ir(proc)
    snapshot = snapshot_procedure(proc)
    for _ in range(3):
        proc.blocks[0].ops.pop()
        restore_procedure(proc, snapshot)
        assert _ir(proc) == before


# ----------------------------------------------------------------------
# Transactions
# ----------------------------------------------------------------------
def test_failed_pass_rolls_back_and_records_incident():
    program = get_workload("cmp").compile()
    proc = program.procedures["main"]
    before_ir, before_uids = _ir(proc), _uids(proc)
    report = BuildReport()
    manager = PassManager(program, report=report)

    def evil(proc):
        proc.blocks[0].ops.pop()  # partial mutation that must be undone
        raise TransformError("boom")

    committed = manager.run_pass("evil", evil)
    assert committed == {}
    assert _ir(proc) == before_ir
    assert _uids(proc) == before_uids
    (incident,) = report.incidents_for("evil", "main")
    assert incident.severity == "error"
    assert incident.error_type == "TransformError"
    assert incident.action == "rolled-back"
    assert report.rolled_back == 1 and report.committed == 0


def test_successful_pass_commits_without_incident():
    program = get_workload("cmp").compile()
    report = BuildReport()
    manager = PassManager(program, report=report)
    committed = manager.run_pass("count", lambda proc: proc.op_count())
    assert committed["main"] > 0
    assert report.ok
    assert report.committed == report.transactions == 1


def test_verifier_catches_structural_corruption():
    program = get_workload("cmp").compile()
    proc = program.procedures["main"]
    before = _ir(proc)
    report = BuildReport()
    manager = PassManager(program, report=report)

    def corrupt(proc):
        # Drop the final block's terminator: the procedure now falls off
        # the end, which only verify (not the pass itself) notices.
        proc.blocks[-1].ops.pop()

    manager.run_pass("corrupt", corrupt)
    assert _ir(proc) == before
    (incident,) = report.incidents_for("corrupt")
    assert incident.error_type == "VerificationError"


def test_step_budget_expiry_rolls_back():
    program = get_workload("cmp").compile()
    proc = program.procedures["main"]
    before = _ir(proc)
    report = BuildReport()
    manager = PassManager(
        program,
        report=report,
        policy=TransactionPolicy(step_budget=proc.op_count() + 2),
    )

    def bloat(proc):
        block = proc.blocks[0]
        for op in [op.clone() for op in block.ops[:3] if not op.is_branch]:
            block.append(op)

    manager.run_pass("bloat", bloat)
    assert _ir(proc) == before
    (incident,) = report.incidents_for("bloat")
    assert incident.error_type == "BudgetExceeded"


def test_strict_mode_propagates_first_failure():
    program = get_workload("cmp").compile()
    manager = PassManager(program, resilient=False)

    def evil(proc):
        raise TransformError("boom")

    with pytest.raises(TransformError):
        manager.run_pass("evil", evil)


def test_differential_check_rolls_back_silent_corruption():
    workload = get_workload("cmp")
    program = workload.compile()
    proc = program.procedures["main"]
    before = _ir(proc)
    reference = run_inputs(program, workload.inputs, "main", DEFAULT_FUEL)
    report = BuildReport()
    manager = PassManager(
        program,
        report=report,
        policy=TransactionPolicy(differential=True),
        inputs=workload.inputs,
        reference=reference,
    )

    def clobber(proc):
        # Point every conditional branch at a never-set predicate: the IR
        # stays structurally valid (the verifier passes) but the loop's
        # exits never fire, so only the differential check can convict.
        for block in proc.blocks:
            for op in block.ops:
                if op.opcode is Opcode.BRANCH:
                    op.srcs[0] = proc.new_pred()

    manager.run_pass("clobber", clobber)
    assert _ir(proc) == before
    (incident,) = report.incidents_for("clobber")
    assert incident.error_type in ("TransformError", "FuelExhausted")


def test_degradation_ladder_commits_fallback_with_warning():
    program = get_workload("cmp").compile()
    report = BuildReport()
    manager = PassManager(program, report=report)

    def failing(proc):
        raise TransformError("full rung broken")

    committed = manager.run_pass(
        "laddered",
        ladder=[
            Rung("full", failing),
            Rung("conservative", lambda proc: "fallback-result"),
        ],
    )
    assert committed == {"main": "fallback-result"}
    (incident,) = report.incidents_for("laddered", "main")
    assert incident.severity == "warning"
    assert incident.action == "degraded"
    assert incident.rung == "conservative"
    assert incident.retries == 2
    assert report.degraded == 1 and report.rolled_back == 0


# ----------------------------------------------------------------------
# End-to-end: the pipeline on the manager, under injected faults
# ----------------------------------------------------------------------
def test_injected_icbm_fault_rolls_back_to_baseline():
    """The acceptance scenario: a persistent mid-pass exception in ICBM on
    one procedure must leave the build complete, differentially verified,
    byte-identical to the baseline for the affected procedure, and reported
    as exactly one incident for that (pass, procedure) pair."""
    workload = get_workload("cmp")
    plan = FaultPlan(
        [FaultSpec(pass_name="icbm", proc_name="main", kind="raise")],
        seed=7,
    )
    build = build_workload(
        workload.name,
        workload.compile(),
        workload.inputs,
        PipelineOptions(fault_plan=plan),
    )
    assert plan.log, "the fault must actually fire"
    # build_workload ran its differential equivalence checks to completion.
    assert _program_ops(build.transformed) == _program_ops(build.baseline)
    incidents = build.build_report.incidents_for("icbm", "main")
    assert len(incidents) == 1
    assert incidents[0].severity == "error"
    assert incidents[0].action == "rolled-back"


@pytest.mark.parametrize("kind", ["drop-branch", "clobber-pred", "fuel"])
def test_injected_corruption_restores_byte_identical_ir(kind):
    workload = get_workload("strcpy")
    plan = FaultPlan([FaultSpec(pass_name="icbm", kind=kind)], seed=3)
    build = build_workload(
        workload.name,
        workload.compile(),
        workload.inputs,
        PipelineOptions(fault_plan=plan),
    )
    assert plan.log
    assert build.build_report.incidents_for("icbm")
    assert _program_ops(build.transformed) == _program_ops(build.baseline)


def test_one_shot_fault_degrades_instead_of_rolling_back():
    workload = get_workload("strcpy")
    plan = FaultPlan(
        [FaultSpec(pass_name="icbm", kind="raise", times=1)], seed=1
    )
    build = build_workload(
        workload.name,
        workload.compile(),
        workload.inputs,
        PipelineOptions(fault_plan=plan),
    )
    (incident,) = build.build_report.incidents_for("icbm")
    assert incident.action == "degraded"
    assert incident.rung == "conservative"


def test_clean_build_report_is_ok():
    workload = get_workload("strcpy")
    build = build_workload(
        workload.name, workload.compile(), workload.inputs
    )
    assert build.build_report.ok
    assert build.build_report.committed == build.build_report.transactions
    assert "build clean" in build.build_report.summary()


def test_strict_pipeline_propagates_injected_fault():
    workload = get_workload("strcpy")
    plan = FaultPlan([FaultSpec(pass_name="icbm", kind="raise")], seed=1)
    with pytest.raises(TransformError):
        build_workload(
            workload.name,
            workload.compile(),
            workload.inputs,
            PipelineOptions(fault_plan=plan, resilient=False),
        )
