"""Golden-file CLI tests: metrics-JSON schema, --jobs, exit codes.

The metrics document is compared *structurally* (every leaf replaced by
its JSON type name) against a checked-in golden file, so timings and
machine-local paths do not churn the golden while any schema drift —
a renamed key, a type change, a dropped section — fails loudly.
"""

import json
from pathlib import Path

import pytest

from repro import errors
from repro.__main__ import main

GOLDEN = Path(__file__).parent / "golden"


def canon(value):
    """Replace every JSON leaf with its type name; keep the key tree."""
    if isinstance(value, dict):
        return {key: canon(item) for key, item in value.items()}
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    if value is None:
        return "null"
    return type(value).__name__


# ----------------------------------------------------------------------
# --metrics-json schema
# ----------------------------------------------------------------------
def test_metrics_json_matches_golden_schema(tmp_path, capsys):
    metrics_path = tmp_path / "metrics.json"
    code = main([
        "evaluate", "strcpy",
        "--cache", "--cache-dir", str(tmp_path / "cache"),
        "--metrics-json", str(metrics_path),
    ])
    assert code == 0
    capsys.readouterr()
    document = json.loads(metrics_path.read_text())
    golden = json.loads((GOLDEN / "metrics_schema.json").read_text())
    assert canon(document) == golden
    # A few value-level invariants the type-only golden cannot see.
    assert document["schema"] == "repro.farm.metrics/v4"
    assert document["cache"]["enabled"] is True
    assert document["cache"]["stores"] > 0
    assert document["totals"]["workloads"] == 1


def test_metrics_json_without_cache(tmp_path, capsys):
    """--metrics-json works with caching off; the cache section reports
    disabled with a null root (golden schema says "str" — checked here)."""
    metrics_path = tmp_path / "metrics.json"
    assert main(["evaluate", "wc", "--metrics-json", str(metrics_path)]) == 0
    capsys.readouterr()
    document = json.loads(metrics_path.read_text())
    assert document["cache"]["enabled"] is False
    assert document["cache"]["root"] is None
    assert document["jobs"] == 1


# ----------------------------------------------------------------------
# --jobs: identical output, golden table
# ----------------------------------------------------------------------
def test_table2_matches_golden_for_every_jobs_value(capsys):
    golden = (GOLDEN / "table2_strcpy_cmp.txt").read_text()
    for jobs in ("1", "2"):
        code = main(["table2", "--subset", "strcpy,cmp", "--jobs", jobs])
        out = capsys.readouterr().out
        assert code == 0
        assert out == golden, f"--jobs {jobs} diverged from golden"


def test_warm_cache_output_identical_to_cold(tmp_path, capsys):
    args = [
        "table2", "--subset", "strcpy,cmp",
        "--cache", "--cache-dir", str(tmp_path / "cache"),
    ]
    assert main(args) == 0
    cold = capsys.readouterr().out
    assert main(args) == 0
    warm = capsys.readouterr().out
    assert warm == cold


# ----------------------------------------------------------------------
# Exit codes
# ----------------------------------------------------------------------
def test_exit_2_on_bad_usage(capsys):
    assert main(["table2", "--jobs", "many"]) == 2
    assert "jobs" in capsys.readouterr().err
    assert main(["table2", "--subset", "strcpy,doesnotexist"]) == 2
    assert "doesnotexist" in capsys.readouterr().err


def test_exit_5_on_fuel_exhaustion(capsys):
    assert main(["evaluate", "strcpy", "--fuel", "3"]) == 5
    assert "FuelExhausted" in capsys.readouterr().err


def test_exit_5_survives_the_process_pool(capsys):
    """The worker's FuelExhausted crosses the pool boundary by type name
    and still maps to exit code 5 in the parent."""
    assert main([
        "evaluate", "strcpy", "cmp", "--fuel", "3", "--jobs", "2",
    ]) == 5
    assert "FuelExhausted" in capsys.readouterr().err


@pytest.mark.parametrize(
    "raised,expected",
    [
        (errors.VerificationError(["bad op"]), 3),
        (errors.TransformError("broken"), 4),
        (errors.ParseError("syntax"), 2),
        (errors.SchedulingError("no slot"), 4),
    ],
)
def test_exit_codes_per_subsystem(monkeypatch, capsys, raised, expected):
    def boom(names, options):
        raise raised

    monkeypatch.setattr("repro.__main__.build_farm", boom)
    assert main(["evaluate", "strcpy"]) == expected
    capsys.readouterr()
