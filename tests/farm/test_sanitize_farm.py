"""--sanitize on the build farm: clean runs, determinism, key salting."""

from repro.__main__ import main
from repro.farm.farm import FarmOptions, build_farm
from repro.farm.fingerprint import options_fingerprint


def test_sanitized_clean_run_matches_unsanitized_results():
    plain = build_farm(["strcpy"], FarmOptions())
    sanitized = build_farm(["strcpy"], FarmOptions(sanitize="full"))
    # Zero findings on a clean build: identical IR, cycles, and counts,
    # and no incidents introduced by the battery.
    assert (
        plain.summaries[0].comparable()
        == sanitized.summaries[0].comparable()
    )
    assert sanitized.summaries[0].report.get("incidents", []) == []


def test_sanitize_salts_the_options_fingerprint():
    # A sanitized build can commit different IR (rollbacks), so its cache
    # entries must never alias an unsanitized build's.
    fingerprints = {
        options_fingerprint(
            FarmOptions(sanitize=tier).pipeline_options()
        )
        for tier in (None, "fast", "full")
    }
    assert len(fingerprints) == 3


def test_repro_dir_does_not_affect_the_fingerprint():
    assert options_fingerprint(
        FarmOptions(sanitize="fast", repro_dir="a").pipeline_options()
    ) == options_fingerprint(
        FarmOptions(sanitize="fast", repro_dir="b").pipeline_options()
    )


def test_cli_accepts_bare_sanitize_flag(capsys):
    assert main(["evaluate", "strcpy", "--sanitize"]) == 0
    out = capsys.readouterr().out
    assert "strcpy" in out
