"""Compile-metrics recording, merging, and the JSON document."""

from repro.farm.cache import CacheStats
from repro.farm.metrics import (
    METRICS_SCHEMA,
    CompileMetrics,
    PassMetrics,
    WorkloadMetrics,
)
from repro.obs import CounterSet


def test_record_pass_tristate_cache_accounting():
    metrics = CompileMetrics()
    metrics.record_pass("dce", 0.5, 10, 8, cache_hit=True)
    metrics.record_pass("dce", 0.25, 8, 8, cache_hit=False)
    metrics.record_pass("dce", 0.25, 8, 8, cache_hit=None)  # uncached run
    entry = metrics.passes["dce"]
    assert entry.calls == 3
    assert entry.cache_hits == 1 and entry.cache_misses == 1
    assert entry.wall_s == 1.0
    assert entry.ops_before == 26 and entry.ops_after == 24


def test_merge_combines_workers_regardless_of_order():
    def worker(name, wall):
        m = CompileMetrics()
        m.record_pass("icbm", wall, 5, 4, cache_hit=False)
        m.record_workload(name, wall, transactions=2)
        m.record_cache_stats(CacheStats(hits=1, misses=2, stores=2))
        return m

    ab = CompileMetrics()
    ab.merge(worker("a", 1.0)).merge(worker("b", 2.0))
    ba = CompileMetrics()
    ba.merge(worker("b", 2.0)).merge(worker("a", 1.0))
    assert ab.to_dict() == ba.to_dict()
    assert ab.passes["icbm"].calls == 2
    assert ab.total_wall_s == 3.0
    assert ab.cache_misses == 4


def test_dict_roundtrip():
    metrics = CompileMetrics()
    metrics.record_pass("frp", 0.125, 7, 9, cache_hit=True)
    metrics.record_workload("w", 0.5, from_cache=True, incidents=1)
    metrics.record_cache_stats(CacheStats(hits=3, misses=1, stores=1))
    restored = CompileMetrics.from_dict(metrics.to_dict())
    assert restored.to_dict() == metrics.to_dict()
    assert isinstance(restored.passes["frp"], PassMetrics)
    assert isinstance(restored.workloads["w"], WorkloadMetrics)
    assert restored.workloads["w"].from_cache is True


def test_json_document_shape():
    metrics = CompileMetrics()
    metrics.record_pass("dce", 0.25, 4, 3, cache_hit=False)
    metrics.record_workload("w", 0.25, transactions=1)
    doc = metrics.to_json_dict(
        jobs=4, cache_enabled=True, cache_root="/tmp/c"
    )
    assert doc["schema"] == METRICS_SCHEMA
    assert doc["jobs"] == 4
    assert doc["cache"]["enabled"] is True
    assert doc["cache"]["root"] == "/tmp/c"
    assert doc["totals"] == {
        "wall_s": 0.25, "workloads": 1, "pass_invocations": 1,
    }
    assert set(doc["passes"]) == {"dce"}
    assert set(doc["workloads"]) == {"w"}
    assert doc["counters"] == {}


# ----------------------------------------------------------------------
# v2: counters; v3: serve section + cache mirrors; v4: storage section
# ----------------------------------------------------------------------
def test_schema_is_v4():
    """v2 added the counters section, v3 the optional ``serve`` section
    and the ``farm.cache.*`` counter mirrors, v4 the ``storage``
    integrity section; bump the tag again rather than ever repurposing
    it."""
    assert METRICS_SCHEMA == "repro.farm.metrics/v4"


def test_counters_merge_and_roundtrip():
    a = CompileMetrics()
    a.counters.add("sched.ops_scheduled", 10)
    a.counters.add("farm.cache_restore_latency_s", 0.5)
    b = CompileMetrics()
    b.counters.add("sched.ops_scheduled", 20)
    a.merge(b)
    assert a.counters.get("sched.ops_scheduled").count == 2
    assert a.counters.get("sched.ops_scheduled").total == 30
    assert a.counters.get("sched.ops_scheduled").max == 20

    restored = CompileMetrics.from_dict(a.to_dict())
    assert isinstance(restored.counters, CounterSet)
    assert restored.to_dict() == a.to_dict()


def test_counters_appear_in_the_json_document():
    metrics = CompileMetrics()
    metrics.counters.add("farm.task_queue_depth", 3)
    doc = metrics.to_json_dict()
    assert doc["counters"] == {
        "farm.task_queue_depth": {"count": 1, "total": 3.0, "max": 3},
    }


def test_v1_documents_still_deserialize():
    """A v1 to_dict (no counters key) loads with an empty counter set."""
    old = {
        "passes": {}, "workloads": {},
        "cache_hits": 1, "cache_misses": 2, "cache_stores": 3,
    }
    metrics = CompileMetrics.from_dict(old)
    assert metrics.cache_misses == 2
    assert metrics.counters.to_dict() == {}
