"""Content hashing and the on-disk cache store."""

import pytest

from repro.farm.cache import CACHE_FORMAT_VERSION, CacheStats, PassCache
from repro.farm.fingerprint import (
    evaluation_key,
    operation_signature,
    options_fingerprint,
    procedure_signature,
    program_signature,
    stable_hash,
    transaction_context,
    transaction_key,
    workload_inputs_key,
)
from repro.ir import clone_procedure
from repro.obs import LedgerEntry
from repro.pipeline import PipelineOptions
from repro.robustness.faultinject import FaultPlan, FaultSpec

from tests.conftest import build_strcpy_program


# ----------------------------------------------------------------------
# stable_hash
# ----------------------------------------------------------------------
def test_stable_hash_deterministic_and_order_sensitive():
    assert stable_hash("a", "b") == stable_hash("a", "b")
    assert stable_hash("a", "b") != stable_hash("b", "a")
    # Part boundaries matter: ("ab", "") must not collide with ("a", "b").
    assert stable_hash("ab", "") != stable_hash("a", "b")


# ----------------------------------------------------------------------
# IR signatures
# ----------------------------------------------------------------------
def test_procedure_signature_is_uid_free():
    """Two independently built (hence differently uid'd) copies of the
    same program hash equal — the property that makes cache keys valid
    across worker processes."""
    first = build_strcpy_program().procedures["main"]
    second = build_strcpy_program().procedures["main"]
    uids = {op.uid for op in first.blocks[0].ops}
    assert uids != {op.uid for op in second.blocks[0].ops}
    assert procedure_signature(first) == procedure_signature(second)


def test_procedure_signature_survives_cloning():
    proc = build_strcpy_program().procedures["main"]
    assert procedure_signature(proc) == procedure_signature(
        clone_procedure(proc)
    )


def test_signature_sees_attrs_the_text_form_omits():
    """`region` never appears in Operation.format() but changes
    dependence analysis, so it must change the signature."""
    program = build_strcpy_program()
    proc = program.procedures["main"]
    before = procedure_signature(proc)
    load = next(
        op for op in proc.blocks[1].ops if "region" in op.attrs
    )
    load.attrs["region"] = "ELSEWHERE"
    assert procedure_signature(proc) != before
    assert "ELSEWHERE" in operation_signature(load)


def test_program_signature_covers_segments():
    program = build_strcpy_program()
    before = program_signature(program)
    program.segments["A"].size *= 2
    assert program_signature(program) != before


# ----------------------------------------------------------------------
# Option fingerprints and key composition
# ----------------------------------------------------------------------
def test_options_fingerprint_tracks_pass_steering_knobs():
    base = options_fingerprint(PipelineOptions())
    assert options_fingerprint(PipelineOptions(fuel=7)) != base
    assert options_fingerprint(PipelineOptions(if_convert=True)) != base


def test_options_fingerprint_ignores_failure_handling_knobs():
    """`resilient` and `fault_plan` change failure handling, never the
    committed IR of a successful transaction — same fingerprint."""
    base = options_fingerprint(PipelineOptions())
    assert options_fingerprint(PipelineOptions(resilient=False)) == base
    plan = FaultPlan([FaultSpec(kind="raise")], seed=3)
    assert options_fingerprint(PipelineOptions(fault_plan=plan)) == base


def test_transaction_key_separates_passes_and_content():
    program = build_strcpy_program()
    proc = program.procedures["main"]
    options = PipelineOptions()
    inputs = workload_inputs_key("w", 1, "src", "main")
    context = transaction_context(program, options, inputs)
    key = transaction_key(CACHE_FORMAT_VERSION, context, "dce", proc, None)
    assert key != transaction_key(
        CACHE_FORMAT_VERSION, context, "copyprop", proc, None
    )
    assert key != transaction_key(
        CACHE_FORMAT_VERSION + 1, context, "dce", proc, None
    )
    other_context = transaction_context(
        program, options, workload_inputs_key("w", 2, "src", "main")
    )
    assert key != transaction_key(
        CACHE_FORMAT_VERSION, other_context, "dce", proc, None
    )


def test_evaluation_key_covers_machines_and_estimate_mode():
    def key(processors=("medium",), mode="exit-aware", scale=1):
        return evaluation_key(
            CACHE_FORMAT_VERSION, "w", scale, "src", "main", "fp",
            processors, mode,
        )

    assert key() == key()
    assert key(processors=("medium", "wide")) != key()
    assert key(mode="simple") != key()
    assert key(scale=2) != key()


# ----------------------------------------------------------------------
# PassCache store
# ----------------------------------------------------------------------
def test_transaction_roundtrip(tmp_path):
    cache = PassCache(tmp_path)
    proc = build_strcpy_program().procedures["main"]
    entry = LedgerEntry.make("match-accept", "main", "entry", size=2)
    cache.put_transaction("ab" + "0" * 62, proc, {"removed": 3}, [entry])
    restored, result, entries = cache.get_transaction("ab" + "0" * 62)
    assert result == {"removed": 3}
    assert entries == [entry]
    assert procedure_signature(restored) == procedure_signature(proc)
    assert cache.stats == CacheStats(hits=1, misses=0, stores=1)


def test_transaction_entries_default_to_empty(tmp_path):
    cache = PassCache(tmp_path)
    proc = build_strcpy_program().procedures["main"]
    cache.put_transaction("ab" + "1" * 62, proc, None)
    _, _, entries = cache.get_transaction("ab" + "1" * 62)
    assert entries == []


def test_evaluation_roundtrip_and_miss(tmp_path):
    cache = PassCache(tmp_path)
    key = "cd" + "1" * 62
    assert cache.get_evaluation(key) is None
    cache.put_evaluation(key, {"cycles": {"medium": 12}})
    assert cache.get_evaluation(key) == {"cycles": {"medium": 12}}
    assert cache.stats.misses == 1 and cache.stats.hits == 1


def test_corrupt_entries_count_as_misses_and_are_quarantined(tmp_path):
    """Headerless bytes (pre-v5 writers, truncation to garbage) are moved
    to quarantine/ and count as misses; see test_storage_integrity.py for
    the digest-mismatch paths."""
    cache = PassCache(tmp_path)
    key = "ef" + "2" * 62
    cache.put_evaluation(key, {"ok": True})
    cache._path(key, "eval.json").write_bytes(b"not json{")
    assert cache.get_evaluation(key) is None
    assert cache.stats.hits == 0 and cache.stats.misses == 1
    assert not cache._path(key, "eval.json").exists()

    cache.put_transaction(key, build_strcpy_program().procedures["main"], 1)
    cache._path(key, "txn.pkl").write_bytes(b"\x80garbage")
    assert cache.get_transaction(key) is None
    assert not cache._path(key, "txn.pkl").exists()
    assert cache.quarantine_count() == 2


def test_version_bump_orphans_old_entries(tmp_path, monkeypatch):
    cache = PassCache(tmp_path)
    key = "0a" + "3" * 62
    cache.put_evaluation(key, {"v": CACHE_FORMAT_VERSION})
    monkeypatch.setattr(
        "repro.farm.cache.CACHE_FORMAT_VERSION", CACHE_FORMAT_VERSION + 1
    )
    bumped = PassCache(tmp_path)
    assert bumped.get_evaluation(key) is None
    # The old entry still exists on disk, just under the old version dir.
    assert cache.entry_count("eval.json") == 1
    assert bumped.entry_count("eval.json") == 0


def test_clear_and_entry_count(tmp_path):
    cache = PassCache(tmp_path)
    cache.put_evaluation("11" + "4" * 62, {})
    cache.put_transaction(
        "22" + "5" * 62, build_strcpy_program().procedures["main"], None
    )
    assert cache.entry_count() == 2
    assert cache.entry_count("eval.json") == 1
    cache.clear()
    assert cache.entry_count() == 0
