"""Self-verifying cache entries: quarantine, cache-off degradation, and
the storage section of the merged metrics.

The contract under test (DESIGN §16): a corrupted cache entry is
*detected* (digest mismatch), *contained* (quarantined, never fed to
``pickle.loads``/``json.loads``), and *absorbed* (the read is a miss —
the workload recomputes and the build result is bit-identical to an
uncached run). A cache IO *error* is absorbed differently: the handle
flips to cache-off and the build finishes without the cache.
"""

import json

from repro.farm.cache import ENTRY_MAGIC, PassCache
from repro.farm.farm import FarmOptions, build_farm
from repro.farm.journal import journal_run_key
from repro.storage.faults import (
    StorageFaultPlan,
    StorageFaultSpec,
    activate_storage_faults,
)

from tests.conftest import build_strcpy_program

PAIR = ["strcpy", "cmp"]


def _flip_payload_bit(path):
    """Flip one bit inside the sealed payload (headers stay intact)."""
    data = bytearray(path.read_bytes())
    header_end = data.index(ord("\n"))
    data[header_end + 3] ^= 0x01
    path.write_bytes(bytes(data))


def _options(tmp_path, **extra):
    return FarmOptions(
        jobs=1, processors=("medium",),
        cache_root=str(tmp_path / "cache"), **extra,
    )


def _comparable(result):
    return [s.comparable() for s in result.summaries]


# ----------------------------------------------------------------------
# PassCache handle level
# ----------------------------------------------------------------------
def test_flipped_bit_in_eval_entry_is_quarantined(tmp_path):
    cache = PassCache(tmp_path)
    key = "ab" + "0" * 62
    cache.put_evaluation(key, {"cycles": {"medium": 12}})
    _flip_payload_bit(cache._path(key, "eval.json"))
    assert cache.get_evaluation(key) is None
    assert cache.stats == cache.stats.__class__(hits=0, misses=1, stores=1)
    # Moved aside, not deleted — the evidence survives for forensics.
    assert not cache._path(key, "eval.json").exists()
    assert cache.quarantine_count() == 1
    [incident] = cache.incidents
    assert incident.kind == "checksum-mismatch"
    assert incident.action == "quarantined"
    assert not cache.disabled  # corruption degrades the entry, not the cache


def test_flipped_bit_in_txn_entry_never_reaches_pickle(tmp_path):
    cache = PassCache(tmp_path)
    key = "cd" + "1" * 62
    cache.put_transaction(key, build_strcpy_program().procedures["main"], 7)
    _flip_payload_bit(cache._path(key, "txn.pkl"))
    assert cache.get_transaction(key) is None
    assert cache.quarantine_count() == 1
    assert cache.incidents[0].kind == "checksum-mismatch"


def test_verify_off_strips_header_without_digest_check(tmp_path):
    """The benchmark baseline: same entry layout, no sha256 per read."""
    trusting = PassCache(tmp_path, verify=False)
    key = "ef" + "2" * 62
    trusting.put_evaluation(key, {"ok": 1})
    # Forge a wrong digest; only a verifying handle notices.
    path = trusting._path(key, "eval.json")
    payload = path.read_bytes().partition(b"\n")[2]
    path.write_bytes(ENTRY_MAGIC + b" " + b"0" * 64 + b"\n" + payload)
    assert trusting.get_evaluation(key) == {"ok": 1}
    assert PassCache(tmp_path).get_evaluation(key) is None


def test_io_error_on_write_degrades_to_cache_off(tmp_path):
    cache = PassCache(tmp_path)
    plan = StorageFaultPlan([StorageFaultSpec("enospc", op="cache-write")])
    with activate_storage_faults(plan):
        cache.put_evaluation("ab" + "3" * 62, {"x": 1})  # must not raise
    assert cache.disabled
    assert "enospc" in cache.disabled_reason.lower() or \
        "No space" in cache.disabled_reason
    [incident] = cache.incidents
    assert incident.kind == "io-error" and incident.action == "cache-off"
    # Everything after the flip is a silent miss / no-op.
    cache.put_evaluation("ab" + "4" * 62, {"y": 2})
    assert cache.get_evaluation("ab" + "4" * 62) is None
    assert cache.stats.stores == 0


def test_missing_entry_is_a_miss_not_a_degrade(tmp_path):
    cache = PassCache(tmp_path)
    assert cache.get_evaluation("aa" + "5" * 62) is None
    assert not cache.disabled
    assert cache.incidents == []


# ----------------------------------------------------------------------
# Build level
# ----------------------------------------------------------------------
def test_corrupt_warm_entry_recomputes_bit_identically(tmp_path):
    """A flipped bit in a warm entry costs one recompute, nothing else."""
    reference = build_farm(PAIR, FarmOptions(jobs=1, processors=("medium",)))
    options = _options(tmp_path)
    cold = build_farm(PAIR, options)
    assert _comparable(cold) == _comparable(reference)

    cache = PassCache(options.cache_root)
    [entry] = [
        p for p in cache.base.rglob("*.eval.json")
        if "quarantine" not in p.parts
    ][:1] or [None]
    assert entry is not None
    _flip_payload_bit(entry)

    warm = build_farm(PAIR, options)
    assert _comparable(warm) == _comparable(reference)
    storage = warm.metrics.to_json_dict()["storage"]
    assert storage["checksum_failures"] >= 1
    assert storage["quarantines"] >= 1
    assert PassCache(options.cache_root).quarantine_count() >= 1


def test_disk_full_during_build_degrades_to_cache_off(tmp_path):
    """ENOSPC on every cache write: the build completes, uncached, with
    identical results — a full disk never aborts a build."""
    reference = build_farm(PAIR, FarmOptions(jobs=1, processors=("medium",)))
    plan = StorageFaultPlan(
        [StorageFaultSpec("enospc", op="cache-write", times=0)]
    )
    with activate_storage_faults(plan):
        result = build_farm(PAIR, _options(tmp_path))
    assert _comparable(result) == _comparable(reference)
    assert result.metrics.to_json_dict()["storage"]["degraded_to_off"] >= 1
    assert plan.fired >= 1


def test_warm_metrics_report_verified_reads(tmp_path):
    options = _options(tmp_path)
    build_farm(PAIR, options)
    warm = build_farm(PAIR, options)
    storage = warm.metrics.to_json_dict()["storage"]
    assert storage["verified_reads"] >= 2
    assert storage["checksum_failures"] == 0
    assert storage["quarantines"] == 0
    assert storage["degraded_to_off"] == 0


def test_cache_verify_is_a_speed_knob_not_a_run_knob(tmp_path):
    """cache_verify changes integrity checking, never results: it is
    excluded from the resume run key, and a verify-off warm read returns
    the same summary."""
    assert journal_run_key(PAIR, FarmOptions(processors=("medium",))) == \
        journal_run_key(
            PAIR, FarmOptions(processors=("medium",), cache_verify=False)
        )
    options = _options(tmp_path)
    cold = build_farm(PAIR, options)
    warm = build_farm(PAIR, _options(tmp_path, cache_verify=False))
    assert _comparable(warm) == _comparable(cold)


def test_quarantined_entries_round_trip_as_json(tmp_path):
    """Quarantined files keep their sealed bytes verbatim — an operator
    can inspect exactly what the reader refused."""
    cache = PassCache(tmp_path)
    key = "ab" + "6" * 62
    cache.put_evaluation(key, {"cycles": 9})
    entry_path = cache._path(key, "eval.json")
    sealed = entry_path.read_bytes()
    _flip_payload_bit(entry_path)
    flipped = entry_path.read_bytes()
    assert cache.get_evaluation(key) is None
    quarantined = cache.base / "quarantine" / entry_path.name
    assert quarantined.read_bytes() == flipped != sealed
    # The payload is still inspectable (one flipped bit in a JSON text).
    assert json.loads(sealed.partition(b"\n")[2]) == {"cycles": 9}
