"""The write-ahead completion journal and checkpoint-resume."""

import json

import pytest

from repro import errors
from repro.farm.farm import FarmOptions, build_farm
from repro.farm.journal import (
    JOURNAL_SCHEMA,
    JournalWriter,
    QuarantineIncident,
    journal_run_key,
    load_journal,
)
from repro.storage.framing import frame_record
from repro.farm.supervisor import SupervisorOptions

PAIR = ["strcpy", "cmp"]


def _options(journal, resume=False):
    return FarmOptions(
        jobs=2,
        processors=("medium",),
        supervisor=SupervisorOptions(
            journal_path=str(journal),
            resume=resume,
            heartbeat_interval_s=0.05,
        ),
    )


def test_journal_records_run(tmp_path):
    journal = tmp_path / "run.journal"
    result = build_farm(PAIR, _options(journal))
    assert result.journal_path == str(journal)
    state = load_journal(journal)
    assert state.header["schema"] == JOURNAL_SCHEMA
    assert state.header["names"] == PAIR
    assert state.run_key == journal_run_key(PAIR, _options(journal))
    assert sorted(state.completions) == sorted(PAIR)
    assert state.quarantines == {}
    assert not state.truncated
    # Every spawned worker's pid is journalled (the orphan-check hook).
    assert len(state.worker_pids()) == 2


def test_resume_replays_complete_journal(tmp_path):
    """Resuming a finished run re-runs nothing and reproduces the result."""
    journal = tmp_path / "run.journal"
    cold = build_farm(PAIR, _options(journal))
    resumed = build_farm(PAIR, _options(journal, resume=True))
    assert resumed.resumed == 2
    assert [s.comparable() for s in resumed.summaries] == [
        s.comparable() for s in cold.summaries
    ]
    assert (
        resumed.metrics.to_json_dict()["totals"]["pass_invocations"]
        == cold.metrics.to_json_dict()["totals"]["pass_invocations"]
    )
    # Replay spawns no workers at all.
    assert "worker-spawn" not in resumed.supervision.counts()
    assert resumed.supervision.counts()["journal-replay"] == 1


def test_resume_partial_journal_matches_cold_run(tmp_path):
    """A handcrafted half-finished journal: the completed workload is
    replayed verbatim, the missing one is rebuilt, and the merged result
    is indistinguishable from an uninterrupted run."""
    cold_journal = tmp_path / "cold.journal"
    cold = build_farm(PAIR, _options(cold_journal))
    cold_state = load_journal(cold_journal)

    partial = tmp_path / "partial.journal"
    options = _options(partial, resume=True)
    with open(partial, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({
            "kind": "header",
            "schema": JOURNAL_SCHEMA,
            "run_key": journal_run_key(PAIR, options),
            "names": PAIR,
            "jobs": 2,
        }) + "\n")
        handle.write(frame_record({
            "kind": "complete",
            "name": "strcpy",
            "outcome": cold_state.completions["strcpy"],
        }) + "\n")

    resumed = build_farm(PAIR, options)
    assert resumed.resumed == 1
    assert [s.comparable() for s in resumed.summaries] == [
        s.comparable() for s in cold.summaries
    ]
    # The resumed run appended cmp's completion to the same journal.
    state = load_journal(partial)
    assert sorted(state.completions) == sorted(PAIR)


def test_resume_preserves_quarantines(tmp_path):
    """A journalled quarantine stays quarantined on resume — the circuit
    breaker's verdict is part of the run, not re-litigated."""
    journal = tmp_path / "run.journal"
    options = _options(journal, resume=True)
    incident = QuarantineIncident(
        workload="cmp", attempts=3, reason="worker-crash",
        history=[{"attempt": 1, "worker": "w0#1",
                  "kind": "worker-crash", "detail": ""}],
    )
    writer = JournalWriter(
        journal, journal_run_key(PAIR, options), PAIR, 2
    )
    writer.quarantine(incident)
    writer.close()

    resumed = build_farm(PAIR, options)
    assert [s.name for s in resumed.summaries] == ["strcpy"]
    assert len(resumed.quarantined) == 1
    assert resumed.quarantined[0].workload == "cmp"
    assert resumed.quarantined[0].attempts == 3


def test_truncated_trailing_line_is_tolerated(tmp_path):
    """A SIGKILL mid-append leaves a partial last line; the loader drops
    it and resume re-runs that workload."""
    journal = tmp_path / "run.journal"
    build_farm(PAIR, _options(journal))
    text = journal.read_text(encoding="utf-8")
    lines = text.splitlines(keepends=True)
    journal.write_text("".join(lines[:-1]) + lines[-1][:17],
                       encoding="utf-8")
    state = load_journal(journal)
    assert state.truncated
    assert len(state.completions) == 1


def test_resume_rejects_run_key_mismatch(tmp_path):
    """A journal from a different workload list or option set must not
    contaminate this run's results."""
    journal = tmp_path / "run.journal"
    build_farm(PAIR, _options(journal))
    with pytest.raises(errors.UsageError, match="different run"):
        build_farm(["strcpy", "wc"], _options(journal, resume=True))


def test_resume_rejects_missing_and_malformed_journals(tmp_path):
    with pytest.raises(errors.UsageError, match="cannot read journal"):
        build_farm(PAIR, _options(tmp_path / "absent.journal", resume=True))
    headerless = tmp_path / "headerless.journal"
    headerless.write_text(
        json.dumps({"kind": "complete", "name": "strcpy", "outcome": {}})
        + "\n",
        encoding="utf-8",
    )
    with pytest.raises(errors.UsageError, match="header"):
        load_journal(headerless)
    skewed = tmp_path / "skewed.journal"
    skewed.write_text(
        json.dumps({"kind": "header", "schema": "repro.farm.journal/v999"})
        + "\n",
        encoding="utf-8",
    )
    with pytest.raises(errors.UsageError, match="schema"):
        load_journal(skewed)


def test_run_key_ignores_speed_knobs():
    """jobs and cache configuration change how fast results arrive, never
    what they are — a run may resume with different values for them."""
    base = FarmOptions(jobs=2, processors=("medium",))
    assert journal_run_key(PAIR, base) == journal_run_key(
        PAIR, FarmOptions(jobs=8, cache_root="/elsewhere",
                          processors=("medium",))
    )
    assert journal_run_key(PAIR, base) != journal_run_key(
        PAIR, FarmOptions(jobs=2, processors=("wide",))
    )
    assert journal_run_key(PAIR, base) != journal_run_key(
        ["strcpy"], base
    )
