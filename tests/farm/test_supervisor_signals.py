"""SIGINT mid-run: documented exit code, valid journal, no orphans.

Drives the real CLI in a subprocess with a chaos schedule that makes
every workload sleep long enough for the parent to interrupt it, then
checks the whole graceful-drain contract from the outside.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.farm.journal import load_journal

SRC = Path(__file__).resolve().parents[2] / "src"


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    return True


def test_sigint_drains_gracefully(tmp_path):
    journal = tmp_path / "run.journal"
    env = dict(os.environ, PYTHONPATH=str(SRC))
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "evaluate", "strcpy", "cmp",
            "--jobs", "2",
            "--journal", str(journal),
            "--chaos", "strcpy=slow,cmp=slow;slow_s=120",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        # Wait until both workers are journalled as spawned, so the
        # interrupt lands mid-build with live children to tear down.
        deadline = time.monotonic() + 60
        pids = []
        while time.monotonic() < deadline:
            if journal.exists():
                try:
                    pids = load_journal(journal).worker_pids()
                except Exception:
                    pids = []
                if len(pids) >= 2:
                    break
            time.sleep(0.1)
        assert len(pids) >= 2, "workers never spawned"
        time.sleep(0.5)

        proc.send_signal(signal.SIGINT)
        stdout, stderr = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()

    # Documented exit code for an interrupted-but-drained farm run.
    assert proc.returncode == 130, (stdout, stderr)
    assert "FarmInterrupted" in stderr
    assert "--resume" in stderr

    # The journal survived the drain intact and names the signal's
    # worker fleet, so post-mortems can account for every process.
    state = load_journal(journal)
    assert state.header["names"] == ["strcpy", "cmp"]
    assert not state.truncated

    # No orphans: every journalled worker pid is gone shortly after the
    # supervisor exits (they are its children; give the kernel a beat).
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline and any(_alive(p) for p in pids):
        time.sleep(0.1)
    survivors = [p for p in pids if _alive(p)]
    assert survivors == [], f"orphaned workers: {survivors}"

    # The journal is genuinely resumable: a clean follow-up run (no
    # chaos) finishes the interrupted work and exits 0.
    resume = subprocess.run(
        [
            sys.executable, "-m", "repro", "evaluate", "strcpy", "cmp",
            "--jobs", "2",
            "--journal", str(journal), "--resume",
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert resume.returncode == 0, (resume.stdout, resume.stderr)
    assert "strcpy" in resume.stdout and "cmp" in resume.stdout
    final = load_journal(journal)
    assert sorted(final.completions) == ["cmp", "strcpy"]
