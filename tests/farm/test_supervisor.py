"""The supervised farm: heartbeats, deadlines, retries, quarantine.

Timing dials in these tests are tuned for a slow single-CPU CI box: short
heartbeat intervals so runs finish fast, but generous deadlines so a
healthy build is never killed by accident.
"""

import pytest

from repro import errors
from repro.farm.farm import FarmOptions, build_farm
from repro.farm.journal import QuarantineIncident
from repro.farm.supervisor import SupervisorOptions

PAIR = ["strcpy", "cmp"]


def _options(tmp_path=None, chaos=None, **sup):
    sup.setdefault("heartbeat_interval_s", 0.05)
    sup.setdefault("backoff_base_s", 0.01)
    if tmp_path is not None:
        sup.setdefault("journal_path", str(tmp_path / "run.journal"))
    return FarmOptions(
        jobs=2,
        processors=("medium",),
        supervisor=SupervisorOptions(**sup),
        chaos=chaos,
    )


class _ChaosOnce:
    """Misbehave once, on a chosen workload's first attempt only."""

    def __init__(self, name, action, **params):
        self.name = name
        self.event = dict(params, action=action)

    def action_for(self, name, attempt):
        if name == self.name and attempt == 1:
            return dict(self.event)
        return None


class _PoisonAlways:
    def __init__(self, name):
        self.name = name

    def action_for(self, name, attempt):
        if name == self.name:
            return {"action": "poison"}
        return None


def test_supervised_matches_unsupervised():
    """A clean supervised run is invisible in the results: identical
    summaries and deterministic metrics, plus supervision telemetry."""
    plain = build_farm(PAIR, FarmOptions(processors=("medium",)))
    supervised = build_farm(PAIR, _options())
    assert [s.comparable() for s in supervised.summaries] == [
        s.comparable() for s in plain.summaries
    ]
    plain_totals = plain.metrics.to_json_dict()["totals"]
    sup_totals = supervised.metrics.to_json_dict()["totals"]
    assert sup_totals["pass_invocations"] == plain_totals["pass_invocations"]
    assert supervised.quarantined == []
    assert supervised.supervision.counts()["worker-spawn"] == 2
    counters = supervised.metrics.counters
    assert counters.get("farm.supervisor.worker_spawns").count == 2
    assert counters.get("farm.supervisor.heartbeats").count > 0


def test_killed_worker_is_respawned_and_task_retried(tmp_path):
    """One SIGKILL mid-build costs a retry, never a result."""
    plain = build_farm(PAIR, FarmOptions(processors=("medium",)))
    result = build_farm(
        PAIR, _options(tmp_path, chaos=_ChaosOnce("cmp", "kill"))
    )
    assert [s.comparable() for s in result.summaries] == [
        s.comparable() for s in plain.summaries
    ]
    assert result.quarantined == []
    counts = result.supervision.counts()
    assert counts["worker-crash"] == 1
    assert counts["task-retry"] == 1
    assert counts["worker-spawn"] >= 3  # 2 initial + >=1 respawn
    retry = result.supervision.of_kind("task-retry")[0]
    assert retry.proc == "cmp"
    assert retry.get("failure") == "worker-crash"


def test_poison_task_trips_circuit_breaker(tmp_path):
    """A workload that kills every fresh worker is quarantined after
    exactly retries + 1 attempts; the rest of the run is unharmed."""
    result = build_farm(
        PAIR, _options(tmp_path, chaos=_PoisonAlways("cmp"), retries=2)
    )
    assert [s.name for s in result.summaries] == ["strcpy"]
    assert len(result.quarantined) == 1
    incident = result.quarantined[0]
    assert isinstance(incident, QuarantineIncident)
    assert incident.workload == "cmp"
    assert incident.attempts == 3
    assert len(incident.history) == 3
    assert {h["kind"] for h in incident.history} == {"worker-crash"}
    # Three distinct fresh workers died for this workload.
    assert len({h["worker"] for h in incident.history}) == 3
    assert "cmp" in incident.format()


def test_hung_worker_hits_deadline(tmp_path):
    """A hang with live heartbeats is only caught by the deadline."""
    result = build_farm(
        PAIR,
        _options(tmp_path, chaos=_ChaosOnce("cmp", "hang"), deadline_s=2.0),
    )
    assert sorted(s.name for s in result.summaries) == sorted(PAIR)
    counts = result.supervision.counts()
    assert counts["worker-kill"] == 1
    kill = result.supervision.of_kind("worker-kill")[0]
    assert kill.get("reason") == "deadline"


def test_stalled_heartbeat_triggers_timeout(tmp_path):
    """Suppressed heartbeats get the worker killed even with no deadline."""
    result = build_farm(
        PAIR,
        _options(
            tmp_path,
            chaos=_ChaosOnce("cmp", "stall", stall_s=30.0),
            heartbeat_timeout_s=1.0,
        ),
    )
    assert sorted(s.name for s in result.summaries) == sorted(PAIR)
    kill = result.supervision.of_kind("worker-kill")[0]
    assert kill.get("reason") == "heartbeat-timeout"


def test_budget_exhaustion_raises_farm_timeout(tmp_path):
    """The global wall-clock budget aborts the run with exit-code-7
    semantics and points at the journal."""
    journal = tmp_path / "run.journal"
    with pytest.raises(errors.FarmTimeout) as excinfo:
        build_farm(
            PAIR,
            FarmOptions(
                jobs=1,
                processors=("medium",),
                supervisor=SupervisorOptions(
                    budget_s=0.05,
                    heartbeat_interval_s=0.05,
                    journal_path=str(journal),
                ),
            ),
        )
    exc = excinfo.value
    assert exc.budget_s == 0.05
    assert exc.journal_path == str(journal)
    assert "--resume" in str(exc)
    assert journal.exists()


def test_worker_library_error_carries_context(monkeypatch):
    """A deterministic library failure inside a worker surfaces with the
    workload name and the worker's formatted traceback attached."""
    import repro.farm.farm as farm_mod

    real = farm_mod._evaluate_workload

    def explode(name, options, metrics, cache, started):
        if name == "cmp":
            raise errors.TransformError("synthetic pass failure")
        return real(name, options, metrics, cache, started)

    monkeypatch.setattr(farm_mod, "_evaluate_workload", explode)
    with pytest.raises(errors.TransformError) as excinfo:
        build_farm(PAIR, _options())
    exc = excinfo.value
    assert "synthetic pass failure" in str(exc)
    assert exc.workload == "cmp"
    assert "TransformError" in exc.worker_traceback
    assert "explode" in exc.worker_traceback
