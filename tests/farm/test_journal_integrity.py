"""Journal v2 framing: corruption containment, v1 compat, append faults.

The resume suite (test_journal_resume.py) covers the happy paths; this
file covers the corruption contract — a checksum-failed ``complete``
record costs exactly one workload's re-run, a v1 journal still resumes,
and a failed append is a :class:`JournalWriteError` (exit code 8), not
a silently voided resume guarantee.
"""

import json

import pytest

from repro import errors
from repro.__main__ import exit_code_for
from repro.farm.farm import FarmOptions, build_farm
from repro.farm.journal import (
    JOURNAL_SCHEMA_V1,
    JournalWriter,
    journal_run_key,
    load_journal,
)
from repro.farm.supervisor import SupervisorOptions
from repro.storage.faults import (
    StorageFaultPlan,
    StorageFaultSpec,
    activate_storage_faults,
)

PAIR = ["strcpy", "cmp"]


def _options(journal, resume=False):
    return FarmOptions(
        jobs=1,
        processors=("medium",),
        supervisor=SupervisorOptions(
            journal_path=str(journal), resume=resume,
        ),
    )


def _corrupt_complete(journal, name):
    """Rot *name*'s complete record: still valid JSON, digest now wrong."""
    lines = journal.read_text(encoding="utf-8").splitlines()
    for index, line in enumerate(lines[1:], start=1):
        envelope = json.loads(line)
        record = envelope.get("r", {})
        if record.get("kind") == "complete" and record.get("name") == name:
            record["outcome"]["summary"]["wall_s"] = -1.0
            lines[index] = json.dumps(envelope, sort_keys=True)
            break
    else:
        raise AssertionError(f"no complete record for {name}")
    journal.write_text("\n".join(lines) + "\n", encoding="utf-8")


def test_corrupt_complete_costs_exactly_one_rerun(tmp_path):
    journal = tmp_path / "run.journal"
    cold = build_farm(PAIR, _options(journal))
    _corrupt_complete(journal, "strcpy")

    state = load_journal(journal)
    assert state.corrupt == 1
    assert sorted(state.completions) == ["cmp"]  # rot detected, skipped
    assert not state.truncated

    resumed = build_farm(PAIR, _options(journal, resume=True))
    assert resumed.resumed == 1  # only cmp replayed; strcpy recomputed
    assert [s.comparable() for s in resumed.summaries] == [
        s.comparable() for s in cold.summaries
    ]
    # The supervisor surfaced the rot in its ledger.
    assert resumed.supervision.counts().get("journal-corrupt") == 1


def test_interior_garbage_does_not_drop_later_records(tmp_path):
    journal = tmp_path / "run.journal"
    writer = JournalWriter(journal, "key", PAIR, 1)
    writer.event("worker-spawn", worker="w0", pid=1)
    writer.complete("strcpy", {"ok": 1})
    writer.complete("cmp", {"ok": 2})
    writer.close()
    lines = journal.read_text(encoding="utf-8").splitlines()
    lines[2] = "}{互斥 not json"  # rot the first complete, keep the rest
    journal.write_text("\n".join(lines) + "\n", encoding="utf-8")
    state = load_journal(journal)
    assert state.corrupt == 1
    assert not state.truncated
    assert sorted(state.completions) == ["cmp"]
    assert state.events  # the spawn before the rot also survived


def test_v1_journal_resumes_under_v2_writer(tmp_path):
    """A journal written before the framing change still resumes; the
    resumed run appends v2 envelopes to it, and the mixed file loads."""
    cold_journal = tmp_path / "cold.journal"
    cold = build_farm(PAIR, _options(cold_journal))
    cold_state = load_journal(cold_journal)

    v1 = tmp_path / "v1.journal"
    options = _options(v1, resume=True)
    with open(v1, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({
            "kind": "header",
            "schema": JOURNAL_SCHEMA_V1,
            "run_key": journal_run_key(PAIR, options),
            "names": PAIR,
            "jobs": 1,
        }) + "\n")
        handle.write(json.dumps({
            "kind": "complete",
            "name": "strcpy",
            "outcome": cold_state.completions["strcpy"],
        }) + "\n")

    resumed = build_farm(PAIR, options)
    assert resumed.resumed == 1
    assert [s.comparable() for s in resumed.summaries] == [
        s.comparable() for s in cold.summaries
    ]
    mixed = load_journal(v1)
    assert sorted(mixed.completions) == sorted(PAIR)
    assert mixed.corrupt == 0
    # The bare v1 record and the framed v2 appends all counted as valid.
    assert mixed.valid >= 2


def test_v1_rejects_nothing_it_used_to_accept(tmp_path):
    """Pure-v1 files load with zero corrupt records — compat is exact."""
    v1 = tmp_path / "v1.journal"
    with open(v1, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(
            {"kind": "header", "schema": JOURNAL_SCHEMA_V1, "run_key": "k"}
        ) + "\n")
        for name in PAIR:
            handle.write(json.dumps(
                {"kind": "complete", "name": name, "outcome": {"n": name}}
            ) + "\n")
    state = load_journal(v1)
    assert state.corrupt == 0 and state.valid == 2
    assert sorted(state.completions) == sorted(PAIR)


def test_failed_append_raises_exit_code_8(tmp_path):
    writer = JournalWriter(tmp_path / "run.journal", "key", PAIR, 1)
    plan = StorageFaultPlan(
        [StorageFaultSpec("enospc", op="journal-append", times=0)]
    )
    with activate_storage_faults(plan):
        with pytest.raises(errors.JournalWriteError) as caught:
            writer.complete("strcpy", {"ok": 1})
    writer.close()
    assert isinstance(caught.value, errors.StorageError)
    assert exit_code_for(caught.value) == 8


def test_header_write_failure_raises_journal_write_error(tmp_path):
    plan = StorageFaultPlan(
        [StorageFaultSpec("enospc", op="atomic-write", times=0)]
    )
    with activate_storage_faults(plan):
        with pytest.raises(errors.JournalWriteError, match="cannot start"):
            JournalWriter(tmp_path / "run.journal", "key", PAIR, 1)
