"""The build-farm driver: fan-out, merging, determinism, errors."""

import math

import pytest

from repro import errors
from repro.farm.farm import (
    FarmOptions,
    WorkloadSummary,
    build_farm,
    resolve_jobs,
)
from repro.perf.report import evaluate_workload
from repro.workloads.registry import get_workload

PAIR = ["strcpy", "cmp"]


def test_resolve_jobs():
    assert resolve_jobs("auto") >= 1
    assert resolve_jobs("3") == 3
    assert resolve_jobs(2) == 2


@pytest.mark.parametrize("bad", [0, -1, "-1", "0", "many", "1.5", ""])
def test_resolve_jobs_rejects_bad_values(bad):
    """0/negative/garbage raise UsageError naming the offending value."""
    with pytest.raises(errors.UsageError) as excinfo:
        resolve_jobs(bad)
    assert repr(bad) in str(excinfo.value)


def test_resolve_jobs_env(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(None) == 1
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert resolve_jobs(None) == 3
    assert resolve_jobs(2) == 2  # explicit argument wins over the env
    monkeypatch.setenv("REPRO_JOBS", "auto")
    assert resolve_jobs(None) >= 1
    monkeypatch.setenv("REPRO_JOBS", "zero")
    with pytest.raises(errors.UsageError) as excinfo:
        resolve_jobs(None)
    assert "REPRO_JOBS" in str(excinfo.value)
    assert "'zero'" in str(excinfo.value)


def test_farm_matches_legacy_evaluation():
    """The farm's summaries must report exactly what the sequential
    evaluator reports — same cycles, same ratios."""
    farm = build_farm(["strcpy"], FarmOptions())
    summary = farm.summaries[0]
    legacy = evaluate_workload(get_workload("strcpy"))
    for machine in ("sequential", "medium", "infinite"):
        assert summary.speedup(machine) == legacy.speedup(machine)
    assert summary.count_ratios() == legacy.count_ratios()
    assert summary.category == "util"
    assert not summary.from_cache


def test_farm_result_order_follows_request_order():
    options = FarmOptions(processors=("medium",))
    forward = build_farm(PAIR, options)
    backward = build_farm(list(reversed(PAIR)), options)
    assert [s.name for s in forward.summaries] == PAIR
    assert [s.name for s in backward.summaries] == list(reversed(PAIR))
    assert (
        forward.summary_for("cmp").comparable()
        == backward.summary_for("cmp").comparable()
    )


def test_jobs_do_not_change_results():
    options1 = FarmOptions(jobs=1, processors=("medium",))
    options2 = FarmOptions(jobs=2, processors=("medium",))
    sequential = build_farm(PAIR, options1)
    parallel = build_farm(PAIR, options2)
    assert parallel.jobs == 2
    assert [s.comparable() for s in sequential.summaries] == [
        s.comparable() for s in parallel.summaries
    ]
    # Metrics merge across workers: both runs saw the same transactions.
    assert (
        sequential.metrics.to_json_dict()["totals"]["pass_invocations"]
        == parallel.metrics.to_json_dict()["totals"]["pass_invocations"]
    )


def test_worker_errors_reraise_with_original_type():
    """FuelExhausted inside a worker must surface as FuelExhausted in the
    parent — across the process pool — so CLI exit codes are stable."""
    with pytest.raises(errors.FuelExhausted):
        build_farm(["strcpy"], FarmOptions(fuel=3))
    with pytest.raises(errors.SimulationError):
        build_farm(PAIR, FarmOptions(jobs=2, fuel=3))


def test_summary_comparable_excludes_timing():
    summary = WorkloadSummary(
        name="w", category="util", wall_s=1.5, from_cache=True
    )
    comparable = summary.comparable()
    assert "wall_s" not in comparable and "from_cache" not in comparable


def test_metrics_json_document():
    farm = build_farm(["strcpy"], FarmOptions(processors=("medium",)))
    doc = farm.metrics_json()
    assert doc["jobs"] == 1
    assert doc["cache"] == {
        "enabled": False, "root": None, "hits": 0, "misses": 0, "stores": 0,
    }
    assert doc["totals"]["workloads"] == 1
    assert doc["totals"]["pass_invocations"] > 0
    assert doc["workloads"]["strcpy"]["from_cache"] is False


def test_speedup_nan_on_zero_cycles():
    summary = WorkloadSummary(
        name="w",
        category="util",
        cycles={"medium": {"baseline": 10, "transformed": 0}},
    )
    assert math.isnan(summary.speedup("medium"))
