"""Cache correctness: warm rebuilds are bit-for-bit identical to cold.

The load-bearing property of the whole caching layer. `comparable()`
covers everything observable — schedule-bearing IR digests, per-machine
cycle counts, operation counts, the full BuildReport (incidents included),
and the ICBM counters — so equality here means a warm rebuild is
indistinguishable from a cold one.
"""

import pytest

from repro.farm.cache import PassCache
from repro.farm.farm import FarmOptions, build_farm
from repro.farm.fingerprint import workload_inputs_key
from repro.pipeline import PipelineOptions, build_workload
from repro.robustness.faultinject import FaultPlan, FaultSpec
from repro.workloads.registry import all_names, get_workload


def _options(tmp_path, **kw):
    return FarmOptions(
        cache_root=str(tmp_path / "cache"), processors=("medium",), **kw
    )


def test_warm_rebuild_identical_for_every_registered_workload(tmp_path):
    """Every workload in the registry: cold build, then warm rebuild from
    the evaluation cache — identical results, every one a cache hit."""
    names = all_names()
    cold = build_farm(names, _options(tmp_path))
    warm = build_farm(names, _options(tmp_path))

    assert not any(s.from_cache for s in cold.summaries)
    assert all(s.from_cache for s in warm.summaries)
    for cold_s, warm_s in zip(cold.summaries, warm.summaries):
        assert cold_s.comparable() == warm_s.comparable(), cold_s.name
    assert warm.metrics.cache_misses == 0
    assert warm.metrics.cache_hits == len(names)


def test_pass_cache_alone_reproduces_cold_results(tmp_path):
    """Delete the evaluation entries so the warm build must replay the
    pipeline from per-pass transaction hits — results still identical."""
    names = ["strcpy", "cmp"]
    cold = build_farm(names, _options(tmp_path))

    cache = PassCache(tmp_path / "cache")
    assert cache.entry_count("txn.pkl") > 0
    for path in list(cache.base.rglob("*.eval.json")):
        path.unlink()

    warm = build_farm(names, _options(tmp_path))
    assert not any(s.from_cache for s in warm.summaries)
    assert warm.metrics.cache_hits > 0
    for name, cold_s, warm_s in zip(names, cold.summaries, warm.summaries):
        assert cold_s.comparable() == warm_s.comparable(), name
    # The replayed build commits the same transactions the cold one did.
    for name in names:
        assert (
            warm.metrics.workloads[name].transactions
            == cold.metrics.workloads[name].transactions
        )


def test_warm_ledger_replays_the_cold_decisions(tmp_path):
    """The decision ledger survives both warm paths bit-identically: an
    evaluation hit deserializes it with the report, and a transaction
    hit replays the entries carried in the v3 cache payload."""
    cold = build_farm(["strcpy"], _options(tmp_path))
    cold_ledger = cold.summaries[0].build_report().ledger
    assert cold_ledger.of_kind("cpr-transform"), "vacuous: no transform"

    warm_eval = build_farm(["strcpy"], _options(tmp_path))
    assert (
        warm_eval.summaries[0].build_report().ledger.entries
        == cold_ledger.entries
    )

    cache = PassCache(tmp_path / "cache")
    for path in list(cache.base.rglob("*.eval.json")):
        path.unlink()
    warm_txn = build_farm(["strcpy"], _options(tmp_path))
    assert not warm_txn.summaries[0].from_cache
    assert (
        warm_txn.summaries[0].build_report().ledger.entries
        == cold_ledger.entries
    )


def test_warm_results_identical_across_jobs(tmp_path):
    names = ["strcpy", "cmp", "wc"]
    cold = build_farm(names, _options(tmp_path, jobs=1))
    warm = build_farm(names, _options(tmp_path, jobs=2))
    assert all(s.from_cache for s in warm.summaries)
    assert [s.comparable() for s in cold.summaries] == [
        s.comparable() for s in warm.summaries
    ]


def test_fault_injected_builds_never_touch_the_cache(tmp_path):
    """A sabotaged build must neither consult nor poison the cache."""
    cache = PassCache(tmp_path / "cache")
    workload = get_workload("strcpy")
    plan = FaultPlan([FaultSpec(pass_name="icbm", kind="raise")], seed=1)
    build = build_workload(
        workload.name,
        workload.compile(),
        workload.inputs,
        PipelineOptions(fault_plan=plan),
        entry=workload.entry,
        cache=cache,
        inputs_key=workload_inputs_key(
            workload.name, 1, workload.source, workload.entry
        ),
    )
    assert plan.log, "fault never fired — test is vacuous"
    assert build.build_report.incidents
    assert cache.entry_count() == 0
    assert cache.stats.hits == 0 and cache.stats.stores == 0
