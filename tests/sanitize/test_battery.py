"""Unit tests for the semantic sanitizer battery.

Each check gets a positive case (a planted violation it must flag) and a
negative case (legitimate IR it must stay silent on, including the real
pipeline output for strcpy — the battery's false-positive budget is
zero on clean builds).
"""

import copy

import pytest

from repro.errors import SanitizerError
from repro.ir import Cond, IRBuilder, Procedure, Program, Reg
from repro.ir.cloning import clone_procedure
from repro.ir.opcodes import Opcode
from repro.ir.operands import Imm, PredReg
from repro.ir.operation import Operation
from repro.machine.processor import MEDIUM
from repro.pipeline import PipelineOptions, build_workload
from repro.sanitize import (
    def_before_use_findings,
    exit_ordering_findings,
    format_findings,
    growth_findings,
    profile_findings,
    run_battery,
    sanitize_procedure,
    schedule_findings,
    wired_or_findings,
)
from repro.workloads.registry import get_workload


def _proc(body) -> Procedure:
    program = Program("t")
    proc = Procedure("main", params=[Reg(1), Reg(2)])
    program.add_procedure(proc)
    body(IRBuilder(proc))
    return proc


@pytest.fixture(scope="module")
def strcpy_build():
    workload = get_workload("strcpy")
    return build_workload(
        workload.name,
        workload.compile(),
        workload.inputs,
        PipelineOptions(),
        entry=workload.entry,
    )


# ----------------------------------------------------------------------
# Def-before-use
# ----------------------------------------------------------------------
def test_branch_on_undefined_predicate_is_flagged():
    def body(b):
        b.start_block("Entry", fallthrough="Exit")
        b.branch_to("Out", PredReg(9))
        b.start_block("Out")
        b.ret(1)
        b.start_block("Exit")
        b.ret(0)

    findings = def_before_use_findings(_proc(body))
    assert any(
        f.check == "def-before-use" and "p9" in f.detail for f in findings
    )


def test_branch_on_defined_predicate_is_clean():
    def body(b):
        b.start_block("Entry", fallthrough="Exit")
        taken = b.cmpp1(Cond.EQ, Reg(1), 0)
        b.branch_to("Out", taken)
        b.start_block("Out")
        b.ret(1)
        b.start_block("Exit")
        b.ret(0)

    assert def_before_use_findings(_proc(body)) == []


def test_guarded_def_does_not_cover_unguarded_branch():
    # p3 is written only when p2 holds, but the branch reads p3
    # unconditionally: on the !p2 path the predicate is garbage.
    def body(b):
        b.start_block("Entry", fallthrough="Exit")
        p2 = b.cmpp1(Cond.EQ, Reg(1), 0)
        b.pred_set(1, dest=PredReg(3), guard=p2)
        b.branch_to("Out", PredReg(3))
        b.start_block("Out")
        b.ret(1)
        b.start_block("Exit")
        b.ret(0)

    findings = def_before_use_findings(_proc(body))
    assert any(
        f.check == "def-before-use" and "covering definition" in f.message
        or "covering definition" in f.detail
        for f in findings
    ), findings


def test_guarded_use_with_matching_guard_is_covered():
    def body(b):
        b.start_block("Entry", fallthrough="Exit")
        p2 = b.cmpp1(Cond.EQ, Reg(1), 0)
        b.pred_set(1, dest=PredReg(3), guard=p2)
        branch = b.branch_to("Out", PredReg(3))
        branch.guard = p2
        b.start_block("Out")
        b.ret(1)
        b.start_block("Exit")
        b.ret(0)

    assert def_before_use_findings(_proc(body)) == []


# ----------------------------------------------------------------------
# Wired-OR lint
# ----------------------------------------------------------------------
def test_transformed_strcpy_passes_full_battery(strcpy_build):
    for program in (strcpy_build.baseline, strcpy_build.transformed):
        for proc in program.procedures.values():
            assert run_battery(proc) == []


def test_foreign_frp_writer_is_flagged(strcpy_build):
    proc = clone_procedure(
        strcpy_build.transformed.procedures["main"], preserve_uids=True
    )
    block = next(
        b for b in proc
        if any(op.attrs.get("cpr_lookahead") for op in b.ops)
    )
    lookahead = next(
        op for op in block.ops if op.attrs.get("cpr_lookahead")
    )
    target = next(
        t for t in lookahead.pred_targets()
        if t.action.name in ("AC", "ON")
    )
    # The opposite of the group's legitimate init opcode is foreign.
    if target.action.name == "AC":
        foreign = Operation(Opcode.PRED_CLEAR, dests=[target.reg], srcs=[])
    else:
        foreign = Operation(
            Opcode.PRED_SET, dests=[target.reg], srcs=[Imm(1)]
        )
    block.ops.insert(0, foreign)
    findings = wired_or_findings(proc)
    assert any(
        f.check == "cpr-wired-or" and "foreign" in f.detail
        for f in findings
    ), findings


def test_missing_frp_init_is_flagged(strcpy_build):
    proc = clone_procedure(
        strcpy_build.transformed.procedures["main"], preserve_uids=True
    )
    block = next(
        b for b in proc
        if any(op.attrs.get("cpr_lookahead") for op in b.ops)
    )
    block.ops = [op for op in block.ops if not op.attrs.get("cpr_init")]
    findings = wired_or_findings(proc)
    assert any(
        f.check == "cpr-wired-or" and "init" in f.detail for f in findings
    ), findings


# ----------------------------------------------------------------------
# Exit-ordering (differential)
# ----------------------------------------------------------------------
def _double_exit_proc(duplicate: bool) -> Procedure:
    def body(b):
        b.start_block("Entry", fallthrough="Exit")
        p = b.cmpp1(Cond.EQ, Reg(1), 0)
        b.branch_to("Out", p)
        if duplicate:
            b.branch_to("Out", p)  # provably dead: p already tested
        b.start_block("Out")
        b.ret(1)
        b.start_block("Exit")
        b.ret(0)

    return _proc(body)


def test_introduced_redundant_exit_is_flagged():
    before = _double_exit_proc(duplicate=False)
    after = _double_exit_proc(duplicate=True)
    findings = exit_ordering_findings(after, before)
    assert any(f.check == "exit-redundant" for f in findings), findings


def test_preexisting_redundant_exit_is_suppressed():
    bad = _double_exit_proc(duplicate=True)
    same = _double_exit_proc(duplicate=True)
    assert exit_ordering_findings(bad, same) == []


# ----------------------------------------------------------------------
# On-trace growth (differential, ICBM only)
# ----------------------------------------------------------------------
def _straightline_proc() -> Procedure:
    def body(b):
        b.start_block("Entry")
        b.add(Reg(1), 1, dest=Reg(3))
        b.add(Reg(3), 2, dest=Reg(4))
        b.ret(Reg(4))

    return _proc(body)


def test_untagged_growth_is_flagged_for_icbm():
    before = _straightline_proc()
    after = clone_procedure(before, preserve_uids=False)
    grown = Operation(Opcode.ADD, dests=[Reg(9)], srcs=[Reg(1), Imm(1)])
    after.blocks[0].ops.insert(0, grown)
    assert growth_findings(after, before)
    assert any(
        f.check == "on-trace-growth"
        for f in run_battery(after, before=before, pass_name="icbm")
    )
    # Growth accounting only applies to ICBM transactions.
    assert not any(
        f.check == "on-trace-growth"
        for f in run_battery(after, before=before, pass_name="superblock")
    )


def test_tagged_bookkeeping_is_not_growth():
    before = _straightline_proc()
    after = clone_procedure(before, preserve_uids=False)
    init = Operation(
        Opcode.PRED_SET, dests=[PredReg(30)], srcs=[Imm(1)]
    )
    init.attrs["cpr_init"] = True
    after.blocks[0].ops.insert(0, init)
    assert growth_findings(after, before) == []


# ----------------------------------------------------------------------
# Profile flow conservation (full tier)
# ----------------------------------------------------------------------
def test_real_profile_conserves_flow(strcpy_build):
    assert profile_findings(
        strcpy_build.baseline, strcpy_build.baseline_profile
    ) == []


def test_corrupted_block_count_is_flagged(strcpy_build):
    profile = copy.deepcopy(strcpy_build.baseline_profile)
    key = max(profile.block_counts, key=profile.block_counts.get)
    profile.block_counts[key] += 1000
    findings = profile_findings(strcpy_build.baseline, profile)
    assert any(f.check == "profile-flow" for f in findings), findings


# ----------------------------------------------------------------------
# Schedule legality (full tier)
# ----------------------------------------------------------------------
def test_final_programs_schedule_legally(strcpy_build):
    assert schedule_findings(strcpy_build.baseline, MEDIUM) == []
    assert schedule_findings(strcpy_build.transformed, MEDIUM) == []


# ----------------------------------------------------------------------
# Front-end
# ----------------------------------------------------------------------
def test_sanitize_procedure_raises_with_findings():
    def body(b):
        b.start_block("Entry", fallthrough="Exit")
        b.branch_to("Out", PredReg(9))
        b.start_block("Out")
        b.ret(1)
        b.start_block("Exit")
        b.ret(0)

    with pytest.raises(SanitizerError) as info:
        sanitize_procedure(_proc(body))
    assert info.value.findings
    assert format_findings(info.value.findings)


def test_unknown_tier_is_rejected():
    with pytest.raises(ValueError):
        run_battery(_straightline_proc(), tier="paranoid")
