"""Cycle-level simulation of scheduled code.

Three cross-validations:

1. scheduled execution is architecturally equivalent to the sequential
   interpreter (same return value, same memory effect, same per-address
   store order) — this is the semantic soundness check of the dependence
   graph + scheduler, beyond their structural invariants;
2. the simulated cycle count equals the exit-aware estimator's prediction
   (the paper's claim that estimation matches ideal simulation);
3. both hold for baseline AND control-CPR-transformed code on several
   machines — i.e. the transformed schedules with overlapped branches and
   delay-slot execution are actually executable.
"""

import pytest

from repro.machine import INFINITE, MEDIUM, SEQUENTIAL, WIDE
from repro.perf import estimate_program_cycles
from repro.pipeline import build_workload
from repro.sim import Interpreter, simulate_scheduled
from repro.sim.profiler import profile_program
from repro.workloads.registry import get_workload
from tests.conftest import build_strcpy_program


def per_address_orders(trace):
    orders = {}
    for address, value in trace:
        orders.setdefault(address, []).append(value)
    return orders


def assert_store_compatible(sequential, scheduled):
    """Same stores, same per-address order (global order may differ:
    the scheduler legally reorders independent stores)."""
    assert sorted(sequential) == sorted(scheduled)
    assert per_address_orders(sequential) == per_address_orders(scheduled)


def run_both(program, setup, machine):
    interp = Interpreter(program)
    args = tuple(setup(interp))
    sequential = interp.run(args=args)
    scheduled = simulate_scheduled(program, machine, setup=setup)
    return sequential, scheduled


def strcpy_setup(data):
    def setup(target):
        target.poke_array("A", data)
        return (target.segment_base("A"), target.segment_base("B"))

    return setup


@pytest.mark.parametrize("machine", [SEQUENTIAL, MEDIUM, WIDE, INFINITE])
def test_baseline_strcpy_equivalent_on_all_machines(machine):
    data = [(i % 9) + 1 for i in range(21)] + [0]
    program = build_strcpy_program(unroll=4)
    sequential, scheduled = run_both(program, strcpy_setup(data), machine)
    assert scheduled.return_value == sequential.return_value
    assert_store_compatible(
        sequential.store_trace, scheduled.store_trace
    )


@pytest.mark.parametrize("machine", [MEDIUM, WIDE])
def test_cycle_count_matches_exit_aware_estimate(machine):
    data = [(i % 9) + 1 for i in range(21)] + [0]
    program = build_strcpy_program(unroll=4)
    setup = strcpy_setup(data)
    scheduled = simulate_scheduled(program, machine, setup=setup)
    profile = profile_program(program, inputs=[setup])
    estimate = estimate_program_cycles(
        program, machine, profile, mode="exit-aware"
    )
    assert scheduled.total_cycles == pytest.approx(estimate.total)


@pytest.mark.parametrize("name", ["strcpy", "cmp", "wc", "099.go"])
@pytest.mark.parametrize("machine", [MEDIUM, WIDE])
def test_cpr_transformed_workloads_execute_correctly(name, machine):
    """The transformed code — overlapped branches, guarded split stores,
    compensation blocks — must execute cycle-accurately to the same
    result as its own sequential semantics."""
    workload = get_workload(name)
    build = build_workload(
        workload.name, workload.compile(), workload.inputs
    )
    setup = workload.inputs[0]
    interp = Interpreter(build.transformed)
    args = tuple(setup(interp))
    sequential = interp.run(args=args)
    scheduled = simulate_scheduled(
        build.transformed, machine, setup=setup
    )
    assert scheduled.return_value == sequential.return_value
    assert_store_compatible(
        sequential.store_trace, scheduled.store_trace
    )


@pytest.mark.parametrize("name", ["strcpy", "cmp"])
def test_estimator_matches_simulation_for_cpr_code(name):
    workload = get_workload(name)
    build = build_workload(
        workload.name, workload.compile(), workload.inputs
    )
    setup = workload.inputs[0]
    scheduled = simulate_scheduled(
        build.transformed, WIDE, setup=setup
    )
    estimate = estimate_program_cycles(
        build.transformed, WIDE, build.transformed_profile,
        mode="exit-aware",
    )
    # The profile covers exactly one run of the same input.
    assert scheduled.total_cycles == pytest.approx(
        estimate.total, rel=0.02
    )


def test_overlapping_taken_branches_detected():
    """Hand-build an illegal schedule shape: two branches that both take
    within each other's latency window must raise."""
    from repro.ir import (
        Cond,
        IRBuilder,
        Procedure,
        Program,
        Reg,
    )
    from repro.sim.cycle_sim import CycleSimulator
    from repro.errors import SimulationError

    program = Program("bad")
    proc = Procedure("main", params=[Reg(1)])
    program.add_procedure(proc)
    b = IRBuilder(proc)
    b.start_block("E", fallthrough="Out")
    # Both branches take on the same condition: NOT disjoint. The
    # dependence graph serializes them (latency 1), so at branch latency 1
    # they do not overlap; stretch the latency to force the overlap case.
    p1 = b.cmpp1(Cond.EQ, Reg(1), 0)
    b.branch_to("Out", p1)
    p2 = b.cmpp1(Cond.EQ, Reg(1), 0)
    b.branch_to("Out", p2)
    b.start_block("Out")
    b.ret(0)
    machine = MEDIUM.with_branch_latency(3)
    simulator = CycleSimulator(program, machine)
    # With latency 3 the scheduler keeps them 3 cycles apart, so this
    # executes fine (second branch never issues once the first takes)...
    result = simulator.run(args=[0])
    assert result.return_value == 0
    # ...but forcing both into flight must be rejected: craft a schedule
    # by shrinking the recorded cycles.
    simulator2 = CycleSimulator(program, machine)
    sched = simulator2._schedules["main"].for_block("E")
    branches = [
        op for op in sched.block.ops
        if op.opcode.is_branch() and op.opcode.value == "branch"
    ]
    sched.cycles[branches[1].uid] = sched.cycles[branches[0].uid]
    with pytest.raises(SimulationError):
        simulator2.run(args=[0])
