"""Lowering contract for the struct-of-arrays interpreter engine.

Four angles, per the engine contract in ``repro/sim/soa.py``:

* the lowered arrays mirror the object IR field by field,
* register interning round-trips (dense slots, params first, T at slot 0),
* one :class:`ProgramLowering` is shared across repeated runs,
* engine-parity goldens for one workload per family (spec92 / spec95 /
  util) and for the error/fuel paths.
"""

import pytest

from repro.errors import FuelExhausted, SimulationError
from repro.frontend import compile_source
from repro.ir import Cond, IRBuilder, Procedure, Program, Reg
from repro.ir.opcodes import Opcode
from repro.ir.operands import BTR, Imm, Label, PredReg, TRUE_PRED
from repro.ir.operation import Operation
from repro.sim.interpreter import (
    ENGINES,
    Interpreter,
    get_default_engine,
    make_interpreter,
    run_program,
    set_default_engine,
    use_engine,
)
from repro.sim.soa import (
    M_BTR,
    M_CONST,
    M_LABEL,
    M_NONE,
    M_PRED,
    M_REG,
    OP_ALU,
    OP_BRANCH,
    OP_CALL,
    OP_CMPP,
    OP_JUMP,
    OP_PBR,
    OP_RETURN,
    OP_STORE,
    ProgramLowering,
    SoAInterpreter,
    lower_procedure,
)
from repro.workloads.registry import all_workloads

RESULT_FIELDS = (
    "return_value",
    "store_trace",
    "memory",
    "ops_executed",
    "branches_executed",
    "block_counts",
    "op_counts",
    "branch_taken",
    "branch_not_taken",
)


def sample_program():
    """A little of everything: loop, call, cmpp pair, pbr/branch, store."""
    program = Program("t")
    main = Procedure("main", params=[Reg(1)])
    program.add_procedure(main)
    b = IRBuilder(main)
    b.start_block("Entry")
    b.mov(0, dest=Reg(2))
    b.start_block("Loop", fallthrough="Out")
    b.call("double", [Reg(2)], dest=Reg(2))
    b.add(Reg(1), -1, dest=Reg(1))
    p = b.cmpp1(Cond.GT, Reg(1), 0)
    b.branch_to("Loop", p)
    b.start_block("Out")
    b.store(Imm(0x4000), Reg(2))
    b.ret(Reg(2))

    helper = Procedure("double", params=[Reg(1)])
    program.add_procedure(helper)
    hb = IRBuilder(helper)
    hb.start_block("H")
    hb.add(Reg(1), 7, dest=Reg(2))
    hb.ret(Reg(2))
    return program


def decode_src(pl, mode, arg):
    """Map a lowered (mode, arg) source back to the object operand."""
    if mode == M_CONST:
        return Imm(arg)
    if mode == M_REG:
        return next(r for r, s in pl.reg_slots.items() if s == arg)
    if mode == M_PRED:
        return next(p for p, s in pl.pred_slots.items() if s == arg)
    if mode == M_BTR:
        return next(t for t, s in pl.btr_slots.items() if s == arg)
    if mode == M_LABEL:
        return arg
    raise AssertionError(f"unexpected source mode {mode}")


# ----------------------------------------------------------------------
# Field-by-field mirror of the object IR
# ----------------------------------------------------------------------
def test_lowering_mirrors_object_ir():
    program = sample_program()
    proc = program.procedure("main")
    pl = lower_procedure(proc)

    flat_ops = [op for block in proc.blocks for op in block.ops]
    assert pl.n_ops == len(flat_ops)
    assert pl.source_ops == flat_ops
    assert pl.uid == [op.uid for op in flat_ops]
    assert pl.n_blocks == len(proc.blocks)
    assert pl.block_names == [blk.label.name for blk in proc.blocks]

    # Per-block op ranges tile the flat array in layout order.
    cursor = 0
    for idx, block in enumerate(proc.blocks):
        assert pl.block_start[idx] == cursor
        cursor += len(block.ops)
        assert pl.block_end[idx] == cursor
    assert cursor == pl.n_ops

    for i, op in enumerate(flat_ops):
        # Guards round-trip through the predicate slot table.
        assert decode_src(pl, M_PRED, pl.guard[i]) == op.guard
        if op.opcode is Opcode.CMPP:
            assert pl.code[i] == OP_CMPP
            targets = list(
                zip(
                    pl.cmpp_slot[pl.cmpp_ptr[i]:pl.cmpp_end[i]],
                    pl.cmpp_comp[pl.cmpp_ptr[i]:pl.cmpp_end[i]],
                )
            )
            assert len(targets) == len(op.dests)
            for (slot, comp), pt in zip(targets, op.dests):
                assert decode_src(pl, M_PRED, slot) == pt.reg
                assert comp == pt.action.complemented
        elif op.opcode is Opcode.BRANCH:
            assert pl.code[i] == OP_BRANCH
            assert decode_src(pl, M_PRED, pl.br_pred[i]) == op.srcs[0]
            assert decode_src(pl, M_BTR, pl.br_btr[i]) == op.srcs[1]
            static = op.branch_target()
            assert pl.decode_target(pl.target[i]) == static
        elif op.opcode is Opcode.CALL:
            assert pl.code[i] == OP_CALL
            assert pl.callee[i] == op.attrs["callee"]
            span = range(pl.call_ptr[i], pl.call_end[i])
            assert len(span) == len(op.srcs)
            for j, src in zip(span, op.srcs):
                got = decode_src(pl, pl.arg_mode[j], pl.arg_val[j])
                assert got == src
        elif op.opcode is Opcode.PBR:
            assert pl.code[i] == OP_PBR
            assert pl.decode_target(pl.target[i]) == op.srcs[0]
        elif op.opcode is Opcode.RETURN:
            assert pl.code[i] == OP_RETURN
            if op.srcs:
                got = decode_src(pl, pl.a_mode[i], pl.a_arg[i])
                assert got == op.srcs[0]
            else:
                assert pl.a_mode[i] == M_NONE
        elif op.opcode is Opcode.STORE:
            assert pl.code[i] == OP_STORE
            assert decode_src(pl, pl.a_mode[i], pl.a_arg[i]) == op.srcs[0]
            assert decode_src(pl, pl.b_mode[i], pl.b_arg[i]) == op.srcs[1]
        elif op.opcode in (Opcode.ADD, Opcode.MOV):
            assert pl.code[i] == OP_ALU or op.opcode is Opcode.MOV


def test_branch_targets_resolve_to_block_indices():
    program = sample_program()
    pl = lower_procedure(program.procedure("main"))
    loop_idx = pl.block_names.index("Loop")
    out_idx = pl.block_names.index("Out")
    # The pbr's pre-encoded payload is the Loop block's index.
    pbr = next(i for i in range(pl.n_ops) if pl.code[i] == OP_PBR)
    assert pl.target[pbr] == loop_idx
    # Loop's explicit fallthrough resolves to Out.
    assert pl.block_fall[loop_idx] == out_idx
    # Entry falls through by layout order.
    assert pl.block_fall[pl.block_names.index("Entry")] == loop_idx
    # The last block has nothing to fall into.
    assert pl.block_fall[out_idx] == -1


# ----------------------------------------------------------------------
# Register interning
# ----------------------------------------------------------------------
def test_register_interning_round_trip():
    program = sample_program()
    proc = program.procedure("main")
    pl = lower_procedure(proc)

    # Dense slot spaces: bijections onto range(n).
    for table, count in (
        (pl.reg_slots, pl.n_regs),
        (pl.pred_slots, pl.n_preds),
        (pl.btr_slots, pl.n_btrs),
        (pl.freg_slots, pl.n_fregs),
    ):
        assert sorted(table.values()) == list(range(count))

    # Params occupy the first integer slots, in declaration order.
    assert pl.param_slots == [pl.reg_slots[p] for p in proc.params]
    assert pl.n_params == len(proc.params)
    # The true predicate is pinned at slot 0.
    assert pl.pred_slots[TRUE_PRED] == 0

    # Every register mentioned by the IR is interned.
    for block in proc.blocks:
        for op in block.ops:
            for reg in op.source_registers() + op.dest_registers():
                if isinstance(reg, Reg):
                    assert reg in pl.reg_slots
                elif isinstance(reg, PredReg):
                    assert reg in pl.pred_slots
                elif isinstance(reg, BTR):
                    assert reg in pl.btr_slots


# ----------------------------------------------------------------------
# Shared lowering across repeated runs
# ----------------------------------------------------------------------
def test_program_lowering_is_memoized():
    program = sample_program()
    lowering = ProgramLowering(program)
    first = lowering.procedure("main")
    assert lowering.procedure("main") is first
    assert lowering.procedure("double") is lowering.procedure("double")


def test_shared_lowering_across_interpreters():
    program = sample_program()
    lowering = ProgramLowering(program)
    results = []
    for _ in range(3):
        interp = SoAInterpreter(program, lowering=lowering)
        results.append(interp.run(args=(5,)))
    # Repeated runs are independent (fresh counters per interpreter) and
    # deterministic.
    for result in results[1:]:
        for name in RESULT_FIELDS:
            assert getattr(result, name) == getattr(results[0], name)
    # ... and identical to a run that lowered privately.
    private = SoAInterpreter(program).run(args=(5,))
    for name in RESULT_FIELDS:
        assert getattr(private, name) == getattr(results[0], name)


# ----------------------------------------------------------------------
# Engine dispatch
# ----------------------------------------------------------------------
def test_engine_dispatch_and_default():
    program = sample_program()
    assert ENGINES == ("object", "soa")
    assert get_default_engine() == "soa"
    assert isinstance(make_interpreter(program), SoAInterpreter)
    assert isinstance(
        make_interpreter(program, engine="object"), Interpreter
    )
    with use_engine("object"):
        assert get_default_engine() == "object"
        assert isinstance(make_interpreter(program), Interpreter)
    assert get_default_engine() == "soa"
    with pytest.raises(SimulationError):
        set_default_engine("vectorized")
    with pytest.raises(SimulationError):
        make_interpreter(program, engine="vectorized")


# ----------------------------------------------------------------------
# Engine parity: one golden workload per family
# ----------------------------------------------------------------------
def family_goldens():
    chosen = {}
    for workload in all_workloads():
        chosen.setdefault(workload.category, workload)
    return sorted(chosen.values(), key=lambda w: w.category)


@pytest.mark.parametrize(
    "workload", family_goldens(), ids=lambda w: f"{w.category}:{w.name}"
)
def test_engine_parity_golden(workload):
    program = compile_source(workload.source)
    for item in workload.inputs:
        setup, args = (
            (None, ())
            if item is None
            else ((item, ()) if callable(item) else item)
        )
        runs = {}
        for engine in ENGINES:
            interp = make_interpreter(program, engine=engine)
            run_args = tuple(args)
            if setup is not None:
                returned = setup(interp)
                if returned is not None and not run_args:
                    run_args = tuple(returned)
            runs[engine] = interp.run(entry=workload.entry, args=run_args)
        for name in RESULT_FIELDS:
            assert getattr(runs["soa"], name) == getattr(
                runs["object"], name
            ), f"{workload.name}: {name} diverged"


# ----------------------------------------------------------------------
# Engine parity: error and fuel paths
# ----------------------------------------------------------------------
def both_engines(program, entry="main", args=(), fuel=100):
    outcomes = []
    for engine in ENGINES:
        interp = make_interpreter(program, fuel=fuel, engine=engine)
        try:
            result = interp.run(entry=entry, args=args)
            outcomes.append(("ok", result.return_value))
        except FuelExhausted as exc:
            outcomes.append(
                ("fuel", str(exc), exc.proc, exc.block, exc.ops_executed)
            )
        except Exception as exc:  # noqa: BLE001 - parity check
            outcomes.append((type(exc).__name__, str(exc)))
    return outcomes


def test_fuel_exhaustion_point_is_identical():
    program = sample_program()
    obj, soa = both_engines(program, args=(10**9,), fuel=1234)
    assert obj[0] == "fuel"
    assert soa == obj


def test_error_paths_are_identical():
    def build(populate):
        program = Program("t")
        proc = Procedure("main", params=[])
        program.add_procedure(proc)
        populate(IRBuilder(proc), program)
        return program

    def unset_btr(b, _):
        b.start_block("Entry")
        b.emit(Operation(Opcode.BRANCH, srcs=[TRUE_PRED, BTR(1)]))
        b.ret(0)

    def bad_jump(b, _):
        b.start_block("Entry")
        b.jump(Label("Gone"))

    def fell_off(b, _):
        b.start_block("Entry")
        b.add(Reg(1), 1, dest=Reg(1))

    def div_zero(b, _):
        b.start_block("Entry")
        b.div(Reg(1), 0, dest=Reg(2))

    def missing_segment(b, _):
        b.start_block("Entry")
        b.mov(Label("nosuch"), dest=Reg(1))
        b.ret(Reg(1))

    def unbounded_recursion(b, _):
        b.start_block("Entry")
        b.call("main", [], dest=Reg(1))
        b.ret(Reg(1))

    for populate in (
        unset_btr,
        bad_jump,
        fell_off,
        div_zero,
        missing_segment,
        unbounded_recursion,
    ):
        program = build(populate)
        obj, soa = both_engines(program, fuel=100_000)
        assert obj[0] != "ok", populate.__name__
        assert soa == obj, populate.__name__


def test_run_program_engine_override():
    program = sample_program()
    fast = run_program(program, args=(4,))
    reference = run_program(program, args=(4,), engine="object")
    assert fast.return_value == reference.return_value
    assert fast.store_trace == reference.store_trace
    assert fast.op_counts == reference.op_counts
