"""Profile aggregation across inputs."""

from repro.ir import Cond, IRBuilder, Procedure, Program, Reg
from repro.sim import profile_program
from repro.sim.profiler import BranchProfile, annotate_blocks


def counting_loop():
    program = Program("t")
    proc = Procedure("main", params=[Reg(1)])
    program.add_procedure(proc)
    b = IRBuilder(proc)
    b.start_block("Loop", fallthrough="Out")
    b.add(Reg(1), -1, dest=Reg(1))
    p = b.cmpp1(Cond.GT, Reg(1), 0)
    branch = b.branch_to("Loop", p)
    b.start_block("Out")
    b.ret(0)
    return program, branch


def test_branch_profile_ratio():
    profile = BranchProfile(taken=3, not_taken=1)
    assert profile.executed == 4
    assert profile.taken_ratio == 0.75
    profile.merge(BranchProfile(taken=1, not_taken=3))
    assert profile.executed == 8
    assert profile.taken_ratio == 0.5
    assert BranchProfile().taken_ratio == 0.0


def test_profile_program_aggregates_across_inputs():
    program, branch = counting_loop()
    profile = profile_program(
        program, inputs=[(None, (3,)), (None, (5,))]
    )
    assert profile.runs == 2
    stats = profile.branch_profile("main", branch)
    assert stats.taken == 2 + 4
    assert stats.not_taken == 2
    assert profile.block_count("main", "Loop") == 8
    assert profile.taken_ratio("main", branch) == 6 / 8


def test_setup_callable_may_return_args():
    program, branch = counting_loop()

    def setup(interp):
        return (4,)

    profile = profile_program(program, inputs=[setup])
    assert profile.block_count("main", "Loop") == 4


def test_annotate_blocks_copies_counts():
    program, _ = counting_loop()
    profile = profile_program(program, inputs=[(None, (7,))])
    annotate_blocks(program, profile)
    assert program.procedure("main").block("Loop").entry_count == 7


# ----------------------------------------------------------------------
# Direct edge/exit counter coverage (previously only exercised through
# the pipeline suites)
# ----------------------------------------------------------------------
def while_loop():
    """A test-at-top loop: zero-trip inputs never enter the body."""
    program = Program("t")
    proc = Procedure("main", params=[Reg(1)])
    program.add_procedure(proc)
    b = IRBuilder(proc)
    b.start_block("Test", fallthrough="Out")
    p = b.cmpp1(Cond.GT, Reg(1), 0)
    branch = b.branch_to("Body", p)
    b.start_block("Body")
    b.add(Reg(1), -1, dest=Reg(1))
    back = b.jump("Test")
    b.start_block("Out")
    b.ret(0)
    return program, branch, back


def test_zero_trip_loop_edge_counters():
    program, branch, _ = while_loop()
    profile = profile_program(program, inputs=[(None, (0,))])
    stats = profile.branch_profile("main", branch)
    # The exit test runs exactly once and the loop edge is never taken.
    assert stats.executed == 1
    assert stats.taken == 0
    assert stats.not_taken == 1
    assert stats.taken_ratio == 0.0
    # Edge counters conserve flow: the body sees exactly the taken count,
    # the exit sees exactly the not-taken count.
    assert profile.block_count("main", "Test") == 1
    assert profile.block_count("main", "Body") == stats.taken == 0
    assert profile.block_count("main", "Out") == stats.not_taken == 1


def test_loop_edge_counters_conserve_flow():
    program, branch, back = while_loop()
    profile = profile_program(program, inputs=[(None, (3,)), (None, (0,))])
    stats = profile.branch_profile("main", branch)
    assert stats.taken == 3
    assert stats.not_taken == 2
    # Header entries = initial entries + executed back edges.
    assert profile.block_count("main", "Test") == profile.runs + \
        profile.op_count("main", back)
    assert profile.op_count("main", back) == stats.taken
    assert profile.block_count("main", "Body") == stats.taken
    assert profile.block_count("main", "Out") == stats.not_taken


def multi_exit_block():
    """A superblock-shaped entry: two side exits, then a fallthrough."""
    program = Program("t")
    proc = Procedure("main", params=[Reg(1)])
    program.add_procedure(proc)
    b = IRBuilder(proc)
    b.start_block("Entry", fallthrough="C")
    p1 = b.cmpp1(Cond.EQ, Reg(1), 1)
    exit1 = b.branch_to("A", p1)
    p2 = b.cmpp1(Cond.EQ, Reg(1), 2)
    exit2 = b.branch_to("B", p2)
    b.start_block("A")
    b.ret(10)
    b.start_block("B")
    b.ret(20)
    b.start_block("C")
    b.ret(30)
    return program, exit1, exit2


def test_multi_exit_counters_partition_block_flow():
    program, exit1, exit2 = multi_exit_block()
    inputs = [(None, (n,)) for n in (1, 1, 2, 3, 5)]
    profile = profile_program(program, inputs=inputs)
    s1 = profile.branch_profile("main", exit1)
    s2 = profile.branch_profile("main", exit2)
    entry = profile.block_count("main", "Entry")
    assert entry == 5
    # Exit 1 sees all of the block's flow; exit 2 only what survives it.
    assert s1.executed == entry
    assert s2.executed == s1.not_taken == 3
    assert (s1.taken, s2.taken) == (2, 1)
    # Side-exit taken counts and the fallthrough remainder partition the
    # entry count, and each successor's entry count is exactly its edge.
    assert profile.block_count("main", "A") == s1.taken
    assert profile.block_count("main", "B") == s2.taken
    fallthrough = entry - s1.taken - s2.taken
    assert profile.block_count("main", "C") == fallthrough == 2


def test_unexecuted_branch_has_empty_profile():
    program, _, exit2 = multi_exit_block()
    profile = profile_program(program, inputs=[(None, (1,))])
    # Exit 1 always takes for n=1, so exit 2 never executes: its profile
    # must be the empty default, not a KeyError and not a stale entry.
    stats = profile.branch_profile("main", exit2)
    assert (stats.taken, stats.not_taken, stats.executed) == (0, 0, 0)
    assert stats.taken_ratio == 0.0
    assert ("main", exit2.uid) not in profile.branches


def test_zero_trip_profiles_identical_across_engines():
    program, _, _ = while_loop()
    inputs = [(None, (0,)), (None, (4,))]
    reference = profile_program(program, inputs=inputs, engine="object")
    fast = profile_program(program, inputs=inputs, engine="soa")
    assert fast.block_counts == reference.block_counts
    assert fast.op_counts == reference.op_counts
    assert fast.total_ops == reference.total_ops
    assert fast.total_branches == reference.total_branches
    assert set(fast.branches) == set(reference.branches)
    for key, stats in reference.branches.items():
        assert (fast.branches[key].taken, fast.branches[key].not_taken) \
            == (stats.taken, stats.not_taken)
