"""Profile aggregation across inputs."""

from repro.ir import Cond, IRBuilder, Procedure, Program, Reg
from repro.sim import profile_program
from repro.sim.profiler import BranchProfile, annotate_blocks


def counting_loop():
    program = Program("t")
    proc = Procedure("main", params=[Reg(1)])
    program.add_procedure(proc)
    b = IRBuilder(proc)
    b.start_block("Loop", fallthrough="Out")
    b.add(Reg(1), -1, dest=Reg(1))
    p = b.cmpp1(Cond.GT, Reg(1), 0)
    branch = b.branch_to("Loop", p)
    b.start_block("Out")
    b.ret(0)
    return program, branch


def test_branch_profile_ratio():
    profile = BranchProfile(taken=3, not_taken=1)
    assert profile.executed == 4
    assert profile.taken_ratio == 0.75
    profile.merge(BranchProfile(taken=1, not_taken=3))
    assert profile.executed == 8
    assert profile.taken_ratio == 0.5
    assert BranchProfile().taken_ratio == 0.0


def test_profile_program_aggregates_across_inputs():
    program, branch = counting_loop()
    profile = profile_program(
        program, inputs=[(None, (3,)), (None, (5,))]
    )
    assert profile.runs == 2
    stats = profile.branch_profile("main", branch)
    assert stats.taken == 2 + 4
    assert stats.not_taken == 2
    assert profile.block_count("main", "Loop") == 8
    assert profile.taken_ratio("main", branch) == 6 / 8


def test_setup_callable_may_return_args():
    program, branch = counting_loop()

    def setup(interp):
        return (4,)

    profile = profile_program(program, inputs=[setup])
    assert profile.block_count("main", "Loop") == 4


def test_annotate_blocks_copies_counts():
    program, _ = counting_loop()
    profile = profile_program(program, inputs=[(None, (7,))])
    annotate_blocks(program, profile)
    assert program.procedure("main").block("Loop").entry_count == 7
