"""The functional simulator: arithmetic, predication, memory, control."""

import pytest

from repro.errors import FuelExhausted, SimulationError
from repro.ir import (
    Action,
    Cond,
    DataSegment,
    IRBuilder,
    Imm,
    PredReg,
    PredTarget,
    Procedure,
    Program,
    Reg,
)
from repro.sim.interpreter import Interpreter, run_program


def make_program(build, params=(), segments=()):
    program = Program("t")
    for segment in segments:
        program.add_segment(segment)
    proc = Procedure("main", params=list(params))
    program.add_procedure(proc)
    b = IRBuilder(proc)
    b.start_block("E")
    build(b)
    return program


def test_arithmetic_and_return():
    def build(b):
        r = b.add(6, 7)
        r = b.mul(r, 2)
        r = b.sub(r, 1)
        b.ret(r)

    assert run_program(make_program(build)).return_value == 25


def test_division_truncates_toward_zero():
    def build(b):
        q = b.div(-7, 2)
        r = b.rem(-7, 2)
        b.ret(b.add(b.mul(q, 10), b.add(r, 5)))

    # q = -3, r = -1 -> -30 + 4 = -26 (C semantics, not Python floor).
    assert run_program(make_program(build)).return_value == -26


def test_division_by_zero_raises():
    def build(b):
        b.ret(b.div(1, 0))

    with pytest.raises(SimulationError):
        run_program(make_program(build))


def test_guarded_op_nullified():
    def build(b):
        b.mov(1, dest=Reg(1))
        false_pred = b.pred_clear()
        b.mov(99, dest=Reg(1), guard=false_pred)
        b.ret(Reg(1))

    assert run_program(make_program(build)).return_value == 1


def test_cmpp_two_target_un_uc():
    def build(b):
        taken, fall = b.cmpp2(Cond.EQ, 5, 5)
        b.mov(taken, dest=Reg(1))
        b.mov(fall, dest=Reg(2))
        b.ret(b.add(b.mul(Reg(1), 10), Reg(2)))

    assert run_program(make_program(build)).return_value == 10


def test_cmpp_un_writes_zero_under_false_guard():
    """Table 1: U-kind targets write even when the guard is false."""

    def build(b):
        p = b.pred_set(Imm(1))
        false_pred = b.pred_clear()
        b.cmpp(
            Cond.EQ, 1, 1, [PredTarget(p, Action.UN)], guard=false_pred
        )
        b.ret(b.mov(p))

    assert run_program(make_program(build)).return_value == 0


def test_wired_or_and_accumulation():
    def build(b):
        off = b.pred_clear()
        on = b.pred_set(Imm(1))
        b.cmpp(Cond.EQ, 1, 2, [PredTarget(off, Action.ON)])
        b.cmpp(Cond.EQ, 3, 3, [PredTarget(off, Action.ON)])
        b.cmpp(Cond.EQ, 4, 4, [PredTarget(on, Action.AC)])
        b.cmpp(Cond.EQ, 5, 6, [PredTarget(on, Action.AC)])
        b.ret(b.add(b.mul(b.mov(off), 10), b.mov(on)))

    # off = (1==2)|(3==3) = 1; on = !(4==4) clears it -> 0... note AC
    # clears when the condition HOLDS (complemented): 4==4 -> writes 0.
    assert run_program(make_program(build)).return_value == 10


def test_memory_store_load_and_trace():
    segment = DataSegment("D", 16, initial=[11, 22])

    def build(b):
        base = b.mov(Imm(0))  # overwritten below via poke? use label mov
        from repro.ir import Label

        base = b.mov(Label("D"))
        value = b.load(base)
        b.store(b.add(base, 4), value)
        b.ret(value)

    program = make_program(build, segments=[segment])
    interp = Interpreter(program)
    result = interp.run()
    assert result.return_value == 11
    assert result.store_trace == [(interp.segment_base("D") + 4, 11)]
    assert interp.peek_array("D", 5) == [11, 22, 0, 0, 11]


def test_poke_array_bounds_checked():
    program = make_program(lambda b: b.ret(0),
                           segments=[DataSegment("D", 4)])
    interp = Interpreter(program)
    with pytest.raises(SimulationError):
        interp.poke_array("D", [1, 2, 3, 4, 5])


def test_branch_through_btr_and_loop():
    program = Program("t")
    proc = Procedure("main", params=[Reg(1)])
    program.add_procedure(proc)
    b = IRBuilder(proc)
    b.start_block("Loop", fallthrough="Out")
    b.add(Reg(2), Reg(1), dest=Reg(2))
    b.add(Reg(1), -1, dest=Reg(1))
    p = b.cmpp1(Cond.GT, Reg(1), 0)
    b.branch_to("Loop", p)
    b.start_block("Out")
    b.ret(Reg(2))
    result = run_program(program, args=[5])
    assert result.return_value == 15  # 5+4+3+2+1


def test_calls_with_arguments_and_return():
    program = Program("t")
    callee = Procedure("double", params=[Reg(1)])
    program.add_procedure(callee)
    cb = IRBuilder(callee)
    cb.start_block("E")
    cb.ret(cb.mul(Reg(1), 2))
    main = Procedure("main", params=[Reg(1)])
    program.add_procedure(main)
    mb = IRBuilder(main)
    mb.start_block("E")
    result = mb.call("double", [Reg(1)], dest=main.new_reg())
    mb.ret(mb.add(result, 1))
    assert run_program(program, args=[21]).return_value == 43


def test_fuel_exhaustion_on_infinite_loop():
    program = Program("t")
    proc = Procedure("main")
    program.add_procedure(proc)
    b = IRBuilder(proc)
    b.start_block("L")
    b.jump("L")
    with pytest.raises(FuelExhausted):
        run_program(program, fuel=1000)


def test_block_and_branch_profiling_counters():
    program = Program("t")
    proc = Procedure("main", params=[Reg(1)])
    program.add_procedure(proc)
    b = IRBuilder(proc)
    b.start_block("Loop", fallthrough="Out")
    b.add(Reg(1), -1, dest=Reg(1))
    p = b.cmpp1(Cond.GT, Reg(1), 0)
    branch = b.branch_to("Loop", p)
    b.start_block("Out")
    b.ret(0)
    result = run_program(program, args=[4])
    assert result.block_counts[("main", "Loop")] == 4
    assert result.branch_taken[("main", branch.uid)] == 3
    assert result.branch_not_taken[("main", branch.uid)] == 1
