"""Interpreter corners: floats, conversions, label moves, call limits."""

import pytest

from repro.errors import SimulationError
from repro.ir import (
    Cond,
    DataSegment,
    FReg,
    IRBuilder,
    Label,
    Opcode,
    Operation,
    Procedure,
    Program,
    Reg,
)
from repro.sim.interpreter import run_program
from repro.workloads.base import poke_and_args


def simple_program(build, params=(), segments=()):
    program = Program("t")
    for segment in segments:
        program.add_segment(segment)
    proc = Procedure("main", params=list(params))
    program.add_procedure(proc)
    b = IRBuilder(proc)
    b.start_block("E")
    build(b)
    return program


def test_float_arithmetic_and_conversions():
    def build(b):
        f = b.emit(
            Operation(Opcode.CVT_IF, dests=[FReg(1)], srcs=[Reg(1)])
        ).dests[0]
        g = b.fmul(f, FReg(1))
        h = b.fdiv(g, 2.0)
        result = b.emit(
            Operation(Opcode.CVT_FI, dests=[b.proc.new_reg()], srcs=[h])
        ).dests[0]
        b.ret(result)

    result = run_program(simple_program(build, params=[Reg(1)]), args=[5])
    assert result.return_value == 12  # 5*5/2 = 12.5 truncated


def test_mov_from_label_resolves_segment_base():
    def build(b):
        base = b.mov(Label("DATA"))
        b.ret(b.load(base))

    program = simple_program(
        build, segments=[DataSegment("DATA", 4, initial=[99])]
    )
    assert run_program(program).return_value == 99


def test_call_depth_limit():
    program = Program("t")
    proc = Procedure("main")
    program.add_procedure(proc)
    b = IRBuilder(proc)
    b.start_block("E")
    b.call("main", [])
    b.ret(0)
    with pytest.raises(SimulationError):
        run_program(program)


def test_guarded_call_nullified():
    program = Program("t")
    callee = Procedure("boom")
    program.add_procedure(callee)
    cb = IRBuilder(callee)
    cb.start_block("E")
    cb.store(1, 1)  # visible side effect
    cb.ret(0)
    main = Procedure("main")
    program.add_procedure(main)
    b = IRBuilder(main)
    b.start_block("E")
    never = b.cmpp1(Cond.EQ, 1, 2)
    b.call("boom", [], dest=main.new_reg())
    b.block.ops[-1].guard = never
    b.ret(7)
    result = run_program(program)
    assert result.return_value == 7
    assert result.store_trace == []


def test_poke_and_args_helper():
    def build(b):
        base = b.mov(Label("DATA"))
        b.ret(b.add(b.load(base), Reg(1)))

    program = simple_program(
        build, params=[Reg(1)], segments=[DataSegment("DATA", 4)]
    )
    from repro.sim.interpreter import Interpreter

    interp = Interpreter(program)
    setup = poke_and_args({"DATA": [40]}, (2,))
    args = setup(interp)
    assert interp.run(args=args).return_value == 42


def test_shift_and_bitwise_oracle():
    def build(b):
        x = b.shl(Reg(1), 3)
        y = b.shr(x, 1)
        z = b.xor(y, Reg(1))
        b.ret(b.and_(z, 255))

    for n in (0, 1, 7, 100):
        expected = (((n << 3) >> 1) ^ n) & 255
        result = run_program(
            simple_program(build, params=[Reg(1)]), args=[n]
        )
        assert result.return_value == expected
