"""Atomic bundle emission: a crash mid-shrink never publishes a half-bundle."""

import os

import pytest

from repro.ir import Cond, IRBuilder, Procedure, Program, Reg
from repro.ir.operands import PredReg
from repro.reduce.bundle import (
    emit_repro_bundle,
    sweep_bundle_litter,
)
from repro.sanitize import run_battery


def _bug_proc() -> Procedure:
    program = Program("t")
    proc = Procedure("main", params=[Reg(1), Reg(2)])
    program.add_procedure(proc)
    b = IRBuilder(proc)
    b.start_block("Entry", fallthrough="Out")
    total = b.add(b.load(Reg(1), region="A"), 3)
    p = b.cmpp1(Cond.EQ, total, 0)
    b.branch_to("Out", p)
    b.branch_to("Out", PredReg(40))  # undefined predicate
    b.start_block("Out")
    b.ret(1)
    return proc


def _visible_entries(root):
    return sorted(
        name for name in os.listdir(root) if not name.startswith(".")
    )


def test_successful_emit_leaves_no_staging_litter(tmp_path):
    root = tmp_path / "bundles"
    proc = _bug_proc()
    path = emit_repro_bundle(str(root), proc, run_battery(proc), "icbm")
    assert os.path.isdir(path)
    assert _visible_entries(root) == [os.path.basename(path)]
    assert not [n for n in os.listdir(root) if n.startswith(".tmp-bundle-")]


def test_crash_mid_emit_publishes_nothing(tmp_path, monkeypatch):
    """Die after some files are staged: readers see zero bundles, and the
    partial work is a hidden temp directory, not a half-bundle."""
    root = tmp_path / "bundles"
    proc = _bug_proc()
    findings = run_battery(proc)

    import repro.reduce.bundle as bundle_mod
    real_write_json = bundle_mod._write_json

    def dying_write_json(path, name, payload):
        if name == "machine.json":  # late: most files already staged
            raise RuntimeError("simulated crash mid-emit")
        return real_write_json(path, name, payload)

    monkeypatch.setattr(bundle_mod, "_write_json", dying_write_json)
    with pytest.raises(RuntimeError):
        emit_repro_bundle(str(root), proc, findings, "icbm")
    assert _visible_entries(root) == []
    staged = [n for n in os.listdir(root) if n.startswith(".tmp-bundle-")]
    assert len(staged) == 1
    # The stage holds the partial work — proof the crash was mid-emit.
    assert "procedure.ir" in os.listdir(root / staged[0])


def test_next_emission_sweeps_stale_staging_dirs(tmp_path):
    root = tmp_path / "bundles"
    root.mkdir()
    stale = root / ".tmp-bundle-dead"
    stale.mkdir()
    (stale / "procedure.ir").write_text("partial\n")
    os.utime(stale, (0, 0))
    fresh = root / ".tmp-bundle-live"
    fresh.mkdir()

    proc = _bug_proc()
    path = emit_repro_bundle(str(root), proc, run_battery(proc), "icbm")
    assert not stale.exists()  # orphan swept
    assert fresh.exists()  # young enough to be a live writer
    assert os.path.isdir(path)


def test_duplicate_emit_discards_staged_copy(tmp_path):
    """Bundle names are content-addressed: re-emitting the same finding
    keeps the published copy and discards the staged duplicate."""
    root = tmp_path / "bundles"
    proc = _bug_proc()
    findings = run_battery(proc)
    first = emit_repro_bundle(str(root), proc, findings, "icbm")
    second = emit_repro_bundle(str(root), proc, findings, "icbm")
    assert first == second
    assert _visible_entries(root) == [os.path.basename(first)]
    assert not [n for n in os.listdir(root) if n.startswith(".tmp-bundle-")]


def test_sweep_bundle_litter_counts_and_tolerates_missing_root(tmp_path):
    assert sweep_bundle_litter(str(tmp_path / "absent")) == 0
    root = tmp_path / "bundles"
    root.mkdir()
    for name in (".tmp-bundle-a", ".tmp-bundle-b"):
        stale = root / name
        stale.mkdir()
        os.utime(stale, (0, 0))
    assert sweep_bundle_litter(str(root), max_age_s=3600) == 2
