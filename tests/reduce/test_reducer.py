"""Delta-debugging reducer and repro-bundle round-trip tests.

The seeded known-bad procedure plants an undefined-predicate branch in a
haystack of legitimate code; the reducer must shrink it to a handful of
operations, deterministically, and the emitted bundle must re-trigger
the identical finding after a round-trip through the IR text parser.
"""

import json
import os

import pytest

from repro.ir import Cond, IRBuilder, Procedure, Program, Reg
from repro.ir.operands import PredReg
from repro.reduce import (
    ddmin,
    load_bundle_procedure,
    reduce_and_bundle,
    reduce_procedure,
    sanitizer_oracle,
    verify_bundle,
)
from repro.sanitize import run_battery


def _op_count(proc: Procedure) -> int:
    return sum(len(block.ops) for block in proc)


def _planted_bug_proc() -> Procedure:
    """~20 ops of working code around one undefined-predicate branch."""
    program = Program("t")
    proc = Procedure("main", params=[Reg(1), Reg(2)])
    program.add_procedure(proc)
    b = IRBuilder(proc)
    b.start_block("Entry", fallthrough="Mid")
    value = b.load(Reg(1), region="A")
    total = b.add(value, 3)
    for i in range(6):
        total = b.add(total, i)
    p = b.cmpp1(Cond.EQ, total, 0)
    b.branch_to("Out", p)
    b.start_block("Mid", fallthrough="Exit")
    scaled = b.add(Reg(2), 5)
    for i in range(5):
        scaled = b.add(scaled, i)
    b.store(Reg(1), scaled, region="A")
    b.branch_to("Out", PredReg(40))  # the planted miscompile
    b.start_block("Out")
    b.ret(1)
    b.start_block("Exit")
    b.ret(0)
    return proc


# ----------------------------------------------------------------------
# Generic ddmin
# ----------------------------------------------------------------------
def test_ddmin_finds_minimal_subset():
    items = list(range(20))
    result = ddmin(items, lambda xs: {3, 11} <= set(xs))
    assert result == [3, 11]


def test_ddmin_single_element():
    assert ddmin(list(range(10)), lambda xs: 7 in xs) == [7]


def test_ddmin_rejects_non_failing_input():
    with pytest.raises(ValueError):
        ddmin([1, 2, 3], lambda xs: 99 in xs)


# ----------------------------------------------------------------------
# Procedure reduction
# ----------------------------------------------------------------------
def test_planted_bug_minimizes_to_few_ops():
    proc = _planted_bug_proc()
    findings = run_battery(proc)
    assert findings, "the planted bug must trigger the battery"
    oracle = sanitizer_oracle([f.signature() for f in findings])
    minimized = reduce_procedure(proc, oracle)
    assert _op_count(minimized) <= 5
    assert oracle(minimized)
    # The input procedure is never mutated by reduction.
    assert _op_count(proc) > 5


def test_reduction_is_deterministic():
    first = reduce_procedure(
        _planted_bug_proc(),
        sanitizer_oracle(
            [f.signature() for f in run_battery(_planted_bug_proc())]
        ),
    )
    second = reduce_procedure(
        _planted_bug_proc(),
        sanitizer_oracle(
            [f.signature() for f in run_battery(_planted_bug_proc())]
        ),
    )
    assert first.format() == second.format()


def test_reduction_rejects_non_reproducing_oracle():
    with pytest.raises(ValueError):
        reduce_procedure(
            _planted_bug_proc(), sanitizer_oracle([("no-such", "sig")])
        )


# ----------------------------------------------------------------------
# Bundles
# ----------------------------------------------------------------------
def test_bundle_round_trips_and_reproduces(tmp_path):
    proc = _planted_bug_proc()
    findings = run_battery(proc)
    path = reduce_and_bundle(
        str(tmp_path / "bundles"), proc, findings, "icbm", rung="full"
    )
    assert path is not None
    for name in (
        "procedure.ir", "finding.json", "pass.json",
        "profile.json", "machine.json", "README.md",
    ):
        assert os.path.exists(os.path.join(path, name)), name

    loaded = load_bundle_procedure(path)
    assert _op_count(loaded) <= 5
    assert verify_bundle(path)

    with open(os.path.join(path, "finding.json")) as handle:
        stored = json.load(handle)
    assert stored["reproduces_from_text"] is True
    assert stored["pass"] == "icbm"
    stored_sigs = {tuple(sig) for sig in stored["signatures"]}
    found = {f.signature() for f in run_battery(loaded)}
    assert stored_sigs & found


def test_bundle_emission_never_raises(tmp_path):
    # Findings that do not reproduce standalone yield None, not an error.
    proc = _planted_bug_proc()
    from repro.sanitize.findings import Finding

    phantom = Finding(
        check="on-trace-growth", proc="main", block="Entry",
        detail="Entry: on-trace op count grew",
    )
    assert reduce_and_bundle(
        str(tmp_path / "bundles"), proc, [phantom], "icbm"
    ) is None
