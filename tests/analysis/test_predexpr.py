"""Property-based checks of the truth-table boolean engine."""

from hypothesis import given, settings, strategies as st

from repro.analysis.predexpr import (
    AtomUniverse,
    conservative_disjoint,
    conservative_implies,
)


def random_expr(universe, atoms, draw_structure):
    """Build an expression from a nested-structure recipe."""
    kind = draw_structure[0]
    if kind == "atom":
        return atoms[draw_structure[1] % len(atoms)]
    if kind == "true":
        return universe.true()
    if kind == "false":
        return universe.false()
    if kind == "not":
        return ~random_expr(universe, atoms, draw_structure[1])
    left = random_expr(universe, atoms, draw_structure[1])
    right = random_expr(universe, atoms, draw_structure[2])
    return (left & right) if kind == "and" else (left | right)


def structures(depth=3):
    leaf = st.one_of(
        st.tuples(st.just("atom"), st.integers(0, 7)),
        st.tuples(st.just("true")),
        st.tuples(st.just("false")),
    )
    return st.recursive(
        leaf,
        lambda inner: st.one_of(
            st.tuples(st.just("not"), inner),
            st.tuples(st.just("and"), inner, inner),
            st.tuples(st.just("or"), inner, inner),
        ),
        max_leaves=8,
    )


def evaluate(structure, assignment):
    kind = structure[0]
    if kind == "atom":
        return assignment[structure[1] % len(assignment)]
    if kind == "true":
        return True
    if kind == "false":
        return False
    if kind == "not":
        return not evaluate(structure[1], assignment)
    left = evaluate(structure[1], assignment)
    right = evaluate(structure[2], assignment)
    return (left and right) if kind == "and" else (left or right)


@settings(max_examples=150, deadline=None)
@given(structures(), st.lists(st.booleans(), min_size=4, max_size=4))
def test_expression_agrees_with_direct_evaluation(structure, assignment):
    """The truth-table engine matches brute-force boolean evaluation."""
    universe = AtomUniverse()
    atoms = [universe.atom() for _ in range(4)]
    expr = random_expr(universe, atoms, structure)
    # The assignment picks a row: build the row index from atom values.
    row = sum(1 << i for i, bit in enumerate(assignment) if bit)
    table = expr._extended(4)
    assert bool((table >> row) & 1) == evaluate(structure, assignment)


@settings(max_examples=100, deadline=None)
@given(structures(), structures())
def test_boolean_algebra_laws(sa, sb):
    universe = AtomUniverse()
    atoms = [universe.atom() for _ in range(4)]
    a = random_expr(universe, atoms, sa)
    b = random_expr(universe, atoms, sb)
    assert (a & b).equivalent_to(b & a)
    assert (a | b).equivalent_to(b | a)
    assert (~(a & b)).equivalent_to(~a | ~b)
    assert (a & (a | b)).equivalent_to(a)
    assert (a | (a & b)).equivalent_to(a)
    assert (a & ~a).is_false()
    assert (a | ~a).is_true()


@settings(max_examples=100, deadline=None)
@given(structures(), structures())
def test_disjoint_and_implies_consistency(sa, sb):
    universe = AtomUniverse()
    atoms = [universe.atom() for _ in range(4)]
    a = random_expr(universe, atoms, sa)
    b = random_expr(universe, atoms, sb)
    if a.disjoint_with(b):
        assert (a & b).is_false()
        assert a.implies(~b)
    if a.implies(b):
        assert (a & ~b).is_false()
        assert (~b).implies(~a)  # contrapositive


def test_cross_width_operations():
    universe = AtomUniverse()
    a = universe.atom()          # width 1
    t = universe.true()          # width 0
    b = universe.atom()          # width 2
    assert (t & a).equivalent_to(a)
    assert (a & b).implies(a)
    assert (a & b).implies(b)
    assert not a.equivalent_to(b)
    assert not a.disjoint_with(b)  # independent atoms overlap


def test_saturation_is_conservative():
    universe = AtomUniverse(max_atoms=2)
    a = universe.atom()
    b = universe.atom()
    assert universe.atom() is None
    assert universe.saturated
    assert not conservative_disjoint(a, None)
    assert not conservative_disjoint(None, b)
    assert not conservative_implies(None, a)
    assert conservative_disjoint(a, ~a)
    assert conservative_implies(a & b, a)
