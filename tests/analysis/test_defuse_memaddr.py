"""Def-use chains, branch/compare association, and address resolution."""

from hypothesis import given, settings, strategies as st

from repro.analysis import DefUseChains, branch_compare_map
from repro.analysis.defuse import (
    branch_complement_pred,
    branch_source_action,
    branch_taken_cond,
)
from repro.analysis.memaddr import AddressResolver, may_alias_forms
from repro.ir import (
    Action,
    Cond,
    IRBuilder,
    Opcode,
    Procedure,
    Reg,
)
from repro.sim.interpreter import Interpreter
from repro.ir import DataSegment, Program


def test_unique_reaching_def():
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B")
    r = b.add(Reg(1), 1)
    use = b.add(r, 2)
    b.ret()
    block = proc.block("B")
    chains = DefUseChains.build(block)
    assert chains.reaching_def(1, r) is block.ops[0]
    assert chains.users_of(block.ops[0]) == [block.ops[1]]


def test_redefinition_breaks_uniqueness_backward():
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B")
    b.add(Reg(1), 1, dest=Reg(5))
    b.add(Reg(1), 2, dest=Reg(5))
    b.store(Reg(2), Reg(5))
    b.ret()
    block = proc.block("B")
    chains = DefUseChains.build(block)
    # The store sees only the second (killing) definition.
    assert chains.reaching_def(2, Reg(5)) is block.ops[1]
    assert chains.users_of(block.ops[0]) == []


def test_guarded_defs_accumulate_as_may_defs():
    from repro.ir import PredReg

    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B")
    b.add(Reg(1), 1, dest=Reg(5), guard=PredReg(7))
    b.add(Reg(1), 2, dest=Reg(5), guard=PredReg(8))
    b.store(Reg(2), Reg(5))
    b.ret()
    block = proc.block("B")
    chains = DefUseChains.build(block)
    assert chains.reaching_def(2, Reg(5)) is None  # two may-defs
    assert len(chains.may_defs(2, Reg(5))) == 2
    # The use links to both possible producers.
    assert block.ops[2] in chains.users_of(block.ops[0])
    assert block.ops[2] in chains.users_of(block.ops[1])


def test_branch_compare_map_and_helpers():
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B", fallthrough="Out")
    taken, fall = b.cmpp2(Cond.LT, Reg(1), Reg(2))
    b.branch_to("Out", taken)
    b.start_block("Out")
    b.ret()
    block = proc.block("B")
    branch = block.exit_branches()[0]
    mapping = branch_compare_map(block)
    compare = mapping[branch.uid]
    assert compare.opcode is Opcode.CMPP
    assert branch_source_action(compare, branch) is Action.UN
    assert branch_complement_pred(compare, branch) == fall
    assert branch_taken_cond(compare, branch) is Cond.LT


def test_uc_sourced_branch_negates_taken_cond():
    """Inverted branches (from superblock formation) source the UC target;
    their taken condition is the compare's negation."""
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B", fallthrough="Out")
    taken, fall = b.cmpp2(Cond.LT, Reg(1), Reg(2))
    b.branch_to("Out", fall)  # branch on the UC (complement) output
    b.start_block("Out")
    b.ret()
    block = proc.block("B")
    branch = block.exit_branches()[0]
    compare = branch_compare_map(block)[branch.uid]
    assert branch_source_action(compare, branch) is Action.UC
    assert branch_complement_pred(compare, branch) == taken
    assert branch_taken_cond(compare, branch) is Cond.GE


# ----------------------------------------------------------------------
# Address resolution
# ----------------------------------------------------------------------
def test_base_plus_distinct_offsets():
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B")
    a0 = b.add(Reg(1), Reg(2))
    a1_tmp = b.add(Reg(2), 1)
    a1 = b.add(Reg(1), a1_tmp)
    b.store(a0, Reg(3))
    b.store(a1, Reg(4))
    b.ret()
    block = proc.block("B")
    resolver = AddressResolver(block)
    f0 = resolver.form_for(3, block.ops[3].srcs[0])
    f1 = resolver.form_for(4, block.ops[4].srcs[0])
    assert f0[0] == f1[0]          # same symbolic part (r1 + r2)
    assert f1[1] - f0[1] == 1      # offsets differ by one
    assert not may_alias_forms(f0, f1)


def test_scaled_index_resolution():
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B")
    idx = b.mul(Reg(2), 16)
    addr = b.add(Reg(1), idx)
    b.store(addr, Reg(3))
    b.ret()
    block = proc.block("B")
    resolver = AddressResolver(block)
    terms, const = resolver.form_for(2, block.ops[2].srcs[0])
    assert const == 0
    assert dict(terms)[("entry", Reg(2))] == 16


def test_redefined_base_distinguished():
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B")
    a0 = b.add(Reg(1), 0)
    b.store(a0, Reg(3))
    b.load(Reg(9), dest=Reg(1))      # r1 redefined opaquely
    a1 = b.add(Reg(1), 0)
    b.store(a1, Reg(4))
    b.ret()
    block = proc.block("B")
    resolver = AddressResolver(block)
    f0 = resolver.form_for(1, block.ops[1].srcs[0])
    f1 = resolver.form_for(4, block.ops[4].srcs[0])
    assert f0[0] != f1[0]
    assert may_alias_forms(f0, f1)  # conservative: must stay ordered


def test_guarded_producer_not_decomposed():
    from repro.ir import PredReg

    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B")
    addr = b.add(Reg(1), 4, guard=PredReg(5))
    b.store(addr, Reg(3))
    b.ret()
    block = proc.block("B")
    resolver = AddressResolver(block)
    terms, const = resolver.form_for(1, block.ops[1].srcs[0])
    assert const == 0  # the +4 must NOT leak out of the guarded add
    assert any(sym[0] == "def" for sym, _ in terms)


@settings(max_examples=60, deadline=None)
@given(
    offsets=st.lists(
        st.integers(min_value=0, max_value=30), min_size=2, max_size=6
    ),
    base=st.integers(min_value=0, max_value=50),
)
def test_alias_judgements_sound_against_interpreter(offsets, base):
    """If the resolver says two stores don't alias, their concrete
    addresses must really differ (checked by executing the block)."""
    program = Program("p")
    program.add_segment(DataSegment("M", 128))
    proc = Procedure("main", params=[Reg(1)])
    program.add_procedure(proc)
    b = IRBuilder(proc)
    b.start_block("B")
    store_ops = []
    for i, offset in enumerate(offsets):
        addr = b.add(Reg(1), offset)
        store_ops.append(b.store(addr, 100 + i))
    b.ret(0)
    block = proc.block("B")
    resolver = AddressResolver(block)
    positions = {op.uid: i for i, op in enumerate(block.ops)}
    forms = {
        op.uid: resolver.form_for(positions[op.uid], op.srcs[0])
        for op in store_ops
    }
    interp = Interpreter(program)
    interp.run(args=[interp.segment_base("M") + base])
    addresses = dict(interp.store_trace)  # addr -> last value
    concrete = {}
    for op, offset in zip(store_ops, offsets):
        concrete[op.uid] = interp.segment_base("M") + base + offset
    for op_a in store_ops:
        for op_b in store_ops:
            if op_a is op_b:
                continue
            if not may_alias_forms(forms[op_a.uid], forms[op_b.uid]):
                assert concrete[op_a.uid] != concrete[op_b.uid]
