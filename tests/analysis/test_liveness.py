"""Predicate-aware liveness and the promotion legality test."""

from repro.analysis import (
    LivenessAnalysis,
    PredicateTracker,
    liveness_expressions,
    promotion_is_legal,
)
from repro.ir import (
    Cond,
    IRBuilder,
    Opcode,
    Procedure,
    Reg,
)


def test_straightline_liveness():
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("E")
    r = b.add(Reg(1), 1)
    b.store(Reg(2), r)
    b.ret()
    live = LivenessAnalysis(proc)
    live_in = live.live_in("E")
    assert Reg(1) in live_in
    assert Reg(2) in live_in
    assert r not in live_in  # defined before use


def test_loop_carried_value_is_live_at_header():
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("L", fallthrough="Out")
    b.store(Reg(2), Reg(9))           # uses loop-carried r9
    b.load(Reg(1), dest=Reg(9))       # redefines it
    p = b.cmpp1(Cond.NE, Reg(9), 0)
    b.branch_to("L", p)
    b.start_block("Out")
    b.ret()
    live = LivenessAnalysis(proc)
    assert Reg(9) in live.live_in("L")
    assert Reg(9) in live.live_out("L")


def test_guarded_def_killed_by_matching_use_guard():
    """A value defined and used under the same predicate chain is dead at
    the loop header — the case boolean liveness cannot see (the guarded
    def is a definite kill exactly on the paths that use it)."""
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("L", fallthrough="Out")
    taken, fall = b.cmpp2(Cond.EQ, Reg(1), 0)
    b.branch_to("Out", taken)
    value = b.load(Reg(2), guard=fall)
    b.store(Reg(3), value, guard=fall)
    b.jump("L")
    b.start_block("Out")
    b.ret()
    live = LivenessAnalysis(proc)
    assert value not in live.live_in("L")


def test_side_exit_merges_target_live_in():
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("E", fallthrough="Next")
    p = b.cmpp1(Cond.EQ, Reg(1), 0)
    b.branch_to("Handler", p)
    b.mov(0, dest=Reg(5))
    b.start_block("Next")
    b.ret(Reg(5))
    b.start_block("Handler")
    b.ret(Reg(7))  # r7 needed only along the exit path
    live = LivenessAnalysis(proc)
    assert Reg(7) in live.live_in("E")
    assert Reg(7) in live.live_in("Handler")


def test_btr_needed_only_when_branch_takes():
    """The pbr's target register matters only under the taken condition, so
    a never-overlapping guard chain keeps it promotable."""
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("E", fallthrough="Out")
    taken, fall = b.cmpp2(Cond.EQ, Reg(1), 0)
    btr = b.pbr("Out")
    b.branch(taken, btr, target="Out")
    b.store(Reg(2), Reg(3), guard=fall)
    b.start_block("Out")
    b.ret()
    block = proc.block("E")
    tracker = PredicateTracker(block)
    live = LivenessAnalysis(proc)
    points = liveness_expressions(block, tracker, live)
    pbr_index = next(
        i for i, op in enumerate(block.ops) if op.opcode is Opcode.PBR
    )
    needed = points[pbr_index][btr]
    taken_expr = tracker.taken_expr[block.exit_branches()[0].uid]
    assert needed.implies(taken_expr)


def test_promotion_legal_for_frp_guarded_load():
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("E", fallthrough="Out")
    taken, fall = b.cmpp2(Cond.EQ, Reg(1), 0)
    b.branch_to("Out", taken)
    value = b.load(Reg(2), guard=fall)
    b.store(Reg(3), value, guard=fall)
    b.start_block("Out")
    b.ret()
    block = proc.block("E")
    tracker = PredicateTracker(block)
    live = LivenessAnalysis(proc)
    points = liveness_expressions(block, tracker, live)
    load_index = next(
        i for i, op in enumerate(block.ops) if op.opcode is Opcode.LOAD
    )
    assert promotion_is_legal(
        block.ops[load_index], points[load_index], tracker
    )


def test_promotion_illegal_when_old_value_live_elsewhere():
    """Promoting a guarded redefinition of a value consumed unguarded
    later would clobber the fall-path value."""
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("E")
    b.mov(5, dest=Reg(9))
    taken, fall = b.cmpp2(Cond.EQ, Reg(1), 0)
    b.load(Reg(2), dest=Reg(9), guard=taken)  # overwrite only when taken
    b.store(Reg(3), Reg(9))                    # reads either value
    b.ret()
    block = proc.block("E")
    tracker = PredicateTracker(block)
    live = LivenessAnalysis(proc)
    points = liveness_expressions(block, tracker, live)
    load_index = next(
        i for i, op in enumerate(block.ops) if op.opcode is Opcode.LOAD
    )
    assert not promotion_is_legal(
        block.ops[load_index], points[load_index], tracker
    )
