"""Predicate-aware dependence graph construction."""

from repro.analysis import DependenceGraph, LivenessAnalysis
from repro.ir import (
    Cond,
    IRBuilder,
    Opcode,
    Procedure,
    Reg,
)
from repro.machine import PAPER_LATENCIES


def edges_between(graph, src_opcode, dst_opcode, kind=None):
    found = []
    for edge in graph.edges:
        if (
            graph.ops[edge.src].opcode is src_opcode
            and graph.ops[edge.dst].opcode is dst_opcode
            and (kind is None or edge.kind == kind)
        ):
            found.append(edge)
    return found


def build_graph(proc, label="B"):
    return DependenceGraph(
        proc.block(label),
        PAPER_LATENCIES,
        liveness=LivenessAnalysis(proc),
    )


def test_flow_edge_latency_is_producer_latency():
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B")
    value = b.load(Reg(1))
    b.add(value, 1)
    b.ret()
    graph = build_graph(proc)
    (edge,) = edges_between(graph, Opcode.LOAD, Opcode.ADD, "flow")
    assert edge.latency == PAPER_LATENCIES.load == 2


def test_sequential_branches_chained_by_control():
    """Baseline superblock branches (non-disjoint) serialize."""
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B", fallthrough="Out")
    p1 = b.cmpp1(Cond.EQ, Reg(1), 0)
    b.branch_to("Out", p1)
    p2 = b.cmpp1(Cond.EQ, Reg(2), 0)
    b.branch_to("Out", p2)
    b.start_block("Out")
    b.ret()
    graph = build_graph(proc)
    chained = edges_between(graph, Opcode.BRANCH, Opcode.BRANCH, "control")
    assert len(chained) == 1
    assert chained[0].latency == PAPER_LATENCIES.branch


def test_frp_branches_are_independent():
    """Mutually exclusive (FRP) branch predicates remove the chain."""
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B", fallthrough="Out")
    t1, f1 = b.cmpp2(Cond.EQ, Reg(1), 0)
    b.branch_to("Out", t1)
    t2, f2 = b.cmpp2(Cond.EQ, Reg(2), 0, guard=f1)
    b.branch_to("Out", t2)
    b.start_block("Out")
    b.ret()
    graph = build_graph(proc)
    assert not edges_between(graph, Opcode.BRANCH, Opcode.BRANCH, "control")


def test_unguarded_store_control_dependent_on_branch():
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B", fallthrough="Out")
    p = b.cmpp1(Cond.EQ, Reg(1), 0)
    b.branch_to("Out", p)
    b.store(Reg(2), Reg(3))
    b.start_block("Out")
    b.ret()
    graph = build_graph(proc)
    assert edges_between(graph, Opcode.BRANCH, Opcode.STORE, "control")


def test_guarded_store_escapes_control_dependence():
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B", fallthrough="Out")
    taken, fall = b.cmpp2(Cond.EQ, Reg(1), 0)
    b.branch_to("Out", taken)
    b.store(Reg(2), Reg(3), guard=fall)
    b.start_block("Out")
    b.ret()
    graph = build_graph(proc)
    assert not edges_between(graph, Opcode.BRANCH, Opcode.STORE, "control")


def test_store_before_branch_orders_branch():
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B", fallthrough="Out")
    b.store(Reg(2), Reg(3))
    p = b.cmpp1(Cond.EQ, Reg(1), 0)
    b.branch_to("Out", p)
    b.start_block("Out")
    b.ret()
    graph = build_graph(proc)
    (edge,) = edges_between(graph, Opcode.STORE, Opcode.BRANCH, "control")
    assert edge.latency == 0


def test_restricted_speculation_blocks_live_clobber():
    """An op overwriting a register live at a branch's target may not be
    hoisted above that branch."""
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B", fallthrough="Out")
    p = b.cmpp1(Cond.EQ, Reg(1), 0)
    b.branch_to("Handler", p)
    b.add(Reg(9), 1, dest=Reg(9))  # r9 live at Handler
    b.start_block("Out")
    b.ret()
    b.start_block("Handler")
    b.ret(Reg(9))
    graph = build_graph(proc)
    assert edges_between(graph, Opcode.BRANCH, Opcode.ADD, "control")


def test_downward_motion_blocked_when_live_at_target():
    """The dual of restricted speculation: an op whose result is live at
    a later branch's taken target must not sink past the branch."""
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B", fallthrough="Out")
    b.add(Reg(9), 3, dest=Reg(9))   # r9 live at Handler
    p = b.cmpp1(Cond.EQ, Reg(1), 0)
    b.branch_to("Handler", p)
    b.start_block("Out")
    b.ret()
    b.start_block("Handler")
    b.ret(Reg(9))
    graph = build_graph(proc)
    sink_edges = edges_between(graph, Opcode.ADD, Opcode.BRANCH, "control")
    assert sink_edges and sink_edges[0].latency == 0


def test_downward_motion_allowed_when_dead_at_target():
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B", fallthrough="Out")
    b.add(Reg(9), 3, dest=Reg(8))   # r8 dead at Handler
    p = b.cmpp1(Cond.EQ, Reg(1), 0)
    b.branch_to("Handler", p)
    b.store(Reg(2), Reg(8))          # but used on the fall path
    b.start_block("Out")
    b.ret()
    b.start_block("Handler")
    b.ret(0)
    graph = build_graph(proc)
    assert not edges_between(graph, Opcode.ADD, Opcode.BRANCH, "control")


def test_speculative_load_hoistable_above_branch():
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B", fallthrough="Out")
    p = b.cmpp1(Cond.EQ, Reg(1), 0)
    b.branch_to("Out", p)
    b.load(Reg(2))  # dest dead at Out
    b.start_block("Out")
    b.ret()
    graph = build_graph(proc)
    assert not edges_between(graph, Opcode.BRANCH, Opcode.LOAD, "control")


def test_memory_same_region_aliases_conservatively():
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B")
    b.store(Reg(1), Reg(2), region="A")
    b.load(Reg(3), region="A")
    b.ret()
    graph = build_graph(proc)
    assert edges_between(graph, Opcode.STORE, Opcode.LOAD, "mem")


def test_memory_distinct_regions_independent():
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B")
    b.store(Reg(1), Reg(2), region="A")
    b.load(Reg(3), region="B")
    b.ret()
    graph = build_graph(proc)
    assert not edges_between(graph, Opcode.STORE, Opcode.LOAD, "mem")


def test_distinct_constant_offsets_disambiguate():
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B")
    a1 = b.add(Reg(1), 1)
    a2 = b.add(Reg(1), 2)
    b.store(a1, Reg(2), region="A")
    b.store(a2, Reg(3), region="A")
    b.ret()
    graph = build_graph(proc)
    assert not edges_between(graph, Opcode.STORE, Opcode.STORE, "mem")


def test_same_address_stores_stay_ordered():
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B")
    a1 = b.add(Reg(1), 1)
    a2 = b.add(Reg(1), 1)
    b.store(a1, Reg(2), region="A")
    b.store(a2, Reg(3), region="A")
    b.ret()
    graph = build_graph(proc)
    assert edges_between(graph, Opcode.STORE, Opcode.STORE, "mem")


def test_wired_or_writers_unordered():
    from repro.ir import Action, PredTarget

    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B")
    off = b.pred_clear()
    b.cmpp(Cond.EQ, Reg(1), 0, [PredTarget(off, Action.ON)])
    b.cmpp(Cond.EQ, Reg(2), 0, [PredTarget(off, Action.ON)])
    b.ret()
    graph = build_graph(proc)
    cmpp_pairs = edges_between(graph, Opcode.CMPP, Opcode.CMPP)
    assert not cmpp_pairs  # the two accumulators are unordered
    init_edges = edges_between(graph, Opcode.PRED_CLEAR, Opcode.CMPP)
    assert len(init_edges) == 2  # but both follow the initialization


def test_critical_path_height_matches_chain():
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B")
    v = b.load(Reg(1))          # 2 cycles
    p = b.cmpp1(Cond.EQ, v, 0)  # +1
    b.branch_to("B", p)         # +1
    b.ret()
    graph = build_graph(proc)
    heights = graph.critical_path_height()
    # load(2) -> cmpp(1) -> branch(1) -> trailing return(1): the return is
    # serialized after the conditional branch by the branch latency.
    assert heights[0] == 5
    cmpp_index = next(
        i for i, op in enumerate(graph.ops)
        if op.opcode is Opcode.CMPP
    )
    assert heights[cmpp_index] == 3
