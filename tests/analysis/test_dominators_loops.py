"""Dominator tree and natural-loop detection."""

from repro.analysis import DominatorTree, find_loops
from repro.ir import Cond, ControlFlowGraph, IRBuilder, Label, Procedure, Reg


def build_nested_loops():
    """entry -> outer { inner } -> exit."""
    proc = Procedure("f")
    b = IRBuilder(proc)
    b.start_block("entry", fallthrough="outer")
    b.mov(0, dest=Reg(1))
    b.start_block("outer", fallthrough="inner")
    b.add(Reg(1), 1, dest=Reg(1))
    b.start_block("inner", fallthrough="outer_latch")
    p = b.cmpp1(Cond.LT, Reg(2), 10)
    b.branch_to("inner", p)
    b.start_block("outer_latch", fallthrough="exit")
    q = b.cmpp1(Cond.LT, Reg(1), 5)
    b.branch_to("outer", q)
    b.start_block("exit")
    b.ret()
    return proc


def test_dominators_linear_chain():
    proc = build_nested_loops()
    dom = DominatorTree(ControlFlowGraph(proc))
    assert dom.dominates(Label("entry"), Label("exit"))
    assert dom.dominates(Label("outer"), Label("inner"))
    assert not dom.dominates(Label("inner"), Label("outer"))
    assert dom.dominates(Label("outer"), Label("outer"))  # reflexive


def test_idom_assignments():
    proc = build_nested_loops()
    dom = DominatorTree(ControlFlowGraph(proc))
    assert dom.idom[Label("outer")] == Label("entry")
    assert dom.idom[Label("inner")] == Label("outer")
    assert dom.idom[Label("exit")] == Label("outer_latch")


def test_find_loops_nested():
    proc = build_nested_loops()
    loops = find_loops(proc)
    headers = {loop.header.name for loop in loops}
    assert headers == {"outer", "inner"}
    outer = next(lp for lp in loops if lp.header.name == "outer")
    inner = next(lp for lp in loops if lp.header.name == "inner")
    assert Label("inner") in outer.body
    assert Label("outer") not in inner.body
    assert inner.is_self_loop


def test_diamond_dominance():
    proc = Procedure("f")
    b = IRBuilder(proc)
    b.start_block("top", fallthrough="left")
    p = b.cmpp1(Cond.EQ, Reg(1), 0)
    b.branch_to("right", p)
    b.start_block("left")
    b.jump("join")
    b.start_block("right", fallthrough="join")
    b.add(Reg(1), 1)
    b.start_block("join")
    b.ret()
    dom = DominatorTree(ControlFlowGraph(proc))
    assert dom.idom[Label("join")] == Label("top")
    assert not dom.dominates(Label("left"), Label("join"))
    assert find_loops(proc) == []
