"""Symbolic predicate tracking over blocks."""

from repro.analysis import PredicateTracker
from repro.ir import (
    Action,
    Cond,
    IRBuilder,
    Imm,
    Opcode,
    Operation,
    PredReg,
    PredTarget,
    Procedure,
    Reg,
)


def build_frp_chain():
    """Two-branch FRP chain: p2 = c1 taken, p3 = !c1; p4 = p3 & c2, etc."""
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B", fallthrough="Out")
    r1 = b.load(Reg(1))
    p_taken1, p_fall1 = b.cmpp2(Cond.EQ, r1, 0)
    b.branch_to("Out", p_taken1)
    r2 = b.load(Reg(2))
    p_taken2, p_fall2 = b.cmpp2(Cond.EQ, r2, 0, guard=p_fall1)
    b.branch_to("Out", p_taken2)
    b.store(Reg(3), r2, guard=p_fall2)
    b.start_block("Out")
    b.ret()
    return proc, (p_taken1, p_fall1, p_taken2, p_fall2)


def test_frp_branches_mutually_exclusive():
    proc, _ = build_frp_chain()
    block = proc.block("B")
    tracker = PredicateTracker(block)
    b1, b2 = block.exit_branches()
    t1 = tracker.taken_expr[b1.uid]
    t2 = tracker.taken_expr[b2.uid]
    assert t1.disjoint_with(t2)


def test_fall_pred_implies_not_taken():
    proc, (p_taken1, p_fall1, _, p_fall2) = build_frp_chain()
    block = proc.block("B")
    tracker = PredicateTracker(block)
    taken = tracker.final_value(p_taken1)
    fall = tracker.final_value(p_fall1)
    assert taken.disjoint_with(fall)
    assert (taken | fall).is_true()  # UN/UC pair partitions under guard T
    # The second fall-through predicate is a subset of the first.
    assert tracker.final_value(p_fall2).implies(fall)


def test_guarded_store_disjoint_from_taken():
    proc, _ = build_frp_chain()
    block = proc.block("B")
    tracker = PredicateTracker(block)
    store = [op for op in block.ops if op.opcode is Opcode.STORE][0]
    for branch in block.exit_branches():
        assert tracker.exec_expr(store).disjoint_with(
            tracker.taken_expr[branch.uid]
        )
        assert tracker.disjoint(store, branch)


def test_wired_or_accumulation():
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B")
    off = b.pred_clear()
    b.cmpp(Cond.EQ, Reg(1), 0, [PredTarget(off, Action.ON)])
    b.cmpp(Cond.EQ, Reg(2), 0, [PredTarget(off, Action.ON)])
    b.ret()
    tracker = PredicateTracker(proc.block("B"))
    cmpps = [op for op in proc.block("B").ops if op.opcode is Opcode.CMPP]
    a1 = tracker.cmpp_atom[cmpps[0].uid]
    a2 = tracker.cmpp_atom[cmpps[1].uid]
    assert tracker.final_value(off).equivalent_to(a1 | a2)


def test_wired_and_accumulation_with_root():
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B")
    root = b.cmpp1(Cond.NE, Reg(9), 0)
    on = b.pred_set(root)
    b.cmpp(
        Cond.EQ, Reg(1), 0, [PredTarget(on, Action.AC)], guard=root
    )
    b.cmpp(
        Cond.EQ, Reg(2), 0, [PredTarget(on, Action.AC)], guard=root
    )
    b.ret()
    tracker = PredicateTracker(proc.block("B"))
    block = proc.block("B")
    cmpps = [op for op in block.ops if op.opcode is Opcode.CMPP]
    root_expr = tracker.def_expr[cmpps[0].uid][root]
    a1 = tracker.cmpp_atom[cmpps[1].uid]
    a2 = tracker.cmpp_atom[cmpps[2].uid]
    # on-trace FRP: root AND not-c1 AND not-c2 (the ICBM wired-and form).
    assert tracker.final_value(on).equivalent_to(root_expr & ~a1 & ~a2)


def test_entry_predicates_get_fresh_atoms():
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B")
    b.add(Reg(1), 1, guard=PredReg(7))
    b.add(Reg(2), 1, guard=PredReg(8))
    b.ret()
    tracker = PredicateTracker(proc.block("B"))
    ops = proc.block("B").ops
    g7 = tracker.guard_expr[ops[0].uid]
    g8 = tracker.guard_expr[ops[1].uid]
    # Unknown inputs: neither disjoint nor equivalent can be proven.
    assert not g7.disjoint_with(g8)
    assert not g7.equivalent_to(g8)


def test_pred_clear_and_set_constants():
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B")
    p_clear = b.pred_clear()
    p_one = b.pred_set(Imm(1))
    b.ret()
    tracker = PredicateTracker(proc.block("B"))
    assert tracker.final_value(p_clear).is_false()
    assert tracker.final_value(p_one).is_true()


def test_saturation_degrades_to_unknown():
    proc = Procedure("f", params=[Reg(i) for i in range(1, 12)])
    b = IRBuilder(proc)
    b.start_block("B")
    preds = [b.cmpp1(Cond.EQ, Reg(i), 0) for i in range(1, 6)]
    b.ret()
    tracker = PredicateTracker(proc.block("B"), max_atoms=3)
    values = [tracker.final_value(p) for p in preds]
    assert values[0] is not None
    assert values[-1] is None  # beyond the atom budget: unknown
