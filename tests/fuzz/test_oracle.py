"""The differential oracle end to end: clean seeds, injected faults,
shrinking, and bundle round-trips.

The injected-fault tests are the oracle's own verification: a fault
planted inside ICBM (with every pipeline defense disarmed) must surface
as a *divergence* at the observable level, shrink to a minimal entry
procedure, and emit a bundle whose recorded ``(seed, knobs)`` pair
regenerates and re-reproduces the miscompile with one command.
"""

import json
import os

import pytest

from repro.fuzz.generator import FuzzKnobs
from repro.fuzz.oracle import run_corpus, run_seed
from repro.reduce.bundle import regenerate_and_check, verify_bundle

#: A seed whose clobber-pred injection lands on a hot entry-loop branch
#: and diverges deterministically (seeds 0, 1, and 3 all do; the
#: injection plan is derived from the seed, so this never flakes).
DIVERGING_SEED = 0


def test_clean_seed_is_ok_across_all_backends():
    result = run_seed(0)
    assert result.status == "ok", result.detail
    assert result.ok
    # Per-backend stats prove every backend actually built and ran.
    for backend in ("icbm", "cpr", "meld"):
        assert backend in result.stats, result.stats
        assert result.stats[backend]["static_ops"] > 0
    assert result.stats["baseline_ops"] > 0


def test_unknown_backend_is_rejected_up_front():
    with pytest.raises(ValueError, match="unknown backend"):
        run_seed(0, backends=("icbm", "nope"))


def test_injected_fault_surfaces_as_divergence():
    result = run_seed(DIVERGING_SEED, inject="clobber-pred", shrink=False)
    assert result.status == "divergence"
    assert result.backend == "icbm"  # first backend in build order
    assert result.detail
    assert result.bundle is None  # no bundle_dir given


def test_run_corpus_aggregates_and_reports_progress():
    seen = []
    corpus = run_corpus([0, 1], progress=seen.append)
    assert [r.seed for r in corpus.results] == [0, 1]
    assert [r.seed for r in seen] == [0, 1]
    assert corpus.ok == 2
    assert corpus.clean
    assert not corpus.divergences and not corpus.errors


def test_divergence_shrinks_to_a_bundle_that_reproduces(tmp_path):
    """The full loop: inject, diverge, ddmin, bundle, regenerate."""
    result = run_seed(
        DIVERGING_SEED,
        inject="clobber-pred",
        bundle_dir=str(tmp_path),
    )
    assert result.status == "divergence"
    assert result.bundle is not None
    assert os.path.isdir(result.bundle)

    with open(os.path.join(result.bundle, "generator.json")) as handle:
        recipe = json.load(handle)
    # The bundle records the exact generator coordinates...
    assert recipe["seed"] == DIVERGING_SEED
    assert recipe["knobs"] == FuzzKnobs().to_dict()
    assert recipe["inject"] == "clobber-pred"
    assert recipe["backends"] == ["icbm", "cpr", "meld"]
    assert str(DIVERGING_SEED) in recipe["command"]
    assert "--inject clobber-pred" in recipe["command"]

    # ...the minimized procedure really is smaller than the original...
    minimized = open(
        os.path.join(result.bundle, "procedure.ir")
    ).read()
    baseline_ops = result.stats["baseline_ops"]
    assert len(minimized.splitlines()) < baseline_ops

    # ...and one command regenerates the input and re-reproduces.
    assert verify_bundle(result.bundle) is True
    assert regenerate_and_check(recipe) is True


def test_benign_injection_seed_stays_ok():
    """A fault plan that lands somewhere harmless must not false-alarm."""
    result = run_seed(4, inject="clobber-pred", shrink=False)
    assert result.status == "ok", result.detail
