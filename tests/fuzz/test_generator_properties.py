"""Property tests for the seeded mini-C generator.

Two families of invariants, both load-bearing for the fuzzing oracle:

* **Determinism** — the same ``(seed, knobs)`` pair must regenerate the
  byte-identical source. Repro bundles record exactly those two values,
  so any drift here silently invalidates every bundle ever emitted.
* **Well-formedness** — every generated program must compile through
  the real frontend (lexer, parser, sema, lowering), pass the *full*
  sanitizer battery before any optimization touches it, and terminate
  under the fuzz fuel on the oracle's input protocol. The differential
  oracle blames the backends for anything observable, which is only
  sound if the generator never produces a broken program itself.
"""

from hypothesis import given, settings, strategies as st
import pytest

from repro.frontend import compile_source
from repro.fuzz.generator import (
    FuzzKnobs,
    fuzz_inputs,
    generate_source,
    generate_workload,
)
from repro.fuzz.oracle import FUZZ_FUEL
from repro.ir import verify_program
from repro.passes.manager import run_inputs
from repro.sanitize.battery import run_battery

#: Knob variations the determinism sweep crosses with the seed: the
#: defaults, a smaller/denser shape, and a bigger/looser one.
KNOB_VARIANTS = (
    FuzzKnobs(),
    FuzzKnobs(max_depth=2, branch_density=0.7, func_stmts=16,
              loop_count=1, num_helpers=1),
    FuzzKnobs(max_depth=4, branch_density=0.2, func_stmts=48,
              num_arrays=3, array_size=32, expr_depth=4),
)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1),
       variant=st.integers(min_value=0, max_value=len(KNOB_VARIANTS) - 1))
def test_same_seed_and_knobs_regenerate_byte_identical_source(
    seed, variant
):
    knobs = KNOB_VARIANTS[variant]
    first = generate_source(seed, knobs)
    second = generate_source(seed, knobs)
    assert first == second
    # A knob round-trip through a bundle's generator.json must also
    # land on the same bytes: from_dict(to_dict) is the recorded path.
    recovered = FuzzKnobs.from_dict(knobs.to_dict())
    assert generate_source(seed, recovered) == first


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_nearby_seeds_do_not_collide(seed):
    """Seed changes actually change the program (entropy sanity)."""
    sources = {generate_source(s) for s in range(seed, seed + 4)}
    assert len(sources) == 4


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_generated_programs_compile_sanitize_and_terminate(seed):
    workload = generate_workload(seed)
    # Sema: compile_source raises ParseError/SemanticError on any
    # ill-formed program; the oracle would misreport that as 'error'.
    program = compile_source(workload.source)
    verify_program(program)
    # Full battery, pre-optimization: the unoptimized lowering must be
    # spotless so every later finding is attributable to a backend.
    for proc in program.procedures.values():
        findings = run_battery(proc, tier="full")
        assert not findings, (
            f"seed {seed}: pre-opt finding {findings[0].format()}"
        )
    # Termination under the oracle's own fuel and input protocol.
    results = run_inputs(program, workload.inputs, workload.entry,
                         FUZZ_FUEL)
    assert len(results) == len(workload.inputs)


def test_workload_shape_matches_registry_protocol():
    workload = generate_workload(7)
    assert workload.name == "fuzz-7"
    assert workload.entry == "main"
    assert workload.category == "util"
    assert workload.inputs == fuzz_inputs(7)
    # Inputs are (setup, args) pairs like every registry workload's.
    for setup, args in workload.inputs:
        assert setup is None
        assert len(args) == 1


def test_knobs_reject_non_power_of_two_arrays():
    with pytest.raises(ValueError):
        FuzzKnobs(array_size=12)


def test_knobs_from_dict_ignores_unknown_keys():
    knobs = FuzzKnobs.from_dict(
        {"func_stmts": 8, "not_a_knob": 3, "array_size": 8}
    )
    assert knobs.func_stmts == 8
    assert knobs.array_size == 8
