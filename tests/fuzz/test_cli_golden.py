"""Golden tests for the ``repro fuzz`` and ``repro compare`` commands.

The fuzzer's whole value is its reporting contract: deterministic
per-seed lines, a fixed-shape summary, and subsystem exit codes (0
clean, 4 divergence/finding, 2 usage, 1 infrastructure error). CI and
the repro-bundle READMEs both parse this surface, so it is pinned here
byte-for-byte where determinism allows.
"""

import os

import pytest

from repro.__main__ import EXIT_DIVERGENCE, main


def run_cli(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


# ----------------------------------------------------------------------
# Clean corpora
# ----------------------------------------------------------------------
def test_fuzz_clean_seed_range_is_golden(capsys):
    code, out, _ = run_cli(capsys, ["fuzz", "--seeds", "0:2"])
    assert code == 0
    assert out.splitlines() == [
        "seed 0: ok",
        "seed 1: ok",
        "fuzz: 2 seeds, 2 ok, 0 divergence(s), 0 finding(s), 0 error(s)",
    ]


def test_fuzz_count_defaults_seed_selection(capsys):
    code, out, _ = run_cli(capsys, ["fuzz", "--count", "2"])
    assert code == 0
    assert out.splitlines()[:2] == ["seed 0: ok", "seed 1: ok"]


def test_fuzz_seed_list_and_backend_subset(capsys):
    code, out, _ = run_cli(
        capsys, ["fuzz", "--seeds", "2,5", "--backends", "meld"]
    )
    assert code == 0
    assert out.splitlines() == [
        "seed 2: ok",
        "seed 5: ok",
        "fuzz: 2 seeds, 2 ok, 0 divergence(s), 0 finding(s), 0 error(s)",
    ]


def test_fuzz_output_is_deterministic_across_runs(capsys):
    argv = ["fuzz", "--seeds", "0:2", "--knob", "func_stmts=24"]
    _, first, _ = run_cli(capsys, argv)
    _, second, _ = run_cli(capsys, argv)
    assert first == second


# ----------------------------------------------------------------------
# Divergence: exit 4, bundles on disk
# ----------------------------------------------------------------------
def test_fuzz_injected_fault_exits_4(capsys):
    code, out, _ = run_cli(
        capsys,
        ["fuzz", "--seeds", "0", "--inject", "clobber-pred",
         "--no-shrink"],
    )
    assert code == EXIT_DIVERGENCE == 4
    lines = out.splitlines()
    assert lines[0].startswith("seed 0: divergence [icbm]")
    assert lines[-1] == (
        "fuzz: 1 seeds, 0 ok, 1 divergence(s), 0 finding(s), 0 error(s)"
    )


def test_fuzz_bundle_dir_emits_bundle_and_reports_path(
    capsys, tmp_path
):
    code, out, _ = run_cli(
        capsys,
        ["fuzz", "--seeds", "1", "--inject", "drop-branch",
         "--bundle-dir", str(tmp_path)],
    )
    assert code == EXIT_DIVERGENCE
    first = out.splitlines()[0]
    assert " -> " in first
    bundle = first.rsplit(" -> ", 1)[1]
    assert os.path.isfile(os.path.join(bundle, "generator.json"))
    assert os.path.isfile(os.path.join(bundle, "procedure.ir"))


# ----------------------------------------------------------------------
# Usage errors: exit 2, nothing fuzzed
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "argv",
    [
        ["fuzz", "--seeds", "nope"],
        ["fuzz", "--seeds", "5:5"],
        ["fuzz", "--seeds", "0:9x"],
        ["fuzz", "--backends", "icbm,quantum"],
        ["fuzz", "--knob", "not_a_knob=3"],
        ["fuzz", "--knob", "func_stmts=many"],
        ["compare", "--backends", "quantum"],
    ],
)
def test_bad_arguments_exit_2_without_running(capsys, argv):
    code, out, err = run_cli(capsys, argv)
    assert code == 2
    assert "seed" not in out
    assert "repro:" in err


def test_unknown_inject_kind_is_an_argparse_error():
    with pytest.raises(SystemExit):
        main(["fuzz", "--inject", "cosmic-ray"])


# ----------------------------------------------------------------------
# compare: head-to-head table
# ----------------------------------------------------------------------
def test_compare_registry_subset_renders_table(capsys):
    code, out, _ = run_cli(capsys, ["compare", "--subset", "wc,cmp"])
    assert code == 0
    assert "Workload" in out and "Backend" in out
    for backend in ("icbm", "cpr", "meld"):
        assert backend in out
    assert out.count("Gmean") == 3  # one aggregate row per backend
    assert "wc" in out and "cmp" in out


def test_compare_fuzz_corpus_is_deterministic(capsys):
    argv = ["compare", "--seeds", "0:2", "--backends", "cpr,meld"]
    code, first, _ = run_cli(capsys, argv)
    assert code == 0
    assert "fuzz-0" in first and "fuzz-1" in first
    assert "icbm" not in first
    _, second, _ = run_cli(capsys, argv)
    assert first == second
