"""Fixtures for the serve-daemon tests.

The daemon under test runs in-process on a daemon thread
(:func:`repro.serve.server.start_in_thread`) and is driven over real
sockets with :class:`~repro.serve.client.ServeClient`, so the HTTP
parsing, admission, and journal paths are all exercised for real. The
admission/shedding tests swap the farm for :class:`StubBackend`, whose
latency is a :class:`threading.Event` gate the test controls — overload
becomes deterministic instead of timing-dependent.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve.client import ServeClient
from repro.serve.protocol import Outcome
from repro.serve.server import ServeOptions, start_in_thread


class StubBackend:
    """A backend with a controllable gate instead of a compiler.

    ``gate`` starts open; ``hold()`` makes every in-flight and future
    ``evaluate`` block until ``release()``. ``cache`` maps workload
    names to ready-made outcomes for the cache-only shedding rung.
    """

    def __init__(self):
        self.gate = threading.Event()
        self.gate.set()
        self.cache = {}
        self.calls = []
        self.delay_s = 0.0

    def hold(self):
        self.gate.clear()

    def release(self):
        self.gate.set()

    def evaluate(self, request, deadline_s=None, want_trace=False):
        self.calls.append(request.id)
        self.gate.wait(timeout=60.0)
        if self.delay_s:
            time.sleep(self.delay_s)
        return Outcome(
            summary={"name": request.program_name, "stub": True},
            wall_s=0.001,
        )

    def try_cache(self, request):
        return self.cache.get(request.workload)


@pytest.fixture
def serve_factory():
    """Boot in-thread daemons; every one is stopped at teardown."""
    handles = []

    def boot(backend=None, **overrides):
        options = ServeOptions(**overrides)
        handle = start_in_thread(options, backend=backend)
        handles.append(handle)
        return handle

    yield boot
    for handle in handles:
        if isinstance(handle.server.backend, StubBackend):
            handle.server.backend.release()
        handle.stop(timeout=30.0)


def client_for(handle, timeout: float = 60.0) -> ServeClient:
    return ServeClient(
        handle.server.options.host, handle.server.port, timeout=timeout
    )


def wait_until(predicate, timeout_s: float = 10.0, interval_s: float = 0.01):
    """Poll *predicate* until truthy; assert on timeout."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval_s)
    raise AssertionError("condition not reached within timeout")
