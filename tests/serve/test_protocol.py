"""Wire-protocol contracts: error fidelity and request validation.

The table-driven test pins the HTTP-status mapping to the CLI
exit-code table (``repro.__main__.EXIT_CODES``): the same library
failure must carry the same exit code whether it surfaces on stderr
under ``python -m repro`` or in a JSON error body from ``repro serve``.
"""

from __future__ import annotations

import pytest

from repro import errors
from repro.__main__ import exit_code_for
from repro.serve.protocol import (
    ERROR_STATUS,
    SERVE_SCHEMA,
    CompileRequest,
    error_body,
    status_for,
)

#: One row per failure class: (exception instance, HTTP, CLI exit code).
#: 2 = parse/semantic/usage, 3 = verify/IR, 4 = transform/scheduling,
#: 5 = simulation, 6 = quarantine, 7 = deadline/budget, 130 = interrupt.
FIDELITY_TABLE = [
    (errors.ParseError("bad token"), 400, 2),
    (errors.SemanticError("undeclared"), 400, 2),
    (errors.UsageError("bad flag"), 400, 2),
    (errors.VerificationError(["mismatch"]), 422, 3),
    (errors.IRError("bad operand"), 422, 3),
    (errors.TransformError("cpr failed"), 500, 4),
    (errors.SchedulingError("no slot"), 500, 4),
    (errors.SimulationError("fuel"), 500, 5),
    (errors.FarmInterrupted("signalled"), 503, 130),
    (errors.FarmTimeout("budget"), 504, 7),
    (errors.FarmQuarantine("crash loop"), 502, 6),
]


@pytest.mark.parametrize(
    "exc,http_status,exit_code",
    FIDELITY_TABLE,
    ids=[type(row[0]).__name__ for row in FIDELITY_TABLE],
)
def test_error_fidelity_pins_http_to_cli_exit_codes(
    exc, http_status, exit_code
):
    status, code = status_for(exc)
    assert status == http_status
    assert code == exit_code
    # The serve mapping and the CLI mapping must agree, forever.
    assert code == exit_code_for(exc)


def test_every_error_status_row_agrees_with_the_cli_table():
    for klass, _, exit_code in ERROR_STATUS:
        exc = klass.__new__(klass)
        Exception.__init__(exc, "x")
        assert exit_code_for(exc) == exit_code, klass.__name__


def test_unknown_errors_fall_back_to_500_and_exit_1():
    exc = errors.ReproError("unmapped")
    assert status_for(exc) == (500, 1)
    assert exit_code_for(exc) == 1


def test_error_body_carries_structured_payloads():
    exc = errors.FarmQuarantine(
        "boom", incidents=[{"workload": "strcpy", "attempts": 3}]
    )
    body = error_body(exc)
    assert body["schema"] == SERVE_SCHEMA
    error = body["error"]
    assert error["type"] == "FarmQuarantine"
    assert error["http_status"] == 502
    assert error["exit_code"] == 6
    assert error["incidents"] == [{"workload": "strcpy", "attempts": 3}]


def test_error_body_carries_verification_problems():
    exc = errors.VerificationError(["r1 != r2"])
    body = error_body(exc)
    assert body["error"]["problems"] == ["r1 != r2"]
    assert body["error"]["exit_code"] == 3


def test_rejection_body_carries_reason_and_retry_after():
    exc = errors.ServeRejected(
        "full", reason="queue-full", retry_after_s=7.0
    )
    body = error_body(exc)
    assert body["error"]["reason"] == "queue-full"
    assert body["error"]["retry_after_s"] == 7.0


# ----------------------------------------------------------------------
# Request validation
# ----------------------------------------------------------------------
def test_valid_workload_request_round_trips_through_payload():
    request = CompileRequest.from_json(
        {
            "workload": "strcpy",
            "client": "alice",
            "priority": 2,
            "deadline_s": 5,
            "trace": True,
        },
        default_id="r1",
    )
    assert request.id == "r1"
    assert request.workload == "strcpy"
    assert request.deadline_s == 5.0
    rebuilt = CompileRequest.from_json(request.payload(), default_id="x")
    assert rebuilt == request


def test_inline_source_request_accepts_args():
    request = CompileRequest.from_json(
        {"source": "int main() { return 0; }", "args": [1, 2]},
        default_id="r2",
    )
    assert request.source is not None
    assert request.args == (1, 2)
    assert request.program_name == "inline:main"


@pytest.mark.parametrize(
    "payload",
    [
        [],
        {},
        {"workload": "strcpy", "source": "int main() {}"},
        {"workload": "no-such-workload"},
        {"workload": "strcpy", "id": ""},
        {"workload": "strcpy", "client": ""},
        {"workload": "strcpy", "priority": -1},
        {"workload": "strcpy", "priority": True},
        {"workload": "strcpy", "deadline_s": 0},
        {"workload": "strcpy", "deadline_s": "fast"},
        {"workload": "strcpy", "args": "12"},
        {"workload": "strcpy", "args": [1, "two"]},
        {"workload": "strcpy", "entry": ""},
    ],
    ids=[
        "not-an-object", "no-program", "two-programs", "unknown-workload",
        "empty-id", "empty-client", "negative-priority", "bool-priority",
        "zero-deadline", "string-deadline", "string-args", "mixed-args",
        "empty-entry",
    ],
)
def test_malformed_requests_are_usage_errors(payload):
    with pytest.raises(errors.UsageError):
        CompileRequest.from_json(payload, default_id="r")
