"""Satellite: two clients share one warm cache; served == direct farm.

Two clients request the same workload fingerprint: exactly one cold
build happens, the second answer is a cache hit, and the deterministic
payload — including the CPR decision ledger inside the build report and
the ``farm.cache.*`` counters — is bit-identical between the served
path and a direct farm run against an equivalent cache.
"""

from __future__ import annotations

from repro.farm.farm import FarmOptions, build_farm
from tests.serve.conftest import client_for


def _direct(cache_root):
    options = FarmOptions(
        jobs=1, cache_root=str(cache_root), processors=("medium",)
    )
    return build_farm(["strcpy"], options)


def _cache_counters(counters: dict) -> dict:
    return {
        name: stat
        for name, stat in counters.items()
        if name.startswith("farm.cache.")
    }


def test_two_clients_one_cold_build_one_hit(
    serve_factory, tmp_path
):
    handle = serve_factory(
        backend_jobs=1,
        supervised=False,
        cache_root=str(tmp_path / "served-cache"),
        processors=("medium",),
    )
    client = client_for(handle)

    cold = client.compile(workload="strcpy", id="r1", client="alice")
    warm = client.compile(workload="strcpy", id="r2", client="bob")
    assert cold.status == 200 and warm.status == 200
    assert cold.body["from_cache"] is False
    assert warm.body["from_cache"] is True

    # The deterministic payload is identical cold vs warm...
    assert cold.body["summary"] == warm.body["summary"]

    # ...and bit-identical to a direct farm run with its own cache.
    direct_cold = _direct(tmp_path / "direct-cache")
    direct_warm = _direct(tmp_path / "direct-cache")
    assert cold.body["summary"] == direct_cold.summaries[0].comparable()
    assert warm.body["summary"] == direct_warm.summaries[0].comparable()

    # The decision ledger rides inside the report — pin it explicitly:
    # a served build decides exactly what a direct build decides.
    served_ledger = cold.body["summary"]["report"]["ledger"]
    direct_ledger = direct_cold.summaries[0].comparable()["report"]["ledger"]
    assert served_ledger == direct_ledger
    assert served_ledger["entries"], "expected a non-empty ledger"

    # farm.cache.* counters: served cold == direct cold, served warm ==
    # direct warm — the two paths report cache behaviour identically.
    served_cold = _cache_counters(cold.body["metrics"]["counters"])
    served_warm = _cache_counters(warm.body["metrics"]["counters"])
    assert served_cold == _cache_counters(
        direct_cold.metrics.counters.to_dict()
    )
    assert served_warm == _cache_counters(
        direct_warm.metrics.counters.to_dict()
    )
    assert served_warm["farm.cache.hits"]["total"] >= 1.0
    assert served_cold["farm.cache.hits"]["total"] == 0.0

    # Exactly one cold build: the daemon's aggregate says one miss-path
    # workload build and one eval-cache hit.
    metrics = client.metrics().body
    assert metrics["workloads"]["strcpy"]["from_cache"] is True
    assert metrics["counters"]["serve.accepted"]["count"] == 2
