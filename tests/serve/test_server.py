"""End-to-end daemon behaviour against the real farm backend.

These tests run the daemon in-process (real sockets, real HTTP parsing)
with the unsupervised farm backend — same compiler, same cache, same
deterministic summaries, without per-request process spawns.
"""

from __future__ import annotations

from repro.farm.farm import FarmOptions, build_farm
from repro.farm.metrics import METRICS_SCHEMA
from tests.serve.conftest import client_for

INLINE_SOURCE = """
int main() {
  int x;
  int y;
  x = 6;
  y = 7;
  return x * y;
}
"""


def _boot_farm_server(serve_factory, tmp_path, **overrides):
    options = dict(
        backend_jobs=1,
        supervised=False,
        cache_root=str(tmp_path / "cache"),
        processors=("medium",),
    )
    options.update(overrides)
    return serve_factory(**options)


def test_served_compile_matches_direct_farm(serve_factory, tmp_path):
    handle = _boot_farm_server(serve_factory, tmp_path)
    client = client_for(handle)
    response = client.compile(workload="strcpy", id="r1", client="t")
    assert response.status == 200, response.body
    direct = build_farm(
        ["strcpy"], FarmOptions(jobs=1, processors=("medium",))
    )
    assert response.body["summary"] == direct.summaries[0].comparable()
    assert response.body["from_cache"] is False
    assert response.body["shed_level"] == 0


def test_request_replay_and_unknown_id(serve_factory, tmp_path):
    handle = _boot_farm_server(serve_factory, tmp_path)
    client = client_for(handle)
    first = client.compile(workload="cmp", id="r1", client="t")
    assert first.status == 200
    # GET replays the identical body; a duplicate POST does too.
    replayed = client.request_status("r1")
    assert replayed.status == 200
    assert replayed.body == first.body
    reposted = client.compile(workload="cmp", id="r1", client="t")
    assert reposted.status == 200
    assert reposted.body == first.body
    metrics = client.metrics().body
    assert metrics["counters"]["serve.replayed"]["count"] == 2
    assert client.request_status("missing").status == 404


def test_inline_source_request(serve_factory, tmp_path):
    handle = _boot_farm_server(serve_factory, tmp_path)
    client = client_for(handle)
    response = client.compile(source=INLINE_SOURCE, id="r1", client="t")
    assert response.status == 200, response.body
    assert response.body["workload"] == "inline:main"
    assert response.body["summary"]["category"] == "inline"
    # Inline parse failures surface as 400 with the parser's message.
    bad = client.compile(source="int main( {", id="r2", client="t")
    assert bad.status == 400
    assert bad.body["error"]["type"] == "ParseError"
    assert bad.body["error"]["exit_code"] == 2


def test_trace_extras_ship_request_lifecycle_spans(
    serve_factory, tmp_path
):
    handle = _boot_farm_server(serve_factory, tmp_path)
    client = client_for(handle)
    response = client.compile(
        workload="strcpy", id="r1", client="t", trace=True
    )
    assert response.status == 200
    server_trace = response.body["server_trace"]
    root = server_trace["spans"][0]
    assert root["name"] == "request"
    phases = [child["name"] for child in root["children"]]
    assert phases == ["accept", "queue", "dispatch", "merge", "respond"]
    assert root["attrs"]["id"] == "r1"
    # The farm's own span tree rides along as "trace".
    assert "trace" in response.body


def test_healthz_and_metrics_document(serve_factory, tmp_path):
    handle = _boot_farm_server(serve_factory, tmp_path)
    client = client_for(handle)
    health = client.healthz().body
    assert health["status"] == "ok"
    assert health["shed_level_name"] == "full"
    client.compile(workload="strcpy", id="r1", client="t")
    metrics = client.metrics().body
    assert metrics["schema"] == METRICS_SCHEMA
    counters = metrics["counters"]
    assert counters["serve.accepted"]["count"] == 1
    assert "farm.cache.hits" in counters
    serve_section = metrics["serve"]
    assert serve_section["shed_level"] == 0
    assert serve_section["queue_limit"] == 16
    assert serve_section["draining"] is False
    # Per-workload farm metrics merged into the daemon aggregate.
    assert "strcpy" in metrics["workloads"]


def test_workloads_endpoint_and_404_route(serve_factory, tmp_path):
    handle = _boot_farm_server(serve_factory, tmp_path)
    client = client_for(handle)
    listing = client.workloads()
    assert listing.status == 200
    assert "strcpy" in listing.body["workloads"]
    missing = client._request("GET", "/v2/nothing")
    assert missing.status == 404
    assert missing.body["error"]["type"] == "NotFound"


def test_drain_rejects_new_work_then_exits(serve_factory, tmp_path):
    handle = _boot_farm_server(serve_factory, tmp_path)
    client = client_for(handle)
    drained = client.drain()
    assert drained.status == 200
    handle.thread.join(timeout=30.0)
    assert not handle.thread.is_alive()
