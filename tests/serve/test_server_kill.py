"""Chaos: SIGKILL the serve daemon mid-request, restart, recover.

Runs the ``--server-kill`` harness (one seed) against a real daemon
subprocess: the victim request is chosen by the seed, the daemon is
SIGKILLed only after the victim's accept record is durably journalled,
and after a ``--resume`` restart every accepted request must be either
answered identically to an undisturbed direct-farm run or explicitly
NACKed — and a re-submitted NACK must produce the reference answer.
"""

from __future__ import annotations

from repro.farm.farm import FarmOptions, build_farm
from repro.robustness.chaos import (
    SERVER_KILL_WORKLOADS,
    _comparable_map,
    run_server_kill_seed,
)


def test_server_kill_recovers_without_losing_requests(tmp_path):
    names = list(SERVER_KILL_WORKLOADS)
    reference = _comparable_map(
        build_farm(names, FarmOptions(jobs=1, processors=("medium",)))
    )
    verdict = run_server_kill_seed(0, names, tmp_path, reference)
    assert verdict.outcome == "recovered", verdict.render()
    # The victim was NACKed (or, if the race resolved first, replayed) —
    # either way its terminal state was explicit, never silent.
    assert "nacked=" in verdict.detail
