"""The overload-shedding ladder: documented order, ledger, recovery.

Drives the daemon into overload with a gated stub backend and asserts
the ladder climbs ``full -> no-extras -> cache-only ->
shed-low-priority`` one rung at a time, that each rung degrades exactly
as documented, that every transition lands in the decision ledger with
counters, and that sustained calm walks the ladder back down to full
service.
"""

from __future__ import annotations

import threading

from repro.serve.protocol import Outcome
from repro.serve.server import SHED_LEVELS
from tests.serve.conftest import StubBackend, client_for, wait_until


def _transitions(client):
    entries = client.metrics().body["serve"]["ledger"]["entries"]
    return [
        entry["attrs"]["to_level"]
        for entry in entries
        if entry["kind"] == "shed-transition"
    ]


def test_ladder_escalates_in_order_and_recovers(serve_factory):
    backend = StubBackend()
    backend.cache["strcpy"] = Outcome(
        summary={"name": "strcpy", "stub": True}, from_cache=True
    )
    backend.hold()
    handle = serve_factory(
        backend=backend,
        backend_jobs=1,
        queue_limit=4,
        rate=10_000.0,
        burst=10_000,
        shed_escalate=0.5,
        shed_deescalate=0.25,
        shed_sustain=2,
    )
    client = client_for(handle)
    server = handle.server

    # Fill the backend slot and the queue with uncached work.
    fillers = []
    responses = []

    def fire(rid):
        responses.append(
            client.compile(workload="cmp", id=rid, client="load")
        )

    for index in range(5):
        thread = threading.Thread(
            target=fire, args=(f"fill-{index}",), daemon=True
        )
        thread.start()
        fillers.append(thread)
        # Serialize admissions so occupancy samples are deterministic.
        wait_until(
            lambda i=index: len(backend.calls) + server.waiting == i + 1
        )
    # Sustained pressure has climbed one rung: extras are now dropped.
    assert server.shed_level == 1

    # Overflow at the full queue: first queue-full, then the ladder
    # climbs to cache-only and shed rejections take over.
    overflow = [
        client.compile(workload="cmp", id=f"over-{i}", client="load")
        for i in range(4)
    ]
    assert [r.status for r in overflow] == [429] * 4
    reasons = [r.body["error"]["reason"] for r in overflow]
    assert reasons[0] == "queue-full"
    assert set(reasons[1:]) == {"shed"}
    assert server.shed_level == 3
    assert _transitions(client) == [1, 2, 3]

    # Rung 3: low-priority clients are refused outright...
    low = client.compile(
        workload="strcpy", id="low-1", client="low", priority=0
    )
    assert low.status == 429
    assert low.body["error"]["reason"] == "shed"
    # ...normal-priority warm requests are still answered, cache-only,
    # with extras dropped.
    warm = client.compile(
        workload="strcpy", id="warm-1", client="vip", trace=True
    )
    assert warm.status == 200
    assert warm.body["from_cache"] is True
    assert "server_trace" not in warm.body
    counters = client.metrics().body["counters"]
    assert counters["serve.cache_only_hits"]["count"] == 1
    assert counters["serve.extras_dropped"]["count"] == 1
    assert counters["serve.shed"]["count"] >= 4

    # Calm: drain the queue, then sustained low occupancy walks the
    # ladder back down rung by rung to full service.
    backend.release()
    for thread in fillers:
        thread.join(timeout=30)
    assert sorted(r.status for r in responses) == [200] * 5
    probes = 0
    while server.shed_level > 0 and probes < 12:
        response = client.compile(
            workload="strcpy", id=f"probe-{probes}", client="probe"
        )
        assert response.status == 200
        probes += 1
    assert server.shed_level == 0
    assert _transitions(client) == [1, 2, 3, 2, 1, 0]
    final = client.metrics().body["counters"]
    assert final["serve.shed_transitions"]["count"] == 6
    # Ladder names are the documented order.
    assert SHED_LEVELS == (
        "full", "no-extras", "cache-only", "shed-low-priority"
    )
