"""Admission control: token buckets, bounded queue, deadlines, drain.

All tests use :class:`~tests.serve.conftest.StubBackend` with a
controllable gate, so "the backend is busy" is a test decision, not a
timing accident.
"""

from __future__ import annotations

import threading

from tests.serve.conftest import StubBackend, client_for, wait_until


def test_per_client_token_bucket_throttles_fairly(serve_factory):
    backend = StubBackend()
    handle = serve_factory(backend=backend, backend_jobs=2, rate=0.001,
                           burst=2)
    client = client_for(handle)
    # Client A spends its burst; the third request is throttled.
    first = client.compile(workload="strcpy", id="a1", client="alice")
    second = client.compile(workload="strcpy", id="a2", client="alice")
    throttled = client.compile(workload="strcpy", id="a3", client="alice")
    assert (first.status, second.status) == (200, 200)
    assert throttled.status == 429
    assert throttled.body["error"]["reason"] == "throttle"
    assert throttled.retry_after >= 1
    # Fairness: a different client has its own bucket and still gets in.
    other = client.compile(workload="strcpy", id="b1", client="bob")
    assert other.status == 200
    metrics = client.metrics().body["counters"]
    assert metrics["serve.accepted"]["count"] == 3
    assert metrics["serve.rejected"]["count"] == 1
    assert metrics["serve.rejected.throttle"]["count"] == 1


def test_bounded_queue_rejects_queue_full_with_retry_after(serve_factory):
    backend = StubBackend()
    backend.hold()
    handle = serve_factory(backend=backend, backend_jobs=1, queue_limit=2)
    client = client_for(handle)
    server = handle.server

    responses = []

    def fire(rid):
        responses.append(
            client.compile(workload="strcpy", id=rid, client=f"c-{rid}")
        )

    threads = []
    for index in range(3):
        thread = threading.Thread(
            target=fire, args=(f"r{index}",), daemon=True
        )
        thread.start()
        threads.append(thread)
        # Serialize admissions: a simultaneous burst may be rejected
        # conservatively while the first request is still between
        # admission and grabbing the free backend slot.
        wait_until(
            lambda i=index: len(backend.calls) + server.waiting == i + 1
        )
    # One request holds the backend slot, two wait in the queue.
    wait_until(lambda: server.waiting >= 2 and len(backend.calls) == 1)
    overflow = client.compile(workload="strcpy", id="r9", client="late")
    assert overflow.status == 429
    assert overflow.body["error"]["reason"] == "queue-full"
    assert overflow.retry_after >= 1
    backend.release()
    for thread in threads:
        thread.join(timeout=30)
    assert sorted(r.status for r in responses) == [200, 200, 200]
    counters = client.metrics().body["counters"]
    assert counters["serve.rejected.queue-full"]["count"] == 1
    # Queue-depth gauge recorded the high-water mark.
    assert counters["serve.queue_depth"]["max"] >= 2.0


def test_deadline_expires_in_queue_as_504_and_journal_nack(
    serve_factory, tmp_path
):
    backend = StubBackend()
    backend.hold()
    handle = serve_factory(
        backend=backend,
        backend_jobs=1,
        queue_limit=4,
        journal_path=str(tmp_path / "serve.journal"),
    )
    client = client_for(handle)
    server = handle.server
    blocker = threading.Thread(
        target=lambda: client.compile(
            workload="strcpy", id="slow", client="a"
        ),
        daemon=True,
    )
    blocker.start()
    wait_until(lambda: len(backend.calls) == 1)
    expired = client.compile(
        workload="strcpy", id="late", client="b", deadline_s=0.2
    )
    assert expired.status == 504
    assert expired.body["error"]["type"] == "FarmTimeout"
    assert expired.body["error"]["exit_code"] == 7
    # The accepted-then-expired request is an explicit NACK, queryable.
    nacked = client.request_status("late")
    assert nacked.status == 410
    assert nacked.body["reason"] == "deadline"
    counters = client.metrics().body["counters"]
    assert counters["serve.deadline_expired"]["count"] == 1
    assert counters["serve.nacked"]["count"] == 1
    backend.release()
    blocker.join(timeout=30)
    assert server.requests["slow"]["state"] == "done"


def test_duplicate_pending_id_conflicts(serve_factory):
    backend = StubBackend()
    backend.hold()
    handle = serve_factory(backend=backend, backend_jobs=1)
    client = client_for(handle)
    runner = threading.Thread(
        target=lambda: client.compile(workload="strcpy", id="dup",
                                      client="a"),
        daemon=True,
    )
    runner.start()
    wait_until(lambda: len(backend.calls) == 1)
    conflict = client.compile(workload="strcpy", id="dup", client="a")
    assert conflict.status == 409
    backend.release()
    runner.join(timeout=30)


def test_draining_daemon_answers_503(serve_factory):
    backend = StubBackend()
    handle = serve_factory(backend=backend)
    client = client_for(handle)
    handle.server._draining = True
    refused = client.compile(workload="strcpy", id="r1", client="a")
    assert refused.status == 503
    assert refused.body["error"]["type"] == "FarmInterrupted"
    assert refused.body["error"]["exit_code"] == 130
