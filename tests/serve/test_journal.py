"""The serve write-ahead journal: durability and recovery semantics."""

from __future__ import annotations

import json

import pytest

from repro.errors import UsageError
from repro.serve.journal import (
    DONE,
    NACKED,
    PENDING,
    SERVE_JOURNAL_SCHEMA,
    ServeJournal,
    load_serve_journal,
    recover,
)


def _write_basic(path):
    journal = ServeJournal(path)
    journal.accept("a", {"workload": "strcpy"})
    journal.respond("a", 200, {"id": "a", "summary": {"x": 1}})
    journal.accept("b", {"workload": "cmp"})
    journal.close()
    return journal


def test_round_trip_states(tmp_path):
    path = tmp_path / "serve.journal"
    _write_basic(path)
    state = load_serve_journal(path)
    assert state.header["schema"] == SERVE_JOURNAL_SCHEMA
    assert state.order == ["a", "b"]
    assert state.states == {"a": DONE, "b": PENDING}
    assert state.responses["a"]["status"] == 200
    assert state.unresolved() == ["b"]
    assert not state.truncated


def test_nack_resolves_and_resubmission_supersedes(tmp_path):
    path = tmp_path / "serve.journal"
    journal = ServeJournal(path)
    journal.accept("a", {"workload": "strcpy"})
    journal.nack("a", "deadline")
    state = load_serve_journal(path)
    assert state.states["a"] == NACKED
    assert state.nacks["a"] == "deadline"
    # Re-submitting the same id after a NACK: in-order replay makes the
    # later accept (and its response) the final word.
    journal.accept("a", {"workload": "strcpy"})
    journal.respond("a", 200, {"id": "a"})
    journal.close()
    state = load_serve_journal(path)
    assert state.states["a"] == DONE
    assert state.order == ["a"]


def test_truncated_tail_is_tolerated(tmp_path):
    path = tmp_path / "serve.journal"
    _write_basic(path)
    # Simulate SIGKILL mid-append: a half-written record at the tail.
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"kind": "respond", "id": "b", "stat')
    state = load_serve_journal(path)
    assert state.truncated
    # The half-written response never happened: b is still pending.
    assert state.states["b"] == PENDING
    assert state.unresolved() == ["b"]


def test_schema_mismatch_and_missing_header_are_usage_errors(tmp_path):
    bad_schema = tmp_path / "bad.journal"
    bad_schema.write_text(
        json.dumps({"kind": "header", "schema": "other/v9"}) + "\n"
    )
    with pytest.raises(UsageError):
        load_serve_journal(bad_schema)
    headerless = tmp_path / "headerless.journal"
    headerless.write_text(
        json.dumps({"kind": "accept", "id": "a", "request": {}}) + "\n"
    )
    with pytest.raises(UsageError):
        load_serve_journal(headerless)
    with pytest.raises(UsageError):
        load_serve_journal(tmp_path / "absent.journal")


def test_recover_nacks_unresolved_accepts(tmp_path):
    path = tmp_path / "serve.journal"
    _write_basic(path)
    journal, state, nacked = recover(path, resume=True)
    journal.close()
    assert nacked == ["b"]
    assert state.states["b"] == NACKED
    assert state.nacks["b"] == "server-restart"
    # The NACKs are durable: a second recovery sees them on disk.
    journal2, state2, nacked2 = recover(path, resume=True)
    journal2.close()
    assert nacked2 == []
    assert state2.states == {"a": DONE, "b": NACKED}
    assert state2.responses["a"]["body"]["summary"] == {"x": 1}


def test_recover_without_resume_truncates(tmp_path):
    path = tmp_path / "serve.journal"
    _write_basic(path)
    journal, state, nacked = recover(path, resume=False)
    journal.close()
    assert state is None and nacked == []
    fresh = load_serve_journal(path)
    assert fresh.order == []
    assert fresh.header["pid"]
