"""The serve write-ahead journal: durability and recovery semantics."""

from __future__ import annotations

import json

import pytest

from repro.errors import UsageError
from repro.serve.journal import (
    DONE,
    NACKED,
    PENDING,
    SERVE_JOURNAL_SCHEMA,
    ServeJournal,
    load_serve_journal,
    recover,
)


def _write_basic(path):
    journal = ServeJournal(path)
    journal.accept("a", {"workload": "strcpy"})
    journal.respond("a", 200, {"id": "a", "summary": {"x": 1}})
    journal.accept("b", {"workload": "cmp"})
    journal.close()
    return journal


def test_round_trip_states(tmp_path):
    path = tmp_path / "serve.journal"
    _write_basic(path)
    state = load_serve_journal(path)
    assert state.header["schema"] == SERVE_JOURNAL_SCHEMA
    assert state.order == ["a", "b"]
    assert state.states == {"a": DONE, "b": PENDING}
    assert state.responses["a"]["status"] == 200
    assert state.unresolved() == ["b"]
    assert not state.truncated


def test_nack_resolves_and_resubmission_supersedes(tmp_path):
    path = tmp_path / "serve.journal"
    journal = ServeJournal(path)
    journal.accept("a", {"workload": "strcpy"})
    journal.nack("a", "deadline")
    state = load_serve_journal(path)
    assert state.states["a"] == NACKED
    assert state.nacks["a"] == "deadline"
    # Re-submitting the same id after a NACK: in-order replay makes the
    # later accept (and its response) the final word.
    journal.accept("a", {"workload": "strcpy"})
    journal.respond("a", 200, {"id": "a"})
    journal.close()
    state = load_serve_journal(path)
    assert state.states["a"] == DONE
    assert state.order == ["a"]


def test_truncated_tail_is_tolerated(tmp_path):
    path = tmp_path / "serve.journal"
    _write_basic(path)
    # Simulate SIGKILL mid-append: a half-written record at the tail.
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"kind": "respond", "id": "b", "stat')
    state = load_serve_journal(path)
    assert state.truncated
    # The half-written response never happened: b is still pending.
    assert state.states["b"] == PENDING
    assert state.unresolved() == ["b"]


def test_schema_mismatch_and_missing_header_are_usage_errors(tmp_path):
    bad_schema = tmp_path / "bad.journal"
    bad_schema.write_text(
        json.dumps({"kind": "header", "schema": "other/v9"}) + "\n"
    )
    with pytest.raises(UsageError):
        load_serve_journal(bad_schema)
    headerless = tmp_path / "headerless.journal"
    headerless.write_text(
        json.dumps({"kind": "accept", "id": "a", "request": {}}) + "\n"
    )
    with pytest.raises(UsageError):
        load_serve_journal(headerless)
    with pytest.raises(UsageError):
        load_serve_journal(tmp_path / "absent.journal")


def test_recover_nacks_unresolved_accepts(tmp_path):
    path = tmp_path / "serve.journal"
    _write_basic(path)
    journal, state, nacked = recover(path, resume=True)
    journal.close()
    assert nacked == ["b"]
    assert state.states["b"] == NACKED
    assert state.nacks["b"] == "server-restart"
    # The NACKs are durable: a second recovery sees them on disk.
    journal2, state2, nacked2 = recover(path, resume=True)
    journal2.close()
    assert nacked2 == []
    assert state2.states == {"a": DONE, "b": NACKED}
    assert state2.responses["a"]["body"]["summary"] == {"x": 1}


def test_recover_without_resume_truncates(tmp_path):
    path = tmp_path / "serve.journal"
    _write_basic(path)
    journal, state, nacked = recover(path, resume=False)
    journal.close()
    assert state is None and nacked == []
    fresh = load_serve_journal(path)
    assert fresh.order == []
    assert fresh.header["pid"]


# ----------------------------------------------------------------------
# v2 framing: corruption containment and v1 compat
# ----------------------------------------------------------------------
def _corrupt_record(path, kind, rid):
    """Rot the matching record: still valid JSON, digest now wrong."""
    lines = path.read_text(encoding="utf-8").splitlines()
    for index, line in enumerate(lines[1:], start=1):
        envelope = json.loads(line)
        record = envelope.get("r", {})
        if record.get("kind") == kind and record.get("id") == rid:
            record["body"] = {"id": rid, "summary": {"x": 999}}
            lines[index] = json.dumps(envelope, sort_keys=True)
            break
    else:
        raise AssertionError(f"no {kind} record for {rid}")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def test_corrupt_respond_is_nacked_never_replayed(tmp_path):
    """A flipped bit in a recorded response: the client gets an honest
    410, never the rotted bytes."""
    path = tmp_path / "serve.journal"
    journal = ServeJournal(path)
    journal.accept("a", {"workload": "strcpy"})
    journal.respond("a", 200, {"id": "a", "summary": {"x": 1}})
    journal.accept("b", {"workload": "cmp"})
    journal.respond("b", 200, {"id": "b", "summary": {"x": 2}})
    journal.close()
    _corrupt_record(path, "respond", "b")

    state = load_serve_journal(path)
    assert state.corrupt == 1
    assert state.states["b"] == PENDING  # the rotted answer never happened
    assert "b" not in state.responses

    journal2, recovered, nacked = recover(path, resume=True)
    journal2.close()
    assert nacked == ["b"]
    assert recovered.states == {"a": DONE, "b": NACKED}
    # The intact response replays verbatim.
    assert recovered.responses["a"]["body"]["summary"] == {"x": 1}


def test_v1_serve_journal_loads_and_takes_v2_appends(tmp_path):
    path = tmp_path / "serve.journal"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({
            "kind": "header",
            "schema": "repro.serve.journal/v1",
            "pid": 1234,
        }) + "\n")
        handle.write(json.dumps({
            "kind": "accept", "id": "a", "request": {"workload": "strcpy"},
        }) + "\n")
        handle.write(json.dumps({
            "kind": "respond", "id": "a", "status": 200, "body": {"id": "a"},
        }) + "\n")
    state = load_serve_journal(path)
    assert state.corrupt == 0 and state.valid == 2
    assert state.states == {"a": DONE}

    # A resumed daemon appends framed records; the mixed file still loads.
    journal = ServeJournal(path, resume=True)
    journal.accept("b", {"workload": "cmp"})
    journal.close()
    mixed = load_serve_journal(path)
    assert mixed.states == {"a": DONE, "b": PENDING}
    assert mixed.corrupt == 0 and mixed.valid == 3


def test_append_fault_raises_journal_write_error(tmp_path):
    from repro.errors import JournalWriteError
    from repro.storage.faults import (
        StorageFaultPlan,
        StorageFaultSpec,
        activate_storage_faults,
    )

    journal = ServeJournal(tmp_path / "serve.journal")
    plan = StorageFaultPlan(
        [StorageFaultSpec("eio", op="journal-append", times=0)]
    )
    with activate_storage_faults(plan):
        with pytest.raises(JournalWriteError):
            journal.accept("a", {"workload": "strcpy"})
    journal.close()
