"""Decision-ledger unit tests: rollback, replay, uid-free identity."""

import json

from repro.obs import (
    DecisionLedger,
    LedgerEntry,
    activate_ledger,
    current_ledger,
    ledger_record,
    ledger_record_unique,
)


def test_entry_is_immutable_sorted_and_queryable():
    entry = LedgerEntry.make("match-accept", "main", "entry", size=3, b=1)
    assert entry.attrs == (("b", 1), ("size", 3))  # sorted, hashable
    assert entry.get("size") == 3
    assert entry.get("missing", 42) == 42
    assert entry == LedgerEntry.make("match-accept", "main", "entry", b=1,
                                     size=3)


def test_signature_is_stable_and_content_addressed():
    a = LedgerEntry.make("cpr-transform", "main", "loop", size=2)
    b = LedgerEntry.make("cpr-transform", "main", "loop", size=2)
    c = LedgerEntry.make("cpr-transform", "main", "loop", size=3)
    assert a.signature == b.signature
    assert a.signature != c.signature
    assert len(a.signature) == 16


def test_serialization_roundtrip_through_json():
    ledger = DecisionLedger()
    ledger.record("match-seed", "main", "b0", reason="no-suitable-compare")
    ledger.record("cpr-transform", "main", "b1", size=4, variation="taken")
    data = json.loads(json.dumps(ledger.to_dict()))
    rebuilt = DecisionLedger.from_dict(data)
    assert rebuilt.entries == ledger.entries
    assert rebuilt.to_dict() == ledger.to_dict()


def test_render_and_summary():
    ledger = DecisionLedger()
    ledger.record("match-accept", "main", "entry", size=2)
    ledger.record("match-accept", "main", "loop", size=3)
    ledger.record("speculate-promote", "main", "loop", op_index=1)
    assert "match-accept" in ledger.entries[0].render()
    assert "main/entry" in ledger.entries[0].render()
    summary = ledger.summary()
    assert "match-accept" in summary and "2" in summary
    assert DecisionLedger().summary() == "(empty ledger)"


def test_mark_rewind_discards_a_failed_rungs_entries():
    """The pass-manager discipline: entries from a rolled-back rung must
    not survive in the ledger."""
    ledger = DecisionLedger()
    ledger.record("match-accept", "main", "entry", size=2)
    mark = ledger.mark()
    ledger.record("speculate-promote", "main", "loop", op_index=0)
    ledger.record("cpr-transform", "main", "loop", size=2)
    ledger.rewind(mark)
    assert [e.kind for e in ledger.entries] == ["match-accept"]
    # A rewound unique entry can be recorded again afterwards.
    mark = ledger.mark()
    assert ledger.record_unique("estimator-clamp", "main", "b", taken=5)
    ledger.rewind(mark)
    assert ledger.record_unique("estimator-clamp", "main", "b", taken=5)


def test_record_unique_dedups_identical_entries():
    ledger = DecisionLedger()
    assert ledger.record_unique("estimator-clamp", "m", "b", taken=9)
    assert ledger.record_unique("estimator-clamp", "m", "b", taken=9) is None
    assert len(ledger.entries) == 1


def test_entries_since_and_replay_reproduce_a_transaction():
    """Cache semantics: the entries a committed rung wrote are carried in
    the transaction record and replayed verbatim on a warm restore."""
    cold = DecisionLedger()
    mark = cold.mark()
    cold.record("speculate-promote", "main", "loop", op_index=3)
    cold.record("cpr-transform", "main", "loop", size=2)
    carried = cold.entries_since(mark)

    warm = DecisionLedger()
    warm.replay(carried)
    assert warm.entries == cold.entries


def test_drop_removes_matching_entries_and_reports_count():
    ledger = DecisionLedger()
    ledger.record("speculate-promote", "main", "gone", op_index=0)
    ledger.record("speculate-promote", "main", "kept", op_index=1)
    ledger.record("cpr-transform", "main", "kept", size=2)
    dropped = ledger.drop(lambda e: e.block == "gone")
    assert dropped == 1
    assert all(e.block == "kept" for e in ledger.entries)


def test_merge_concatenates_reports():
    first = DecisionLedger()
    first.record("match-accept", "a", "b", size=2)
    second = DecisionLedger()
    second.record("estimator-clamp", "a", "b", taken=7)
    merged = first.merge(second)
    assert [e.kind for e in merged.entries] == [
        "match-accept", "estimator-clamp",
    ]
    assert len(first.entries) == 1 and len(second.entries) == 1


def test_of_kind_and_counts():
    ledger = DecisionLedger()
    for _ in range(3):
        ledger.record("speculate-promote", "m", "b", op_index=_)
    ledger.record("speculate-demote", "m", "b", op_index=9)
    assert len(ledger.of_kind("speculate-promote")) == 3
    assert ledger.counts() == {
        "speculate-promote": 3, "speculate-demote": 1,
    }


def test_context_activation_records_into_the_active_ledger():
    assert current_ledger() is None
    ledger_record("match-seed", "m", "b")  # no-op, no error
    ledger = DecisionLedger()
    with activate_ledger(ledger):
        assert current_ledger() is ledger
        ledger_record("match-seed", "m", "b", reason="x")
        ledger_record_unique("estimator-clamp", "m", "b", taken=1)
        ledger_record_unique("estimator-clamp", "m", "b", taken=1)
    assert current_ledger() is None
    assert [e.kind for e in ledger.entries] == [
        "match-seed", "estimator-clamp",
    ]
