"""Span tracer unit tests: nesting, the no-op default, export forms."""

import json

import pytest

from repro.obs import (
    CHROME_EVENT_FIELDS,
    NULL_SPAN,
    TRACE_SCHEMA,
    CounterSet,
    Tracer,
    activate_tracer,
    chrome_trace_document,
    current_tracer,
    trace_span,
)


def test_trace_span_is_noop_without_active_tracer():
    assert current_tracer() is None
    span = trace_span("anything", kind="phase")
    assert span is NULL_SPAN
    with span as inner:
        inner.set_attr("ignored", 1)  # swallowed, never raises


def test_spans_nest_and_carry_time_and_attrs():
    tracer = Tracer()
    with activate_tracer(tracer):
        with trace_span("outer", kind="workload") as outer:
            with trace_span("inner") as inner:
                inner.set_attr("ops_before", 3)
    assert [s.name for s in tracer.walk()] == ["outer", "inner"]
    assert tracer.roots == [outer]
    assert outer.children == [inner]
    assert outer.kind == "workload" and inner.kind == "phase"
    assert inner.attrs["ops_before"] == 3
    # Nesting invariants: child starts after parent, ends within it.
    assert inner.start_s >= outer.start_s
    assert inner.end_s <= outer.end_s + 1e-9
    assert outer.duration_s >= 0 and inner.duration_s >= 0


def test_pop_tolerates_exceptions_unwinding_through_spans():
    tracer = Tracer()
    with activate_tracer(tracer):
        with pytest.raises(RuntimeError):
            with trace_span("outer"):
                with trace_span("inner"):
                    raise RuntimeError("boom")
        # The stack fully unwound: the next span opens at depth zero.
        with trace_span("after"):
            pass
    assert [root.name for root in tracer.roots] == ["outer", "after"]


def test_activation_is_scoped():
    tracer = Tracer()
    with activate_tracer(tracer):
        assert current_tracer() is tracer
        with activate_tracer(None):
            assert trace_span("x") is NULL_SPAN
        assert current_tracer() is tracer
    assert current_tracer() is None


def test_serialization_roundtrip_through_json():
    tracer = Tracer()
    with activate_tracer(tracer):
        with trace_span("a", kind="stage", ops_begin=1):
            with trace_span("b"):
                pass
    data = tracer.to_dict()
    assert data["schema"] == TRACE_SCHEMA
    rebuilt = Tracer.from_dict(json.loads(json.dumps(data)))
    assert rebuilt.to_dict() == data


def test_chrome_events_have_the_stable_field_set():
    tracer = Tracer()
    with activate_tracer(tracer):
        with trace_span("a"):
            with trace_span("b"):
                pass
    events = tracer.chrome_events(pid=7, tid=2)
    assert len(events) == 2
    for event in events:
        assert tuple(event.keys()) == CHROME_EVENT_FIELDS
        assert event["ph"] == "X"
        assert event["pid"] == 7 and event["tid"] == 2
        assert event["ts"] >= 0 and event["dur"] >= 0


def test_chrome_trace_document_gives_each_workload_a_pid():
    traces = {}
    for name in ("first", "second"):
        tracer = Tracer()
        with activate_tracer(tracer), trace_span(f"workload:{name}"):
            pass
        traces[name] = tracer.to_dict()
    document = chrome_trace_document(traces)
    assert document["displayTimeUnit"] == "ms"
    metadata = [e for e in document["traceEvents"] if e["ph"] == "M"]
    assert {e["args"]["name"] for e in metadata} == {"first", "second"}
    assert {e["pid"] for e in document["traceEvents"]} == {1, 2}


def test_summary_renders_tree_attrs_and_counters():
    tracer = Tracer()
    with activate_tracer(tracer):
        with trace_span("workload:w", kind="workload"):
            with trace_span("dce:main", kind="transaction") as span:
                span.set_attr("ops_before", 9)
                span.set_attr("ops_after", 7)
                span.set_attr("cache", "miss")
    counters = CounterSet()
    counters.add("sched.ops_scheduled", 12)
    tracer.counters = counters
    text = tracer.summary()
    lines = text.splitlines()
    assert lines[0].startswith("workload:w")
    assert lines[1].startswith("  dce:main")
    assert "ops 9->7" in lines[1] and "cache=miss" in lines[1]
    assert "counters:" in text and "sched.ops_scheduled" in text
