"""Counter/gauge unit tests and their merge semantics."""

from repro.obs import (
    CounterSet,
    CounterStat,
    activate_counters,
    current_counters,
    record_counter,
)


def test_stat_tracks_count_total_and_max():
    stat = CounterStat()
    for value in (3, 7, 2):
        stat.add(value)
    assert stat.count == 3 and stat.total == 12 and stat.max == 7


def test_counter_set_accumulates_and_defaults():
    counters = CounterSet()
    counters.add("sched.ops_scheduled", 5)
    counters.add("sched.ops_scheduled", 4)
    counters.add("farm.task_queue_depth")
    assert counters.get("sched.ops_scheduled").total == 9
    assert counters.get("farm.task_queue_depth").count == 1
    missing = counters.get("not-there")
    assert missing.count == 0 and missing.total == 0


def test_merge_is_associative_across_workers():
    a = CounterSet()
    a.add("x", 2)
    a.add("x", 4)
    b = CounterSet()
    b.add("x", 9)
    b.add("y", 1)
    merged = a.merge(b)
    assert merged.get("x").count == 3
    assert merged.get("x").total == 15
    assert merged.get("x").max == 9
    assert merged.get("y").count == 1
    # Merge builds a fresh set; the inputs are untouched.
    assert a.get("x").count == 2 and b.get("x").count == 1


def test_serialization_roundtrip_sorted():
    counters = CounterSet()
    counters.add("zeta", 1)
    counters.add("alpha", 2)
    data = counters.to_dict()
    assert list(data) == ["alpha", "zeta"]
    rebuilt = CounterSet.from_dict(data)
    assert rebuilt.to_dict() == data


def test_record_counter_is_noop_when_inactive():
    assert current_counters() is None
    record_counter("anything", 5)  # swallowed
    counters = CounterSet()
    with activate_counters(counters):
        record_counter("anything", 5)
    assert current_counters() is None
    assert counters.get("anything").total == 5


def test_format_lines_are_stable():
    counters = CounterSet()
    counters.add("sched.block_cycles", 12)
    (line,) = counters.format_lines()
    assert line.startswith("sched.block_cycles")
    assert "count=1" in line and "total=12" in line and "max=12" in line
