"""Golden-file tests for ``repro trace`` and the Chrome trace export.

The terminal tree is compared against a checked-in golden with wall
times normalized (``NN.Nms`` -> ``#ms``): the span structure, op deltas,
ledger entries, and counter values are all deterministic, only timings
churn. The Chrome document is checked for its stable field set and for
being uid-free: two independent builds of the same workload must export
*identical* documents once timings are zeroed, which no process-local
uid could survive.
"""

import json
import re
from pathlib import Path

from repro.__main__ import main
from repro.farm.farm import FarmOptions, build_farm
from repro.obs import CHROME_EVENT_FIELDS, TRACE_SCHEMA

GOLDEN = Path(__file__).parent / "golden"

_TIME = re.compile(r"\d+\.\d+ms")


def normalize(text: str) -> str:
    return _TIME.sub("#ms", text)


def structure(span: dict):
    """A span tree reduced to its deterministic skeleton."""
    return {
        "name": span["name"],
        "kind": span["kind"],
        "attrs": sorted(span["attrs"]),
        "children": [structure(child) for child in span["children"]],
    }


def test_trace_strcpy_matches_golden(capsys, tmp_path):
    json_path = tmp_path / "trace.json"
    assert main(["trace", "strcpy", "--json", str(json_path)]) == 0
    out = capsys.readouterr().out
    golden = (GOLDEN / "trace_strcpy.txt").read_text()
    assert normalize(out) == golden

    document = json.loads(json_path.read_text())
    assert document["schema"] == TRACE_SCHEMA
    skeleton = [structure(span) for span in document["spans"]]
    golden_skeleton = json.loads(
        (GOLDEN / "trace_strcpy_spans.json").read_text()
    )
    assert skeleton == golden_skeleton


def test_trace_kind_filter(capsys):
    assert main(["trace", "strcpy", "--kind", "cpr-transform"]) == 0
    out = capsys.readouterr().out
    assert "kind=cpr-transform" in out
    lines = [l for l in out.splitlines() if l.startswith("  cpr-transform")]
    assert len(lines) >= 1
    assert "claim_executed=" in lines[0]
    # The filter really filters: no other kinds in the entry listing.
    assert "speculate-promote" not in out.split("decision ledger")[1]


def _chrome_doc():
    farm = build_farm(["strcpy"], FarmOptions(trace=True))
    return farm.chrome_trace()


def _timeless(document: dict) -> dict:
    events = []
    for event in document["traceEvents"]:
        event = dict(event)
        event.pop("ts", None)
        event.pop("dur", None)
        events.append(event)
    return {"traceEvents": events}


def test_chrome_document_schema_and_uid_freedom():
    first = _chrome_doc()
    for event in first["traceEvents"]:
        if event["ph"] == "M":
            continue
        assert tuple(event.keys()) == CHROME_EVENT_FIELDS
        assert event["ph"] == "X"
        assert isinstance(event["args"], dict)
    # Two independent builds mint entirely different op uids; identical
    # exports (minus wall time) prove nothing process-local leaked in.
    second = _chrome_doc()
    assert json.dumps(_timeless(first), sort_keys=True) == json.dumps(
        _timeless(second), sort_keys=True
    )
