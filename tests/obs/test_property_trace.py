"""Property-based trace and ledger invariants on random superblocks.

Hypothesis drives the full pipeline over random superblock loops (the
same generator as the ICBM equivalence property test) with tracing and
the decision ledger armed, then checks structural invariants that must
hold for *any* program:

* spans nest (children start/end within their parent) and no span has a
  negative duration;
* a stage span's ``ops_begin``/``ops_end`` delta equals the sum of its
  descendants' ``ops_delta`` attributions — every op the stage added or
  removed is accounted to exactly one transaction or fallback phase;
* ledger entries reference live procedures/blocks of the final program;
* every ``cpr-transform`` entry's claimed bypass branch counts equal the
  interpreter-measured profile of the transformed program.
"""

from hypothesis import given, settings

from repro.ir.opcodes import Opcode
from repro.obs import Tracer, activate_tracer
from repro.pipeline import PipelineOptions, build_workload

from tests.integration.test_property_random_superblocks import (
    build_program,
    superblock_programs,
)


def _traced_build(case):
    recipe, data = case
    program = build_program(recipe)

    def setup(interp):
        interp.poke_array("A", data)
        return (
            interp.segment_base("A"),
            interp.segment_base("B"),
            max(1, len(data) // 4),
        )

    tracer = Tracer()
    with activate_tracer(tracer):
        build = build_workload("rand", program, [setup], PipelineOptions())
    return tracer, build


@settings(max_examples=15, deadline=None)
@given(superblock_programs())
def test_span_nesting_and_durations(case):
    tracer, _ = _traced_build(case)
    assert tracer.roots, "a traced build must produce spans"
    for span in tracer.walk():
        assert span.duration_s >= 0
        for child in span.children:
            assert child.start_s >= span.start_s - 1e-9
            assert child.end_s <= span.end_s + 1e-9


@settings(max_examples=15, deadline=None)
@given(superblock_programs())
def test_stage_op_deltas_are_fully_attributed(case):
    tracer, _ = _traced_build(case)
    stages = [s for s in tracer.walk() if s.kind == "stage"]
    assert len(stages) == 2  # stage:baseline, stage:cpr
    for stage in stages:
        begin = stage.attrs["ops_begin"]
        end = stage.attrs["ops_end"]
        attributed = sum(
            span.attrs["ops_delta"]
            for span in stage.walk()
            if span is not stage and "ops_delta" in span.attrs
        )
        assert end - begin == attributed, (
            f"{stage.name}: {end - begin} != attributed {attributed}"
        )


@settings(max_examples=15, deadline=None)
@given(superblock_programs())
def test_ledger_entries_reference_live_blocks(case):
    _, build = _traced_build(case)
    program = build.transformed
    for entry in build.build_report.ledger.entries:
        assert entry.proc in program.procedures, entry
        if entry.kind in (
            "speculate-promote", "speculate-demote", "cpr-transform",
        ):
            labels = {
                b.label.name for b in program.procedures[entry.proc].blocks
            }
            assert entry.block in labels, entry


@settings(max_examples=15, deadline=None)
@given(superblock_programs())
def test_cpr_transform_claims_match_the_interpreter(case):
    _, build = _traced_build(case)
    for entry in build.build_report.ledger.of_kind("cpr-transform"):
        proc = build.transformed.procedures[entry.proc]
        block = next(
            b for b in proc.blocks if b.label.name == entry.block
        )
        bypass = block.exit_branches()[entry.get("bypass_exit_index")]
        assert bypass.opcode is Opcode.BRANCH
        measured = build.transformed_profile.branch_profile(
            entry.proc, bypass
        )
        assert measured.executed == entry.get("claim_executed"), entry
        assert measured.taken == entry.get("claim_taken"), entry
