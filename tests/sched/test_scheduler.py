"""EPIC list scheduling: dependences, resources, branch overlap."""

from repro.analysis import DependenceGraph, LivenessAnalysis
from repro.ir import (
    Cond,
    IRBuilder,
    Opcode,
    Procedure,
    Reg,
)
from repro.machine import (
    INFINITE,
    MEDIUM,
    NARROW,
    PAPER_LATENCIES,
    SEQUENTIAL,
    WIDE,
)
from repro.opt import frp_convert_block
from repro.sched import schedule_block, schedule_procedure
from tests.conftest import build_strcpy_program


def assert_schedule_valid(block, schedule, processor, liveness=None):
    """Invariant checker: every dependence and resource constraint holds."""
    graph = DependenceGraph(
        block, processor.latencies, liveness=liveness
    )
    cycles = schedule.cycles
    for edge in graph.edges:
        src_cycle = cycles[graph.ops[edge.src].uid]
        dst_cycle = cycles[graph.ops[edge.dst].uid]
        assert dst_cycle >= src_cycle + edge.latency, (
            f"violated {edge}: {src_cycle} -> {dst_cycle}"
        )
    # Resource constraints.
    from collections import Counter

    per_cycle = Counter()
    for op in block.ops:
        per_cycle[(cycles[op.uid], op.opcode.unit_class())] += 1
    for (cycle, unit), used in per_cycle.items():
        capacity = processor.unit_counts[unit]
        if capacity is not None:
            assert used <= capacity, f"{unit} oversubscribed at {cycle}"
    if processor.issue_width is not None:
        totals = Counter()
        for op in block.ops:
            totals[cycles[op.uid]] += 1
        assert all(v <= processor.issue_width for v in totals.values())


def test_simple_chain_length():
    proc = Procedure("f", params=[Reg(i) for i in range(1, 10)])
    b = IRBuilder(proc)
    b.start_block("B")
    v = b.load(Reg(1))           # cycles 0-1
    w = b.add(v, 1)              # cycle 2
    b.store(Reg(2), w)           # cycle 3
    b.ret(0)
    schedule = schedule_block(proc.block("B"), INFINITE)
    # load 0-1, add 2, store 3; the return co-issues with the store.
    assert schedule.length == 4


def test_sequential_machine_length_is_op_count():
    program = build_strcpy_program(unroll=4)
    proc = program.procedure("main")
    block = proc.block("Loop")
    schedule = schedule_block(
        block, SEQUENTIAL, liveness=LivenessAnalysis(proc)
    )
    assert schedule.length >= len(block.ops)
    assert_schedule_valid(
        block, schedule, SEQUENTIAL, LivenessAnalysis(proc)
    )


def test_branch_chain_dominates_baseline():
    """Sequential (non-FRP) branches serialize one per cycle even on the
    infinite machine."""
    program = build_strcpy_program(unroll=6)
    proc = program.procedure("main")
    block = proc.block("Loop")
    liveness = LivenessAnalysis(proc)
    schedule = schedule_block(block, INFINITE, liveness=liveness)
    branches = block.exit_branches()
    cycles = sorted(schedule.cycles[br.uid] for br in branches)
    for earlier, later in zip(cycles, cycles[1:]):
        assert later > earlier


def test_frp_branches_freely_reorderable():
    """FRP conversion removes branch-to-branch control dependences; the
    residual serialization is the *data* chain through the compares (the
    paper's Section 4.1 point), which ICBM then height-reduces."""
    program = build_strcpy_program(unroll=6)
    proc = program.procedure("main")
    block = proc.block("Loop")
    frp_convert_block(proc, block)
    liveness = LivenessAnalysis(proc)
    graph = DependenceGraph(block, PAPER_LATENCIES, liveness=liveness)
    branch_positions = {
        i for i, op in enumerate(graph.ops)
        if op.opcode is Opcode.BRANCH
    }
    for edge in graph.edges:
        if edge.src in branch_positions and edge.dst in branch_positions:
            assert edge.kind != "control"
    schedule = schedule_block(block, INFINITE, liveness=liveness)
    assert_schedule_valid(block, schedule, INFINITE, liveness)


def test_all_paper_machines_produce_valid_schedules():
    program = build_strcpy_program(unroll=4)
    proc = program.procedure("main")
    liveness = LivenessAnalysis(proc)
    for machine in (SEQUENTIAL, NARROW, MEDIUM, WIDE, INFINITE):
        for block in proc.blocks:
            schedule = schedule_block(block, machine, liveness=liveness)
            assert_schedule_valid(block, schedule, machine, liveness)
            assert schedule.length >= 1


def test_narrower_machine_never_faster():
    program = build_strcpy_program(unroll=4)
    proc = program.procedure("main")
    block = proc.block("Loop")
    liveness = LivenessAnalysis(proc)
    lengths = [
        schedule_block(block, machine, liveness=liveness).length
        for machine in (SEQUENTIAL, NARROW, MEDIUM, WIDE, INFINITE)
    ]
    for wider, narrower in zip(lengths[1:], lengths):
        assert wider <= narrower


def test_exit_cycle_includes_branch_latency():
    program = build_strcpy_program(unroll=2)
    proc = program.procedure("main")
    block = proc.block("Loop")
    schedule = schedule_block(
        block, MEDIUM, liveness=LivenessAnalysis(proc)
    )
    branch = block.exit_branches()[0]
    assert schedule.exit_cycle(branch) == (
        schedule.cycles[branch.uid] + PAPER_LATENCIES.branch
    )


def test_schedule_procedure_covers_all_blocks():
    program = build_strcpy_program()
    proc = program.procedure("main")
    schedules = schedule_procedure(proc, MEDIUM)
    assert set(schedules.schedules) == {
        b.label.name for b in proc.blocks
    }
    assert schedules.total_static_length() > 0


def test_empty_block_schedules_to_unit_length():
    from repro.ir import Block, Label

    proc = Procedure("f")
    block = Block(label=Label("E"))
    proc.add_block(block)
    schedule = schedule_block(block, MEDIUM)
    assert schedule.length == 1
