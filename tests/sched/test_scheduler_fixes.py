"""Regression tests for the list-scheduler correctness fixes.

Three defects found while scoping the struct-of-arrays refactor:

1. the deadlock check could never fire (deferred ops were re-pushed into
   ``ready`` before the emptiness test), so a genuine deadlock spun to the
   1M-iteration guard instead of raising promptly;
2. ``sched.ready_queue_depth`` was only sampled at the top of the outer
   cycle loop, missing successor pushes during the inner drain;
3. an empty block reported length 1 but a zero-latency single-op block
   could report length 0 from ``max(placed + latency)``.

Every test runs against both engines — the fixes are part of the shared
scheduling contract.
"""

import time

import pytest

from repro.errors import SchedulingError
from repro.ir import Block, Label, Opcode, Procedure, Reg
from repro.ir.operation import Operation
from repro.machine import MEDIUM, INFINITE, PAPER_LATENCIES, LatencyModel
from repro.machine.resources import ResourceTable
from repro.obs import CounterSet, activate_counters
from repro.sched import ENGINES, schedule_block


class _StarvedMachine:
    """A machine whose integer units do not exist (capacity zero).

    ``ProcessorConfig`` refuses unit counts below one, so this duck-typed
    stand-in models the only way a ready op can be permanently
    unplaceable: its unit class can never host it.
    """

    name = "starved"
    latencies = PAPER_LATENCIES
    issue_width = None
    unit_counts = {"I": 0, "F": 1, "M": 1, "B": 1}

    def resource_table(self):
        return ResourceTable(self.unit_counts, issue_width=None)


def _single_op_block(opcode=Opcode.MOV):
    block = Block(label=Label("B"))
    block.append(
        Operation(opcode=opcode, dests=[Reg(10)], srcs=[Reg(1)])
    )
    return block


@pytest.mark.parametrize("engine", ENGINES)
def test_resource_deadlock_raises_promptly(engine):
    """An op whose unit class has no units must raise SchedulingError
    immediately — not spin to the 1M-iteration convergence guard."""
    block = _single_op_block()
    started = time.perf_counter()
    with pytest.raises(SchedulingError, match="unplaceable"):
        schedule_block(block, _StarvedMachine(), engine=engine)
    # The old dead check burned through 1M guard iterations (~seconds);
    # direct detection fires on the first cycle.
    assert time.perf_counter() - started < 1.0


@pytest.mark.parametrize("engine", ENGINES)
def test_ready_queue_depth_samples_at_push_time(engine):
    """Ops that become ready *during* the inner drain (zero-latency anti
    edges) and are placed in the same cycle never appear in a
    top-of-cycle sample; the peak must count them anyway."""
    fanout = 5
    block = Block(label=Label("B"))
    # One reader of r1..r5, then five independent writers of r1..r5: each
    # writer hangs off the reader by a latency-0 anti edge, so on the
    # infinite machine all five become ready and are placed inside the
    # cycle-0 drain.
    block.append(
        Operation(
            opcode=Opcode.ADD,
            dests=[Reg(100)],
            srcs=[Reg(i) for i in range(1, fanout + 1)],
        )
    )
    for i in range(1, fanout + 1):
        block.append(
            Operation(opcode=Opcode.MOV, dests=[Reg(i)], srcs=[Reg(60)])
        )
    counters = CounterSet()
    with activate_counters(counters):
        schedule = schedule_block(block, INFINITE, engine=engine)
    # Everything fits in cycle 0: the old sampling saw a depth of 1.
    assert all(cycle == 0 for cycle in schedule.cycles.values())
    assert counters.get("sched.ready_queue_depth").max == fanout


@pytest.mark.parametrize("engine", ENGINES)
def test_zero_latency_single_op_block_has_length_one(engine):
    """Schedule lengths are clamped to >= 1: a block with one zero-latency
    op must match the empty block's unit length, not report zero."""
    zero_mov = MEDIUM.with_latencies(
        LatencyModel(overrides={Opcode.MOV: 0})
    )
    schedule = schedule_block(_single_op_block(), zero_mov, engine=engine)
    assert schedule.cycles and set(schedule.cycles.values()) == {0}
    assert schedule.length == 1


@pytest.mark.parametrize("engine", ENGINES)
def test_empty_block_still_unit_length(engine):
    proc = Procedure("f")
    block = Block(label=Label("E"))
    proc.add_block(block)
    assert schedule_block(block, MEDIUM, engine=engine).length == 1
