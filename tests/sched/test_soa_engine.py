"""The struct-of-arrays scheduler core: lowering, dispatch, multi-machine.

The hypothesis differential suite
(:mod:`tests.integration.test_property_soa_differential`) is the
bit-identity net; these tests pin the lowering contract and the engine
plumbing deterministically.
"""

import pytest

from repro.analysis import DependenceGraph, LivenessAnalysis
from repro.errors import SchedulingError
from repro.machine import (
    INFINITE,
    MEDIUM,
    NARROW,
    PAPER_LATENCIES,
    SEQUENTIAL,
    WIDE,
)
from repro.obs import CounterSet, activate_counters
from repro.sched import (
    ENGINES,
    get_default_engine,
    lower_block,
    schedule_block,
    schedule_procedure,
    schedule_procedure_multi,
    set_default_engine,
    use_engine,
)
from repro.sched.soa import UNIT_CLASSES
from tests.conftest import build_strcpy_program

ALL_MACHINES = (SEQUENTIAL, NARROW, MEDIUM, WIDE, INFINITE)


def _loop_block(unroll=4):
    program = build_strcpy_program(unroll=unroll)
    proc = program.procedure("main")
    return proc, proc.block("Loop")


# ----------------------------------------------------------------------
# Lowering contract
# ----------------------------------------------------------------------
def test_lowering_mirrors_dependence_graph():
    proc, block = _loop_block()
    liveness = LivenessAnalysis(proc)
    graph = DependenceGraph(block, PAPER_LATENCIES, liveness=liveness)
    soa = lower_block(block, PAPER_LATENCIES, liveness=liveness)

    assert soa.count == len(graph.ops)
    assert soa.uids == [op.uid for op in graph.ops]
    heights = graph.critical_path_height()
    assert soa.heights == [heights[i] for i in range(soa.count)]
    for i, op in enumerate(graph.ops):
        assert UNIT_CLASSES[soa.units[i]] == op.opcode.unit_class()
        assert soa.latencies[i] == PAPER_LATENCIES.latency(op.opcode)
        assert soa.pred_counts[i] == len(graph.predecessors(i))
        assert soa.successors(i) == [
            (edge.dst, edge.latency) for edge in graph.successors(i)
        ]
    # CSR bookkeeping: the pointer array brackets every edge exactly once.
    assert soa.succ_ptr[0] == 0
    assert soa.succ_ptr[-1] == len(soa.succ_dst) == len(graph.edges)


def test_lowering_is_machine_independent():
    """The SoA depends on the latency model, not the resource shape: one
    lowering schedules every preset to the same result as fresh calls."""
    proc, block = _loop_block()
    from repro.sched.soa import schedule_lowered

    liveness = LivenessAnalysis(proc)
    soa = lower_block(block, PAPER_LATENCIES, liveness=liveness)
    for machine in ALL_MACHINES:
        shared, _ = schedule_lowered(soa, block, machine)
        fresh = schedule_block(
            block, machine, liveness=liveness, engine="soa"
        )
        assert shared.cycles == fresh.cycles
        assert shared.length == fresh.length


# ----------------------------------------------------------------------
# Engine dispatch
# ----------------------------------------------------------------------
def test_engines_bit_identical_on_strcpy():
    proc, _ = _loop_block(unroll=6)
    for machine in ALL_MACHINES:
        by_engine = {}
        counters_by_engine = {}
        for engine in ENGINES:
            counters = CounterSet()
            with activate_counters(counters):
                by_engine[engine] = schedule_procedure(
                    proc, machine, engine=engine
                )
            counters_by_engine[engine] = counters.to_dict()
        obj, soa = by_engine["object"], by_engine["soa"]
        assert set(obj.schedules) == set(soa.schedules)
        for label in obj.schedules:
            assert obj.schedules[label].cycles == soa.schedules[label].cycles
            assert obj.schedules[label].length == soa.schedules[label].length
        assert counters_by_engine["object"] == counters_by_engine["soa"]


def test_default_engine_plumbing():
    assert get_default_engine() == "soa"
    with use_engine("object"):
        assert get_default_engine() == "object"
        with use_engine("soa"):
            assert get_default_engine() == "soa"
        assert get_default_engine() == "object"
    assert get_default_engine() == "soa"
    with pytest.raises(SchedulingError, match="unknown scheduler engine"):
        set_default_engine("vliw")
    with pytest.raises(SchedulingError, match="unknown scheduler engine"):
        proc, block = _loop_block()
        schedule_block(block, MEDIUM, engine="fast")


# ----------------------------------------------------------------------
# Multi-machine scheduling
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ENGINES)
def test_multi_matches_single_machine_calls(engine):
    proc, _ = _loop_block(unroll=4)
    multi = schedule_procedure_multi(proc, ALL_MACHINES, engine=engine)
    assert list(multi) == [machine.name for machine in ALL_MACHINES]
    for machine in ALL_MACHINES:
        single = schedule_procedure(proc, machine, engine=engine)
        for label, expected in single.schedules.items():
            got = multi[machine.name].schedules[label]
            assert got.cycles == expected.cycles
            assert got.length == expected.length


def test_multi_handles_distinct_latency_models():
    """Machines with different latency models must not share a lowering."""
    proc, _ = _loop_block(unroll=4)
    slow_branch = MEDIUM.with_branch_latency(3)
    wide = WIDE  # shares PAPER_LATENCIES with nothing else in this list
    renamed = type(slow_branch)(
        name="medium-b3",
        int_units=slow_branch.int_units,
        float_units=slow_branch.float_units,
        memory_units=slow_branch.memory_units,
        branch_units=slow_branch.branch_units,
        issue_width=slow_branch.issue_width,
        latencies=slow_branch.latencies,
    )
    multi = schedule_procedure_multi(proc, (wide, renamed), engine="soa")
    expected_wide = schedule_procedure(proc, wide, engine="object")
    expected_b3 = schedule_procedure(proc, renamed, engine="object")
    for label, schedule in expected_wide.schedules.items():
        assert multi["wide"].schedules[label].cycles == schedule.cycles
    for label, schedule in expected_b3.schedules.items():
        assert multi["medium-b3"].schedules[label].cycles == schedule.cycles


def test_multi_rejects_duplicate_machine_names():
    proc, _ = _loop_block()
    with pytest.raises(SchedulingError, match="uniquely named"):
        schedule_procedure_multi(
            proc, (MEDIUM, MEDIUM.with_branch_latency(3))
        )
