"""Differential check: ledger schedule claims vs. the estimator.

``cpr-transform`` entries record the medium-processor schedule length of
the affected block before and after each transform. Within one block the
claims must telescope (each transform's "after" is the next one's
"before"), and the final claim must agree with a fresh schedule of the
shipped block — pinned to a tolerance of 2 cycles, since dead-code
elimination inside ICBM's commit path may still shave compare setup the
mid-flight claim included.

Clean registry builds must also produce no ``estimator-clamp`` warnings
(profiles are freshly measured, so a clamp would mean the estimator and
the profiler disagree about control flow), and the estimate itself must
be a pure function of the build.
"""

from collections import defaultdict

from repro.analysis.liveness import LivenessAnalysis
from repro.machine.processor import MEDIUM
from repro.perf.estimator import estimate_program_cycles
from repro.sched.list_scheduler import schedule_block

SCHED_TOLERANCE = 2


def _chains(result):
    """cpr-transform entries grouped per (proc, block), in ledger order."""
    chains = defaultdict(list)
    for entry in result.build.build_report.ledger.of_kind("cpr-transform"):
        chains[(entry.proc, entry.block)].append(entry)
    return chains


def test_schedule_claims_telescope_per_block(registry_results):
    for name, result in registry_results.items():
        for (proc, block), chain in _chains(result).items():
            for prev, entry in zip(chain, chain[1:]):
                before = entry.get("sched_len_before")
                after = prev.get("sched_len_after")
                if before is None or after is None:
                    continue
                assert before == after, (
                    f"{name} {proc}/{block}: chain broke "
                    f"({after} -> {before})"
                )


def test_final_schedule_claim_matches_shipped_block(registry_results):
    checked = 0
    for name, result in registry_results.items():
        program = result.build.transformed
        for (proc_name, label), chain in _chains(result).items():
            claimed = chain[-1].get("sched_len_after")
            if claimed is None:
                continue
            proc = program.procedures[proc_name]
            block = next(
                b for b in proc.blocks if b.label.name == label
            )
            liveness = LivenessAnalysis(proc)
            shipped = schedule_block(block, MEDIUM, liveness=liveness).length
            assert abs(shipped - claimed) <= SCHED_TOLERANCE, (
                f"{name} {proc_name}/{label}: claimed {claimed}, "
                f"shipped schedules to {shipped}"
            )
            checked += 1
    assert checked > 0


def test_clean_builds_never_clamp(registry_results):
    for name, result in registry_results.items():
        ledger = result.build.build_report.ledger
        assert ledger.of_kind("estimator-clamp") == [], name


def test_estimates_are_reproducible(registry_results):
    for name, result in registry_results.items():
        build = result.build
        again = estimate_program_cycles(
            build.transformed, MEDIUM, build.transformed_profile
        ).total
        assert again == result.transformed_cycles[MEDIUM.name], name
