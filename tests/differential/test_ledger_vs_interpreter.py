"""Differential check: ledger claims vs. interpreter ground truth.

Every ``cpr-transform`` ledger entry claims the dynamic behaviour of the
bypass branch it installed — how many times the region was entered
(``claim_executed``) and how often some original exit fired
(``claim_taken``), both derived from the *pre-transform* profile. The
transformed program is independently re-profiled by the interpreter
during the build, so the two must agree **exactly**: control CPR changes
branch structure, never observable control flow. Any divergence means
the restructurer rewired an exit or the ledger recorded the wrong
branch.
"""

from repro.ir.opcodes import Opcode
from repro.workloads.registry import all_names


def _cpr_entries(result):
    return result.build.build_report.ledger.of_kind("cpr-transform")


def test_every_cpr_claim_matches_the_interpreter(registry_results):
    verified = 0
    for name, result in registry_results.items():
        build = result.build
        for entry in _cpr_entries(result):
            proc = build.transformed.procedures[entry.proc]
            block = next(
                b for b in proc.blocks if b.label.name == entry.block
            )
            bypass = block.exit_branches()[entry.get("bypass_exit_index")]
            assert bypass.opcode is Opcode.BRANCH
            measured = build.transformed_profile.branch_profile(
                entry.proc, bypass
            )
            assert measured.executed == entry.get("claim_executed"), (
                f"{name}: {entry.render()} vs executed={measured.executed}"
            )
            assert measured.taken == entry.get("claim_taken"), (
                f"{name}: {entry.render()} vs taken={measured.taken}"
            )
            verified += 1
    # The harness is vacuous if nothing transformed.
    assert verified >= len(registry_results) // 2, (
        f"only {verified} cpr-transform entries across the registry"
    )


def test_strcpy_records_a_verified_cpr_transform(registry_results):
    entries = _cpr_entries(registry_results["strcpy"])
    assert len(entries) >= 1
    entry = entries[0]
    assert entry.get("claim_executed") > 0
    assert entry.get("size") >= 2
    assert entry.get("comp_block")


def test_ledger_entries_reference_live_blocks(registry_results):
    for name, result in registry_results.items():
        program = result.build.transformed
        for entry in result.build.build_report.ledger.entries:
            assert entry.proc in program.procedures, f"{name}: {entry}"
            if entry.kind in (
                "speculate-promote", "speculate-demote", "cpr-transform",
            ):
                labels = {
                    b.label.name
                    for b in program.procedures[entry.proc].blocks
                }
                assert entry.block in labels, f"{name}: {entry}"


def test_match_decisions_bound_the_transforms(registry_results):
    """Every transform traces back to an accepted Match; every accepted
    non-trivial CPR block claims the paper's height saving (one branch
    per merged compare-branch pair)."""
    for name, result in registry_results.items():
        ledger = result.build.build_report.ledger
        accepts = ledger.of_kind("match-accept")
        transforms = _cpr_entries(result)
        assert len(transforms) <= len(accepts), name
        for entry in accepts:
            size = entry.get("size")
            assert size >= 1
            assert entry.get("est_height_saved") == max(0, size - 1), entry
        for entry in ledger.of_kind("match-reject"):
            assert entry.get("test") in (
                "suitability", "separability", "exit-weight",
                "predict-taken", "max-branches", "guarded-region",
            ), entry


def test_registry_fixture_covers_every_workload(registry_results):
    assert sorted(registry_results) == sorted(all_names())
