"""The differential harness itself must be engine-independent.

The harness (this directory plus the fuzz oracle) trusts interpreter
observations — profiles, ledger claims, store traces. Those observations
now come from the SoA engine by default, so the harness's own foundation
needs pinning: a full pipeline build (baseline profiling, CPR transform
verification, re-profiling) must produce bit-identical profiles and
decision ledgers under either engine.
"""

from repro.pipeline import PipelineOptions, build_workload
from repro.sim import use_engine
from repro.workloads.registry import get_workload


def _build(name, engine):
    workload = get_workload(name)
    with use_engine(engine):
        return build_workload(
            workload.name,
            workload.compile(),
            workload.inputs,
            PipelineOptions(),
            entry=workload.entry,
        )


def _profile_key(profile):
    """A uid-free projection: each ``_build`` compiles fresh IR, so op
    uids differ between builds even though the programs are identical.
    Block labels, totals, and the branch-outcome multiset are stable."""
    return (
        profile.block_counts,
        sorted(profile.op_counts.values()),
        sorted((v.taken, v.not_taken) for v in profile.branches.values()),
        profile.runs,
        profile.total_ops,
        profile.total_branches,
    )


def test_pipeline_profiles_and_ledger_are_engine_independent():
    reference = _build("strcpy", "object")
    fast = _build("strcpy", "soa")
    assert _profile_key(fast.baseline_profile) == _profile_key(
        reference.baseline_profile
    )
    assert _profile_key(fast.transformed_profile) == _profile_key(
        reference.transformed_profile
    )
    ref_ledger = reference.build_report.ledger
    fast_ledger = fast.build_report.ledger
    assert [e.to_dict() for e in fast_ledger.entries] == [
        e.to_dict() for e in ref_ledger.entries
    ]
