"""Every registry workload, every backend, exact observable agreement.

The table-driven companion to the fuzz oracle: each registry workload is
built once into the shared classical baseline, then transformed under
``icbm``, full ``cpr``, and ``meld``, and interpreted on the workload's
own inputs. Return values and the complete store trace must match the
*unoptimized* program exactly — all three backends restructure control
flow, none may change what the program observably does.

Builds run with ``verify_equivalence=False`` so the pipeline's own
rollback cannot mask a miscompiling backend behind a silent revert to
the baseline (the same discipline the fuzz oracle uses).
"""

import pytest

from repro.passes.manager import check_equivalent, run_inputs
from repro.pipeline import (
    BACKENDS,
    PipelineOptions,
    apply_backend,
    build_baseline,
)
from repro.sim.interpreter import DEFAULT_FUEL
from repro.workloads.registry import all_names, get_workload


@pytest.fixture(scope="module")
def shared_baselines():
    """Per-workload (workload, baseline, reference) built at most once."""
    cache = {}

    def get(name):
        if name not in cache:
            workload = get_workload(name)
            reference = run_inputs(
                workload.compile(), workload.inputs, workload.entry,
                DEFAULT_FUEL,
            )
            baseline, _ = build_baseline(
                workload.compile(), workload.inputs,
                PipelineOptions(verify_equivalence=False),
                workload.entry,
            )
            cache[name] = (workload, baseline, reference)
        return cache[name]

    return get


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", all_names())
def test_backend_agrees_with_unoptimized_reference(
    name, backend, shared_baselines
):
    workload, baseline, reference = shared_baselines(name)
    transformed, _, _, _ = apply_backend(
        backend, baseline, workload.inputs,
        PipelineOptions(verify_equivalence=False), workload.entry,
    )
    results = run_inputs(
        transformed, workload.inputs, workload.entry, DEFAULT_FUEL
    )
    # Raises TransformError, localizing the first mismatching store.
    check_equivalent(reference, results, stage=f"{backend}:{name}")


def test_the_table_covers_the_whole_registry():
    # 24 workloads x 3 backends: if the registry grows, so does the
    # parametrization above; this guard documents the current floor.
    assert len(all_names()) >= 24
    assert set(BACKENDS) == {"icbm", "cpr", "meld"}
