"""Session-wide registry builds for the differential harness.

Every workload in the registry is built once (full pipeline, default
options) and measured on the medium processor so the decision ledger is
fully populated — match decisions, speculation moves, CPR transforms,
and any estimator clamps. The fixture is session-scoped: the harness's
tests all interrogate the same builds from different angles.
"""

import pytest

from repro.machine.processor import MEDIUM
from repro.perf.report import measure_build
from repro.pipeline import PipelineOptions, build_workload
from repro.workloads.registry import all_names, get_workload


@pytest.fixture(scope="session")
def registry_results():
    results = {}
    for name in all_names():
        workload = get_workload(name)
        build = build_workload(
            workload.name,
            workload.compile(),
            workload.inputs,
            PipelineOptions(),
            entry=workload.entry,
        )
        results[name] = measure_build(
            build, category=workload.category, processors=[MEDIUM]
        )
    return results
