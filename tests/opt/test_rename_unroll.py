"""Register renaming (web splitting) and superblock loop unrolling."""

import pytest

from repro.errors import TransformError
from repro.ir import Cond, IRBuilder, Procedure, Reg, verify_program
from repro.opt import (
    is_superblock_loop,
    unroll_superblock_loop,
)
from repro.opt.rename import rename_procedure_registers
from tests.conftest import build_strcpy_program, run_strcpy


def test_rename_splits_reused_register():
    """A register redefined per unrolled iteration splits into fresh webs;
    the final definition keeps the architected name (loop-carried)."""
    from repro.ir import DataSegment, Program
    from repro.sim.interpreter import Interpreter

    program = Program("t")
    program.add_segment(DataSegment("D", 64, initial=[3, 1, 4, 1, 5]))
    proc = Procedure("main", params=[Reg(1), Reg(2)])
    program.add_procedure(proc)
    b = IRBuilder(proc)
    b.start_block("E")
    total = Reg(9)
    b.mov(0, dest=total)
    for i in range(4):
        b.load(b.add(Reg(1), i), dest=Reg(5), region="D")  # reused r5
        b.add(total, Reg(5), dest=total)
    b.ret(total)

    def run(prog):
        interp = Interpreter(prog)
        return interp.run(args=[interp.segment_base("D"), 0])

    reference = run(program)
    assert reference.return_value == 3 + 1 + 4 + 1
    renames = rename_procedure_registers(proc)
    # r5 splits (3 of its 4 defs) and the accumulator web splits too.
    assert renames >= 3
    verify_program(program)
    assert run(program).equivalent_to(reference)
    defs_of_r5 = [
        op
        for op in proc.block("E").ops
        if Reg(5) in op.dest_registers()
    ]
    assert len(defs_of_r5) == 1  # the last one kept the name


def test_rename_leaves_guarded_webs_alone():
    from repro.ir import PredReg

    proc = Procedure("f", params=[Reg(i) for i in range(1, 10)])
    b = IRBuilder(proc)
    b.start_block("E")
    b.mov(1, dest=Reg(5))
    b.mov(2, dest=Reg(5), guard=PredReg(3))  # guarded merge
    b.store(Reg(1), Reg(5))
    b.ret()
    assert rename_procedure_registers(proc) == 0


def test_rename_respects_side_exit_liveness():
    """A register live into a side-exit target within its def range must
    not be renamed (the exit path would read a stale temporary)."""
    proc = Procedure("f", params=[Reg(i) for i in range(1, 10)])
    b = IRBuilder(proc)
    b.start_block("E", fallthrough="Out")
    b.mov(1, dest=Reg(5))
    p = b.cmpp1(Cond.EQ, Reg(1), 0)
    b.branch_to("Handler", p)       # r5 live at Handler
    b.mov(2, dest=Reg(5))
    b.store(Reg(2), Reg(5))
    b.start_block("Out")
    b.ret()
    b.start_block("Handler")
    b.ret(Reg(5))
    assert rename_procedure_registers(proc) == 0


def test_unroll_requires_loop_shape():
    proc = Procedure("f")
    b = IRBuilder(proc)
    b.start_block("E")
    b.ret()
    assert not is_superblock_loop(proc.block("E"))
    with pytest.raises(TransformError):
        unroll_superblock_loop(proc, proc.block("E"), 2)


def test_unroll_conditional_latch(strcpy_data):
    program = build_strcpy_program(unroll=2)
    reference = run_strcpy(program, strcpy_data)
    proc = program.procedure("main")
    loop = proc.block("Loop")
    assert is_superblock_loop(loop)
    before = len(loop.ops)
    report = unroll_superblock_loop(proc, loop, 3)
    assert report.ops_after == 3 * before
    verify_program(program)
    assert run_strcpy(program, strcpy_data).equivalent_to(reference)


def test_unroll_bottom_jump_loop():
    from repro.ir import DataSegment, Program
    from repro.sim.interpreter import Interpreter

    program = Program("t")
    program.add_segment(DataSegment("D", 64))
    proc = Procedure("main", params=[Reg(1)])
    program.add_procedure(proc)
    b = IRBuilder(proc)
    b.start_block("Loop", fallthrough="Loop")
    b.store(b.add(Reg(2), Reg(10)), Reg(1), region="D")
    b.add(Reg(1), -1, dest=Reg(1))
    b.add(Reg(10), 1, dest=Reg(10))
    p = b.cmpp1(Cond.LE, Reg(1), 0)
    b.branch_to("Out", p)
    b.jump("Loop")
    b.start_block("Out")
    b.ret(Reg(10))

    def run(prog):
        interp = Interpreter(prog)
        return interp.run(args=[interp.segment_base("D") + 6])

    # note: r2 defaults to 0; store address = r2 + r10 evolves per iter.
    reference = run(program)
    copy = program.clone()
    proc2 = copy.procedure("main")
    unroll_superblock_loop(proc2, proc2.block("Loop"), 4)
    verify_program(copy)
    assert run(copy).equivalent_to(reference)
