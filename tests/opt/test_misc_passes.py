"""Remaining pass surfaces: unroll_hot_loops, superblock config, cloning."""

from repro.ir import (
    Cond,
    IRBuilder,
    Procedure,
    Reg,
    clone_procedure,
    verify_procedure,
)
from repro.opt import SuperblockConfig, unroll_hot_loops
from repro.opt.superblock import form_superblocks
from repro.sim.profiler import ProfileData
from tests.conftest import build_strcpy_program, run_strcpy


def test_unroll_hot_loops_targets_only_loops(strcpy_data):
    program = build_strcpy_program(unroll=2)
    reference = run_strcpy(build_strcpy_program(unroll=2), strcpy_data)
    proc = program.procedure("main")
    reports = unroll_hot_loops(proc, factor=2)
    assert [r.label for r in reports] == ["Loop"]
    assert reports[0].factor == 2
    verify_procedure(proc)
    assert run_strcpy(program, strcpy_data).equivalent_to(reference)


def test_unroll_hot_loops_label_filter():
    program = build_strcpy_program(unroll=2)
    proc = program.procedure("main")
    assert unroll_hot_loops(proc, factor=2, hot_labels=["Other"]) == []
    assert len(unroll_hot_loops(proc, factor=2, hot_labels=["Loop"])) == 1


def test_superblock_respects_max_trace_blocks():
    # A long fall-through chain; max_trace_blocks must cap the merge.
    proc = Procedure("f", params=[Reg(1)])
    b = IRBuilder(proc)
    labels = [f"B{i}" for i in range(8)]
    profile = ProfileData()
    for i, label in enumerate(labels):
        nxt = labels[i + 1] if i + 1 < len(labels) else None
        b.start_block(label, fallthrough=nxt)
        b.add(Reg(1), i, dest=Reg(1))
        profile.block_counts[("f", label)] = 100
    b.ret(Reg(1))
    config = SuperblockConfig(max_trace_blocks=3)
    report = form_superblocks(proc, profile, config)
    assert report.traces
    assert all(len(trace) <= 3 for trace in report.traces)
    verify_procedure(proc)


def test_clone_procedure_is_independent(strcpy_data):
    program = build_strcpy_program()
    proc = program.procedure("main")
    copy = clone_procedure(proc)
    copy.block("Loop").ops[0].srcs[0] = Reg(99)
    assert proc.block("Loop").ops[0].srcs[0] != Reg(99)
    # Fresh names in the clone do not collide with copied ones.
    used = {
        reg
        for block in copy.blocks
        for op in block.ops
        for reg in op.dest_registers()
    }
    assert copy.new_reg() not in used
    assert copy.new_pred() not in used


def test_superblock_loop_closes_trace():
    """A trace that reaches its own seed again becomes a superblock loop
    rather than growing forever."""
    proc = Procedure("f", params=[Reg(1)])
    b = IRBuilder(proc)
    b.start_block("H", fallthrough="T")
    b.add(Reg(1), -1, dest=Reg(1))
    b.start_block("T", fallthrough="Out")
    p = b.cmpp1(Cond.GT, Reg(1), 0)
    b.branch_to("H", p)
    b.start_block("Out")
    b.ret(Reg(1))
    profile = ProfileData()
    profile.block_counts[("f", "H")] = 100
    profile.block_counts[("f", "T")] = 100
    branch = proc.block("T").exit_branches()[0]
    from repro.sim.profiler import BranchProfile

    profile.branches[("f", branch.uid)] = BranchProfile(
        taken=99, not_taken=1
    )
    report = form_superblocks(proc, profile, SuperblockConfig())
    assert ["H", "T"] in report.traces
    merged = proc.block("H")
    assert merged.exit_branches()  # loop-back branch inside the block
    verify_procedure(proc)
