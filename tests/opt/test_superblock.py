"""Profile-driven superblock formation."""

from repro.frontend import compile_source
from repro.ir import Opcode, verify_program
from repro.opt import SuperblockConfig, form_superblocks
from repro.sim import profile_program
from repro.sim.interpreter import Interpreter


LOOP_SOURCE = """
int A[64];
int OUT[64];

int main(int n) {
    int total = 0;
    int i = 0;
    while (i < n) {
        int v = A[i];
        if (v < 0) { total -= v; }
        total += v;
        OUT[i] = total;
        i += 1;
    }
    return total;
}
"""


def build_and_profile(source, data, n):
    program = compile_source(source)

    def setup(interp):
        interp.poke_array("A", data)
        return (n,)

    profile = profile_program(program, inputs=[setup])
    return program, profile, setup


def run(program, setup):
    interp = Interpreter(program)
    args = tuple(setup(interp))
    return interp.run(args=args)


def test_hot_loop_becomes_single_block():
    data = [i % 7 for i in range(40)]  # never negative: biased branch
    program, profile, setup = build_and_profile(LOOP_SOURCE, data, 40)
    reference = run(program, setup)
    for proc in program.procedures.values():
        report = form_superblocks(proc, profile, SuperblockConfig())
    verify_program(program)
    assert report.merged_blocks > 0
    assert report.traces  # a hot trace was selected
    # The hot loop body is now one block with side exits.
    proc = program.procedure("main")
    loop_blocks = [
        blk for blk in proc.blocks if len(blk.exit_branches()) >= 2
    ]
    assert loop_blocks, "expected a merged multi-exit superblock"
    assert run(program, setup).equivalent_to(reference)


def test_tail_duplication_removes_side_entrances():
    # Mixed signs make the `then` path hot enough to rejoin mid-trace.
    data = [(-1) ** i * (i % 5 + 1) for i in range(40)]
    program, profile, setup = build_and_profile(LOOP_SOURCE, data, 40)
    reference = run(program, setup)
    for proc in program.procedures.values():
        report = form_superblocks(proc, profile, SuperblockConfig())
    verify_program(program)
    assert run(program, setup).equivalent_to(reference)


def test_branch_inversion_on_taken_trace():
    """A trace following a mostly-taken branch inverts it (UC output)."""
    source = """
    int A[64];
    int main(int n) {
        int acc = 0;
        int i = 0;
        while (i < n) {
            if (A[i] == 7) { acc += 1; }
            else { acc += A[i]; }
            i += 1;
        }
        return acc;
    }
    """
    data = [3] * 40  # else-path always: the else branch edge is hot
    program, profile, setup = build_and_profile(source, data, 40)
    reference = run(program, setup)
    for proc in program.procedures.values():
        form_superblocks(proc, profile, SuperblockConfig())
    verify_program(program)
    assert run(program, setup).equivalent_to(reference)
    # Some cmpp should now carry two targets (the added complement).
    proc = program.procedure("main")
    two_target = [
        op
        for blk in proc.blocks
        for op in blk.ops
        if op.opcode is Opcode.CMPP and len(op.dests) == 2
    ]
    assert two_target


def test_cold_code_untouched():
    data = [1] * 4
    program, profile, setup = build_and_profile(LOOP_SOURCE, data, 4)
    config = SuperblockConfig(min_block_count=1000)  # nothing is hot
    before = {blk.label.name for blk in program.procedure("main").blocks}
    for proc in program.procedures.values():
        report = form_superblocks(proc, profile, config)
    after = {blk.label.name for blk in program.procedure("main").blocks}
    assert before == after
    assert report.merged_blocks == 0


# ----------------------------------------------------------------------
# Retargeting side entrances keeps the pbr and its branch in sync
# ----------------------------------------------------------------------
def _pbr_branch_pair():
    """A block whose branch reaches 'Old' through a pbr-prepared BTR."""
    from repro.ir import Cond, IRBuilder, Label, Procedure, Program, Reg

    program = Program("retarget")
    proc = Procedure("main", params=[Reg(1)])
    program.add_procedure(proc)
    b = IRBuilder(proc)
    b.start_block("Head", fallthrough="Fall")
    pred = b.cmpp1(Cond.NE, Reg(1), 0)
    b.branch_to("Old", pred)
    b.start_block("Fall")
    b.ret(0)
    b.start_block("Old")
    b.ret(1)
    b.start_block("New")
    b.ret(2)
    verify_program(program)
    head = proc.blocks[0]
    return program, head, head.ops[-1], Label("New")


def test_retarget_with_pbr_updates_branch_and_feeding_pbr():
    """Regression: tail duplication retargets side-entrance *branches*
    at the duplicated trace tail; rewriting only the branch's target
    metadata leaves the BTR's pbr still pointing at the original block,
    so the interpreter would jump to the stale target."""
    from repro.opt.superblock import _retarget_with_pbr

    program, head, branch, new_target = _pbr_branch_pair()
    _retarget_with_pbr(head, branch, new_target)
    assert branch.branch_target() == new_target
    pbr = next(op for op in head.ops if op.opcode is Opcode.PBR)
    assert pbr.branch_target() == new_target
    verify_program(program)
    assert Interpreter(program).run(args=(1,)).return_value == 2


def test_desynced_pbr_and_branch_is_rejected_by_the_verifier():
    """The invariant the helper maintains is verifier-enforced."""
    import pytest

    from repro.errors import VerificationError

    program, head, branch, new_target = _pbr_branch_pair()
    branch.set_branch_target(new_target)  # pbr left stale on purpose
    with pytest.raises(VerificationError):
        verify_program(program)
