"""FRP conversion (paper Figure 1 / Figure 6(c))."""

from repro.analysis import PredicateTracker
from repro.ir import Action, Cond, IRBuilder, Opcode, Procedure, Reg, TRUE_PRED
from repro.opt import frp_convert_block
from tests.conftest import build_strcpy_program, run_strcpy


def build_plain_superblock():
    """Figure 1(a): three sequential branches guarding stores."""
    proc = Procedure("f", params=[Reg(i) for i in range(1, 10)])
    b = IRBuilder(proc)
    b.start_block("SB", fallthrough="E4")
    for i in range(3):
        p = b.cmpp1(Cond.LT, Reg(i + 1), Reg(i + 4))
        b.branch_to(f"E{i + 1}", p)
        b.store(Reg(7), i, region="out")
    for i in range(1, 5):
        b.start_block(f"E{i}")
        b.ret(i)
    return proc


def test_conversion_adds_uc_targets_and_guards():
    proc = build_plain_superblock()
    block = proc.block("SB")
    report = frp_convert_block(proc, block)
    assert report.complete
    assert report.converted_branches == 3
    assert report.added_uc_targets == 3
    compares = [op for op in block.ops if op.opcode is Opcode.CMPP]
    assert all(len(c.dests) == 2 for c in compares)
    # First compare unguarded; later compares guarded by the previous
    # fall-through predicate (Figure 6(c) structure).
    assert compares[0].guard == TRUE_PRED
    uc_of = {
        c.uid: next(
            t.reg for t in c.dests if t.action is Action.UC
        )
        for c in compares
    }
    assert compares[1].guard == uc_of[compares[0].uid]
    assert compares[2].guard == uc_of[compares[1].uid]


def test_converted_branches_mutually_exclusive():
    proc = build_plain_superblock()
    block = proc.block("SB")
    frp_convert_block(proc, block)
    tracker = PredicateTracker(block)
    branches = block.exit_branches()
    for i, first in enumerate(branches):
        for second in branches[i + 1:]:
            assert tracker.taken_expr[first.uid].disjoint_with(
                tracker.taken_expr[second.uid]
            )


def test_stores_guarded_by_segment_frp():
    proc = build_plain_superblock()
    block = proc.block("SB")
    frp_convert_block(proc, block)
    stores = [op for op in block.ops if op.opcode is Opcode.STORE]
    assert stores[0].guard != TRUE_PRED
    tracker = PredicateTracker(block)
    # Each store's guard must exclude every earlier branch's taken cond.
    branches = block.exit_branches()
    for i, store in enumerate(stores):
        for branch in branches[: i + 1]:
            assert tracker.guard_expr[store.uid].disjoint_with(
                tracker.taken_expr[branch.uid]
            )


def test_conversion_preserves_semantics(strcpy_data):
    program = build_strcpy_program()
    reference = run_strcpy(program, strcpy_data)
    proc = program.procedure("main")
    report = frp_convert_block(proc, proc.block("Loop"))
    assert report.complete
    assert run_strcpy(program, strcpy_data).equivalent_to(reference)


def test_partial_conversion_stops_at_unresolvable_branch():
    proc = Procedure("f", params=[Reg(i) for i in range(1, 10)])
    b = IRBuilder(proc)
    b.start_block("SB", fallthrough="Out")
    p1 = b.cmpp1(Cond.EQ, Reg(1), 0)
    b.branch_to("Out", p1)
    # Second branch sourced from an unknown predicate (no in-block cmpp).
    from repro.ir import PredReg

    btr = b.pbr("Out")
    b.branch(PredReg(99), btr, target="Out")
    b.store(Reg(2), Reg(3))
    b.start_block("Out")
    b.ret()
    block = proc.block("SB")
    report = frp_convert_block(proc, block)
    assert not report.complete
    assert report.converted_branches == 1
    # The trailing store must NOT have been guarded by anything.
    store = [op for op in block.ops if op.opcode is Opcode.STORE][0]
    assert store.guard == TRUE_PRED


def test_uc_sourced_branch_converts():
    """Branches inverted by superblock formation source the UC output."""
    proc = Procedure("f", params=[Reg(i) for i in range(1, 10)])
    b = IRBuilder(proc)
    b.start_block("SB", fallthrough="Out")
    taken, fall = b.cmpp2(Cond.EQ, Reg(1), 0)
    b.branch_to("Out", fall)  # UC-sourced
    b.store(Reg(2), Reg(3))
    b.start_block("Out")
    b.ret()
    block = proc.block("SB")
    report = frp_convert_block(proc, block)
    assert report.complete
    store = [op for op in block.ops if op.opcode is Opcode.STORE][0]
    assert store.guard == taken  # complement of the UC source
