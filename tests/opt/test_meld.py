"""The branch-melding rival pass: pairing, renaming, gates, semantics."""

import pytest

from repro.frontend import compile_source
from repro.ir import Cond, IRBuilder, Procedure, Program, Reg, verify_program
from repro.ir.opcodes import Opcode
from repro.opt.meld import MeldConfig, meld_procedure
from repro.sim.interpreter import Interpreter


def compile_main(source):
    program = compile_source(source)
    return program, program.procedure("main")


def assert_semantics_preserved(program, before, args_list):
    verify_program(program)
    for args, reference in zip(args_list, before):
        assert Interpreter(program).run(args=args).equivalent_to(reference)


def run_all(program, args_list):
    return [Interpreter(program).run(args=args) for args in args_list]


TWO_SIDED = """
int OUT[16];
int main(int n) {
    int x = 0;
    int y = 0;
    if (n & 1) { x = n + 3; y = x * 2; } else { x = n + 7; y = x * 5; }
    OUT[0] = x;
    OUT[1] = y;
    return x + y;
}
"""

ARGS = [(n,) for n in range(8)]


def test_two_sided_diamond_melds_into_selects():
    program, proc = compile_main(TWO_SIDED)
    before = run_all(program, ARGS)
    blocks_before = len(proc.blocks)

    report = meld_procedure(proc)

    assert report.melded_diamonds == 1
    assert report.melded_pairs == 2  # x = n +/- k and y = x * k
    # Each pair diverges in exactly one source operand: two select movs
    # (fall-through value, overridden under the taken predicate) apiece.
    assert report.select_movs == 4
    assert report.removed_branches == 1
    assert len(proc.blocks) == blocks_before - 2  # both arms deleted
    assert_semantics_preserved(program, before, ARGS)
    # The merged head carries the melded ops, tagged for the ledger.
    head = proc.blocks[0]
    assert sum(
        1 for op in head.ops if op.attrs.get("meld") == "pair"
    ) == 2
    assert not any(op.opcode is Opcode.BRANCH for op in head.ops)


def test_dead_destinations_are_renamed_across_arms():
    # t and u are distinct registers, both dead at the join; the meld
    # must unify them into one fresh destination and rewrite x's source.
    program, proc = compile_main("""
    int OUT[4];
    int main(int n) {
        int x = 0;
        if (n & 1) { int t = n + 1; x = t * 2; }
        else       { int u = n + 5; x = u * 2; }
        OUT[0] = x;
        return x;
    }
    """)
    before = run_all(program, ARGS)
    report = meld_procedure(proc)
    assert report.melded_diamonds == 1
    assert report.melded_pairs == 2
    # Only the t/u producer diverges (n+1 vs n+5); once its destination
    # is unified, x = <m> * 2 pairs up with identical sources.
    assert report.select_movs == 2
    assert_semantics_preserved(program, before, ARGS)


def test_one_sided_diamond_degenerates_to_predication():
    source = """
    int OUT[4];
    int main(int n) {
        int x = 5;
        if (n > 3) { x = n - 2; }
        OUT[0] = x;
        return x;
    }
    """
    program, proc = compile_main(source)
    before = run_all(program, ARGS)
    report = meld_procedure(proc)
    assert report.melded_diamonds == 1
    assert report.melded_pairs == 0
    assert report.predicated_ops >= 1
    assert report.removed_branches == 1
    assert_semantics_preserved(program, before, ARGS)

    # The same shape is refused when one-sided melding is disabled.
    program2, proc2 = compile_main(source)
    report2 = meld_procedure(
        proc2, config=MeldConfig(meld_one_sided=False)
    )
    assert report2.melded_diamonds == 0


def test_cost_gate_rejects_and_leaves_the_diamond_intact():
    program, proc = compile_main(TWO_SIDED)
    before = run_all(program, ARGS)
    blocks_before = len(proc.blocks)
    report = meld_procedure(
        proc, config=MeldConfig(max_cost_ratio=0.01)
    )
    assert report.melded_diamonds == 0
    assert report.rejected_cost >= 1
    assert len(proc.blocks) == blocks_before
    assert_semantics_preserved(program, before, ARGS)


def test_long_arms_are_structurally_ineligible():
    program, proc = compile_main(TWO_SIDED)
    report = meld_procedure(proc, config=MeldConfig(max_arm_ops=0))
    # Not even a cost-gate rejection: the arms never become candidates.
    assert report.melded_diamonds == 0
    assert report.rejected_cost == 0


def test_arms_with_calls_are_not_melded():
    program, proc = compile_main("""
    int OUT[4];
    int f0(int a, int b) { return a + b; }
    int main(int n) {
        int x = 0;
        if (n & 1) { x = f0(n, 3); } else { x = f0(n, 7); }
        OUT[0] = x;
        return x;
    }
    """)
    before = run_all(program, ARGS)
    report = meld_procedure(proc)
    assert report.melded_diamonds == 0
    assert_semantics_preserved(program, before, ARGS)


def test_arm_with_a_second_entry_is_not_melded():
    """An arm reachable from outside the diamond must survive.

    ``Taken`` is both the diamond's taken arm and the target of a later
    branch from ``Join``; deleting it would orphan that branch (the
    ``_sole_entry`` guard, counting in-edges rather than predecessors).
    """
    program = Program("twoentry")
    proc = Procedure("main", params=[Reg(1)])
    program.add_procedure(proc)
    b = IRBuilder(proc)
    b.start_block("Head", fallthrough="Fall")
    taken = b.cmpp1(Cond.NE, Reg(1), 0)
    b.branch_to("Taken", taken)
    b.start_block("Fall")
    b.add(Reg(1), 7, dest=Reg(2))
    b.jump("Join")
    b.start_block("Taken")
    b.add(Reg(1), 3, dest=Reg(2))
    b.jump("Join")
    b.start_block("Join", fallthrough="Exit")
    again = b.cmpp1(Cond.GT, Reg(1), 99)
    b.branch_to("Taken", again)
    b.start_block("Exit")
    b.ret(Reg(2))
    verify_program(program)
    args_list = [(n,) for n in range(4)]
    before = run_all(program, args_list)

    report = meld_procedure(proc)

    assert report.melded_diamonds == 0
    assert proc.has_block(next(
        blk.label for blk in proc.blocks if blk.label.name == "Taken"
    ))
    assert_semantics_preserved(program, before, args_list)


def test_meld_runs_to_a_fixed_point_over_nested_diamonds():
    program, proc = compile_main("""
    int OUT[8];
    int main(int n) {
        int x = 0;
        int y = 0;
        if (n & 1) { x = n + 1; } else { x = n + 2; }
        if (n & 2) { y = x + 3; } else { y = x + 4; }
        OUT[0] = x;
        OUT[1] = y;
        return x + y;
    }
    """)
    before = run_all(program, ARGS)
    report = meld_procedure(proc)
    assert report.melded_diamonds == 2
    assert report.removed_branches == 2
    assert_semantics_preserved(program, before, ARGS)
