"""Dead-code elimination and copy propagation."""

from repro.ir import (
    Action,
    Cond,
    IRBuilder,
    Opcode,
    PredTarget,
    Procedure,
    Reg,
)
from repro.opt import (
    eliminate_dead_code,
    propagate_copies,
    remove_unreachable_blocks,
)


def fresh_proc():
    return Procedure("f", params=[Reg(i) for i in range(1, 10)])


def test_dead_arithmetic_removed():
    proc = fresh_proc()
    b = IRBuilder(proc)
    b.start_block("E")
    b.add(Reg(1), 1)            # dead
    live = b.add(Reg(2), 2)
    b.ret(live)
    removed = eliminate_dead_code(proc)
    assert removed == 1
    assert len(proc.block("E").ops) == 2


def test_dead_chain_removed_transitively():
    proc = fresh_proc()
    b = IRBuilder(proc)
    b.start_block("E")
    a = b.add(Reg(1), 1)
    c = b.mul(a, 2)   # both dead once c is unused
    b.ret(0)
    removed = eliminate_dead_code(proc)
    assert removed == 2


def test_stores_branches_never_removed():
    proc = fresh_proc()
    b = IRBuilder(proc)
    b.start_block("E", fallthrough="Out")
    b.store(Reg(1), Reg(2))
    p = b.cmpp1(Cond.EQ, Reg(3), 0)
    b.branch_to("Out", p)
    b.start_block("Out")
    b.ret()
    eliminate_dead_code(proc)
    opcodes = [op.opcode for op in proc.block("E").ops]
    assert Opcode.STORE in opcodes
    assert Opcode.BRANCH in opcodes
    assert Opcode.CMPP in opcodes  # feeds the branch


def test_cmpp_dead_target_trimmed():
    """The paper's example: DCE removes the dead second destination."""
    proc = fresh_proc()
    b = IRBuilder(proc)
    b.start_block("E", fallthrough="Out")
    taken, fall = b.cmpp2(Cond.EQ, Reg(1), 0)
    b.branch_to("Out", taken)  # `fall` never used
    b.start_block("Out")
    b.ret()
    eliminate_dead_code(proc)
    compare = [
        op for op in proc.block("E").ops if op.opcode is Opcode.CMPP
    ][0]
    assert len(compare.dests) == 1
    assert compare.dests[0].reg == taken


def test_fully_dead_cmpp_removed():
    proc = fresh_proc()
    b = IRBuilder(proc)
    b.start_block("E")
    b.cmpp1(Cond.EQ, Reg(1), 0)
    b.ret(0)
    assert eliminate_dead_code(proc) == 1


def test_dead_pbr_removed_block_locally():
    proc = fresh_proc()
    b = IRBuilder(proc)
    b.start_block("E")
    b.pbr("E")  # no branch reads it
    b.ret(0)
    assert eliminate_dead_code(proc) == 1


def test_unreachable_block_removal():
    proc = fresh_proc()
    b = IRBuilder(proc)
    b.start_block("E")
    b.ret(0)
    b.start_block("orphan")
    b.ret(1)
    assert remove_unreachable_blocks(proc) == 1
    assert not proc.has_block("orphan")


def test_copy_propagation_forwards_values():
    proc = fresh_proc()
    b = IRBuilder(proc)
    b.start_block("E")
    copy = b.mov(Reg(1))
    result = b.add(copy, 2)
    b.ret(result)
    rewrites = propagate_copies(proc)
    assert rewrites == 1
    add_op = proc.block("E").ops[1]
    assert add_op.srcs[0] == Reg(1)


def test_copy_propagation_stops_at_redefinition():
    proc = fresh_proc()
    b = IRBuilder(proc)
    b.start_block("E")
    copy = b.mov(Reg(1))
    b.add(Reg(9), 1, dest=Reg(1))   # source redefined
    use = b.add(copy, 2)
    b.ret(use)
    propagate_copies(proc)
    add_op = proc.block("E").ops[2]
    assert add_op.srcs[0] == copy  # must NOT be rewritten to r1


def test_guarded_copy_not_propagated():
    from repro.ir import PredReg

    proc = fresh_proc()
    b = IRBuilder(proc)
    b.start_block("E")
    copy = b.mov(Reg(1), guard=PredReg(5))
    use = b.add(copy, 2)
    b.ret(use)
    propagate_copies(proc)
    assert proc.block("E").ops[1].srcs[0] == copy


def test_copy_propagation_of_immediates():
    proc = fresh_proc()
    b = IRBuilder(proc)
    b.start_block("E")
    copy = b.mov(41)
    b.ret(b.add(copy, 1))
    propagate_copies(proc)
    from repro.ir import Imm

    assert proc.block("E").ops[1].srcs[0] == Imm(41)
