"""Traditional if-conversion of diamonds (the paper's future-work pass)."""

from repro.frontend import compile_source
from repro.ir import Opcode, TRUE_PRED, verify_program
from repro.opt import IfConvertConfig, if_convert_procedure
from repro.sim import profile_program
from repro.sim.interpreter import Interpreter

DIAMOND_SOURCE = """
int A[64];
int OUT[64];

int main(int n) {
    int i = 0;
    int acc = 0;
    while (i < n) {
        int v = A[i];
        if (v > 500) { acc += v; }
        else { acc -= v; }
        OUT[i] = acc;
        i += 1;
    }
    return acc;
}
"""

IF_THEN_SOURCE = """
int A[64];

int main(int n) {
    int acc = 0;
    int i = 0;
    while (i < n) {
        int v = A[i];
        if (v > 500) { acc += 1; }
        i += 1;
    }
    return acc;
}
"""


def build_and_run(source, data, n, convert, config=None):
    program = compile_source(source)

    def setup(interp):
        interp.poke_array("A", data)
        return (n,)

    profile = profile_program(program, inputs=[setup])
    report = None
    if convert:
        for proc in program.procedures.values():
            report = if_convert_procedure(proc, profile, config)
        verify_program(program)
    interp = Interpreter(program)
    args = tuple(setup(interp))
    return interp.run(args=args), report, program


UNBIASED = [((i * 389) % 1000) for i in range(50)]  # ~50/50 around 500


def test_if_then_else_converted_and_equivalent():
    reference, _, _ = build_and_run(DIAMOND_SOURCE, UNBIASED, 50, False)
    result, report, program = build_and_run(
        DIAMOND_SOURCE, UNBIASED, 50, True
    )
    assert report.converted_diamonds == 1
    assert report.removed_branches == 1
    assert result.equivalent_to(reference)
    # Both arms now live guarded in the loop block with opposite preds.
    proc = program.procedure("main")
    guarded = [
        op
        for block in proc.blocks
        for op in block.ops
        if op.guard != TRUE_PRED and not op.is_branch
    ]
    preds = {op.guard for op in guarded}
    assert len(preds) == 2


def test_if_then_converted_and_equivalent():
    reference, _, _ = build_and_run(IF_THEN_SOURCE, UNBIASED, 50, False)
    result, report, program = build_and_run(
        IF_THEN_SOURCE, UNBIASED, 50, True
    )
    assert report.converted_diamonds == 1
    assert result.equivalent_to(reference)


def test_branch_count_drops():
    plain, _, _ = build_and_run(DIAMOND_SOURCE, UNBIASED, 50, False)
    converted, _, _ = build_and_run(DIAMOND_SOURCE, UNBIASED, 50, True)
    assert converted.branches_executed < plain.branches_executed


def test_biased_branches_left_alone():
    biased = [100] * 50  # always the else path
    _, report, _ = build_and_run(DIAMOND_SOURCE, biased, 50, True)
    assert report.converted_diamonds == 0


def test_biased_convertible_without_profile():
    program = compile_source(DIAMOND_SOURCE)
    for proc in program.procedures.values():
        report = if_convert_procedure(proc, profile=None)
    assert report.converted_diamonds == 1


def test_large_arms_rejected():
    config = IfConvertConfig(max_arm_ops=0)
    _, report, _ = build_and_run(
        DIAMOND_SOURCE, UNBIASED, 50, True, config
    )
    assert report.converted_diamonds == 0


def test_arm_with_call_rejected():
    source = """
    int A[8];
    int helper(int x) { return x + 1; }
    int main(int n) {
        int acc = 0;
        if (n > 0) { acc = helper(n); }
        else { acc = 2; }
        return acc;
    }
    """
    program = compile_source(source)
    profile = profile_program(program, inputs=[(None, (1,))])
    for proc in program.procedures.values():
        report = if_convert_procedure(proc, profile)
    # The call-bearing arm blocks conversion of its diamond.
    main = program.procedure("main")
    calls_guarded = [
        op
        for block in main.blocks
        for op in block.ops
        if op.opcode is Opcode.CALL and op.guard != TRUE_PRED
    ]
    assert not calls_guarded


def test_converted_code_feeds_cpr_as_hyperblock():
    """After if-conversion the loop is a predicated hyperblock; the full
    CPR pipeline must still verify end to end."""
    from repro.pipeline import PipelineOptions, build_workload

    program = compile_source(DIAMOND_SOURCE)

    def setup(interp):
        interp.poke_array("A", UNBIASED)
        return (50,)

    build = build_workload(
        "diamond", program, [setup], PipelineOptions(if_convert=True)
    )
    assert build.baseline_profile.total_ops > 0
