"""Property-based differential testing of the full ICBM transformation.

Hypothesis generates random single-entry superblock loops — random
arithmetic, guarded stores, exit branches with random conditions — then
the test FRP-converts, runs ICBM, and checks architectural equivalence
against the untransformed program on the same random inputs. This is the
strongest correctness net in the suite: any unsound code motion, guard
rewiring, or splitting shows up as a store-trace or return-value diff.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core import CPRConfig, apply_icbm
from repro.ir import (
    Action,
    Cond,
    DataSegment,
    IRBuilder,
    PredTarget,
    Procedure,
    Program,
    Reg,
    verify_program,
)
from repro.opt import frp_convert_procedure
from repro.pipeline import PipelineOptions, build_workload
from repro.sim.interpreter import Interpreter
from repro.sim.profiler import profile_program

CONDS = [Cond.EQ, Cond.NE, Cond.LT, Cond.GT]


@st.composite
def superblock_programs(draw):
    """A random unrolled scan loop over array A with data-dependent exits
    and stores into array B."""
    iterations = draw(st.integers(min_value=2, max_value=5))
    recipe = []
    for i in range(iterations):
        recipe.append(
            dict(
                cond=draw(st.sampled_from(CONDS)),
                threshold=draw(st.integers(min_value=0, max_value=9)),
                offset=draw(st.integers(min_value=0, max_value=2)),
                do_store=draw(st.booleans()),
                arith=draw(st.integers(min_value=1, max_value=7)),
            )
        )
    data = draw(
        st.lists(
            st.integers(min_value=0, max_value=9),
            min_size=10,
            max_size=60,
        )
    )
    return recipe, data


def build_program(recipe):
    iterations = len(recipe)
    program = Program("rand")
    program.add_segment(DataSegment("A", 128))
    program.add_segment(DataSegment("B", 256))
    proc = Procedure("main", params=[Reg(1), Reg(2), Reg(3)])
    program.add_procedure(proc)
    b = IRBuilder(proc)
    b.start_block("Loop", fallthrough="Exit")
    accumulator = Reg(4)
    for i, step in enumerate(recipe):
        addr = b.add(Reg(1), i)
        value = b.load(addr, region="A")
        work = b.add(value, step["arith"])
        b.add(accumulator, work, dest=accumulator)
        if step["do_store"]:
            out = b.add(Reg(2), i + step["offset"])
            b.store(out, work, region="B")
        pred = b.cmpp1(Cond(step["cond"]), value, step["threshold"])
        b.branch_to("Exit", pred)
    b.add(Reg(1), iterations, dest=Reg(1))
    b.add(Reg(2), iterations, dest=Reg(2))
    b.add(Reg(3), -1, dest=Reg(3))
    latch = b.cmpp1(Cond.GT, Reg(3), 0)
    b.branch_to("Loop", latch)
    b.start_block("Exit")
    b.ret(accumulator)
    verify_program(program)
    return program


def execute(program, data):
    interp = Interpreter(program)
    interp.poke_array("A", data)
    trips = max(1, len(data) // 4)
    return interp.run(
        args=[
            interp.segment_base("A"),
            interp.segment_base("B"),
            trips,
        ]
    )


@settings(max_examples=40, deadline=None)
@given(superblock_programs())
def test_icbm_preserves_semantics_on_random_superblocks(case):
    recipe, data = case
    reference_program = build_program(recipe)
    reference = execute(reference_program, data)

    transformed = build_program(recipe)
    proc = transformed.procedures["main"]
    frp_convert_procedure(proc)
    profile = profile_program(
        transformed,
        inputs=[
            lambda interp: (
                interp.poke_array("A", data),
                (
                    interp.segment_base("A"),
                    interp.segment_base("B"),
                    max(1, len(data) // 4),
                ),
            )[1]
        ],
    )
    apply_icbm(
        proc,
        profile,
        CPRConfig(exit_weight_threshold=0.9, predict_taken_threshold=0.6),
    )
    verify_program(transformed)
    result = execute(transformed, data)
    assert result.equivalent_to(reference), (
        f"divergence: {reference.return_value} vs {result.return_value}"
    )


@settings(max_examples=15, deadline=None)
@given(superblock_programs(), st.integers(min_value=0, max_value=3))
def test_icbm_equivalent_across_unrelated_inputs(case, shift):
    """Transform with one profile, then execute on a *different* input:
    the transformation must be correct regardless of profile accuracy."""
    recipe, data = case
    other_data = [(v + shift) % 10 for v in reversed(data)]

    reference = execute(build_program(recipe), other_data)
    transformed = build_program(recipe)
    proc = transformed.procedures["main"]
    frp_convert_procedure(proc)
    profile = profile_program(
        transformed,
        inputs=[
            lambda interp: (
                interp.poke_array("A", data),
                (
                    interp.segment_base("A"),
                    interp.segment_base("B"),
                    max(1, len(data) // 4),
                ),
            )[1]
        ],
    )
    apply_icbm(proc, profile, CPRConfig(exit_weight_threshold=0.9))
    result = execute(transformed, other_data)
    assert result.equivalent_to(reference)


# ----------------------------------------------------------------------
# Random hyperblocks: predicated ops and wired-OR compares
# ----------------------------------------------------------------------
#: Seeds swept by the hyperblock pipeline property test below.
HYPERBLOCK_SEEDS = 200


def hyperblock_recipe(rng: random.Random):
    """Draw a random hyperblock loop body plus its input array.

    Every step loads one element and mixes three predication idioms the
    paper calls out: a data-dependent guard predicating arithmetic and
    stores (if-conversion style), a wired-OR contribution that ORs the
    step's exit condition into one shared predicate, and an optional
    predicated early-exit branch of its own (so ICBM still sees a
    branch chain, not a single exit).
    """
    steps = rng.randint(2, 5)
    recipe = []
    for _ in range(steps):
        recipe.append(
            dict(
                guard_cond=rng.choice(CONDS),
                guard_threshold=rng.randint(0, 9),
                default=rng.randint(0, 3),
                arith=rng.randint(1, 7),
                do_store=rng.random() < 0.6,
                store_guarded=rng.random() < 0.5,
                wired_or=[
                    (rng.choice(CONDS), rng.randint(0, 9))
                    for _ in range(rng.randint(1, 2))
                ],
                early_exit=rng.random() < 0.4,
                exit_cond=rng.choice(CONDS),
                exit_threshold=rng.randint(0, 9),
            )
        )
    data = [rng.randint(0, 9) for _ in range(rng.randint(10, 40))]
    return recipe, data


def build_hyperblock_program(recipe):
    steps = len(recipe)
    program = Program("randhb")
    program.add_segment(DataSegment("A", 128))
    program.add_segment(DataSegment("B", 256))
    proc = Procedure("main", params=[Reg(1), Reg(2), Reg(3)])
    program.add_procedure(proc)
    b = IRBuilder(proc)
    b.start_block("Loop", fallthrough="Exit")
    accumulator = Reg(4)
    exit_pred = b.pred_clear()
    for i, step in enumerate(recipe):
        addr = b.add(Reg(1), i)
        value = b.load(addr, region="A")
        guard = b.cmpp1(step["guard_cond"], value, step["guard_threshold"])
        work = b.add(value, step["default"])
        b.add(value, step["arith"], guard=guard, dest=work)
        b.add(accumulator, work, dest=accumulator)
        if step["do_store"]:
            out = b.add(Reg(2), i)
            b.store(
                out,
                work,
                guard=guard if step["store_guarded"] else None,
                region="B",
            )
        for cond, threshold in step["wired_or"]:
            b.cmpp(
                cond, value, threshold,
                [PredTarget(exit_pred, Action.ON)],
            )
        if step["early_exit"]:
            early = b.cmpp1(
                step["exit_cond"], value, step["exit_threshold"],
                guard=guard,
            )
            b.branch_to("Exit", early)
    b.branch_to("Exit", exit_pred)
    b.add(Reg(1), steps, dest=Reg(1))
    b.add(Reg(2), steps, dest=Reg(2))
    b.add(Reg(3), -1, dest=Reg(3))
    latch = b.cmpp1(Cond.GT, Reg(3), 0)
    b.branch_to("Loop", latch)
    b.start_block("Exit")
    b.ret(accumulator)
    verify_program(program)
    return program


def _hyperblock_args(interp, data, steps):
    interp.poke_array("A", data)
    return (
        interp.segment_base("A"),
        interp.segment_base("B"),
        max(1, len(data) // max(1, steps)),
    )


def execute_hyperblock(program, data, steps):
    interp = Interpreter(program)
    args = _hyperblock_args(interp, data, steps)
    return interp.run(args=list(args))


def test_hyperblock_pipeline_equivalence_seed_sweep():
    """Interpreter-observable equivalence of the FULL pipeline (profile,
    superblock formation, cleanup passes, ICBM, scheduling-facing IR) on
    random hyperblocks, for every seed in a fixed sweep. A failing seed
    reproduces exactly: the recipe is a pure function of the seed."""
    for seed in range(HYPERBLOCK_SEEDS):
        rng = random.Random(f"hyperblock:{seed}")
        recipe, data = hyperblock_recipe(rng)
        steps = len(recipe)

        reference = execute_hyperblock(
            build_hyperblock_program(recipe), data, steps
        )
        build = build_workload(
            "randhb",
            build_hyperblock_program(recipe),
            [lambda interp: _hyperblock_args(interp, data, steps)],
            PipelineOptions(),
        )
        assert build.build_report.ok, (
            f"seed {seed}: incidents {build.build_report.summary()}"
        )
        for label, program in (
            ("baseline", build.baseline),
            ("transformed", build.transformed),
        ):
            result = execute_hyperblock(program, data, steps)
            assert result.equivalent_to(reference), (
                f"seed {seed}: {label} diverged "
                f"({reference.return_value} vs {result.return_value})"
            )
