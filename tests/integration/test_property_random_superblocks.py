"""Property-based differential testing of the full ICBM transformation.

Hypothesis generates random single-entry superblock loops — random
arithmetic, guarded stores, exit branches with random conditions — then
the test FRP-converts, runs ICBM, and checks architectural equivalence
against the untransformed program on the same random inputs. This is the
strongest correctness net in the suite: any unsound code motion, guard
rewiring, or splitting shows up as a store-trace or return-value diff.
"""

from hypothesis import given, settings, strategies as st

from repro.core import CPRConfig, apply_icbm
from repro.ir import (
    Cond,
    DataSegment,
    IRBuilder,
    Procedure,
    Program,
    Reg,
    verify_program,
)
from repro.opt import frp_convert_procedure
from repro.sim.interpreter import Interpreter
from repro.sim.profiler import profile_program

CONDS = [Cond.EQ, Cond.NE, Cond.LT, Cond.GT]


@st.composite
def superblock_programs(draw):
    """A random unrolled scan loop over array A with data-dependent exits
    and stores into array B."""
    iterations = draw(st.integers(min_value=2, max_value=5))
    recipe = []
    for i in range(iterations):
        recipe.append(
            dict(
                cond=draw(st.sampled_from(CONDS)),
                threshold=draw(st.integers(min_value=0, max_value=9)),
                offset=draw(st.integers(min_value=0, max_value=2)),
                do_store=draw(st.booleans()),
                arith=draw(st.integers(min_value=1, max_value=7)),
            )
        )
    data = draw(
        st.lists(
            st.integers(min_value=0, max_value=9),
            min_size=10,
            max_size=60,
        )
    )
    return recipe, data


def build_program(recipe):
    iterations = len(recipe)
    program = Program("rand")
    program.add_segment(DataSegment("A", 128))
    program.add_segment(DataSegment("B", 256))
    proc = Procedure("main", params=[Reg(1), Reg(2), Reg(3)])
    program.add_procedure(proc)
    b = IRBuilder(proc)
    b.start_block("Loop", fallthrough="Exit")
    accumulator = Reg(4)
    for i, step in enumerate(recipe):
        addr = b.add(Reg(1), i)
        value = b.load(addr, region="A")
        work = b.add(value, step["arith"])
        b.add(accumulator, work, dest=accumulator)
        if step["do_store"]:
            out = b.add(Reg(2), i + step["offset"])
            b.store(out, work, region="B")
        pred = b.cmpp1(Cond(step["cond"]), value, step["threshold"])
        b.branch_to("Exit", pred)
    b.add(Reg(1), iterations, dest=Reg(1))
    b.add(Reg(2), iterations, dest=Reg(2))
    b.add(Reg(3), -1, dest=Reg(3))
    latch = b.cmpp1(Cond.GT, Reg(3), 0)
    b.branch_to("Loop", latch)
    b.start_block("Exit")
    b.ret(accumulator)
    verify_program(program)
    return program


def execute(program, data):
    interp = Interpreter(program)
    interp.poke_array("A", data)
    trips = max(1, len(data) // 4)
    return interp.run(
        args=[
            interp.segment_base("A"),
            interp.segment_base("B"),
            trips,
        ]
    )


@settings(max_examples=40, deadline=None)
@given(superblock_programs())
def test_icbm_preserves_semantics_on_random_superblocks(case):
    recipe, data = case
    reference_program = build_program(recipe)
    reference = execute(reference_program, data)

    transformed = build_program(recipe)
    proc = transformed.procedures["main"]
    frp_convert_procedure(proc)
    profile = profile_program(
        transformed,
        inputs=[
            lambda interp: (
                interp.poke_array("A", data),
                (
                    interp.segment_base("A"),
                    interp.segment_base("B"),
                    max(1, len(data) // 4),
                ),
            )[1]
        ],
    )
    apply_icbm(
        proc,
        profile,
        CPRConfig(exit_weight_threshold=0.9, predict_taken_threshold=0.6),
    )
    verify_program(transformed)
    result = execute(transformed, data)
    assert result.equivalent_to(reference), (
        f"divergence: {reference.return_value} vs {result.return_value}"
    )


@settings(max_examples=15, deadline=None)
@given(superblock_programs(), st.integers(min_value=0, max_value=3))
def test_icbm_equivalent_across_unrelated_inputs(case, shift):
    """Transform with one profile, then execute on a *different* input:
    the transformation must be correct regardless of profile accuracy."""
    recipe, data = case
    other_data = [(v + shift) % 10 for v in reversed(data)]

    reference = execute(build_program(recipe), other_data)
    transformed = build_program(recipe)
    proc = transformed.procedures["main"]
    frp_convert_procedure(proc)
    profile = profile_program(
        transformed,
        inputs=[
            lambda interp: (
                interp.poke_array("A", data),
                (
                    interp.segment_base("A"),
                    interp.segment_base("B"),
                    max(1, len(data) // 4),
                ),
            )[1]
        ],
    )
    apply_icbm(proc, profile, CPRConfig(exit_weight_threshold=0.9))
    result = execute(transformed, other_data)
    assert result.equivalent_to(reference)
