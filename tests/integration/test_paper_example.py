"""The paper's Section 6 worked example (Figures 6-7): unrolled strcpy.

The paper reports, for its 4x-unrolled string copy with two CPR blocks
(fall-through then taken variation):

* final on-trace loop of 28 ops vs 30 original (irredundant);
* 11 operations in compensation blocks;
* dependence height through the loop reduced from 8 to 7 cycles;
* one fall-through variation with a bypass branch, one taken variation
  reusing the loop-back branch.

We reproduce the same structure. Exact op counts differ slightly from the
paper's listing (our FRP initializers are discrete pred_set/pred_clear ops
and dead off-trace predicates are DCE'd), so the assertions check the
structural claims and bounded ranges rather than the precise 28/11 split.
"""

from repro.core import CPRConfig, apply_icbm
from repro.ir import Opcode, verify_procedure
from repro.machine import INFINITE
from repro.opt import frp_convert_procedure
from repro.sched import schedule_block
from repro.analysis import LivenessAnalysis
from repro.sim.profiler import profile_program
from tests.conftest import build_strcpy_program, run_strcpy


def transform_like_paper(config=None):
    program = build_strcpy_program(unroll=4)
    proc = program.procedure("main")
    frp_convert_procedure(proc)

    def setup(interp):
        data = [(i % 9) + 1 for i in range(41)] + [0]
        interp.poke_array("A", data)
        return (interp.segment_base("A"), interp.segment_base("B"))

    profile = profile_program(program, inputs=[setup])
    report = apply_icbm(
        proc,
        profile,
        config
        or CPRConfig(exit_weight_threshold=0.5, max_branches=2),
    )
    verify_procedure(proc)
    return program, proc, report


def test_two_cpr_blocks_fall_through_then_taken():
    _, proc, report = transform_like_paper()
    (block_report,) = report.blocks
    assert block_report.transformed == 2
    assert block_report.taken_variations == 1
    kinds = [cpr.taken_variation for cpr in block_report.cpr_blocks]
    assert kinds == [False, True]


def test_on_trace_branch_count_drops_four_to_two():
    _, proc, _ = transform_like_paper()
    loop = proc.block("Loop")
    # One bypass branch per CPR block (the second IS the loop-back).
    assert len(loop.exit_branches()) == 2


def test_height_reduced_on_infinite_machine():
    """Paper: dependence height 8 -> 7. Our model reproduces the baseline
    height of 8 exactly and reduces it by at least one cycle with a single
    CPR block (blocking into two costs the chained-root cycle back)."""
    baseline = build_strcpy_program(unroll=4)
    base_proc = baseline.procedure("main")
    base_len = schedule_block(
        base_proc.block("Loop"), INFINITE,
        liveness=LivenessAnalysis(base_proc),
    ).length
    assert base_len == 8

    _, proc, _ = transform_like_paper(
        CPRConfig(exit_weight_threshold=0.9)  # single 4-branch CPR block
    )
    cpr_len = schedule_block(
        proc.block("Loop"), INFINITE, liveness=LivenessAnalysis(proc)
    ).length
    assert cpr_len < base_len


def test_static_growth_in_paper_range():
    """Paper: 30 -> 28 + 11 = 39 static ops (+9). Ours lands in the same
    ballpark: modest on-trace shrink, compensation code of similar size."""
    baseline = build_strcpy_program(unroll=4)
    original = len(baseline.procedure("main").block("Loop").ops)
    program, proc, _ = transform_like_paper()
    on_trace = len(proc.block("Loop").ops)
    compensation = sum(
        len(block.ops)
        for block in proc.blocks
        if block.label.name.startswith("Cmp")
    )
    assert on_trace <= original + 2   # irredundant on-trace (+inits)
    assert 5 <= compensation <= 20
    total_growth = on_trace + compensation - original
    assert 0 < total_growth <= 15     # paper: +9


def test_behaviour_identical_to_baseline():
    for length in (0, 1, 2, 3, 4, 7, 12, 29):
        data = [((3 * i) % 7) + 1 for i in range(length)] + [0]
        reference = run_strcpy(build_strcpy_program(unroll=4), data)
        program, _, _ = transform_like_paper()
        assert run_strcpy(program, data).equivalent_to(reference)
