"""ICBM on hyperblocks with embedded predication.

The paper stresses that ICBM "correctly accommodates input code of
arbitrary complexity" including "conventional and FRP-converted
superblocks with embedded if-conversion" — the suitability test exists
precisely for this. These tests feed ICBM hyperblocks produced by the
if-conversion pass and hand-built regions with unrelated predication.
"""

from repro.core import CPRConfig, apply_icbm
from repro.frontend import compile_source
from repro.ir import (
    Cond,
    DataSegment,
    IRBuilder,
    Procedure,
    Program,
    Reg,
    verify_program,
)
from repro.opt import frp_convert_procedure
from repro.pipeline import PipelineOptions, build_workload
from repro.sim.interpreter import Interpreter
from repro.sim.profiler import profile_program

HYBRID_SOURCE = """
int A[128];
int B[128];

int main(int n) {
    int i = 0;
    int acc = 0;
    while (i < n) {
        int v = A[i];
        if (v == 0) { break; }
        if (v & 1) { acc += v; } else { acc -= v; }
        B[i] = acc;
        i += 1;
    }
    return acc;
}
"""


def test_if_converted_loop_through_full_pipeline():
    """An unbiased diamond inside a biased loop: if-conversion predicates
    the diamond, superblock formation merges the loop, and ICBM still
    transforms the biased exit branches around the predication."""
    data = [((i * 389) % 254) + 1 for i in range(100)] + [0]

    def setup(interp):
        interp.poke_array("A", data)
        return (len(data),)

    program = compile_source(HYBRID_SOURCE)
    build = build_workload(
        "hybrid", program, [setup], PipelineOptions(if_convert=True)
    )
    # The transformed build verified differentially inside build_workload.
    report = build.icbm_report
    assert report.total_cpr_blocks >= 1


def test_unrelated_predication_respected_by_suitability():
    """A hand-built region where an operation is guarded by a predicate
    unrelated to the branch chain: ICBM must transform the chain while
    preserving the foreign guard's semantics."""
    program = Program("t")
    program.add_segment(DataSegment("A", 64))
    program.add_segment(DataSegment("OUT", 64))
    proc = Procedure("main", params=[Reg(1), Reg(2), Reg(3)])
    program.add_procedure(proc)
    b = IRBuilder(proc)
    b.start_block("HB", fallthrough="Exit")
    # Foreign predicate: computed from an argument, guards a store.
    foreign = b.cmpp1(Cond.GT, Reg(3), 10)
    value1 = b.load(Reg(1), region="A")
    b.store(Reg(2), value1, guard=foreign, region="OUT")
    taken1, fall1 = b.cmpp2(Cond.EQ, value1, 0)
    b.branch_to("Exit", taken1)
    value2 = b.load(b.add(Reg(1), 1), region="A")
    addr2 = b.add(Reg(2), 1)
    b.store(addr2, value2, guard=fall1, region="OUT")
    taken2, fall2 = b.cmpp2(Cond.EQ, value2, 0, guard=fall1)
    b.branch_to("Exit", taken2)
    value3 = b.load(b.add(Reg(1), 2), region="A")
    addr3 = b.add(Reg(2), 2)
    b.store(addr3, value3, guard=fall2, region="OUT")
    b.start_block("Exit")
    b.ret(0)
    verify_program(program)

    def run(prog, data, arg3):
        interp = Interpreter(prog)
        interp.poke_array("A", data)
        return interp.run(
            args=[
                interp.segment_base("A"),
                interp.segment_base("OUT"),
                arg3,
            ]
        )

    for data, arg3 in (
        ([5, 6, 7], 20),   # foreign guard true
        ([5, 6, 7], 3),    # foreign guard false
        ([5, 0, 7], 20),   # early exit
        ([0, 6, 7], 3),    # immediate exit
    ):
        reference = run(program, data, arg3)
        transformed = program.clone()
        proc2 = transformed.procedures["main"]
        profile = profile_program(
            transformed,
            inputs=[
                lambda interp: (
                    interp.poke_array("A", [9, 9, 9]),
                    (
                        interp.segment_base("A"),
                        interp.segment_base("OUT"),
                        20,
                    ),
                )[1]
            ],
        )
        report = apply_icbm(
            proc2, profile, CPRConfig(exit_weight_threshold=0.9)
        )
        verify_program(transformed)
        assert report.transformed_cpr_blocks == 1
        result = run(transformed, data, arg3)
        assert result.equivalent_to(reference), (data, arg3)
