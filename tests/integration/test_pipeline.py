"""End-to-end pipeline: baseline + control CPR, differentially verified.

``build_workload`` already asserts architectural equivalence internally
(store trace + return value across every transformation stage); these
tests additionally check the paper's headline *shape* claims on a
representative subset of the suite.
"""

import pytest

from repro.core import CPRConfig
from repro.machine import INFINITE, MEDIUM, SEQUENTIAL, WIDE
from repro.perf import estimate_program_cycles, operation_counts
from repro.pipeline import PipelineOptions, build_workload
from repro.workloads.registry import get_workload

FAST_SUBSET = ["strcpy", "cmp", "grep", "099.go", "023.eqntott"]


@pytest.fixture(scope="module")
def builds():
    cache = {}
    for name in FAST_SUBSET:
        workload = get_workload(name)
        cache[name] = build_workload(
            workload.name, workload.compile(), workload.inputs
        )
    return cache


def speedup(build, machine):
    base = estimate_program_cycles(
        build.baseline, machine, build.baseline_profile
    ).total
    cpr = estimate_program_cycles(
        build.transformed, machine, build.transformed_profile
    ).total
    return base / cpr


@pytest.mark.parametrize("name", FAST_SUBSET)
def test_pipeline_differentially_verified(builds, name):
    # build_workload raises TransformError on any behavioural divergence;
    # reaching here means every stage was equivalence-checked.
    build = builds[name]
    assert build.baseline_profile.total_ops > 0
    assert build.transformed_profile.total_ops > 0


def test_biased_workloads_speed_up_on_wide_machines(builds):
    for name in ("strcpy", "cmp", "grep"):
        assert speedup(builds[name], WIDE) > 1.05, name
        assert speedup(builds[name], INFINITE) > 1.1, name


def test_unbiased_go_shows_no_gain(builds):
    value = speedup(builds["099.go"], MEDIUM)
    assert 0.95 <= value <= 1.05


def test_speedup_grows_with_width_for_cmp(builds):
    build = builds["cmp"]
    medium = speedup(build, MEDIUM)
    wide = speedup(build, WIDE)
    infinite = speedup(build, INFINITE)
    assert medium <= wide + 0.01 <= infinite + 0.02


def test_dynamic_branches_greatly_reduced(builds):
    for name in ("strcpy", "cmp"):
        build = builds[name]
        base = operation_counts(build.baseline, build.baseline_profile)
        cpr = operation_counts(
            build.transformed, build.transformed_profile
        )
        _, _, d_tot, d_br = cpr.ratios_against(base)
        assert d_br < 0.5, name           # paper: 0.07-0.22 for these
        assert d_tot <= 1.02, name        # irredundancy


def test_static_growth_is_bounded(builds):
    for name in FAST_SUBSET:
        build = builds[name]
        base = operation_counts(build.baseline, build.baseline_profile)
        cpr = operation_counts(
            build.transformed, build.transformed_profile
        )
        s_tot, _, _, _ = cpr.ratios_against(base)
        assert s_tot < 1.5, name


def test_untransformed_code_is_byte_identical(builds):
    """Where ICBM does not fire (go), the 'transformed' build must fall
    back to the baseline code, as the paper measures."""
    build = builds["099.go"]
    base_ops = [
        op.format()
        for proc in build.baseline.procedures.values()
        for block in proc.blocks
        for op in block.ops
    ]
    cpr_ops = [
        op.format()
        for proc in build.transformed.procedures.values()
        for block in proc.blocks
        for op in block.ops
    ]
    assert base_ops == cpr_ops


def test_cpr_config_threads_through_pipeline():
    workload = get_workload("strcpy")
    options = PipelineOptions(cpr=CPRConfig(max_branches=2))
    build = build_workload(
        workload.name, workload.compile(), workload.inputs, options
    )
    report = build.icbm_report
    assert all(
        cpr.size <= 2
        for block in report.blocks
        for cpr in block.cpr_blocks
    )
