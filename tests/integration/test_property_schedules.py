"""Property-based validation of scheduling and cycle-level execution.

Random predicated superblocks (the same generator as the ICBM property
suite) are pushed through the *entire* stack — FRP conversion, ICBM, list
scheduling on several machines, cycle-level execution — and three
properties are checked on every example:

1. every schedule satisfies all dependence and resource constraints;
2. cycle-level execution of the scheduled code is architecturally
   equivalent to sequential execution (same return value, same stores per
   address in order);
3. the exit-aware estimator predicts the simulated cycles exactly.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import DependenceGraph, LivenessAnalysis
from repro.core import CPRConfig, apply_icbm
from repro.machine import MEDIUM, NARROW, WIDE
from repro.opt import frp_convert_procedure
from repro.perf import estimate_program_cycles
from repro.sched import schedule_block
from repro.sim import Interpreter, simulate_scheduled
from repro.sim.profiler import profile_program
from tests.integration.test_property_random_superblocks import (
    build_program,
    superblock_programs,
)


def _setup_factory(data):
    def setup(target):
        target.poke_array("A", data)
        return (
            target.segment_base("A"),
            target.segment_base("B"),
            max(1, len(data) // 4),
        )

    return setup


def _per_address(trace):
    orders = {}
    for address, value in trace:
        orders.setdefault(address, []).append(value)
    return orders


def _transform(program, data):
    proc = program.procedures["main"]
    frp_convert_procedure(proc)
    profile = profile_program(program, inputs=[_setup_factory(data)])
    apply_icbm(proc, profile, CPRConfig(exit_weight_threshold=0.9))
    return program


@settings(max_examples=25, deadline=None)
@given(superblock_programs(), st.sampled_from([NARROW, MEDIUM, WIDE]))
def test_schedules_valid_and_execution_exact(case, machine):
    recipe, data = case
    program = _transform(build_program(recipe), data)
    setup = _setup_factory(data)

    # Property 1: structural schedule validity on every block.
    proc = program.procedures["main"]
    liveness = LivenessAnalysis(proc)
    for block in proc.blocks:
        schedule = schedule_block(block, machine, liveness=liveness)
        graph = DependenceGraph(
            block, machine.latencies, liveness=liveness
        )
        for edge in graph.edges:
            src_cycle = schedule.cycles[graph.ops[edge.src].uid]
            dst_cycle = schedule.cycles[graph.ops[edge.dst].uid]
            assert dst_cycle >= src_cycle + edge.latency

    # Property 2: cycle-level execution equals sequential semantics.
    interp = Interpreter(program)
    args = tuple(setup(interp))
    sequential = interp.run(args=args)
    scheduled = simulate_scheduled(program, machine, setup=setup)
    assert scheduled.return_value == sequential.return_value
    assert sorted(scheduled.store_trace) == sorted(sequential.store_trace)
    assert _per_address(scheduled.store_trace) == _per_address(
        sequential.store_trace
    )

    # Property 3: the estimator is exact for this machine model.
    profile = profile_program(program, inputs=[setup])
    estimate = estimate_program_cycles(
        program, machine, profile, mode="exit-aware"
    )
    assert scheduled.total_cycles == round(estimate.total)


@settings(max_examples=15, deadline=None)
@given(superblock_programs())
def test_branch_latency_sweep_keeps_equivalence(case):
    """Exposed branch latency changes delay-slot behaviour; execution must
    stay architecturally correct at latency 2 and 3 as well."""
    recipe, data = case
    program = _transform(build_program(recipe), data)
    setup = _setup_factory(data)
    interp = Interpreter(program)
    args = tuple(setup(interp))
    sequential = interp.run(args=args)
    for latency in (2, 3):
        machine = MEDIUM.with_branch_latency(latency)
        scheduled = simulate_scheduled(program, machine, setup=setup)
        assert scheduled.return_value == sequential.return_value
        assert sorted(scheduled.store_trace) == sorted(
            sequential.store_trace
        )
