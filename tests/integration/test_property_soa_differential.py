"""Differential property test: the SoA engine is bit-identical to the
object engine.

Random predicated superblocks (the shared hypothesis generator) are
FRP-converted — the shape with the richest dependence structure: overlapped
branches, guarded stores, wired predicate writes — and every block is
scheduled with both engines on every machine preset. Per-op issue cycles,
schedule lengths, and the emitted ``sched.*`` counters must match exactly;
this is the contract that lets the SoA core be the default while the object
engine stays the reference semantics.
"""

from hypothesis import given, settings

from repro.machine import INFINITE, MEDIUM, NARROW, SEQUENTIAL, WIDE
from repro.obs import CounterSet, activate_counters
from repro.opt import frp_convert_procedure
from repro.sched import schedule_procedure, schedule_procedure_multi
from tests.integration.test_property_random_superblocks import (
    build_program,
    superblock_programs,
)

ALL_MACHINES = (SEQUENTIAL, NARROW, MEDIUM, WIDE, INFINITE)


def _schedules_and_counters(proc, machine, engine):
    counters = CounterSet()
    with activate_counters(counters):
        schedules = schedule_procedure(proc, machine, engine=engine)
    flat = {
        label: (dict(s.cycles), s.length)
        for label, s in schedules.schedules.items()
    }
    return flat, counters.to_dict()


@settings(max_examples=25, deadline=None)
@given(superblock_programs())
def test_soa_bit_identical_across_presets(case):
    recipe, _data = case
    program = build_program(recipe)
    proc = program.procedures["main"]
    frp_convert_procedure(proc)
    for machine in ALL_MACHINES:
        obj_flat, obj_counters = _schedules_and_counters(
            proc, machine, "object"
        )
        soa_flat, soa_counters = _schedules_and_counters(
            proc, machine, "soa"
        )
        assert obj_flat == soa_flat, machine.name
        assert obj_counters == soa_counters, machine.name


@settings(max_examples=10, deadline=None)
@given(superblock_programs())
def test_multi_machine_counters_match_per_machine_sum(case):
    """The shared-lowering multi path must emit exactly the counters five
    independent per-machine passes would (the metrics document is part of
    the determinism contract between engines)."""
    recipe, _data = case
    program = build_program(recipe)
    proc = program.procedures["main"]
    frp_convert_procedure(proc)

    multi_counters = CounterSet()
    with activate_counters(multi_counters):
        multi = schedule_procedure_multi(proc, ALL_MACHINES, engine="soa")

    single_counters = CounterSet()
    singles = {}
    with activate_counters(single_counters):
        for machine in ALL_MACHINES:
            singles[machine.name] = schedule_procedure(
                proc, machine, engine="object"
            )

    assert multi_counters.to_dict() == single_counters.to_dict()
    for name, expected in singles.items():
        for label, schedule in expected.schedules.items():
            got = multi[name].schedules[label]
            assert got.cycles == schedule.cycles
            assert got.length == schedule.length
