"""Pipeline configuration paths: verification, fuel, if-conversion."""

import pytest

from repro.errors import FuelExhausted, TransformError
from repro.ir import Opcode, TRUE_PRED
from repro.pipeline import (
    PipelineOptions,
    _check_equivalent,
    build_baseline,
    build_workload,
)
from repro.workloads.registry import get_workload


def test_verification_can_be_disabled():
    workload = get_workload("strcpy")
    options = PipelineOptions(verify_equivalence=False)
    build = build_workload(
        workload.name, workload.compile(), workload.inputs, options
    )
    assert build.transformed_profile.total_ops > 0


def test_fuel_limit_propagates():
    workload = get_workload("wc")
    options = PipelineOptions(fuel=100)
    with pytest.raises(FuelExhausted):
        build_baseline(workload.compile(), workload.inputs, options)


def test_check_equivalent_raises_with_details():
    class FakeResult:
        def __init__(self, value):
            self.return_value = value
            self.store_trace = []

        def equivalent_to(self, other):
            return self.return_value == other.return_value

    with pytest.raises(TransformError) as info:
        _check_equivalent([FakeResult(1)], [FakeResult(2)], "stage-x")
    assert "stage-x" in str(info.value)
    assert "input 0" in str(info.value)


def test_if_convert_option_produces_predicated_baseline():
    workload = get_workload("099.go")
    options = PipelineOptions(if_convert=True)
    build = build_workload(
        workload.name, workload.compile(), workload.inputs, options
    )
    guarded = [
        op
        for proc in build.baseline.procedures.values()
        for block in proc.blocks
        for op in block.ops
        if op.guard != TRUE_PRED and not op.is_branch
        and op.opcode is not Opcode.CMPP
    ]
    assert guarded, "if-conversion must leave predicated ops"
    # And it must pay: fewer dynamic branches than the plain baseline.
    plain = build_workload(
        workload.name,
        get_workload("099.go").compile(),
        workload.inputs,
        PipelineOptions(if_convert=False),
    )
    from repro.perf import operation_counts

    converted_branches = operation_counts(
        build.baseline, build.baseline_profile
    ).dynamic_branches
    plain_branches = operation_counts(
        plain.baseline, plain.baseline_profile
    ).dynamic_branches
    assert converted_branches < plain_branches


def test_workload_build_is_reproducible():
    workload = get_workload("cmp")
    first = build_workload(
        workload.name, workload.compile(), workload.inputs
    )
    second = build_workload(
        workload.name,
        get_workload("cmp").compile(),
        get_workload("cmp").inputs,
    )
    assert (
        first.transformed_profile.total_ops
        == second.transformed_profile.total_ops
    )
    assert (
        first.transformed_profile.total_branches
        == second.transformed_profile.total_branches
    )
