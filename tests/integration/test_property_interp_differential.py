"""Differential property test: the SoA interpreter is bit-identical to the
object interpreter.

Random mini-C programs from the fuzz generator (the same corpus the
differential oracle replays) run under both engines across the fuzz
argument sets and across fuel budgets from "plenty" down to "starves
mid-block". Everything observable must match exactly: block/edge profiles
(block entries, per-op executions, branch taken/not-taken counters), the
OUT-array observations the oracle keys on, store traces, memory images,
return values, and — when the budget runs dry — the FuelExhausted point
(message, procedure, block, op count) plus the partial counters collected
up to it. This is the hang-classification contract: the oracle treats
``FUZZ_FUEL`` exhaustion as divergence-relevant state, so both engines
must starve at the same op or hangs would classify differently per engine.
"""

from hypothesis import given, settings, strategies as st

from repro.errors import FuelExhausted
from repro.frontend import compile_source
from repro.fuzz.generator import fuzz_inputs, generate_workload
from repro.fuzz.oracle import FUZZ_FUEL
from repro.sim.interpreter import make_interpreter
from repro.sim.soa import ProgramLowering

RESULT_FIELDS = (
    "return_value",
    "store_trace",
    "memory",
    "ops_executed",
    "branches_executed",
    "block_counts",
    "op_counts",
    "branch_taken",
    "branch_not_taken",
)

#: Live interpreter state compared even when a run dies of fuel
#: exhaustion (an ExecutionResult never materializes then).
LIVE_FIELDS = (
    "store_trace",
    "memory",
    "ops_executed",
    "branches_executed",
    "block_counts",
    "op_counts",
    "branch_taken",
    "branch_not_taken",
    "fuel",
)


def execute(program, engine, args, fuel, lowering=None):
    """Run one input; return (outcome, interpreter, OUT observation)."""
    interp = make_interpreter(
        program, fuel=fuel, engine=engine, lowering=lowering
    )
    try:
        result = interp.run(entry="main", args=args)
        outcome = ("ok",) + tuple(
            getattr(result, name) for name in RESULT_FIELDS
        )
    except FuelExhausted as exc:
        outcome = ("fuel", str(exc), exc.proc, exc.block, exc.ops_executed)
    out = interp.peek_array("OUT", 8) if "OUT" in interp.segment_bases else None
    return outcome, interp, out


@settings(max_examples=220, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    input_index=st.integers(min_value=0, max_value=2),
    fuel=st.sampled_from((FUZZ_FUEL, 5_000, 311, 23)),
)
def test_engines_bit_identical_on_generated_programs(
    seed, input_index, fuel
):
    workload = generate_workload(seed)
    program = compile_source(workload.source)
    lowering = ProgramLowering(program)
    _, args = fuzz_inputs(seed)[input_index]

    obj_outcome, obj_interp, obj_out = execute(program, "object", args, fuel)
    soa_outcome, soa_interp, soa_out = execute(
        program, "soa", args, fuel, lowering=lowering
    )

    assert soa_outcome == obj_outcome
    assert soa_out == obj_out
    for name in LIVE_FIELDS:
        assert getattr(soa_interp, name) == getattr(obj_interp, name), name


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_hang_budget_classification_matches(seed):
    """Under the oracle's FUZZ_FUEL budget both engines agree on *whether*
    a program hangs, not just where — the oracle's hang-as-divergence rule
    depends on the classification alone."""
    workload = generate_workload(seed)
    program = compile_source(workload.source)
    lowering = ProgramLowering(program)
    for _, args in workload.inputs:
        obj_outcome, _, _ = execute(program, "object", args, FUZZ_FUEL)
        soa_outcome, _, _ = execute(
            program, "soa", args, FUZZ_FUEL, lowering=lowering
        )
        assert (soa_outcome[0] == "fuel") == (obj_outcome[0] == "fuel")
        assert soa_outcome == obj_outcome
