"""Control-flow graph construction and traversal orders."""

from repro.ir import (
    Cond,
    ControlFlowGraph,
    IRBuilder,
    Label,
    Procedure,
    Reg,
)


def build_diamond():
    """entry -> (left | right) -> join, plus a self-loop on join."""
    proc = Procedure("f")
    b = IRBuilder(proc)
    b.start_block("entry", fallthrough="left")
    p = b.cmpp1(Cond.EQ, Reg(1), 0)
    b.branch_to("right", p)
    b.start_block("left")
    b.jump("join")
    b.start_block("right", fallthrough="join")
    b.add(Reg(1), 1)
    b.start_block("join", fallthrough="done")
    q = b.cmpp1(Cond.LT, Reg(2), 10)
    b.branch_to("join", q)
    b.start_block("done")
    b.ret()
    return proc


def test_edges_and_kinds():
    cfg = ControlFlowGraph(build_diamond())
    kinds = {(e.src.name, e.dst.name): e.kind for e in cfg.edges}
    assert kinds[("entry", "right")] == "branch"
    assert kinds[("entry", "left")] == "fallthrough"
    assert kinds[("left", "join")] == "jump"
    assert kinds[("right", "join")] == "fallthrough"
    assert kinds[("join", "join")] == "branch"
    assert kinds[("join", "done")] == "fallthrough"


def test_successors_predecessors():
    cfg = ControlFlowGraph(build_diamond())
    assert set(cfg.successors(Label("entry"))) == {
        Label("left"), Label("right")
    }
    assert set(cfg.predecessors(Label("join"))) == {
        Label("left"), Label("right"), Label("join")
    }


def test_reachability():
    proc = build_diamond()
    b = IRBuilder(proc)
    b.start_block("orphan")
    b.ret()
    cfg = ControlFlowGraph(proc)
    reachable = cfg.reachable()
    assert Label("done") in reachable
    assert Label("orphan") not in reachable


def test_reverse_postorder_entry_first_join_after_preds():
    cfg = ControlFlowGraph(build_diamond())
    order = cfg.reverse_postorder()
    position = {label: i for i, label in enumerate(order)}
    assert order[0] == Label("entry")
    assert position[Label("join")] > position[Label("left")]
    assert position[Label("done")] > position[Label("join")]
