"""Textual IR: print/parse round trips and parse error reporting."""

import pytest

from repro.errors import ParseError
from repro.ir import (
    Action,
    Cond,
    Label,
    Opcode,
    PredReg,
    Reg,
    parse_procedure,
    parse_program,
    verify_program,
)
from tests.conftest import build_strcpy_program, run_strcpy


def test_roundtrip_preserves_structure():
    program = build_strcpy_program()
    text = program.format()
    reparsed = parse_program(text)
    assert set(reparsed.procedures) == set(program.procedures)
    assert set(reparsed.segments) == set(program.segments)
    original = program.procedure("main")
    parsed = original and reparsed.procedure("main")
    assert [b.label for b in parsed.blocks] == [
        b.label for b in original.blocks
    ]
    for pb, ob in zip(parsed.blocks, original.blocks):
        assert len(pb.ops) == len(ob.ops)
        for pop, oop in zip(pb.ops, ob.ops):
            assert pop.opcode is oop.opcode
            assert pop.guard == oop.guard


def test_roundtrip_preserves_behaviour():
    program = build_strcpy_program()
    data = [5, 4, 3, 2, 1, 0]
    reference = run_strcpy(program, data)
    reparsed = parse_program(program.format())
    verify_program(reparsed)
    assert run_strcpy(reparsed, data).equivalent_to(reference)


def test_parse_cmpp_actions_and_guard():
    proc = parse_procedure(
        """
        Entry:
          p1, p2 = cmpp.un.uc eq (r3, 0) if p9
          return ()
        """
    )
    op = proc.block("Entry").ops[0]
    assert op.opcode is Opcode.CMPP
    assert op.cond is Cond.EQ
    assert op.guard == PredReg(9)
    assert op.dests[0].action is Action.UN
    assert op.dests[1].action is Action.UC


def test_parse_branch_resolves_target_from_pbr():
    proc = parse_procedure(
        """
        Entry:
          b1 = pbr (Out)
          branch (p1, b1)
          # falls through to Out
        Out:
          return ()
        """
    )
    branch = proc.block("Entry").ops[1]
    assert branch.branch_target() == Label("Out")


def test_parse_fallthrough_comment():
    proc = parse_procedure(
        """
        A:
          r1 = add (r2, 1)
          # falls through to B
        B:
          return (r1)
        """
    )
    assert proc.block("A").fallthrough == Label("B")


def test_parse_data_segment_with_initializer():
    program = parse_program("data T[8] = [1, 2, 3]\n\nproc main()\nE:\n  return ()")
    segment = program.segment("T")
    assert segment.size == 8
    assert segment.initial == [1, 2, 3]


def test_parse_negative_immediates():
    proc = parse_procedure("E:\n  r1 = mov (-5)\n  return (r1)")
    assert proc.block("E").ops[0].srcs[0].value == -5


@pytest.mark.parametrize(
    "bad",
    [
        "E:\n  r1 = frobnicate (r2)\n  return ()",
        "E:\n  p1 = cmpp.un (r1, r2)\n  return ()",      # missing condition
        "E:\n  r1 = add (r2, 1) if r9\n  return ()",      # non-pred guard
        "  r1 = add (r2, 1)",                              # op outside block
    ],
)
def test_parse_errors(bad):
    with pytest.raises(ParseError):
        parse_procedure(bad)


def test_parse_error_carries_line_number():
    try:
        parse_program("proc main()\nE:\n  zzz (r1)\n  return ()")
    except ParseError as exc:
        assert exc.line == 3
    else:
        pytest.fail("expected ParseError")
