"""The IR verifier: structural violations are reported, good IR passes."""

import pytest

from repro.errors import VerificationError
from repro.ir import (
    BTR,
    Cond,
    Block,
    IRBuilder,
    Label,
    Opcode,
    Operation,
    PredReg,
    Procedure,
    Program,
    Reg,
    check_procedure,
    verify_procedure,
    verify_program,
)
from tests.conftest import build_strcpy_program


def minimal_proc():
    proc = Procedure("f")
    b = IRBuilder(proc)
    b.start_block("E")
    b.ret()
    return proc


def test_good_program_verifies(strcpy_program):
    verify_program(strcpy_program)  # must not raise


def test_empty_procedure_rejected():
    proc = Procedure("f")
    problems = check_procedure(proc)
    assert any("no blocks" in p for p in problems)


def test_branch_to_unknown_label():
    proc = minimal_proc()
    block = proc.block("E")
    branch = Operation(Opcode.BRANCH, srcs=[PredReg(1), BTR(1)])
    branch.attrs["target"] = Label("Nowhere")
    block.ops.insert(0, branch)
    problems = check_procedure(proc)
    assert any("Nowhere" in p for p in problems)


def test_branch_with_unresolved_target():
    proc = minimal_proc()
    branch = Operation(Opcode.BRANCH, srcs=[PredReg(1), BTR(1)])
    proc.block("E").ops.insert(0, branch)
    problems = check_procedure(proc)
    assert any("unresolved" in p for p in problems)


def test_branch_disagreeing_with_pbr():
    proc = Procedure("f")
    b = IRBuilder(proc)
    b.start_block("E")
    btr = b.pbr("Other")
    b.branch(PredReg(1), btr, target="E")  # lies about the target
    b.ret()
    b.start_block("Other")
    b.ret()
    problems = check_procedure(proc)
    assert any("disagrees" in p for p in problems)


def test_jump_must_be_block_final():
    proc = minimal_proc()
    proc.block("E").ops.insert(
        0, Operation(Opcode.JUMP, srcs=[Label("E")])
    )
    problems = check_procedure(proc)
    assert any("not at end" in p for p in problems)


def test_fall_off_procedure_end():
    proc = Procedure("f")
    proc.add_block(Block(label=Label("E")))
    proc.block("E").append(
        Operation(Opcode.MOV, dests=[Reg(1)], srcs=[Reg(2)])
    )
    problems = check_procedure(proc)
    assert any("falls off" in p for p in problems)


def test_missing_fallthrough_mid_procedure():
    proc = Procedure("f")
    proc.add_block(Block(label=Label("A")))
    block_b = Block(label=Label("B"))
    proc.add_block(block_b)
    block_b.append(Operation(Opcode.RETURN, srcs=[]))
    problems = check_procedure(proc)
    assert any("no fallthrough" in p for p in problems)


def test_call_to_unknown_procedure():
    program = Program("p")
    proc = minimal_proc()
    program.add_procedure(proc)
    call = Operation(Opcode.CALL, srcs=[])
    call.attrs["callee"] = "missing"
    proc.block("E").ops.insert(0, call)
    with pytest.raises(VerificationError) as info:
        verify_program(program)
    assert "missing" in str(info.value)


def test_verification_error_lists_problems():
    proc = Procedure("f")
    proc.add_block(Block(label=Label("E")))
    with pytest.raises(VerificationError) as info:
        verify_procedure(proc)
    assert info.value.problems


def test_op_after_unguarded_return_rejected():
    proc = minimal_proc()
    dead = Operation(Opcode.ADD, dests=[Reg(3)], srcs=[Reg(1), Reg(2)])
    proc.block("E").ops.append(dead)
    problems = check_procedure(proc)
    assert any("unreachable op after unconditional return" in p
               for p in problems)


def test_second_unconditional_terminator_rejected():
    proc = minimal_proc()
    proc.block("E").ops.append(Operation(Opcode.RETURN, srcs=[]))
    problems = check_procedure(proc)
    assert any("second unconditional return" in p for p in problems)


def test_guarded_early_return_is_fine():
    proc = Procedure("f", params=[Reg(1)])
    b = IRBuilder(proc)
    b.start_block("E")
    taken = b.cmpp1(Cond.EQ, Reg(1), 0)
    b.emit(Operation(Opcode.RETURN, srcs=[], guard=taken))
    b.ret()
    assert check_procedure(proc) == []
