"""The fluent IR builder."""

import pytest

from repro.errors import IRError
from repro.ir import (
    Action,
    BTR,
    Cond,
    FReg,
    IRBuilder,
    Imm,
    Label,
    Opcode,
    PredReg,
    Procedure,
    Reg,
    TRUE_PRED,
)


@pytest.fixture
def builder():
    proc = Procedure("f", params=[Reg(i) for i in range(1, 6)])
    b = IRBuilder(proc)
    b.start_block("E")
    return b


def test_emit_requires_block():
    b = IRBuilder(Procedure("f"))
    with pytest.raises(IRError):
        b.add(1, 2)


def test_binops_allocate_fresh_dests(builder):
    x = builder.add(Reg(1), Reg(2))
    y = builder.mul(x, 3)
    assert isinstance(x, Reg) and isinstance(y, Reg)
    assert x != y
    ops = builder.block.ops
    assert ops[0].opcode is Opcode.ADD
    assert ops[1].opcode is Opcode.MUL
    assert ops[1].srcs == [x, Imm(3)]


def test_python_numbers_lift_to_immediates(builder):
    op = builder.block.ops[builder.block.index_of(builder.store(5, True))]
    assert op.srcs == [Imm(5), Imm(1)]


def test_float_ops_use_fregs(builder):
    f = builder.fadd(FReg(1), FReg(2))
    assert isinstance(f, FReg)
    assert builder.block.ops[-1].opcode is Opcode.FADD


def test_guarded_emission(builder):
    pred = PredReg(7)
    builder.add(Reg(1), 1, guard=pred)
    assert builder.block.ops[-1].guard == pred
    builder.add(Reg(1), 1)
    assert builder.block.ops[-1].guard == TRUE_PRED


def test_cmpp2_default_un_uc(builder):
    taken, fall = builder.cmpp2(Cond.LT, Reg(1), Reg(2))
    op = builder.block.ops[-1]
    assert [t.action for t in op.dests] == [Action.UN, Action.UC]
    assert [t.reg for t in op.dests] == [taken, fall]


def test_cmpp1_custom_action(builder):
    dest = builder.cmpp1(Cond.EQ, Reg(1), 0, action=Action.ON)
    op = builder.block.ops[-1]
    assert op.dests[0].action is Action.ON
    assert op.dests[0].reg == dest


def test_branch_to_emits_pbr_pair(builder):
    builder.proc.add_block(
        __import__("repro.ir.block", fromlist=["Block"]).Block(
            label=Label("T")
        )
    )
    branch = builder.branch_to("T", PredReg(1))
    pbr, br = builder.block.ops[-2:]
    assert pbr.opcode is Opcode.PBR
    assert isinstance(pbr.dests[0], BTR)
    assert br is branch
    assert br.srcs[1] == pbr.dests[0]
    assert br.branch_target() == Label("T")


def test_load_store_region_tags(builder):
    builder.load(Reg(1), region="A")
    builder.store(Reg(1), Reg(2), region="B")
    load, store = builder.block.ops[-2:]
    assert load.attrs["region"] == "A"
    assert store.attrs["region"] == "B"


def test_call_and_ret(builder):
    result = builder.call("callee", [Reg(1), 7],
                          dest=builder.proc.new_reg())
    call = builder.block.ops[-1]
    assert call.attrs["callee"] == "callee"
    assert call.dests == [result]
    builder.ret(result)
    assert builder.block.ops[-1].opcode is Opcode.RETURN


def test_pred_init_helpers(builder):
    cleared = builder.pred_clear()
    copied = builder.pred_set(cleared)
    assert builder.block.ops[-2].opcode is Opcode.PRED_CLEAR
    assert builder.block.ops[-1].opcode is Opcode.PRED_SET
    assert builder.block.ops[-1].srcs == [cleared]
    assert isinstance(copied, PredReg)
