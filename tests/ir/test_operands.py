"""Operand kinds: identity, hashing, printing."""

from repro.ir import BTR, FReg, Imm, Label, PredReg, Reg, TRUE_PRED
from repro.ir.operands import is_register


def test_register_equality_and_hash():
    assert Reg(3) == Reg(3)
    assert Reg(3) != Reg(4)
    assert Reg(3) != FReg(3)
    assert len({Reg(1), Reg(1), Reg(2)}) == 2


def test_true_pred_prints_as_t():
    assert repr(TRUE_PRED) == "T"
    assert repr(PredReg(5)) == "p5"


def test_operand_reprs():
    assert repr(Reg(7)) == "r7"
    assert repr(FReg(2)) == "f2"
    assert repr(BTR(1)) == "b1"
    assert repr(Imm(42)) == "42"
    assert repr(Label("Loop")) == "Loop"


def test_is_register_classification():
    assert is_register(Reg(1))
    assert is_register(FReg(1))
    assert is_register(PredReg(1))
    assert is_register(BTR(1))
    assert not is_register(Imm(0))
    assert not is_register(Label("X"))


def test_registers_are_ordered():
    assert Reg(1) < Reg(2)
    assert sorted([PredReg(3), PredReg(1)]) == [PredReg(1), PredReg(3)]
