"""Exhaustive check of the paper's Table 1 cmpp action semantics."""

import pytest

from repro.ir.semantics import Action, parse_action

# The paper's Table 1, verbatim: rows are (guard, result), cells are the
# value written per action ('-' = untouched, encoded as None).
TABLE_1 = {
    (0, 0): {"un": 0, "uc": 0, "on": None, "oc": None, "an": None,
             "ac": None},
    (0, 1): {"un": 0, "uc": 0, "on": None, "oc": None, "an": None,
             "ac": None},
    (1, 0): {"un": 0, "uc": 1, "on": None, "oc": 1, "an": 0, "ac": None},
    (1, 1): {"un": 1, "uc": 0, "on": 1, "oc": None, "an": None, "ac": 0},
}


@pytest.mark.parametrize("guard", [0, 1])
@pytest.mark.parametrize("result", [0, 1])
@pytest.mark.parametrize("action", list(Action))
def test_table_1_exhaustive(guard, result, action):
    expected = TABLE_1[(guard, result)][action.value]
    written = action.apply(bool(guard), bool(result))
    if expected is None:
        assert written is None, f"{action} must not write"
    else:
        assert written == bool(expected), (
            f"{action} guard={guard} result={result}"
        )


def test_unconditional_actions_always_write():
    for action in (Action.UN, Action.UC):
        for guard in (False, True):
            for result in (False, True):
                assert action.apply(guard, result) is not None


def test_wired_or_only_sets_true():
    for action in (Action.ON, Action.OC):
        for guard in (False, True):
            for result in (False, True):
                written = action.apply(guard, result)
                assert written in (None, True)


def test_wired_and_only_clears():
    for action in (Action.AN, Action.AC):
        for guard in (False, True):
            for result in (False, True):
                written = action.apply(guard, result)
                assert written in (None, False)


def test_complement_mode_flips_result_not_guard():
    # UC with result=1 behaves like UN with result=0, and vice versa.
    for guard in (False, True):
        for result in (False, True):
            assert Action.UC.apply(guard, result) == Action.UN.apply(
                guard, not result
            )
            assert Action.OC.apply(guard, result) == Action.ON.apply(
                guard, not result
            )
            assert Action.AC.apply(guard, result) == Action.AN.apply(
                guard, not result
            )


def test_action_metadata():
    assert Action.UN.kind == "U" and not Action.UN.complemented
    assert Action.OC.kind == "O" and Action.OC.complemented
    assert Action.AC.kind == "A" and Action.AC.complemented


def test_parse_action_round_trips():
    for action in Action:
        assert parse_action(action.value) is action
        assert parse_action(action.value.upper()) is action


def test_parse_action_rejects_unknown():
    with pytest.raises(ValueError):
        parse_action("xx")
