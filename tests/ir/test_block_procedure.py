"""Blocks, procedures, programs: structure and mutation."""

import pytest

from repro.errors import IRError
from repro.ir import (
    Block,
    Cond,
    DataSegment,
    IRBuilder,
    Label,
    Opcode,
    Procedure,
    Program,
    Reg,
)


def build_two_exit_block():
    proc = Procedure("f")
    b = IRBuilder(proc)
    block = b.start_block("Entry", fallthrough="Done")
    r1 = b.load(Reg(1))
    p = b.cmpp1(Cond.EQ, r1, 0)
    b.branch_to("Done", p)
    r2 = b.add(r1, 1)
    q = b.cmpp1(Cond.LT, r2, 10)
    b.branch_to("Done", q)
    b.store(Reg(2), r2)
    b.start_block("Done")
    b.ret()
    return proc, block


def test_block_branch_queries():
    proc, block = build_two_exit_block()
    assert len(block.exit_branches()) == 2
    assert len(block.branches()) == 2
    assert block.terminator() is None
    assert block.successor_labels() == [
        Label("Done"), Label("Done"), Label("Done")
    ]


def test_block_insertion_and_removal():
    proc, block = build_two_exit_block()
    anchor = block.ops[0]
    from repro.ir import Operation

    new_op = Operation(Opcode.MOV, dests=[Reg(9)], srcs=[Reg(1)])
    block.insert_after(anchor, new_op)
    assert block.ops[1] is new_op
    block.remove(new_op)
    assert new_op not in block.ops
    with pytest.raises(ValueError):
        block.index_of(new_op)


def test_block_clone_fresh_uids():
    proc, block = build_two_exit_block()
    clone = block.clone(Label("Copy"))
    assert [op.opcode for op in clone.ops] == [
        op.opcode for op in block.ops
    ]
    assert all(
        c.uid != o.uid for c, o in zip(clone.ops, block.ops)
    )
    assert clone.fallthrough == block.fallthrough


def test_procedure_block_registry():
    proc, block = build_two_exit_block()
    assert proc.block("Entry") is block
    assert proc.has_block("Done")
    assert not proc.has_block("Nope")
    with pytest.raises(IRError):
        proc.block("Nope")
    with pytest.raises(IRError):
        proc.add_block(Block(label=Label("Entry")))


def test_procedure_fresh_names_do_not_collide():
    proc, _ = build_two_exit_block()
    existing = {
        reg
        for block in proc.blocks
        for op in block.ops
        for reg in op.dest_registers()
    }
    for _ in range(20):
        assert proc.new_reg() not in existing
        assert proc.new_pred() not in existing


def test_note_used_names_bumps_allocators():
    proc = Procedure("g")
    b = IRBuilder(proc)
    b.start_block("E")
    b.add(Reg(50), 1, dest=Reg(51))
    b.ret()
    proc.note_used_names()
    assert proc.new_reg().index >= 52


def test_program_segments_and_procedures():
    program = Program("p")
    program.add_segment(DataSegment("A", 8, initial=[1, 2]))
    with pytest.raises(IRError):
        program.add_segment(DataSegment("A", 8))
    with pytest.raises(IRError):
        DataSegment("B", 2, initial=[1, 2, 3])
    proc = Procedure("main")
    program.add_procedure(proc)
    with pytest.raises(IRError):
        program.add_procedure(Procedure("main"))
    assert program.procedure("main") is proc
    with pytest.raises(IRError):
        program.procedure("other")


def test_program_clone_is_deep():
    program = Program("p")
    program.add_segment(DataSegment("A", 4, initial=[7]))
    proc, _ = build_two_exit_block()
    program.add_procedure(proc)
    copy = program.clone()
    copy.segment("A").initial[0] = 99
    assert program.segment("A").initial[0] == 7
    copy_block = copy.procedure("f").block("Entry")
    orig_block = program.procedure("f").block("Entry")
    assert copy_block.ops[0].uid != orig_block.ops[0].uid
    copy_block.ops[0].srcs[0] = Reg(77)
    assert orig_block.ops[0].srcs[0] == Reg(1)


def test_op_count_and_format():
    proc, _ = build_two_exit_block()
    assert proc.op_count() == len(proc.block("Entry").ops) + 1
    text = proc.format()
    assert "proc f()" in text
    assert "Entry:" in text and "Done:" in text
