"""Operation construction, accessors, cloning, and rewriting."""

import pytest

from repro.errors import IRError
from repro.ir import (
    Action,
    BTR,
    Cond,
    Imm,
    Label,
    Opcode,
    Operation,
    PredReg,
    PredTarget,
    Reg,
    TRUE_PRED,
)


def make_cmpp(dests=None):
    dests = dests or [
        PredTarget(PredReg(1), Action.UN),
        PredTarget(PredReg(2), Action.UC),
    ]
    return Operation(
        Opcode.CMPP, dests=dests, srcs=[Reg(3), Imm(0)], cond=Cond.EQ
    )


def test_cmpp_requires_condition():
    with pytest.raises(IRError):
        Operation(
            Opcode.CMPP,
            dests=[PredTarget(PredReg(1), Action.UN)],
            srcs=[Reg(1), Imm(0)],
        )


def test_cmpp_requires_pred_targets():
    with pytest.raises(IRError):
        Operation(
            Opcode.CMPP, dests=[PredReg(1)], srcs=[Reg(1), Imm(0)],
            cond=Cond.EQ,
        )


def test_non_cmpp_rejects_condition():
    with pytest.raises(IRError):
        Operation(
            Opcode.ADD, dests=[Reg(1)], srcs=[Reg(2), Imm(1)], cond=Cond.EQ
        )


def test_dest_and_source_registers():
    op = make_cmpp()
    assert op.dest_registers() == [PredReg(1), PredReg(2)]
    assert op.source_registers() == [Reg(3)]
    guarded = Operation(
        Opcode.ADD, dests=[Reg(1)], srcs=[Reg(2), Imm(3)],
        guard=PredReg(9),
    )
    assert PredReg(9) in guarded.source_registers()


def test_unconditional_vs_always_writes():
    mixed = Operation(
        Opcode.CMPP,
        dests=[
            PredTarget(PredReg(1), Action.UN),
            PredTarget(PredReg(2), Action.ON),
        ],
        srcs=[Reg(3), Imm(0)],
        cond=Cond.EQ,
        guard=PredReg(5),
    )
    # UN writes regardless of the guard (Table 1); ON only conditionally.
    assert mixed.unconditional_writes() == [PredReg(1)]
    assert mixed.always_writes() == [PredReg(1)]

    guarded_add = Operation(
        Opcode.ADD, dests=[Reg(1)], srcs=[Reg(2), Imm(1)],
        guard=PredReg(5),
    )
    assert guarded_add.unconditional_writes() == [Reg(1)]
    assert guarded_add.always_writes() == []

    plain_add = Operation(Opcode.ADD, dests=[Reg(1)], srcs=[Reg(2), Imm(1)])
    assert plain_add.always_writes() == [Reg(1)]


def test_clone_gets_fresh_uid():
    op = make_cmpp()
    clone = op.clone()
    assert clone.uid != op.uid
    assert clone.dests == op.dests
    assert clone.srcs == op.srcs
    clone.srcs[0] = Reg(99)
    assert op.srcs[0] == Reg(3)  # no aliasing


def test_replace_sources_and_guard():
    op = Operation(
        Opcode.ADD, dests=[Reg(1)], srcs=[Reg(2), Reg(3)],
        guard=PredReg(4),
    )
    op.replace_sources({Reg(2): Reg(20), PredReg(4): PredReg(40)})
    assert op.srcs == [Reg(20), Reg(3)]
    assert op.guard == PredReg(40)


def test_replace_dests_handles_pred_targets():
    op = make_cmpp()
    op.replace_dests({PredReg(1): PredReg(10)})
    assert op.dests[0].reg == PredReg(10)
    assert op.dests[0].action is Action.UN
    assert op.dests[1].reg == PredReg(2)


def test_branch_target_resolution():
    branch = Operation(Opcode.BRANCH, srcs=[PredReg(1), BTR(1)])
    assert branch.branch_target() is None
    branch.set_branch_target(Label("Exit"))
    assert branch.branch_target() == Label("Exit")

    jump = Operation(Opcode.JUMP, srcs=[Label("Loop")])
    assert jump.branch_target() == Label("Loop")
    jump.set_branch_target(Label("Other"))
    assert jump.branch_target() == Label("Other")


def test_format_matches_paper_style():
    op = make_cmpp()
    text = op.format()
    assert "cmpp.un.uc eq" in text
    assert text.endswith("if T")
    store = Operation(Opcode.STORE, srcs=[Reg(1), Reg(2)], guard=PredReg(6))
    assert store.format() == "store (r1, r2) if p6"
