"""Opcode classification and comparison-condition algebra."""

import pytest

from repro.ir import Cond, Opcode


def test_branch_classification():
    for opcode in (Opcode.BRANCH, Opcode.JUMP, Opcode.CALL, Opcode.RETURN):
        assert opcode.is_branch()
    for opcode in (Opcode.ADD, Opcode.LOAD, Opcode.CMPP, Opcode.PBR):
        assert not opcode.is_branch()


def test_speculation_classification():
    # Stores, branches, calls are non-speculative; loads and arithmetic
    # may be hoisted above branches (paper Section 4.1).
    assert not Opcode.STORE.is_speculable()
    assert not Opcode.BRANCH.is_speculable()
    assert not Opcode.CALL.is_speculable()
    assert Opcode.LOAD.is_speculable()
    assert Opcode.ADD.is_speculable()
    assert Opcode.CMPP.is_speculable()
    assert Opcode.PBR.is_speculable()


def test_unit_classes():
    assert Opcode.ADD.unit_class() == "I"
    assert Opcode.CMPP.unit_class() == "I"
    assert Opcode.PBR.unit_class() == "I"
    assert Opcode.FMUL.unit_class() == "F"
    assert Opcode.LOAD.unit_class() == "M"
    assert Opcode.STORE.unit_class() == "M"
    assert Opcode.BRANCH.unit_class() == "B"
    assert Opcode.JUMP.unit_class() == "B"


@pytest.mark.parametrize(
    "cond, a, b, expected",
    [
        (Cond.EQ, 1, 1, True),
        (Cond.EQ, 1, 2, False),
        (Cond.NE, 1, 2, True),
        (Cond.LT, 1, 2, True),
        (Cond.LE, 2, 2, True),
        (Cond.GT, 3, 2, True),
        (Cond.GE, 2, 3, False),
    ],
)
def test_cond_evaluate(cond, a, b, expected):
    assert cond.evaluate(a, b) is expected


@pytest.mark.parametrize("cond", list(Cond))
def test_negation_is_complement(cond):
    for a in range(-2, 3):
        for b in range(-2, 3):
            assert cond.evaluate(a, b) != cond.negate().evaluate(a, b)


@pytest.mark.parametrize("cond", list(Cond))
def test_negation_is_involution(cond):
    assert cond.negate().negate() is cond


@pytest.mark.parametrize("cond", list(Cond))
def test_swap_mirrors_operands(cond):
    for a in range(-2, 3):
        for b in range(-2, 3):
            assert cond.evaluate(a, b) == cond.swap().evaluate(b, a)
