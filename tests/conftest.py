"""Shared fixtures and program-building helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.ir import (
    Cond,
    DataSegment,
    IRBuilder,
    Procedure,
    Program,
    Reg,
    verify_program,
)
from repro.sim.interpreter import Interpreter


def build_strcpy_program(unroll: int = 4) -> Program:
    """The paper's Figure 6(b) shape: an unrolled string-copy superblock.

    One block holding `unroll` iterations, each a store / load / compare /
    exit-branch group, ending with a conditional loop-back branch (the
    predominantly taken latch the taken variation accelerates).
    """
    program = Program("strcpy")
    program.add_segment(DataSegment("A", 128))
    program.add_segment(DataSegment("B", 128))
    proc = Procedure("main", params=[Reg(1), Reg(2)])
    program.add_procedure(proc)
    b = IRBuilder(proc)
    b.start_block("Pre")
    b.load(Reg(1), dest=Reg(100), region="A")
    b.jump("Loop")
    b.start_block("Loop", fallthrough="Exit")
    prev = Reg(100)
    for i in range(unroll):
        addr_b = b.add(Reg(2), i)
        b.store(addr_b, prev, region="B")
        addr_a = b.add(Reg(1), i + 1)
        if i == unroll - 1:
            value = b.load(addr_a, dest=Reg(100), region="A")
            b.add(Reg(1), unroll, dest=Reg(1))
            b.add(Reg(2), unroll, dest=Reg(2))
            taken = b.cmpp1(Cond.NE, Reg(100), 0)
            b.branch_to("Loop", taken)
        else:
            value = b.load(addr_a, region="A")
            taken = b.cmpp1(Cond.EQ, value, 0)
            b.branch_to("Exit", taken)
            prev = value
    b.start_block("Exit")
    b.ret(0)
    verify_program(program)
    return program


def run_strcpy(program: Program, data):
    """Run a strcpy-shaped program over *data* (NUL-terminated)."""
    interp = Interpreter(program)
    interp.poke_array("A", data)
    return interp.run(
        args=[interp.segment_base("A"), interp.segment_base("B")]
    )


@pytest.fixture
def strcpy_program():
    return build_strcpy_program()


@pytest.fixture
def strcpy_data():
    return [(i % 9) + 1 for i in range(37)] + [0]
