"""Workload suite: every proxy compiles, verifies, runs, and has the
branch-bias character its paper benchmark calls for."""

import pytest

from repro.ir import verify_program
from repro.sim.interpreter import Interpreter
from repro.workloads.base import Lcg
from repro.workloads.registry import (
    FACTORIES,
    SPEC95,
    UTILITIES,
    all_names,
    get_workload,
)

ALL = all_names()


def run_workload(workload):
    program = workload.compile()
    verify_program(program)
    results = []
    for item in workload.inputs:
        interp = Interpreter(program)
        args = ()
        returned = item(interp)
        if returned is not None:
            args = tuple(returned)
        results.append(interp.run(entry=workload.entry, args=args))
    return results


def test_registry_covers_paper_table():
    assert len(ALL) == 24
    assert set(SPEC95) <= set(ALL)
    assert set(UTILITIES) <= set(ALL)
    assert "strcpy" in ALL and "099.go" in ALL


def test_unknown_workload_rejected():
    with pytest.raises(KeyError):
        get_workload("nonexistent")


@pytest.mark.parametrize("name", ALL)
def test_workload_compiles_and_runs(name):
    workload = get_workload(name)
    results = run_workload(workload)
    assert results
    for result in results:
        assert result.ops_executed > 1000, "workload too small to profile"
        # No workload may trip its own internal error checks.
        assert result.return_value is None or result.return_value >= -1


@pytest.mark.parametrize("name", ALL)
def test_workloads_deterministic(name):
    first = run_workload(get_workload(name))
    second = run_workload(get_workload(name))
    for a, b in zip(first, second):
        assert a.equivalent_to(b)


def test_go_proxy_has_unbiased_branches():
    workload = get_workload("099.go")
    result = run_workload(workload)[0]
    program = workload.compile()
    # Re-run on the compiled copy to inspect per-branch ratios.
    interp = Interpreter(program)
    args = tuple(workload.inputs[0](interp))
    result = interp.run(args=args)
    ratios = []
    for key, taken in result.branch_taken.items():
        not_taken = result.branch_not_taken.get(key, 0)
        executed = taken + not_taken
        if executed > 500:
            ratios.append(taken / executed)
    assert any(0.3 < r < 0.7 for r in ratios), "go must be unbiased"


def test_cmp_proxy_has_highly_biased_branches():
    workload = get_workload("cmp")
    program = workload.compile()
    interp = Interpreter(program)
    args = tuple(workload.inputs[0](interp))
    result = interp.run(args=args)
    for key, not_taken in result.branch_not_taken.items():
        taken = result.branch_taken.get(key, 0)
        executed = taken + not_taken
        if executed > 500:
            assert taken / executed < 0.05 or taken / executed > 0.95


def test_lcg_determinism_and_ranges():
    a = Lcg(seed=7)
    b = Lcg(seed=7)
    assert [a.next() for _ in range(10)] == [b.next() for _ in range(10)]
    c = Lcg(seed=9)
    values = [c.in_range(3, 5) for _ in range(200)]
    assert set(values) == {3, 4, 5}
    assert all(0 <= c.below(10) < 10 for _ in range(200))


def test_scale_parameter_grows_work():
    small = run_workload(get_workload("wc", scale=1))[0].ops_executed
    large = sum(
        r.ops_executed for r in run_workload(get_workload("wc", scale=2))
    )
    assert large > small * 1.5


def test_categories_match_paper_grouping():
    for name in ALL:
        workload = get_workload(name)
        if name in SPEC95:
            assert workload.category == "spec95"
        elif name in UTILITIES:
            assert workload.category == "util"
        else:
            assert workload.category == "spec92"
