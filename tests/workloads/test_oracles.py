"""Workload oracles: Python reference implementations of several kernels,
checked against the simulated mini-C programs (ensures the proxies compute
what their docstrings claim, not just that they run)."""

from repro.sim.interpreter import Interpreter
from repro.workloads import cmp as cmp_mod
from repro.workloads import eqntott, grep, lex, strcpy, tbl, wc
from repro.workloads.base import Lcg


def run(workload):
    program = workload.compile()
    interp = Interpreter(program)
    args = tuple(workload.inputs[0](interp))
    return interp.run(entry=workload.entry, args=args), interp


# ----------------------------------------------------------------------
# strcpy: B must equal A up to (excluding) the terminator.
# ----------------------------------------------------------------------
def test_strcpy_oracle():
    workload = strcpy.workload()
    result, interp = run(workload)
    rng = Lcg(seed=101)
    expected = rng.ints(2000, 1, 255)
    copied = interp.peek_array("B", len(expected))
    assert copied == expected
    assert result.return_value >= len(expected) - 8  # unroll residue


# ----------------------------------------------------------------------
# cmp: first differing index of two byte streams.
# ----------------------------------------------------------------------
def test_cmp_oracle():
    workload = cmp_mod.workload()
    result, interp = run(workload)
    file_a = interp.peek_array("FA", 2401)
    file_b = interp.peek_array("FB", 2401)
    expected = next(
        i for i, (a, b) in enumerate(zip(file_a, file_b)) if a != b
    )
    assert result.return_value == expected


# ----------------------------------------------------------------------
# wc: line/word/char counts.
# ----------------------------------------------------------------------
def test_wc_oracle():
    workload = wc.workload()
    result, interp = run(workload)
    rng = Lcg(seed=303)
    text = wc.make_text(rng, 3000)
    chars = 0
    lines = 0
    words = 0
    in_word = False
    for c in text:
        if c == 0:
            break
        chars += 1
        if c == 10:
            lines += 1
        if c in (32, 10, 9):
            in_word = False
        elif not in_word:
            words += 1
            in_word = True
    assert result.return_value == words
    assert interp.peek_array("STATS", 3) == [lines, words, chars]


# ----------------------------------------------------------------------
# grep: substring occurrence count (first-char-anchored scan).
# ----------------------------------------------------------------------
def test_grep_oracle():
    workload = grep.workload()
    result, interp = run(workload)
    text = interp.peek_array("TEXT", 3601)
    pattern = [122, 113, 122]
    limit = (len(text) - 1) - 16
    expected = sum(
        1
        for i in range(limit)
        if text[i : i + 3] == pattern
    )
    assert result.return_value == expected
    assert expected > 0


# ----------------------------------------------------------------------
# lex: token count from the DFA.
# ----------------------------------------------------------------------
def test_lex_oracle():
    workload = lex.workload()
    result, interp = run(workload)
    rng = Lcg(seed=505)
    char_class, delta = lex.build_tables()
    text = lex.make_text(rng, 2600)
    state = 0
    tokens = 0
    for c in text:
        state = delta[state * 16 + char_class[c]]
        if state == 15:
            tokens += 1
            state = 0
    assert result.return_value == tokens
    assert tokens > 100


# ----------------------------------------------------------------------
# eqntott: adjacent-vector comparison swap count.
# ----------------------------------------------------------------------
def test_eqntott_oracle():
    workload = eqntott.workload()
    result, interp = run(workload)
    words = interp.peek_array("VECS", (260 + 1) * 16)
    swaps = 0
    for v in range(260):
        first = words[v * 16:(v + 1) * 16]
        second = words[(v + 1) * 16:(v + 2) * 16]
        if first > second:  # lexicographic, like the element loop
            swaps += 1
    assert result.return_value == swaps


# ----------------------------------------------------------------------
# tbl: maximum column index seen on any line.
# ----------------------------------------------------------------------
def test_tbl_oracle():
    workload = tbl.workload()
    result, interp = run(workload)
    text = interp.peek_array("TEXT", 2800)
    col = 0
    maxcols = 0
    for c in text:
        if c == 9:
            col = min(col + 1, 63)
        elif c == 10:
            maxcols = max(maxcols, col)
            col = 0
    assert result.return_value == maxcols
