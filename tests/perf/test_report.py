"""Table builders and rendering."""

import pytest

from repro.machine import MEDIUM, SEQUENTIAL
from repro.perf.report import (
    Table2,
    Table3,
    build_table2,
    build_table3,
    evaluate_workload,
)
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def results():
    return {
        name: evaluate_workload(get_workload(name))
        for name in ("strcpy", "099.go")
    }


def test_evaluate_workload_populates_everything(results):
    result = results["strcpy"]
    assert set(result.baseline_cycles) == {
        "sequential", "narrow", "medium", "wide", "infinite"
    }
    assert result.baseline_counts is not None
    assert result.speedup("infinite") > 1.0
    assert len(result.count_ratios()) == 4


def test_table2_render_contains_rows_and_gmeans(results):
    table = Table2(
        processors=["sequential", "medium"],
        rows=list(results.values()),
    )
    text = table.render()
    assert "strcpy" in text and "099.go" in text
    assert "Gmean-all" in text and "Gmean-spec95" in text


def test_table2_gmean_by_category(results):
    table = Table2(
        processors=["medium"], rows=list(results.values())
    )
    overall = table.gmean_row(None)[0]
    spec95_only = table.gmean_row("spec95")[0]
    # go is the only spec95 row here and it does not speed up.
    assert spec95_only == pytest.approx(
        results["099.go"].speedup("medium")
    )
    assert overall != spec95_only


def test_table3_render(results):
    table = Table3(rows=list(results.values()))
    text = table.render()
    assert "S tot" in text and "D br" in text
    gmeans = table.gmean_row(None)
    assert len(gmeans) == 4
    assert gmeans[2] <= 1.02  # D tot: irredundancy


def test_build_table_functions_end_to_end():
    workloads = [get_workload("cmp")]
    table2 = build_table2(workloads, processors=[SEQUENTIAL, MEDIUM])
    assert table2.processors == ["sequential", "medium"]
    assert len(table2.rows) == 1
    table3 = build_table3(workloads)
    assert len(table3.rows) == 1
    ratios = table3.rows[0].count_ratios()
    assert ratios[3] < 0.6  # cmp's dynamic branches collapse
