"""The compiler-estimation performance model and operation counting."""

import math

import pytest

from repro.machine import MEDIUM, SEQUENTIAL
from repro.perf import (
    estimate_program_cycles,
    geometric_mean,
    operation_counts,
)
from repro.perf.counts import OperationCounts
from repro.sim.profiler import profile_program
from tests.conftest import build_strcpy_program


def profiled_strcpy(data):
    program = build_strcpy_program()

    def setup(interp):
        interp.poke_array("A", data)
        return (interp.segment_base("A"), interp.segment_base("B"))

    profile = profile_program(program, inputs=[setup])
    return program, profile


def test_block_weighted_mode_matches_hand_computation():
    data = [1, 2, 3, 4, 5, 6, 7, 8, 0]  # 2 full iterations + exit
    program, profile = profiled_strcpy(data)
    from repro.sched import schedule_procedure

    proc = program.procedure("main")
    schedules = schedule_procedure(proc, MEDIUM)
    expected = 0.0
    for block in proc.blocks:
        count = profile.block_count("main", block.label)
        expected += count * schedules.for_block(block.label).length
    estimate = estimate_program_cycles(
        program, MEDIUM, profile, mode="block-weighted"
    )
    assert estimate.total == pytest.approx(expected)


def test_exit_aware_never_exceeds_block_weighted():
    data = [1, 2, 0]  # early exit through a side branch
    program, profile = profiled_strcpy(data)
    exit_aware = estimate_program_cycles(
        program, MEDIUM, profile, mode="exit-aware"
    ).total
    block_weighted = estimate_program_cycles(
        program, MEDIUM, profile, mode="block-weighted"
    ).total
    assert exit_aware <= block_weighted


def test_unknown_mode_rejected():
    data = [1, 0]
    program, profile = profiled_strcpy(data)
    with pytest.raises(ValueError):
        estimate_program_cycles(program, MEDIUM, profile, mode="bogus")


def test_sequential_estimate_tracks_dynamic_ops():
    data = [i % 5 + 1 for i in range(20)] + [0]
    program, profile = profiled_strcpy(data)
    estimate = estimate_program_cycles(
        program, SEQUENTIAL, profile, mode="block-weighted"
    ).total
    # On a 1-wide machine, cycles are within a small factor of op count.
    assert estimate >= profile.total_ops * 0.9


def test_unexecuted_blocks_cost_nothing():
    data = [0]  # loop never entered beyond the priming load
    program, profile = profiled_strcpy(data)
    estimate = estimate_program_cycles(program, MEDIUM, profile)
    assert all(
        "Loop" not in label or cycles > 0
        for label, cycles in estimate.per_block.items()
    )


def test_operation_counts_static_and_dynamic():
    data = [1, 2, 3, 4, 0]
    program, profile = profiled_strcpy(data)
    counts = operation_counts(program, profile)
    static_total = sum(
        len(block.ops)
        for proc in program.procedures.values()
        for block in proc.blocks
    )
    assert counts.static_total == static_total
    assert counts.dynamic_total == profile.total_ops
    assert counts.static_branches > 0
    assert counts.dynamic_branches <= counts.dynamic_total


def test_count_ratios():
    base = OperationCounts(100, 10, 1000, 100)
    other = OperationCounts(110, 10, 900, 40)
    s_tot, s_br, d_tot, d_br = other.ratios_against(base)
    assert s_tot == pytest.approx(1.1)
    assert s_br == pytest.approx(1.0)
    assert d_tot == pytest.approx(0.9)
    assert d_br == pytest.approx(0.4)
    nan_ratios = other.ratios_against(OperationCounts())
    assert all(math.isnan(r) for r in nan_ratios)


def test_geometric_mean():
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    assert geometric_mean([1.0, 1.0, 1.0]) == pytest.approx(1.0)
    assert math.isnan(geometric_mean([]))
