"""Exit-aware estimator: clamp guard and block-weighted degeneration.

Regression for the over-taken guard (a stale profile claiming more taken
exits than block entries must not drive the remainder negative) and the
defining property of the refinement: on a single-exit block — no taken
side exits and no trailing unconditional transfer — exit-aware charges
exactly what the paper's block-weighted mode charges, and it never
charges more than block-weighted anywhere (a trailing jump/return can
only overlap its in-flight latencies with the successor).
"""

from repro.ir import Cond, IRBuilder, Procedure, Program, Reg, verify_program
from repro.ir.opcodes import Opcode
from repro.machine.processor import MEDIUM, WIDE
from repro.obs import (
    CounterSet,
    DecisionLedger,
    activate_counters,
    activate_ledger,
)
from repro.perf.estimator import estimate_procedure_cycles
from repro.sched.list_scheduler import schedule_procedure
from repro.sim.profiler import BranchProfile, ProfileData, profile_program
from repro.workloads.registry import get_workload


def _side_exit_program():
    program = Program("t")
    proc = Procedure("main", params=[Reg(1)])
    program.add_procedure(proc)
    b = IRBuilder(proc)
    b.start_block("Entry", fallthrough="Exit")
    b.add(Reg(1), 1, dest=Reg(3))
    p = b.cmpp1(Cond.EQ, Reg(3), 0)
    branch = b.branch_to("Out", p)
    b.add(Reg(3), 2, dest=Reg(4))
    b.start_block("Out")
    b.ret(1)
    b.start_block("Exit")
    b.ret(0)
    verify_program(program)
    return program, proc, branch


def _profile(proc, branch, entries: int, taken: int) -> ProfileData:
    profile = ProfileData()
    profile.block_counts[(proc.name, "Entry")] = entries
    profile.branches[(proc.name, branch.uid)] = BranchProfile(
        taken=taken, not_taken=max(0, entries - taken)
    )
    return profile


def test_over_taken_branch_is_clamped_to_entries():
    _, proc, branch = _side_exit_program()
    overcooked = estimate_procedure_cycles(
        proc, MEDIUM, _profile(proc, branch, entries=10, taken=50)
    )
    exact = estimate_procedure_cycles(
        proc, MEDIUM, _profile(proc, branch, entries=10, taken=10)
    )
    assert overcooked.total == exact.total
    assert all(c >= 0 for c in overcooked.per_block.values())


def test_negative_taken_count_is_ignored():
    _, proc, branch = _side_exit_program()
    corrupt = estimate_procedure_cycles(
        proc, MEDIUM, _profile(proc, branch, entries=10, taken=-5)
    )
    clean = estimate_procedure_cycles(
        proc, MEDIUM, _profile(proc, branch, entries=10, taken=0)
    )
    assert corrupt.total == clean.total


def test_clamp_leaves_a_ledger_warning_deduplicated_across_processors():
    """Regression: the exit-aware clamp used to be silent — an
    inconsistent profile quietly stopped charging real exits. It now
    records one ``estimator-clamp`` ledger entry (deduplicated: the
    estimator runs once per processor configuration) plus a counter
    sample per occurrence."""
    _, proc, branch = _side_exit_program()
    profile = _profile(proc, branch, entries=10, taken=50)
    ledger = DecisionLedger()
    counters = CounterSet()
    with activate_ledger(ledger), activate_counters(counters):
        for processor in (MEDIUM, WIDE):
            estimate_procedure_cycles(proc, processor, profile)
    clamps = ledger.of_kind("estimator-clamp")
    assert len(clamps) == 1
    entry = clamps[0]
    assert entry.proc == "main" and entry.block == "Entry"
    assert entry.get("exit_index") == 0
    assert entry.get("taken") == 50
    assert entry.get("remaining") == 10
    assert entry.get("entry_count") == 10
    assert counters.get("perf.estimator_clamps").count == 2


def test_consistent_profile_records_no_clamp():
    _, proc, branch = _side_exit_program()
    ledger = DecisionLedger()
    with activate_ledger(ledger):
        estimate_procedure_cycles(
            proc, MEDIUM, _profile(proc, branch, entries=10, taken=10)
        )
    assert ledger.of_kind("estimator-clamp") == []


def _blocks_without_taken_exits(proc, profile):
    for block in proc.blocks:
        if profile.block_count(proc.name, block.label) == 0:
            continue
        taken = any(
            profile.branch_profile(proc.name, op).taken > 0
            for op in block.ops
            if op.opcode is Opcode.BRANCH
        )
        if not taken:
            yield block


def test_exit_aware_matches_block_weighted_without_taken_exits():
    checked = 0
    for name in ("strcpy", "cmp"):
        workload = get_workload(name)
        program = workload.compile()
        profile = profile_program(
            program, inputs=workload.inputs, entry=workload.entry
        )
        for processor in (MEDIUM, WIDE):
            for proc in program.procedures.values():
                aware = estimate_procedure_cycles(
                    proc, processor, profile, "exit-aware"
                )
                weighted = estimate_procedure_cycles(
                    proc, processor, profile, "block-weighted"
                )
                schedules = schedule_procedure(proc, processor)
                for block in _blocks_without_taken_exits(proc, profile):
                    label = block.label.name
                    schedule = schedules.for_block(block.label)
                    terminator = block.terminator()
                    if terminator is None:
                        # Single-exit fall-through: degenerates exactly to
                        # the paper's block-weighted charge.
                        assert aware.per_block[label] == (
                            weighted.per_block[label]
                        )
                    else:
                        # A trailing jump/return is charged at the cycle
                        # control actually leaves, never past the length.
                        entries = profile.block_count(proc.name, block.label)
                        tail = max(schedule.exit_cycle(terminator), 1)
                        assert aware.per_block[label] == entries * tail
                        assert tail <= max(schedule.length, 1)
                    checked += 1
                # Exits can only shorten a block's stay, never extend it.
                for label, cycles in aware.per_block.items():
                    assert cycles <= weighted.per_block[label]
    assert checked  # the property must actually have been exercised
