"""Machine models: latencies, resource tables, processor presets."""

import pytest

from repro.errors import MachineConfigError, SchedulingError
from repro.ir import Opcode
from repro.machine import (
    INFINITE,
    LatencyModel,
    MEDIUM,
    NARROW,
    PAPER_LATENCIES,
    PAPER_PROCESSORS,
    ProcessorConfig,
    ResourceTable,
    SEQUENTIAL,
    WIDE,
)


def test_paper_latencies_exact():
    """Section 7: int 1, fp 3, load 2, store 1, mul 3, div 8, branch 1."""
    lat = PAPER_LATENCIES
    assert lat.latency(Opcode.ADD) == 1
    assert lat.latency(Opcode.FADD) == 3
    assert lat.latency(Opcode.LOAD) == 2
    assert lat.latency(Opcode.STORE) == 1
    assert lat.latency(Opcode.MUL) == 3
    assert lat.latency(Opcode.FMUL) == 3
    assert lat.latency(Opcode.DIV) == 8
    assert lat.latency(Opcode.FDIV) == 8
    assert lat.latency(Opcode.BRANCH) == 1
    assert lat.latency(Opcode.CMPP) == 1
    assert lat.latency(Opcode.PBR) == 1


def test_latency_overrides_and_branch_sweep():
    lat = LatencyModel(overrides={Opcode.LOAD: 5})
    assert lat.latency(Opcode.LOAD) == 5
    swept = PAPER_LATENCIES.with_branch_latency(3)
    assert swept.latency(Opcode.BRANCH) == 3
    assert PAPER_LATENCIES.latency(Opcode.BRANCH) == 1  # original intact


def test_paper_processor_tuples():
    """(I, F, M, B): narrow (2,1,1,1), medium (4,2,2,1), wide (8,4,4,2),
    infinite (75,25,25,25); sequential issues one op per cycle."""
    assert (NARROW.int_units, NARROW.float_units, NARROW.memory_units,
            NARROW.branch_units) == (2, 1, 1, 1)
    assert (MEDIUM.int_units, MEDIUM.float_units, MEDIUM.memory_units,
            MEDIUM.branch_units) == (4, 2, 2, 1)
    assert (WIDE.int_units, WIDE.float_units, WIDE.memory_units,
            WIDE.branch_units) == (8, 4, 4, 2)
    assert (INFINITE.int_units, INFINITE.float_units,
            INFINITE.memory_units, INFINITE.branch_units) == (75, 25, 25, 25)
    assert SEQUENTIAL.issue_width == 1
    assert len(PAPER_PROCESSORS) == 5


def test_resource_table_unit_limits():
    table = MEDIUM.resource_table()
    for _ in range(4):
        table.place(0, "I")
    assert not table.can_place(0, "I")
    assert table.can_place(1, "I")
    table.place(0, "B")
    assert not table.can_place(0, "B")  # medium has one branch unit


def test_resource_table_issue_width():
    table = SEQUENTIAL.resource_table()
    table.place(3, "I")
    assert not table.can_place(3, "M")  # width cap, not unit count
    assert table.can_place(4, "M")


def test_resource_table_unlimited_units():
    table = ResourceTable({"I": None, "F": 1, "M": 1, "B": 1})
    for _ in range(100):
        table.place(0, "I")
    assert table.can_place(0, "I")


def test_place_overflow_raises():
    table = NARROW.resource_table()
    table.place(0, "M")
    with pytest.raises(SchedulingError):
        table.place(0, "M")


def test_bad_processor_configs_rejected():
    with pytest.raises(MachineConfigError):
        ProcessorConfig("bad", 0, 1, 1, 1)
    with pytest.raises(MachineConfigError):
        ProcessorConfig("bad", 1, 1, 1, 1, issue_width=0)


def test_with_branch_latency_returns_new_config():
    swept = MEDIUM.with_branch_latency(2)
    assert swept.latencies.branch == 2
    assert MEDIUM.latencies.branch == 1
    assert swept.unit_counts == MEDIUM.unit_counts
