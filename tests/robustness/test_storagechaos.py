"""Smoke coverage for the seeded storage-fault sweep (``--storage``)."""

import io
import json

from repro.robustness.storagechaos import (
    STORAGE_WORKLOADS,
    StorageVerdict,
    run_storage_sweep,
)


def test_sweep_survives_and_writes_artifacts(tmp_path):
    out = io.StringIO()
    code = run_storage_sweep(
        [0], names=["strcpy"], out_dir=tmp_path / "out", out=out,
    )
    text = out.getvalue()
    assert code == 0, text
    assert "storage-chaos ok" in text
    assert "1/1 seeds survived" in text

    verdict = json.loads((tmp_path / "out" / "seed-0.json").read_text())
    assert verdict["outcome"] == "survived"
    assert verdict["faults_fired"] > 0
    assert verdict["corrupt_detected"] > 0
    # Every leg of the harness ran its checks.
    checks = set(verdict["checks"])
    assert any(c.startswith("cache-") for c in checks)
    assert any(c.startswith("journal-") for c in checks)
    assert any(c.startswith("serve-") for c in checks)


def test_default_workloads_are_registered():
    from repro.workloads.registry import all_names

    assert set(STORAGE_WORKLOADS) <= set(all_names())


def test_verdict_rendering():
    verdict = StorageVerdict(seed=3)
    assert not verdict.ok
    assert "seed 3" in verdict.render()
    verdict.outcome = "survived"
    verdict.checks.append("cache-bit-flip-detected")
    assert verdict.ok
    assert "survived" in verdict.render()
