"""The chaos harness: seeded schedules, spec parsing, contract checks."""

import io
import json

import pytest

from repro import errors
from repro.robustness.chaos import (
    ACTIONS,
    ChaosPlan,
    ChaosVerdict,
    parse_spec,
    run_chaos,
    run_chaos_seed,
)


# ----------------------------------------------------------------------
# Scheduling
# ----------------------------------------------------------------------
def test_schedule_is_deterministic_and_order_independent():
    names = ["strcpy", "cmp", "wc", "grep"]
    plan = ChaosPlan.schedule(7, names)
    assert plan.rules == ChaosPlan.schedule(7, names).rules
    # Spawn-order independence: the schedule is a pure function of
    # (seed, workload name), so permuting the list changes nothing.
    assert plan.rules == ChaosPlan.schedule(7, list(reversed(names))).rules
    # A subset sees exactly the actions it saw in the full list.
    subset = ChaosPlan.schedule(7, ["wc"])
    for name, action in subset.rules.items():
        assert plan.rules[name] == action
    assert all(action in ACTIONS for action in plan.rules.values())


def test_schedule_varies_with_seed():
    names = [f"w{i}" for i in range(16)]
    schedules = {
        tuple(sorted(ChaosPlan.schedule(seed, names).rules.items()))
        for seed in range(8)
    }
    assert len(schedules) > 1


def test_action_for_single_strike_vs_poison():
    plan = ChaosPlan(
        {"a": "kill", "b": "poison", "c": "slow"}, {"slow_s": 9.0}
    )
    assert plan.action_for("a", 1) == {"action": "kill"}
    assert plan.action_for("a", 2) is None  # the retry must succeed
    assert plan.action_for("b", 1) == {"action": "poison"}
    assert plan.action_for("b", 3) == {"action": "poison"}  # every attempt
    assert plan.action_for("c", 1) == {"action": "slow", "slow_s": 9.0}
    assert plan.action_for("unlisted", 1) is None


def test_plan_validates_actions_and_params():
    with pytest.raises(errors.UsageError, match="unknown chaos action"):
        ChaosPlan({"a": "frob"})
    with pytest.raises(errors.UsageError, match="unknown chaos parameter"):
        ChaosPlan({"a": "slow"}, {"warp_factor": 9.0})


# ----------------------------------------------------------------------
# --chaos spec parsing
# ----------------------------------------------------------------------
def test_parse_spec():
    plan = parse_spec("strcpy=slow,cmp=kill;slow_s=20")
    assert plan.rules == {"strcpy": "slow", "cmp": "kill"}
    assert plan.params == {"slow_s": 20.0}


@pytest.mark.parametrize(
    "bad", ["strcpy", "strcpy=frob", "a=kill;slow_s=x", ";slow_s=1", "=kill"]
)
def test_parse_spec_rejects_malformed(bad):
    with pytest.raises(errors.UsageError):
        parse_spec(bad)


# ----------------------------------------------------------------------
# The harness itself (small, forced plans — CI runs the seeded sweep)
# ----------------------------------------------------------------------
def test_run_chaos_seed_kill_completes(tmp_path):
    verdict = run_chaos_seed(
        1, ["strcpy", "cmp"], 2, tmp_path,
        deadline_s=15.0, budget_s=120.0,
        plan=ChaosPlan({"cmp": "kill"}),
    )
    assert verdict.ok, verdict.render()
    assert verdict.outcome == "complete"
    assert verdict.completed == 2
    assert verdict.quarantined == 0
    assert (tmp_path / "chaos-1.journal").exists()


def test_run_chaos_seed_poison_quarantines(tmp_path):
    verdict = run_chaos_seed(
        2, ["strcpy", "cmp"], 2, tmp_path,
        deadline_s=15.0, budget_s=120.0, retries=1,
        plan=ChaosPlan({"cmp": "poison"}),
    )
    assert verdict.ok, verdict.render()
    assert verdict.completed == 1
    assert verdict.quarantined == 1
    incidents = json.loads(
        (tmp_path / "chaos-2.incidents.json").read_text(encoding="utf-8")
    )
    assert incidents[0]["workload"] == "cmp"
    assert incidents[0]["attempts"] == 2  # retries + 1


def test_run_chaos_clean_schedule_smoke(tmp_path):
    """End-to-end through run_chaos with a chaos-free plan: exercises the
    reference build, verdict rendering, and the exit-code contract."""
    out = io.StringIO()
    code = run_chaos(
        [5], names=["strcpy"], jobs=1, out_dir=tmp_path, out=out,
        rate=0.0, deadline_s=15.0, budget_s=120.0,
    )
    text = out.getvalue()
    assert code == 0, text
    assert "chaos ok: 1/1" in text
    assert "(clean)" in text


def test_verdict_rendering():
    verdict = ChaosVerdict(
        seed=3, outcome="complete", completed=2, quarantined=1,
        schedule={"cmp": "poison"},
    )
    assert verdict.ok
    line = verdict.render()
    assert "seed 3" in line and "cmp=poison" in line
    assert not ChaosVerdict(seed=4, outcome="FAILED").ok
