"""Fault-injection harness: spec matching, determinism, corruption kinds."""

import pytest

from repro.errors import FuelExhausted
from repro.ir.opcodes import Opcode
from repro.robustness import FaultPlan, FaultSpec, InjectedFault
from repro.workloads.registry import get_workload


def _proc(name="cmp"):
    return get_workload(name).compile().procedures["main"]


def _ir(proc):
    return proc.format()


# ----------------------------------------------------------------------
# Spec matching
# ----------------------------------------------------------------------
def test_spec_wildcards_and_exact_names():
    spec = FaultSpec(pass_name="icbm", proc_name="*")
    assert spec.matches("icbm", "anything")
    assert not spec.matches("superblock", "anything")
    exact = FaultSpec(pass_name="*", proc_name="main")
    assert exact.matches("dce", "main")
    assert not exact.matches("dce", "helper")


def test_spec_times_bounds_firing():
    plan = FaultPlan([FaultSpec(kind="raise", times=1)], seed=0)
    proc = _proc()
    wrapped = plan.wrap("p", "main", lambda proc: None)
    with pytest.raises(InjectedFault):
        wrapped(proc)
    # Spent: the next wrap is a pass-through.
    assert plan.wrap("p", "main", _ir) is _ir
    assert plan.log == [("p", "main", "raise")]


def test_unmatched_pass_is_untouched():
    plan = FaultPlan([FaultSpec(pass_name="icbm")], seed=0)
    assert plan.wrap("superblock", "main", _ir) is _ir
    assert plan.log == []


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        FaultSpec(kind="segfault")


# ----------------------------------------------------------------------
# Fault kinds
# ----------------------------------------------------------------------
def test_raise_fires_after_the_real_pass_ran():
    """The 'raise' kind models a mid-pass bug: the real pass's mutation has
    already happened when the exception surfaces."""
    plan = FaultPlan([FaultSpec(kind="raise")], seed=0)
    proc = _proc()
    ran = []
    wrapped = plan.wrap("p", "main", lambda proc: ran.append(True))
    with pytest.raises(InjectedFault):
        wrapped(proc)
    assert ran == [True]


def test_fuel_kind_raises_fuel_exhausted_with_context():
    plan = FaultPlan([FaultSpec(kind="fuel")], seed=0)
    wrapped = plan.wrap("p", "main", lambda proc: None)
    with pytest.raises(FuelExhausted) as info:
        wrapped(_proc())
    assert info.value.proc == "main"


def test_drop_branch_removes_one_control_transfer():
    plan = FaultPlan([FaultSpec(kind="drop-branch")], seed=0)
    proc = _proc()
    count = lambda: sum(
        1
        for block in proc.blocks
        for op in block.ops
        if op.opcode in (Opcode.BRANCH, Opcode.JUMP)
    )
    before = count()
    plan.wrap("p", "main", lambda proc: None)(proc)
    assert count() == before - 1


def test_clobber_pred_keeps_structure_but_rewires_a_branch():
    plan = FaultPlan([FaultSpec(kind="clobber-pred")], seed=0)
    proc = _proc()
    before = _ir(proc)
    plan.wrap("p", "main", lambda proc: None)(proc)
    after = _ir(proc)
    assert after != before
    # Same op count: the corruption is a rewrite, not a deletion.
    assert len(after.splitlines()) == len(before.splitlines())


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", ["drop-branch", "clobber-pred"])
def test_corruption_is_deterministic_per_seed(kind):
    results = []
    for _ in range(2):
        plan = FaultPlan([FaultSpec(kind=kind)], seed=99)
        proc = _proc()
        plan.wrap("icbm", "main", lambda proc: None)(proc)
        results.append(_ir(proc))
    assert results[0] == results[1]


def test_different_seeds_can_differ_but_stay_deterministic():
    outcomes = set()
    for seed in range(6):
        plan = FaultPlan([FaultSpec(kind="drop-branch")], seed=seed)
        proc = _proc()
        plan.wrap("icbm", "main", lambda proc: None)(proc)
        outcomes.add(_ir(proc))
    # All outcomes are valid corruptions; at least one distinct result, and
    # re-running any seed reproduces its member of the set (checked above).
    assert outcomes
