"""Mini-C lowering: compiled programs behave like Python oracles."""

import pytest

from repro.frontend import compile_source
from repro.ir import verify_program
from repro.sim.interpreter import Interpreter


def run(source, arrays=None, args=(), entry="main"):
    program = compile_source(source)
    verify_program(program)
    interp = Interpreter(program)
    for name, values in (arrays or {}).items():
        interp.poke_array(name, values)
    return interp.run(entry=entry, args=args), interp


@pytest.mark.parametrize(
    "expr, expected",
    [
        ("2 + 3 * 4", 14),
        ("(2 + 3) * 4", 20),
        ("17 / 5", 3),
        ("17 % 5", 2),
        ("-17 / 5", -3),       # C truncation
        ("1 << 5", 32),
        ("40 >> 2", 10),
        ("12 & 10", 8),
        ("12 | 10", 14),
        ("12 ^ 10", 6),
        ("5 == 5", 1),
        ("5 != 5", 0),
        ("3 < 4", 1),
        ("!0", 1),
        ("!7", 0),
        ("-(3 + 4)", -7),
    ],
)
def test_expression_evaluation(expr, expected):
    result, _ = run(f"int main() {{ return {expr}; }}")
    assert result.return_value == expected


def test_short_circuit_and_or_value_context():
    source = """
    int main(int a, int b) {
        int x = a && b;
        int y = a || b;
        return x * 10 + y;
    }
    """
    assert run(source, args=(0, 5))[0].return_value == 1
    assert run(source, args=(3, 0))[0].return_value == 1
    assert run(source, args=(3, 5))[0].return_value == 11
    assert run(source, args=(0, 0))[0].return_value == 0


def test_short_circuit_skips_side_effect():
    """`i < n && A[i]` must not read A[i] when the bound check fails —
    verified by making the out-of-bounds slot a trap value."""
    source = """
    int A[4] = {1, 1, 1, 1};
    int main() {
        int count = 0;
        int i = 0;
        while (i < 8 && A[i] == 1) {
            count += 1;
            i += 1;
        }
        return count;
    }
    """
    result, _ = run(source, arrays={"A": [1, 1, 1, 0]})
    assert result.return_value == 3


def test_loops_for_while_do():
    source = """
    int main(int n) {
        int total = 0;
        for (int i = 1; i <= n; i++) { total += i; }
        int j = n;
        while (j > 0) { total += 1; j--; }
        int k = 0;
        do { total += 100; k++; } while (k < 2);
        return total;
    }
    """
    result, _ = run(source, args=(4,))
    assert result.return_value == 10 + 4 + 200


def test_break_continue():
    source = """
    int main(int n) {
        int total = 0;
        for (int i = 0; i < n; i++) {
            if (i == 5) { break; }
            if (i % 2 == 0) { continue; }
            total += i;
        }
        return total;
    }
    """
    result, _ = run(source, args=(100,))
    assert result.return_value == 1 + 3


def test_goto():
    source = """
    int main(int n) {
        int x = 0;
      again:
        x += 1;
        if (x < n) { goto again; }
        return x;
    }
    """
    assert run(source, args=(5,))[0].return_value == 5


def test_arrays_and_regions():
    source = """
    int A[8] = {1, 2, 3, 4};
    int B[8];
    int main(int n) {
        for (int i = 0; i < n; i++) { B[i] = A[i] * 2; }
        return B[n - 1];
    }
    """
    result, interp = run(source, args=(4,))
    assert result.return_value == 8
    assert interp.peek_array("B", 4) == [2, 4, 6, 8]
    # loads/stores carry region tags for the alias analysis
    program = compile_source(source)
    from repro.ir import Opcode

    regions = {
        op.attrs.get("region")
        for proc in program.procedures.values()
        for block in proc.blocks
        for op in block.ops
        if op.opcode in (Opcode.LOAD, Opcode.STORE)
    }
    assert regions == {"A", "B"}


def test_function_calls():
    source = """
    int square(int x) { return x * x; }
    int main(int n) { return square(n) + square(n + 1); }
    """
    assert run(source, args=(3,))[0].return_value == 9 + 16


def test_nested_if_else_chain():
    source = """
    int main(int n) {
        if (n < 0) { return -1; }
        else if (n == 0) { return 0; }
        else if (n < 10) { return 1; }
        else { return 2; }
    }
    """
    assert run(source, args=(-5,))[0].return_value == -1
    assert run(source, args=(0,))[0].return_value == 0
    assert run(source, args=(5,))[0].return_value == 1
    assert run(source, args=(50,))[0].return_value == 2


def test_constant_folding_applied():
    program = compile_source("int main() { return 0 - 1; }")
    ops = program.procedure("main").entry.ops
    assert len(ops) == 1  # just the return of the folded literal
    assert ops[0].srcs[0].value == -1


def test_implicit_return_zero():
    assert run("int main() { int x = 5; }")[0].return_value == 0
