"""Mini-C lexer and parser."""

import pytest

from repro.errors import ParseError
from repro.frontend import ast, parse_source, tokenize
from repro.frontend.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)]


def test_tokenize_keywords_and_identifiers():
    tokens = tokenize("int foo while whilex")
    assert tokens[0].kind is TokenKind.KW_INT
    assert tokens[1].kind is TokenKind.IDENT
    assert tokens[2].kind is TokenKind.KW_WHILE
    assert tokens[3].kind is TokenKind.IDENT  # not a keyword prefix


def test_tokenize_two_char_operators():
    source = "== != <= >= << >> && || += -= ++ --"
    expected = [
        TokenKind.EQ, TokenKind.NE, TokenKind.LE, TokenKind.GE,
        TokenKind.SHL, TokenKind.SHR, TokenKind.AND_AND, TokenKind.OR_OR,
        TokenKind.PLUS_EQ, TokenKind.MINUS_EQ, TokenKind.PLUS_PLUS,
        TokenKind.MINUS_MINUS, TokenKind.EOF,
    ]
    assert kinds(source) == expected


def test_tokenize_numbers_and_char_literals():
    tokens = tokenize("42 0x1f 'a' '\\n' '\\0'")
    values = [t.value for t in tokens[:-1]]
    assert values == [42, 31, 97, 10, 0]


def test_comments_skipped_and_lines_tracked():
    tokens = tokenize("a // comment\nb /* multi\nline */ c")
    names = [t.value for t in tokens if t.kind is TokenKind.IDENT]
    assert names == ["a", "b", "c"]
    assert tokens[2].line == 3  # 'c' after the multiline comment


def test_lexer_rejects_garbage():
    with pytest.raises(ParseError):
        tokenize("int a = `b`;")


def test_parse_array_and_function():
    unit = parse_source(
        """
        int TAB[16] = {1, 2, -3};
        int main(int n) { return n; }
        void helper() { return; }
        """
    )
    assert unit.arrays[0].name == "TAB"
    assert unit.arrays[0].initial == [1, 2, -3]
    assert unit.functions[0].params == ["n"]
    assert unit.functions[0].returns_value
    assert not unit.functions[1].returns_value


def test_parse_precedence():
    unit = parse_source("int f() { return 1 + 2 * 3 == 7 && 1 < 2; }")
    expr = unit.functions[0].body[0].value
    # top level is &&
    assert isinstance(expr, ast.Binary) and expr.op == "&&"
    left = expr.left
    assert left.op == "=="
    assert left.left.op == "+"
    assert left.left.right.op == "*"


def test_parse_statements_forms():
    unit = parse_source(
        """
        int f(int n) {
            int x = 0;
            x += 2;
            x++;
            while (x < n) { x = x + 1; }
            do { x--; } while (x > 0);
            for (int i = 0; i < 3; i++) { x += i; }
            if (x == 0) { return 1; } else { return 2; }
        }
        """
    )
    body = unit.functions[0].body
    assert isinstance(body[0], ast.DeclStmt)
    assert isinstance(body[1], ast.AssignStmt)
    assert isinstance(body[2], ast.AssignStmt)  # ++ desugars
    assert isinstance(body[3], ast.WhileStmt)
    assert isinstance(body[4], ast.DoWhileStmt)
    assert isinstance(body[5], ast.ForStmt)
    assert isinstance(body[6], ast.IfStmt)


def test_parse_goto_and_labels():
    unit = parse_source(
        "int f() { goto out; out: return 0; }"
    )
    body = unit.functions[0].body
    assert isinstance(body[0], ast.GotoStmt)
    assert isinstance(body[1], ast.LabelStmt)


def test_parse_array_index_and_call():
    unit = parse_source(
        "int A[4];\nint g(int x) { return x; }\n"
        "int f() { return g(A[2] + 1); }"
    )
    call = unit.functions[1].body[0].value
    assert isinstance(call, ast.Call)
    assert isinstance(call.args[0].left, ast.ArrayRef)


@pytest.mark.parametrize(
    "bad",
    [
        "int f() { 1 = 2; }",             # bad lvalue
        "int f() { return 1 }",            # missing semicolon
        "int f( { }",                      # bad params
        "int A[]; ",                       # missing size
    ],
)
def test_parse_errors(bad):
    with pytest.raises(ParseError):
        parse_source(bad)
