"""Mini-C semantic checks."""

import pytest

from repro.errors import SemanticError
from repro.frontend import parse_source
from repro.frontend.sema import check_unit


def check(source):
    check_unit(parse_source(source))


@pytest.mark.parametrize(
    "good",
    [
        "int f() { return 0; }",
        "int A[4];\nint f() { return A[0]; }",
        "int f(int n) { int x = n; while (x > 0) { x--; break; } return x; }",
        "int g() { return 1; }\nint f() { return g(); }",
        "void f() { return; }",
        "int f() { goto l; l: return 0; }",
    ],
)
def test_valid_programs(good):
    check(good)


@pytest.mark.parametrize(
    "bad, fragment",
    [
        ("int f() { return x; }", "undeclared"),
        ("int f() { int x = 0; int x = 1; return x; }", "redeclared"),
        ("int A[4];\nint f() { return A; }", "without an index"),
        ("int f() { return B[0]; }", "unknown array"),
        ("int f() { break; return 0; }", "break outside"),
        ("int f() { continue; return 0; }", "continue outside"),
        ("int g(int a) { return a; }\nint f() { return g(); }", "expects"),
        ("int f() { return h(); }", "unknown function"),
        ("void g() { return; }\nint f() { return g(); }", "void function"),
        ("int f() { goto nowhere; return 0; }", "unknown label"),
        ("int f() { return; }", "without value"),
        ("int A[0];", "size"),
        ("int A[2] = {1, 2, 3};", "initializers"),
        ("int A[4];\nint A[4];", "redeclared"),
        ("int A[4];\nint f() { int A = 0; return A; }", "shadows"),
        ("int f(int a, int a) { return a; }", "duplicate parameter"),
        (
            "int f() { l: goto l2; l: return 0; l2: return 1; }",
            "duplicate label",
        ),
    ],
)
def test_invalid_programs(bad, fragment):
    with pytest.raises(SemanticError) as info:
        check(bad)
    assert fragment in str(info.value)
