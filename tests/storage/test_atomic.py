"""Durable atomic writes, crash-window litter, and the sweeper."""

import os

import pytest

from repro.storage.atomic import (
    atomic_write_bytes,
    fsync_dir,
    sweep_tmp_litter,
)
from repro.storage.faults import (
    StorageFaultPlan,
    StorageFaultSpec,
    activate_storage_faults,
)


def test_write_creates_parents_and_replaces(tmp_path):
    target = tmp_path / "deep" / "nested" / "file.bin"
    atomic_write_bytes(target, b"one")
    assert target.read_bytes() == b"one"
    atomic_write_bytes(target, b"two")
    assert target.read_bytes() == b"two"
    # No temp litter is left behind by a successful write.
    assert list(target.parent.glob("*.tmp")) == []


def test_enospc_fault_raises_and_leaves_old_content(tmp_path):
    target = tmp_path / "file.bin"
    atomic_write_bytes(target, b"old")
    plan = StorageFaultPlan([StorageFaultSpec("enospc", op="atomic-write")])
    with activate_storage_faults(plan):
        with pytest.raises(OSError):
            atomic_write_bytes(target, b"new")
    assert target.read_bytes() == b"old"
    assert list(tmp_path.glob("*.tmp")) == []


def test_crash_replace_keeps_old_content_and_leaves_litter(tmp_path):
    """A writer killed between mkstemp and replace: destination intact,
    temp file left for the sweeper."""
    target = tmp_path / "file.bin"
    atomic_write_bytes(target, b"old")
    plan = StorageFaultPlan(
        [StorageFaultSpec("crash-replace", op="atomic-write")]
    )
    with activate_storage_faults(plan):
        atomic_write_bytes(target, b"new")
    assert target.read_bytes() == b"old"
    litter = list(tmp_path.glob("*.tmp"))
    assert len(litter) == 1
    assert litter[0].read_bytes() == b"new"


def test_lost_fsync_keeps_old_content_without_litter(tmp_path):
    target = tmp_path / "file.bin"
    atomic_write_bytes(target, b"old")
    plan = StorageFaultPlan(
        [StorageFaultSpec("lost-fsync", op="atomic-write")]
    )
    with activate_storage_faults(plan):
        atomic_write_bytes(target, b"new")
    assert target.read_bytes() == b"old"
    assert list(tmp_path.glob("*.tmp")) == []


def test_sweep_removes_only_stale_litter(tmp_path):
    stale = tmp_path / "dead-writer.tmp"
    fresh = tmp_path / "live-writer.tmp"
    keeper = tmp_path / "entry.json"
    for path in (stale, fresh, keeper):
        path.write_bytes(b"x")
    old = os.stat(stale).st_mtime - 7200
    os.utime(stale, (old, old))
    removed = sweep_tmp_litter(tmp_path, max_age_s=3600)
    assert removed == 1
    assert not stale.exists()
    assert fresh.exists()  # young enough to belong to a live writer
    assert keeper.exists()  # not *.tmp


def test_sweep_recursive_covers_shard_directories(tmp_path):
    shard = tmp_path / "ab"
    shard.mkdir()
    litter = shard / "orphan.tmp"
    litter.write_bytes(b"x")
    os.utime(litter, (0, 0))
    assert sweep_tmp_litter(tmp_path, max_age_s=3600) == 0
    assert sweep_tmp_litter(tmp_path, max_age_s=3600, recursive=True) == 1
    assert not litter.exists()


def test_sweep_missing_directory_is_a_noop(tmp_path):
    assert sweep_tmp_litter(tmp_path / "absent") == 0


def test_fsync_dir_tolerates_missing_path(tmp_path):
    fsync_dir(tmp_path / "absent")  # must not raise
