"""The seeded storage-fault shim: matching, determinism, corruption."""

import errno
import random

import pytest

from repro.storage.faults import (
    StorageFaultPlan,
    StorageFaultSpec,
    activate_storage_faults,
    corrupt_bytes,
    fault_error,
    storage_fault,
)


def test_spec_validates_kind_and_op():
    with pytest.raises(ValueError, match="kind"):
        StorageFaultSpec("gremlins")
    with pytest.raises(ValueError, match="op"):
        StorageFaultSpec("eio", op="teleport")


def test_shim_is_noop_when_unarmed():
    assert storage_fault("cache-read", "/anywhere") is None


def test_match_respects_op_path_times_and_skip():
    plan = StorageFaultPlan([
        StorageFaultSpec("bit-flip", op="cache-read",
                         path_substr="eval", times=1, skip=1),
    ])
    assert plan.match("cache-write", "x.eval.json") is None  # wrong op
    assert plan.match("cache-read", "x.sched.json") is None  # wrong path
    assert plan.match("cache-read", "x.eval.json") is None   # skipped
    hit = plan.match("cache-read", "y.eval.json")
    assert hit is not None and hit[0] == "bit-flip"
    assert plan.match("cache-read", "z.eval.json") is None   # times spent
    assert plan.fired == 1
    assert [entry["path"] for entry in plan.log] == ["y.eval.json"]


def test_times_zero_fires_every_match():
    plan = StorageFaultPlan([StorageFaultSpec("enospc", times=0)])
    for _ in range(5):
        assert plan.match("atomic-write", "f")[0] == "enospc"
    assert plan.fired == 5


def test_same_seed_corrupts_same_bytes():
    data = bytes(range(256)) * 4
    first = StorageFaultPlan([StorageFaultSpec("bit-flip")], seed=7)
    second = StorageFaultPlan([StorageFaultSpec("bit-flip")], seed=7)
    other = StorageFaultPlan([StorageFaultSpec("bit-flip")], seed=8)
    results = []
    for plan in (first, second, other):
        kind, rng = plan.match("cache-read", "entry")
        results.append(corrupt_bytes(data, kind, rng))
    assert results[0] == results[1]
    assert results[0] != results[2]
    assert results[0] != data


def test_derive_gives_independent_subseeds():
    base = StorageFaultPlan([StorageFaultSpec("torn-write")], seed=3)
    a, b = base.derive("leg-a"), base.derive("leg-b")
    assert a.seed != b.seed
    assert a.specs == base.specs


def test_corrupt_bytes_shapes():
    rng = random.Random(0)
    data = b"hello durable world"
    torn = corrupt_bytes(data, "torn-write", random.Random(1))
    assert len(torn) < len(data) and data.startswith(torn)
    flipped = corrupt_bytes(data, "bit-flip", rng)
    assert len(flipped) == len(data)
    assert sum(a != b for a, b in zip(flipped, data)) == 1
    assert corrupt_bytes(b"", "bit-flip", rng) == b""
    assert corrupt_bytes(data, "lost-fsync", rng) == data


def test_fault_error_errnos():
    assert fault_error("enospc", "cache-write", "p").errno == errno.ENOSPC
    assert fault_error("eio", "cache-read", "p").errno == errno.EIO


def test_activation_is_scoped():
    plan = StorageFaultPlan([StorageFaultSpec("eio", times=0)])
    with activate_storage_faults(plan):
        assert storage_fault("cache-read", "f") is not None
    assert storage_fault("cache-read", "f") is None
