"""Per-record checksummed framing: roundtrip and classification."""

import json

from repro.storage.framing import (
    CORRUPT,
    TRUNCATED,
    VALID,
    canonical_json,
    classify_lines,
    frame_record,
    parse_record_line,
    record_digest,
)

RECORD = {"kind": "complete", "name": "strcpy", "outcome": {"cycles": 42}}


def test_frame_roundtrip():
    record, status = parse_record_line(frame_record(RECORD))
    assert status == VALID
    assert record == RECORD


def test_digest_covers_canonical_form():
    """Key order and whitespace do not change the digest — only content."""
    shuffled = {"outcome": {"cycles": 42}, "name": "strcpy",
                "kind": "complete"}
    assert record_digest(RECORD) == record_digest(shuffled)
    assert canonical_json(RECORD) == canonical_json(shuffled)


def test_parseable_line_with_bad_digest_is_corrupt():
    """A flipped digit that keeps the JSON valid must not replay."""
    envelope = json.loads(frame_record(RECORD))
    envelope["r"]["outcome"]["cycles"] = 43  # rot under the old digest
    record, status = parse_record_line(json.dumps(envelope))
    assert record is None
    assert status == CORRUPT


def test_bare_record_valid_only_unframed():
    """v1 files accept bare records; under a v2 header they are CORRUPT."""
    line = json.dumps(RECORD)
    assert parse_record_line(line, framed=False) == (RECORD, VALID)
    assert parse_record_line(line, framed=True) == (None, CORRUPT)


def test_v1_file_accepts_appended_envelopes():
    """A resumed run appends v2 envelopes to a v1 journal; unframed
    parsing verifies them rather than treating them as garbage."""
    record, status = parse_record_line(frame_record(RECORD), framed=False)
    assert status == VALID
    assert record == RECORD


def test_only_final_unparseable_line_is_truncated():
    lines = [
        frame_record({"kind": "a"}),
        frame_record({"kind": "b"})[:11],  # interior torn line
        frame_record({"kind": "c"}),
        frame_record({"kind": "d"})[:9],  # torn tail
    ]
    statuses = [status for _, status in classify_lines(lines, framed=True)]
    assert statuses == [VALID, CORRUPT, VALID, TRUNCATED]


def test_final_parseable_bad_digest_stays_corrupt():
    """Torn writes cannot yield valid JSON with a wrong checksum, so a
    parseable-but-mismatched tail is corruption, not truncation."""
    envelope = json.loads(frame_record(RECORD))
    envelope["s"] = "0" * 16
    lines = [frame_record({"kind": "a"}), json.dumps(envelope)]
    statuses = [status for _, status in classify_lines(lines, framed=True)]
    assert statuses == [VALID, CORRUPT]


def test_non_dict_payloads_are_corrupt():
    for line in ("[1, 2]", '"string"', "17", json.dumps({"r": 3, "s": "x"})):
        record, status = parse_record_line(line, framed=False)
        assert record is None
        assert status == CORRUPT
