"""Full (redundant) CPR — correctness and the quadratic-growth contrast."""

from repro.analysis import LivenessAnalysis, PredicateTracker
from repro.core import apply_full_cpr, speculate_block
from repro.ir import Opcode, verify_procedure
from repro.machine import INFINITE
from repro.opt import frp_convert_procedure
from repro.sched import schedule_block
from tests.conftest import build_strcpy_program, run_strcpy


def full_cpr_strcpy(unroll=4):
    program = build_strcpy_program(unroll=unroll)
    proc = program.procedure("main")
    frp_convert_procedure(proc)
    for block in proc.blocks:
        if block.exit_branches():
            speculate_block(proc, block, LivenessAnalysis(proc))
    report = apply_full_cpr(proc)
    verify_procedure(proc)
    return program, proc, report


def test_semantics_preserved(strcpy_data):
    reference = run_strcpy(build_strcpy_program(), strcpy_data)
    program, _, report = full_cpr_strcpy()
    assert report.chains >= 1
    assert run_strcpy(program, strcpy_data).equivalent_to(reference)


def test_semantics_across_exit_points():
    for length in (0, 1, 2, 3, 5, 9, 13):
        data = [((5 * i) % 7) + 1 for i in range(length)] + [0]
        reference = run_strcpy(build_strcpy_program(), data)
        program, _, _ = full_cpr_strcpy()
        assert run_strcpy(program, data).equivalent_to(reference)


def test_quadratic_compare_growth():
    _, _, report4 = full_cpr_strcpy(unroll=4)
    _, _, report8 = full_cpr_strcpy(unroll=8)
    assert report4.added_compares == 4 * 5 // 2   # n(n+1)/2
    assert report8.added_compares == 8 * 9 // 2
    # Growth is superlinear (the paper's complaint about full CPR).
    assert report8.added_compares > 2 * report4.added_compares


def test_all_branches_kept_on_trace_but_mutually_exclusive():
    program, proc, report = full_cpr_strcpy()
    block = proc.block("Loop")
    branches = block.exit_branches()
    assert len(branches) == 4  # nothing moves off-trace in full CPR
    assert report.rewired_branches == 4
    tracker = PredicateTracker(block)
    for i, first in enumerate(branches):
        for second in branches[i + 1:]:
            assert tracker.taken_expr[first.uid].disjoint_with(
                tracker.taken_expr[second.uid]
            )


def test_height_reduced_like_icbm():
    baseline = build_strcpy_program(unroll=8)
    base_proc = baseline.procedure("main")
    base_len = schedule_block(
        base_proc.block("Loop"), INFINITE,
        liveness=LivenessAnalysis(base_proc),
    ).length
    program, proc, _ = full_cpr_strcpy(unroll=8)
    cpr_len = schedule_block(
        proc.block("Loop"), INFINITE, liveness=LivenessAnalysis(proc)
    ).length
    assert cpr_len < base_len


def test_no_compensation_blocks_created():
    program, proc, _ = full_cpr_strcpy()
    assert not any(
        block.label.name.startswith("Cmp") for block in proc.blocks
    )


def test_works_without_profile_data():
    # apply_full_cpr takes no profile at all — by design.
    program, proc, report = full_cpr_strcpy()
    assert report.chains == 1
