"""Phase 2: match — CPR block identification and its four tests."""

import pytest

from repro.analysis import DependenceGraph, LivenessAnalysis
from repro.core import CPRConfig, match_cpr_blocks, speculate_block
from repro.ir import (
    Cond,
    IRBuilder,
    Procedure,
    Reg,
)
from repro.machine import PAPER_LATENCIES
from repro.opt import frp_convert_block
from repro.sim.profiler import BranchProfile, ProfileData
from tests.conftest import build_strcpy_program


def prepare(program, label="Loop"):
    proc = program.procedure("main")
    block = proc.block(label)
    frp_convert_block(proc, block)
    liveness = LivenessAnalysis(proc)
    speculate_block(proc, block, liveness)
    graph = DependenceGraph(block, PAPER_LATENCIES, liveness=liveness)
    return proc, block, graph


def make_profile(proc_name, block, taken_ratios, executed=1000):
    """Synthesize a branch profile assigning each exit branch a ratio."""
    profile = ProfileData()
    for branch, ratio in zip(block.exit_branches(), taken_ratios):
        taken = int(executed * ratio)
        profile.branches[(proc_name, branch.uid)] = BranchProfile(
            taken=taken, not_taken=executed - taken
        )
    return profile


def test_biased_branches_form_one_cpr_block():
    program = build_strcpy_program(unroll=4)
    proc, block, graph = prepare(program)
    profile = make_profile("main", block, [0.01, 0.01, 0.01, 0.99])
    cprs = match_cpr_blocks(
        "main", block, graph, profile, CPRConfig()
    )
    assert len(cprs) == 1
    assert cprs[0].size == 4
    assert cprs[0].taken_variation  # final branch predominantly taken


def test_exit_weight_threshold_truncates():
    program = build_strcpy_program(unroll=4)
    proc, block, graph = prepare(program)
    # Second branch takes 30% of the time: cumulative weight exceeds 0.25.
    profile = make_profile("main", block, [0.01, 0.30, 0.01, 0.01])
    config = CPRConfig(
        exit_weight_threshold=0.25, enable_taken_variation=False
    )
    cprs = match_cpr_blocks("main", block, graph, profile, config)
    assert cprs[0].size == 1  # growth stopped before the heavy branch
    assert len(cprs) >= 2


def test_predict_taken_selects_taken_variation_and_ends_block():
    program = build_strcpy_program(unroll=4)
    proc, block, graph = prepare(program)
    profile = make_profile("main", block, [0.01, 0.90, 0.01, 0.50])
    cprs = match_cpr_blocks(
        "main", block, graph, profile, CPRConfig()
    )
    assert cprs[0].size == 2
    assert cprs[0].taken_variation


def test_predict_taken_disabled_by_config():
    program = build_strcpy_program(unroll=4)
    proc, block, graph = prepare(program)
    profile = make_profile("main", block, [0.01, 0.90, 0.01, 0.01])
    config = CPRConfig(enable_taken_variation=False)
    cprs = match_cpr_blocks("main", block, graph, profile, config)
    assert all(not cpr.taken_variation for cpr in cprs)


def test_max_branches_caps_block_size():
    program = build_strcpy_program(unroll=8)
    proc, block, graph = prepare(program)
    profile = make_profile("main", block, [0.01] * 8)
    config = CPRConfig(max_branches=3, enable_taken_variation=False)
    cprs = match_cpr_blocks("main", block, graph, profile, config)
    assert all(cpr.size <= 3 for cpr in cprs)
    assert sum(cpr.size for cpr in cprs) == 8  # every branch covered


def test_all_branches_covered_exactly_once():
    program = build_strcpy_program(unroll=6)
    proc, block, graph = prepare(program)
    profile = make_profile("main", block, [0.05] * 6)
    cprs = match_cpr_blocks(
        "main", block, graph, profile, CPRConfig()
    )
    covered = [br.uid for cpr in cprs for br in cpr.branches]
    assert sorted(covered) == sorted(
        br.uid for br in block.exit_branches()
    )
    assert len(set(covered)) == len(covered)


def test_separability_failure_truncates_block():
    """A store feeding the next branch's condition through memory creates
    the paper's separability violation (the op-16/18 alias example)."""
    proc = Procedure("f", params=[Reg(i) for i in range(1, 10)])
    b = IRBuilder(proc)
    b.start_block("SB", fallthrough="Out")
    # Branch 1.
    t1, f1 = b.cmpp2(Cond.EQ, Reg(1), 0)
    b.branch_to("Out", t1)
    # A store and a subsequent possibly-aliasing load (no regions, same
    # unknown addresses) that the next branch condition depends on.
    b.store(Reg(2), Reg(3), guard=f1)
    value = b.load(Reg(4), guard=f1)
    t2, f2 = b.cmpp2(Cond.EQ, value, 0, guard=f1)
    b.branch_to("Out", t2)
    b.start_block("Out")
    b.ret()
    block = proc.block("SB")
    liveness = LivenessAnalysis(proc)
    speculate_block(proc, block, liveness)
    graph = DependenceGraph(block, PAPER_LATENCIES, liveness=liveness)
    profile = make_profile("f", block, [0.01, 0.01])
    cprs = match_cpr_blocks("f", block, graph, profile, CPRConfig())
    assert len(cprs) == 2
    assert all(cpr.size == 1 for cpr in cprs)


def test_unguarded_store_between_branches_stops_growth():
    proc = Procedure("f", params=[Reg(i) for i in range(1, 10)])
    b = IRBuilder(proc)
    b.start_block("SB", fallthrough="Out")
    t1, f1 = b.cmpp2(Cond.EQ, Reg(1), 0)
    b.branch_to("Out", t1)
    b.store(Reg(2), Reg(3))  # UNGUARDED: cannot ride the schema
    t2, f2 = b.cmpp2(Cond.EQ, Reg(4), 0, guard=f1)
    b.branch_to("Out", t2)
    b.start_block("Out")
    b.ret()
    block = proc.block("SB")
    graph = DependenceGraph(
        block, PAPER_LATENCIES, liveness=LivenessAnalysis(proc)
    )
    profile = make_profile("f", block, [0.01, 0.01])
    config = CPRConfig(enable_speculation=False)
    cprs = match_cpr_blocks("f", block, graph, profile, config)
    assert all(cpr.size == 1 for cpr in cprs)


def test_no_profile_is_conservative():
    program = build_strcpy_program(unroll=4)
    proc, block, graph = prepare(program)
    empty = ProfileData()
    cprs = match_cpr_blocks("main", block, graph, empty, CPRConfig())
    assert all(cpr.size == 1 for cpr in cprs)
