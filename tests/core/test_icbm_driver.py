"""The ICBM driver: end-to-end transformation with DCE and config knobs."""

import pytest

from repro.core import CPRConfig, apply_icbm
from repro.ir import Opcode, verify_procedure
from repro.opt import frp_convert_procedure
from repro.sim.profiler import profile_program
from tests.conftest import build_strcpy_program, run_strcpy


def icbm_strcpy(data, config=None, unroll=4):
    program = build_strcpy_program(unroll=unroll)
    proc = program.procedure("main")
    frp_convert_procedure(proc)

    def setup(interp):
        interp.poke_array("A", data)
        return (interp.segment_base("A"), interp.segment_base("B"))

    profile = profile_program(program, inputs=[setup])
    report = apply_icbm(proc, profile, config or CPRConfig())
    verify_procedure(proc)
    return program, report


def test_driver_transforms_and_preserves_semantics(strcpy_data):
    reference = run_strcpy(build_strcpy_program(), strcpy_data)
    program, report = icbm_strcpy(strcpy_data)
    assert report.transformed_cpr_blocks >= 1
    assert run_strcpy(program, strcpy_data).equivalent_to(reference)


def test_driver_reports_taken_variation(strcpy_data):
    # The loop-back latch of strcpy is predominantly taken.
    program, report = icbm_strcpy(strcpy_data)
    assert any(b.taken_variations for b in report.blocks)


def test_dce_removes_dead_predicates(strcpy_data):
    program, report = icbm_strcpy(strcpy_data)
    assert report.dce_removed > 0


def test_min_branches_two_leaves_unit_blocks_alone(strcpy_data):
    config = CPRConfig(max_branches=1)  # every CPR block is unit length
    program, report = icbm_strcpy(strcpy_data, config)
    assert report.transformed_cpr_blocks == 0
    # Code untouched apart from FRP conversion: all branches remain.
    loop = program.procedure("main").block("Loop")
    assert len(loop.exit_branches()) == 4


def test_speculation_can_be_disabled(strcpy_data):
    config = CPRConfig(enable_speculation=False)
    reference = run_strcpy(build_strcpy_program(), strcpy_data)
    program, report = icbm_strcpy(strcpy_data, config)
    assert all(b.promoted == 0 for b in report.blocks)
    assert run_strcpy(program, strcpy_data).equivalent_to(reference)


def test_single_branch_blocks_skipped():
    program = build_strcpy_program(unroll=1)
    proc = program.procedure("main")
    frp_convert_procedure(proc)
    report = apply_icbm(proc, None, CPRConfig())
    assert report.transformed_cpr_blocks == 0


def test_branch_count_reduced_dynamically(strcpy_data):
    baseline = build_strcpy_program(unroll=8)
    base_result = run_strcpy(baseline, strcpy_data + [0] * 10)
    data = strcpy_data + [0] * 10
    program, report = icbm_strcpy(data, unroll=8)
    result = run_strcpy(program, data)
    assert result.equivalent_to(base_result)
    # 8 exit branches collapse to ~1 per iteration.
    assert result.branches_executed < base_result.branches_executed * 0.55


@pytest.mark.parametrize("bad_field, value", [
    ("exit_weight_threshold", 0.0),
    ("exit_weight_threshold", 1.5),
    ("predict_taken_threshold", 0.0),
    ("min_branches", 0),
    ("max_branches", 0),
])
def test_config_validation(bad_field, value):
    with pytest.raises(ValueError):
        CPRConfig(**{bad_field: value})
