"""Phase 1: predicate speculation (promotion + demotion)."""

from repro.analysis import LivenessAnalysis
from repro.core import speculate_block
from repro.ir import (
    Cond,
    IRBuilder,
    Opcode,
    Procedure,
    Reg,
    TRUE_PRED,
)
from repro.opt import frp_convert_block
from tests.conftest import build_strcpy_program, run_strcpy


def frp_strcpy():
    program = build_strcpy_program()
    proc = program.procedure("main")
    frp_convert_block(proc, proc.block("Loop"))
    return program, proc


def test_loads_and_adds_promoted_stores_not():
    program, proc = frp_strcpy()
    block = proc.block("Loop")
    report = speculate_block(proc, block, LivenessAnalysis(proc))
    assert report.promoted > 0
    for op in block.ops:
        if op.opcode is Opcode.LOAD:
            assert op.guard == TRUE_PRED, "loads must be promoted"
        if op.opcode is Opcode.STORE and block.ops.index(op) > 3:
            assert op.guard != TRUE_PRED, "stores must stay guarded"
        if op.opcode is Opcode.CMPP:
            pass  # compares are never candidates; guards form the chain


def test_speculation_preserves_semantics(strcpy_data):
    program, proc = frp_strcpy()
    reference_program = build_strcpy_program()
    reference = run_strcpy(reference_program, strcpy_data)
    speculate_block(proc, proc.block("Loop"), LivenessAnalysis(proc))
    assert run_strcpy(program, strcpy_data).equivalent_to(reference)


def test_promotion_blocked_by_live_conflict():
    """A guarded def whose old value is needed on the other path must not
    be promoted."""
    proc = Procedure("f", params=[Reg(i) for i in range(1, 10)])
    b = IRBuilder(proc)
    b.start_block("E")
    b.mov(5, dest=Reg(9))
    taken, fall = b.cmpp2(Cond.EQ, Reg(1), 0)
    b.load(Reg(2), dest=Reg(9), guard=taken)
    b.store(Reg(3), Reg(9))  # reads both possible values
    b.ret(0)
    block = proc.block("E")
    report = speculate_block(proc, block, LivenessAnalysis(proc))
    load = [op for op in block.ops if op.opcode is Opcode.LOAD][0]
    assert load.guard == taken  # unchanged


def test_demotion_restores_guard_without_height_cost():
    """With demotion enabled, an op whose guard is available before its
    last data input is demoted back (no height added)."""
    proc = Procedure("f", params=[Reg(i) for i in range(1, 10)])
    b = IRBuilder(proc)
    b.start_block("E", fallthrough="Out")
    taken, fall = b.cmpp2(Cond.EQ, Reg(1), 0)
    b.branch_to("Out", taken)
    late = b.load(Reg(2))                 # available late (2 cycles)
    addr = b.add(late, 1, guard=fall)     # guard def earlier than input
    b.store(addr, Reg(3), guard=fall)
    b.start_block("Out")
    b.ret()
    block = proc.block("E")
    report = speculate_block(
        proc, block, LivenessAnalysis(proc), demote=True
    )
    assert report.demoted >= 1
    add_op = [op for op in block.ops if op.opcode is Opcode.ADD][0]
    assert add_op.guard == fall


def test_demotion_keeps_compare_feeders_promoted():
    """Promotions that break compare chains (the separability enablers)
    survive demotion."""
    proc = Procedure("f", params=[Reg(i) for i in range(1, 10)])
    b = IRBuilder(proc)
    b.start_block("E", fallthrough="Out")
    taken1, fall1 = b.cmpp2(Cond.EQ, Reg(1), 0)
    b.branch_to("Out", taken1)
    value = b.load(Reg(2), guard=fall1)   # feeds the next compare
    taken2, fall2 = b.cmpp2(Cond.EQ, value, 0, guard=fall1)
    b.branch_to("Out", taken2)
    b.store(Reg(3), value, guard=fall2)
    b.start_block("Out")
    b.ret()
    block = proc.block("E")
    speculate_block(proc, block, LivenessAnalysis(proc), demote=True)
    load = [op for op in block.ops if op.opcode is Opcode.LOAD][0]
    assert load.guard == TRUE_PRED  # stays promoted
