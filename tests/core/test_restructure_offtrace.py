"""Phases 3+4: restructure and off-trace motion (paper Figures 2, 4, 7)."""

from repro.analysis import DependenceGraph, LivenessAnalysis, PredicateTracker
from repro.core import (
    CPRConfig,
    match_cpr_blocks,
    move_off_trace,
    restructure_cpr_block,
    speculate_block,
)
from repro.ir import Action, Cond, Opcode, verify_procedure
from repro.machine import PAPER_LATENCIES
from repro.opt import frp_convert_block
from repro.sim.profiler import BranchProfile, ProfileData
from tests.conftest import build_strcpy_program, run_strcpy


def transform(program, taken_ratios, config=None):
    """FRP-convert, speculate, match with a synthetic profile, restructure
    and move each non-trivial CPR block of the Loop hyperblock."""
    config = config or CPRConfig()
    proc = program.procedure("main")
    block = proc.block("Loop")
    frp_convert_block(proc, block)
    liveness = LivenessAnalysis(proc)
    speculate_block(proc, block, liveness)
    graph = DependenceGraph(block, PAPER_LATENCIES, liveness=liveness)
    profile = ProfileData()
    for branch, ratio in zip(block.exit_branches(), taken_ratios):
        profile.branches[("main", branch.uid)] = BranchProfile(
            taken=int(1000 * ratio), not_taken=1000 - int(1000 * ratio)
        )
    cprs = match_cpr_blocks("main", block, graph, profile, config)
    contexts = []
    current = block
    for cpr in cprs:
        if cpr.is_trivial(config) or not cpr.compares:
            continue
        context = restructure_cpr_block(proc, current, cpr)
        move_off_trace(context, LivenessAnalysis(proc))
        contexts.append(context)
        if cpr.taken_variation:
            current = context.comp_block
    return proc, block, contexts


def test_fall_through_variation_structure(strcpy_data):
    program = build_strcpy_program(unroll=4)
    reference = run_strcpy(build_strcpy_program(unroll=4), strcpy_data)
    proc, block, contexts = transform(
        program, [0.01, 0.01, 0.01, 0.01],
        CPRConfig(enable_taken_variation=False),
    )
    assert len(contexts) == 1
    context = contexts[0]
    # On-trace: exactly one branch remains (the bypass).
    on_trace_branches = block.exit_branches()
    assert len(on_trace_branches) == 1
    assert on_trace_branches[0] is context.bypass
    assert context.bypass.attrs.get("cpr_bypass")
    # Lookaheads accumulate with AC/ON dual targets under the root.
    for lookahead in context.lookaheads:
        actions = {t.action for t in lookahead.pred_targets()}
        assert actions == {Action.AC, Action.ON}
        assert lookahead.guard == context.root_pred
    # The compensation block redispatches through the original branches.
    comp_branches = [
        op for op in context.comp_block.ops
        if op.opcode is Opcode.BRANCH
    ]
    assert len(comp_branches) == 4
    verify_procedure(proc)
    assert run_strcpy(program, strcpy_data).equivalent_to(reference)


def test_taken_variation_structure(strcpy_data):
    program = build_strcpy_program(unroll=4)
    reference = run_strcpy(build_strcpy_program(unroll=4), strcpy_data)
    proc, block, contexts = transform(
        program, [0.01, 0.01, 0.01, 0.95]
    )
    assert len(contexts) == 1
    context = contexts[0]
    assert context.cpr.taken_variation
    # The original final branch serves as the bypass: no new branch.
    assert context.bypass is context.cpr.branches[-1]
    assert context.bypass.srcs[0] == context.on_pred
    # Its taken direction stays the loop back-edge.
    assert context.bypass.branch_target().name == "Loop"
    # The compensation block sits on the fall-through path.
    assert block.fallthrough == context.comp_block.label
    # The last lookahead's condition is inverted (NE vs the original EQ).
    from repro.ir import Cond

    assert context.lookaheads[-1].cond is Cond.EQ  # original latch was NE
    verify_procedure(proc)
    assert run_strcpy(program, strcpy_data).equivalent_to(reference)


def test_split_stores_appear_on_both_paths(strcpy_data):
    program = build_strcpy_program(unroll=4)
    proc, block, contexts = transform(
        program, [0.01, 0.01, 0.01, 0.95]
    )
    context = contexts[0]
    on_trace_stores = [
        op for op in block.ops if op.opcode is Opcode.STORE
    ]
    off_trace_stores = [
        op for op in context.comp_block.ops if op.opcode is Opcode.STORE
    ]
    # unroll=4: 1 A0 store + 3 guarded stores split into clones.
    assert len(on_trace_stores) == 4
    assert len(off_trace_stores) == 3
    clones = [op for op in on_trace_stores if op.attrs.get("cpr_split")]
    assert len(clones) == 3
    assert all(op.guard == context.on_pred for op in clones)


def test_irredundancy_on_trace_op_count(strcpy_data):
    """Paper Section 4.2: on-trace code has no more operations than the
    original (n branches collapse to one; compares become lookaheads)."""
    baseline = build_strcpy_program(unroll=8)
    original_ops = len(baseline.procedure("main").block("Loop").ops)
    program = build_strcpy_program(unroll=8)
    proc, block, contexts = transform(program, [0.005] * 8)
    from repro.opt import eliminate_dead_code

    eliminate_dead_code(proc)
    assert len(block.ops) <= original_ops
    # And dynamically: on-trace branches went from 8 to 1.
    assert len(block.exit_branches()) == 1


def test_compensation_block_order_is_program_order(strcpy_data):
    program = build_strcpy_program(unroll=4)
    proc, block, contexts = transform(
        program, [0.01] * 4, CPRConfig(enable_taken_variation=False)
    )
    comp = contexts[0].comp_block
    # compares and branches alternate in original sequence; each branch's
    # guarding compare precedes it.
    last_compare = None
    for op in comp.ops:
        if op.opcode is Opcode.CMPP:
            last_compare = op
        elif op.opcode is Opcode.BRANCH:
            assert last_compare is not None
            assert op.srcs[0] in [
                t.reg for t in last_compare.pred_targets()
            ]


def build_aliasing_store_load_program():
    """Two-exit superblock with a store and a same-address load between
    the exits: mem[r1] = 7 must be observed by the reload before the
    value is written out. Off-trace motion sinks the store's split clone
    below the bypass; unless the aliasing load rides along, it reads the
    stale cell."""
    from repro.ir import DataSegment, IRBuilder, Procedure, Program, Reg

    program = Program("storeload")
    program.add_segment(DataSegment("A", 16))
    proc = Procedure("main", params=[Reg(1)])
    program.add_procedure(proc)
    b = IRBuilder(proc)
    b.start_block("Pre")
    b.jump("Loop")
    b.start_block("Loop", fallthrough="Exit")
    p1 = b.cmpp1(Cond.EQ, Reg(1), 99)
    b.branch_to("ExitA", p1)
    b.store(Reg(1), 7, region="A")
    reloaded = b.load(Reg(1), region="A")
    bumped = b.add(reloaded, 1)
    p2 = b.cmpp1(Cond.EQ, Reg(1), 98)
    b.branch_to("ExitB", p2)
    b.store(b.add(Reg(1), 1), bumped, region="A")
    b.start_block("Exit")
    b.ret(bumped)
    b.start_block("ExitA")
    b.ret(1)
    b.start_block("ExitB")
    b.ret(2)
    return program


def run_storeload(program):
    from repro.sim.interpreter import Interpreter

    interp = Interpreter(program)
    return interp.run(args=[interp.segment_base("A")])


def test_aliasing_load_rides_along_with_a_moved_store():
    reference = run_storeload(build_aliasing_store_load_program())
    program = build_aliasing_store_load_program()
    proc, block, contexts = transform(
        program, [0.01, 0.01], CPRConfig(enable_taken_variation=False)
    )
    assert len(contexts) == 1
    # The load conflicts with the moved store, so its clone must sit
    # among the split clones (below the bypass), after the store's.
    split_opcodes = [
        op.opcode for op in block.ops if op.attrs.get("cpr_split")
    ]
    assert Opcode.LOAD in split_opcodes
    assert split_opcodes.index(Opcode.STORE) < split_opcodes.index(
        Opcode.LOAD
    )
    verify_procedure(proc)
    assert run_storeload(program).equivalent_to(reference)


def test_differential_on_many_inputs():
    for length in (0, 1, 3, 4, 5, 8, 16, 23):
        data = [((7 * i) % 11) + 1 for i in range(length)] + [0]
        reference = run_strcpy(build_strcpy_program(unroll=4), data)
        program = build_strcpy_program(unroll=4)
        proc, block, contexts = transform(program, [0.02] * 4)
        result = run_strcpy(program, data)
        assert result.equivalent_to(reference), f"length={length}"
