"""Error hierarchy and the command-line interface."""

import pytest

from repro import errors


def test_error_hierarchy():
    assert issubclass(errors.IRError, errors.ReproError)
    assert issubclass(errors.VerificationError, errors.IRError)
    assert issubclass(errors.ParseError, errors.ReproError)
    assert issubclass(errors.SemanticError, errors.ReproError)
    assert issubclass(errors.FuelExhausted, errors.SimulationError)
    assert issubclass(errors.SchedulingError, errors.ReproError)
    assert issubclass(errors.TransformError, errors.ReproError)
    assert issubclass(errors.MachineConfigError, errors.ReproError)
    assert issubclass(errors.UsageError, errors.ReproError)
    assert issubclass(errors.FarmError, errors.ReproError)
    assert issubclass(errors.FarmInterrupted, errors.FarmError)
    assert issubclass(errors.FarmTimeout, errors.FarmError)


def test_farm_errors_carry_resume_context():
    interrupted = errors.FarmInterrupted(
        "drained", journal_path="j.journal", completed=3,
        signal_name="SIGINT",
    )
    assert interrupted.journal_path == "j.journal"
    assert interrupted.completed == 3
    assert interrupted.signal_name == "SIGINT"
    timeout = errors.FarmTimeout(
        "too slow", journal_path=None, completed=1, budget_s=2.5
    )
    assert timeout.budget_s == 2.5
    assert timeout.completed == 1


def test_verification_error_summarizes():
    problems = [f"problem {i}" for i in range(8)]
    error = errors.VerificationError(problems)
    assert error.problems == problems
    assert "8 problems total" in str(error)


def test_parse_error_location_formatting():
    error = errors.ParseError("bad token", line=3, column=7)
    assert "line 3" in str(error) and "column 7" in str(error)
    assert errors.ParseError("x").line is None


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_list(capsys):
    from repro.__main__ import main

    assert main(["list"]) == 0
    output = capsys.readouterr().out
    assert "strcpy" in output and "099.go" in output
    assert output.count("\n") == 24


def test_cli_show_source(capsys):
    from repro.__main__ import main

    assert main(["show", "wc", "--stage", "source"]) == 0
    assert "int main(int n)" in capsys.readouterr().out


def test_cli_show_ir(capsys):
    from repro.__main__ import main

    assert main(["show", "cmp", "--stage", "ir"]) == 0
    out = capsys.readouterr().out
    assert "proc main(" in out
    assert "cmpp" in out


def test_cli_evaluate(capsys):
    from repro.__main__ import main

    assert main(["evaluate", "strcpy"]) == 0
    out = capsys.readouterr().out
    assert "Dbr=" in out and "wid=" in out


def test_cli_table2_subset(capsys):
    from repro.__main__ import main

    assert main(["table2", "--subset", "strcpy,099.go"]) == 0
    out = capsys.readouterr().out
    assert "Gmean-all" in out
    assert "strcpy" in out and "099.go" in out


def test_cli_rejects_unknown_workload():
    from repro.__main__ import main

    with pytest.raises(SystemExit):
        main(["evaluate", "not-a-benchmark"])


# ----------------------------------------------------------------------
# Exit codes: one distinct code per failing subsystem
# ----------------------------------------------------------------------
def test_budget_exceeded_is_a_transform_error():
    assert issubclass(errors.BudgetExceeded, errors.TransformError)


def test_fuel_exhausted_carries_location_attributes():
    from repro.sim.interpreter import Interpreter
    from repro.workloads.registry import get_workload

    program = get_workload("cmp").compile()
    with pytest.raises(errors.FuelExhausted) as info:
        Interpreter(program, fuel=10).run(entry="main", args=(4,))
    exc = info.value
    assert exc.proc == "main"
    assert exc.block is not None
    assert 0 < exc.ops_executed <= 10


@pytest.mark.parametrize(
    "exc,code",
    [
        (errors.ParseError("bad token"), 2),
        (errors.SemanticError("undefined name"), 2),
        (errors.VerificationError(["dangling target"]), 3),
        (errors.IRError("malformed op"), 3),
        (errors.TransformError("broken pass"), 4),
        (errors.BudgetExceeded("pass ran long"), 4),
        (errors.SchedulingError("no slot"), 4),
        (errors.SimulationError("bad memory"), 5),
        (errors.FuelExhausted("out of fuel"), 5),
        (errors.UsageError("--resume requires --journal"), 2),
        (errors.FarmInterrupted("drained"), 130),
        (errors.FarmTimeout("budget blown"), 7),
        (errors.ReproError("anything else"), 1),
    ],
)
def test_cli_exit_code_per_subsystem(monkeypatch, capsys, exc, code):
    import repro.__main__ as cli

    def boom(args):
        raise exc

    monkeypatch.setattr(cli, "cmd_list", boom)
    assert cli.main(["list"]) == code
    err = capsys.readouterr().err
    # One-line diagnostic naming the exception class, no traceback.
    assert err.strip().count("\n") == 0
    assert f"repro: {type(exc).__name__}:" in err


def test_cli_strict_flag_accepted(capsys):
    from repro.__main__ import main

    assert main(["evaluate", "strcpy", "--strict"]) == 0
    assert "Dbr=" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Divergence localization in the equivalence checker
# ----------------------------------------------------------------------
def _result(return_value, stores):
    from repro.sim.interpreter import ExecutionResult

    return ExecutionResult(
        return_value=return_value,
        store_trace=stores,
        memory={},
        ops_executed=len(stores),
        branches_executed=0,
    )


def test_check_equivalent_names_first_divergent_store():
    from repro.passes import check_equivalent

    reference = [_result(0, [(100, 1), (104, 2), (108, 3)])]
    rebuilt = [_result(0, [(100, 1), (104, 9), (108, 3)])]
    with pytest.raises(errors.TransformError) as info:
        check_equivalent(reference, rebuilt, "stage-x")
    message = str(info.value)
    assert "input 0" in message and "stage-x" in message
    assert "index 1" in message
    assert "(104, 2)" in message and "(104, 9)" in message


def test_check_equivalent_reports_truncated_trace():
    from repro.passes import check_equivalent

    reference = [_result(7, [(100, 1), (104, 2)])]
    rebuilt = [_result(7, [(100, 1)])]
    with pytest.raises(errors.TransformError) as info:
        check_equivalent(reference, rebuilt, "stage-y")
    message = str(info.value)
    assert "2 -> 1 stores" in message
    assert "index 1" in message and "<end of trace>" in message


def test_check_equivalent_accepts_identical_runs():
    from repro.passes import check_equivalent

    runs = [_result(7, [(100, 1)])]
    check_equivalent(runs, runs, "stage-z")  # must not raise
