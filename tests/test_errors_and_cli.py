"""Error hierarchy and the command-line interface."""

import pytest

from repro import errors


def test_error_hierarchy():
    assert issubclass(errors.IRError, errors.ReproError)
    assert issubclass(errors.VerificationError, errors.IRError)
    assert issubclass(errors.ParseError, errors.ReproError)
    assert issubclass(errors.SemanticError, errors.ReproError)
    assert issubclass(errors.FuelExhausted, errors.SimulationError)
    assert issubclass(errors.SchedulingError, errors.ReproError)
    assert issubclass(errors.TransformError, errors.ReproError)
    assert issubclass(errors.MachineConfigError, errors.ReproError)


def test_verification_error_summarizes():
    problems = [f"problem {i}" for i in range(8)]
    error = errors.VerificationError(problems)
    assert error.problems == problems
    assert "8 problems total" in str(error)


def test_parse_error_location_formatting():
    error = errors.ParseError("bad token", line=3, column=7)
    assert "line 3" in str(error) and "column 7" in str(error)
    assert errors.ParseError("x").line is None


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_list(capsys):
    from repro.__main__ import main

    assert main(["list"]) == 0
    output = capsys.readouterr().out
    assert "strcpy" in output and "099.go" in output
    assert output.count("\n") == 24


def test_cli_show_source(capsys):
    from repro.__main__ import main

    assert main(["show", "wc", "--stage", "source"]) == 0
    assert "int main(int n)" in capsys.readouterr().out


def test_cli_show_ir(capsys):
    from repro.__main__ import main

    assert main(["show", "cmp", "--stage", "ir"]) == 0
    out = capsys.readouterr().out
    assert "proc main(" in out
    assert "cmpp" in out


def test_cli_evaluate(capsys):
    from repro.__main__ import main

    assert main(["evaluate", "strcpy"]) == 0
    out = capsys.readouterr().out
    assert "Dbr=" in out and "wid=" in out


def test_cli_table2_subset(capsys):
    from repro.__main__ import main

    assert main(["table2", "--subset", "strcpy,099.go"]) == 0
    out = capsys.readouterr().out
    assert "Gmean-all" in out
    assert "strcpy" in out and "099.go" in out


def test_cli_rejects_unknown_workload():
    from repro.__main__ import main

    with pytest.raises(SystemExit):
        main(["evaluate", "not-a-benchmark"])
