"""Serve-daemon latency and backpressure benchmark (plain pytest).

Boots ``repro serve`` as a real subprocess and drives it over HTTP the
way a client fleet would. Two gates, both hard assertions:

* **Rated load** — a seeded multi-client load at a rate the daemon is
  provisioned for must produce **zero 5xx** responses; p50/p95/p99
  latencies are reported to ``benchmarks/out/serve_latency.txt``.
* **Beyond rated load** — against a deliberately tiny token bucket and
  queue, overload must surface as **429 + Retry-After** (a positive
  integer, with a machine-readable reason), never as a 5xx or a hang.

Unlike the experiment benches this file does not use the
``pytest-benchmark`` fixture: the serve CI job installs only pytest, and
wall-clock here is measured per-request by the load generator itself.

Environment knobs:

* ``REPRO_BENCH_SERVE_REQUESTS`` — rated-load request count (default 24);
* ``REPRO_BENCH_SERVE_CLIENTS`` — concurrent client threads (default 4).
"""

from __future__ import annotations

import os
import random
import re
import statistics
import subprocess
import sys
import tempfile
import threading
import time

from benchmarks.conftest import write_output
from repro.serve.client import ServeClient

N_REQUESTS = int(os.environ.get("REPRO_BENCH_SERVE_REQUESTS", "24"))
N_CLIENTS = int(os.environ.get("REPRO_BENCH_SERVE_CLIENTS", "4"))
SEED = 20260807

#: Small fast workloads; warmed before the rated phase so the load
#: measures the serving path, not 24 cold compiles.
WARM_SET = ("strcpy", "cmp")


def _boot(extra_args):
    """Start a serve subprocess; (proc, client, cache_dir)."""
    cache_dir = tempfile.mkdtemp(prefix="repro-serve-bench-")
    command = [
        sys.executable, "-m", "repro", "serve",
        "--cache", "--cache-dir", cache_dir,
    ] + list(extra_args)
    proc = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=dict(os.environ),
    )
    line = proc.stdout.readline()
    match = re.search(r"http://([\d.]+):(\d+)", line)
    assert match, f"no ready line from repro serve, got {line!r}"
    client = ServeClient(match.group(1), int(match.group(2)), timeout=180.0)
    client.wait_ready()
    return proc, client


def _stop(proc, client):
    try:
        client.drain()
        proc.wait(timeout=30)
    except Exception:
        pass
    if proc.poll() is None:
        proc.kill()
        proc.wait()


def _percentiles(latencies):
    if len(latencies) < 2:
        value = latencies[0] if latencies else 0.0
        return value, value, value
    grid = statistics.quantiles(latencies, n=100, method="inclusive")
    return grid[49], grid[94], grid[98]


def test_serve_rated_load():
    proc, client = _boot([
        "--backend-jobs", "2",
        "--queue-limit", "16",
        "--rate", "50", "--burst", "100",
    ])
    try:
        # Warm phase: one cold build per workload, outside the clock.
        for name in WARM_SET:
            warm = client.compile(workload=name, id=f"warm-{name}",
                                  client="warm")
            assert warm.status == 200, warm.body
        results = []
        lock = threading.Lock()

        def run_client(index):
            rng = random.Random(f"{SEED}:{index}")
            share = N_REQUESTS // N_CLIENTS
            for i in range(share):
                name = WARM_SET[rng.randrange(len(WARM_SET))]
                started = time.perf_counter()
                response = client.compile(
                    workload=name,
                    id=f"load-{index}-{i}",
                    client=f"client-{index}",
                )
                elapsed = time.perf_counter() - started
                with lock:
                    results.append((response.status, elapsed))
                time.sleep(rng.uniform(0.0, 0.02))

        threads = [
            threading.Thread(target=run_client, args=(index,), daemon=True)
            for index in range(N_CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert len(results) == (N_REQUESTS // N_CLIENTS) * N_CLIENTS

        # The gate: a daemon at rated load never answers 5xx.
        server_errors = [status for status, _ in results if status >= 500]
        assert not server_errors, (
            f"5xx under rated load: {server_errors}"
        )
        assert all(status == 200 for status, _ in results), (
            f"non-200 under rated load: "
            f"{[s for s, _ in results if s != 200]}"
        )

        latencies = sorted(elapsed for _, elapsed in results)
        p50, p95, p99 = _percentiles(latencies)
        metrics = client.metrics().body
        accepted = metrics["counters"]["serve.accepted"]["count"]
        report = "\n".join([
            "serve rated-load latency",
            f"  requests={len(results)} clients={N_CLIENTS} "
            f"errors_5xx=0",
            f"  p50={p50 * 1000:.1f}ms  p95={p95 * 1000:.1f}ms  "
            f"p99={p99 * 1000:.1f}ms",
            f"  min={latencies[0] * 1000:.1f}ms  "
            f"max={latencies[-1] * 1000:.1f}ms",
            f"  serve.accepted={accepted} "
            f"shed_level={metrics['serve']['shed_level_name']}",
        ])
        write_output("serve_latency.txt", report)
        print("\n" + report)
    finally:
        _stop(proc, client)


def test_serve_overload_backpressure():
    """Beyond rated load: 429 + Retry-After, structured reason, no 5xx."""
    proc, client = _boot([
        "--backend-jobs", "1",
        "--queue-limit", "2",
        "--rate", "1", "--burst", "2",
    ])
    try:
        statuses = []
        rejected = []
        for i in range(10):
            response = client.compile(
                workload="strcpy", id=f"burst-{i}", client="greedy"
            )
            statuses.append(response.status)
            if response.status == 429:
                rejected.append(response)
        assert not [s for s in statuses if s >= 500], statuses
        assert rejected, f"no 429 beyond rated load: {statuses}"
        for response in rejected:
            retry_after = response.retry_after
            assert retry_after is not None and retry_after >= 1, (
                response.headers
            )
            error = response.body["error"]
            assert error["type"] == "ServeRejected"
            assert error["reason"] in ("throttle", "queue-full", "shed")
        report = "\n".join([
            "serve overload backpressure",
            f"  sent=10 accepted={statuses.count(200)} "
            f"rejected_429={len(rejected)} errors_5xx=0",
            f"  retry_after={[r.retry_after for r in rejected]}",
            f"  reasons="
            f"{sorted({r.body['error']['reason'] for r in rejected})}",
        ])
        write_output("serve_backpressure.txt", report)
        print("\n" + report)
    finally:
        _stop(proc, client)


if __name__ == "__main__":
    test_serve_rated_load()
    test_serve_overload_backpressure()
    print("bench_serve: ok")
