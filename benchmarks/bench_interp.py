"""Interpreter hot-path benchmark: struct-of-arrays vs. object engine.

The SoA interpreter lowers each procedure once into flat arrays (opcode
ids, interned register slots, immediates, CSR branch-target tables) and
executes with an integer dispatch loop; one lowering is shared across
every input of a profiling sweep.  The object engine walks the IR
operation objects per step, which is what every profile_program call
used to pay.

This bench times ``profile_program`` — the production profiling path —
over two corpora: every registry program with its full input set, and a
pinned window of fuzz-generator programs (the same generator the
differential oracle replays).  Timing is best-of-3 per entry per engine
and the median speedup across the whole corpus is the gate.  The
per-workload profiles themselves are computed once per engine and
asserted equal field-by-field: block counts, per-op counts, branch
taken/not-taken statistics, run and op totals are properties of the
program, not of the engine that profiled it.

Measured on an idle machine: median speedup ~7x (registry ~8.4x, fuzz
corpus ~6.8x); the 2.5x gate leaves headroom for loaded CI runners.
"""

import statistics
import time

from benchmarks.conftest import BENCH_WORKLOADS, SCALE, write_output
from repro.errors import FuelExhausted
from repro.frontend import compile_source
from repro.fuzz.generator import generate_workload
from repro.fuzz.oracle import FUZZ_FUEL
from repro.sim.interpreter import DEFAULT_FUEL, make_interpreter
from repro.sim.profiler import profile_program
from repro.workloads.registry import get_workload

#: CI-safe floor for the median profiling speedup of the SoA engine over
#: the object engine (measured: ~8.4x registry, ~6.8x fuzz corpus).
MIN_INTERP_RATIO = 2.5

#: Best-of-N timing filters scheduler noise on shared machines.
ROUNDS = 3

#: Pinned fuzz-seed window; deterministic, matches the oracle's corpus
#: start.  Seeds whose programs exhaust the oracle's hang budget on any
#: input are excluded up front (both engines starve at the same op — see
#: tests/integration/test_property_interp_differential.py — so exclusion
#: is engine-neutral), and the exclusions are reported in the table.
FUZZ_SEEDS = range(20)


def _completes(program, inputs, entry, fuel):
    """True iff every input finishes inside *fuel* (no hang)."""
    for item in inputs:
        setup, args = item if isinstance(item, tuple) else (item, ())
        interp = make_interpreter(program, fuel=fuel, engine="object")
        if setup is not None:
            returned = setup(interp)
            if returned is not None and not args:
                args = tuple(returned)
        try:
            interp.run(entry=entry, args=args)
        except FuelExhausted:
            return False
    return True


def _corpus():
    """(label, program, inputs, entry, fuel) per bench entry: the full
    registry plus the surviving fuzz-seed window.  Programs are compiled
    once and shared by both engines, so op uids line up and the profile
    comparison can be exact equality."""
    entries = []
    for name in BENCH_WORKLOADS:
        workload = get_workload(name, scale=SCALE)
        entries.append(
            (
                name,
                workload.compile(),
                workload.inputs,
                workload.entry,
                DEFAULT_FUEL,
            )
        )
    hung = []
    for seed in FUZZ_SEEDS:
        workload = generate_workload(seed)
        program = compile_source(workload.source)
        if not _completes(program, workload.inputs, workload.entry, FUZZ_FUEL):
            hung.append(seed)
            continue
        entries.append(
            (
                f"fuzz-{seed:04d}",
                program,
                workload.inputs,
                workload.entry,
                FUZZ_FUEL,
            )
        )
    return entries, hung


def _best_of(n, fn, *args, **kwargs):
    best = float("inf")
    for _ in range(n):
        started = time.perf_counter()
        fn(*args, **kwargs)
        best = min(best, time.perf_counter() - started)
    return best


def test_interp_speedup_gate_and_profile_parity():
    """profile_program, object vs. SoA engine, best-of-3 per entry; the
    median speedup across the corpus is the gate, and every entry's
    aggregated profile must be identical between engines."""
    corpus, hung = _corpus()
    ratios = {}
    rows = []
    for label, program, inputs, entry, fuel in corpus:
        object_profile = profile_program(
            program, inputs, entry=entry, fuel=fuel, engine="object"
        )
        soa_profile = profile_program(
            program, inputs, entry=entry, fuel=fuel, engine="soa"
        )
        assert soa_profile == object_profile, label
        object_time = _best_of(
            ROUNDS,
            profile_program,
            program,
            inputs,
            entry=entry,
            fuel=fuel,
            engine="object",
        )
        soa_time = _best_of(
            ROUNDS,
            profile_program,
            program,
            inputs,
            entry=entry,
            fuel=fuel,
            engine="soa",
        )
        ratios[label] = object_time / soa_time
        rows.append((label, soa_profile))
    median = statistics.median(ratios.values())
    worst = min(ratios, key=ratios.get)
    lines = [
        "Interpreter hot-path speedup: profile_program over the registry "
        "and the pinned fuzz window",
        f"(object-engine time / SoA-engine time, best of {ROUNDS}; "
        "profiles asserted identical between engines)",
        "",
        f"{'program':<20}{'runs':>6}{'ops':>12}{'branches':>11}"
        f"{'speedup':>9}",
    ]
    for label, profile in sorted(
        rows, key=lambda item: ratios[item[0]], reverse=True
    ):
        lines.append(
            f"{label:<20}{profile.runs:>6}{profile.total_ops:>12}"
            f"{profile.total_branches:>11}{ratios[label]:>8.2f}x"
        )
    lines += [
        "",
        f"fuzz window: seeds {FUZZ_SEEDS.start}-{FUZZ_SEEDS.stop - 1}, "
        f"{len(hung)} hanging program(s) excluded"
        + (f" ({', '.join(str(s) for s in hung)})" if hung else ""),
        f"median: {median:.2f}x   "
        f"min: {ratios[worst]:.2f}x ({worst})   gate: >={MIN_INTERP_RATIO}x",
    ]
    text = "\n".join(lines)
    print("\n" + text)
    write_output("interp_speedup.txt", text)
    assert median >= MIN_INTERP_RATIO, text
