"""Scheduler hot-path benchmark: struct-of-arrays vs. object engine.

The SoA engine lowers each block once into flat integer arrays (opcode
ids, unit classes, latencies, CSR successor lists) and schedules with an
event-driven clock; because the lowering depends only on the latency
model — not the resource shape — one liveness solve and one lowering per
block serve all five paper machines inside
``schedule_procedure_multi``.  The object engine rebuilds liveness and
the dependence graph per machine, which is exactly what the registry
evaluation loop used to pay.

This bench times ``schedule_procedure_multi`` over the five paper
presets for every registry program, raw and FRP-converted (the converted
hyperblocks carry the richest dependence structure), and enforces the
speedup as a gate.  It also emits the utilization tables quoted in the
README: per-preset issue-slot utilization and zero-issue cycle counts,
computed from both engines and asserted identical — the numbers are a
property of the schedule contract, not of the engine that produced it.

Measured on an idle machine: median speedup ~4.6x, minimum ~4.2x; the
3.0x gate leaves headroom for loaded CI runners.
"""

import statistics
import time

from benchmarks.conftest import BENCH_WORKLOADS, SCALE, write_output
from repro.machine import PAPER_PROCESSORS
from repro.obs import CounterSet, activate_counters
from repro.opt import frp_convert_procedure
from repro.sched import ENGINES, schedule_procedure_multi
from repro.workloads.registry import get_workload

#: CI-safe floor for the median multi-machine scheduling speedup of the
#: SoA engine over the object engine (measured: ~4.6x median, ~4.2x min).
MIN_HOTPATH_RATIO = 3.0

#: Best-of-N timing filters scheduler noise on shared machines.
ROUNDS = 3


def _corpus():
    """(label, [procedures]) pairs: every registry program, raw and
    FRP-converted.  Each variant is compiled fresh so the in-place FRP
    conversion cannot leak into the raw entry."""
    entries = []
    for name in BENCH_WORKLOADS:
        workload = get_workload(name, scale=SCALE)
        raw = workload.compile()
        entries.append((name, list(raw.procedures.values())))
        converted = workload.compile()
        for proc in converted.procedures.values():
            frp_convert_procedure(proc)
        entries.append((f"{name}+frp", list(converted.procedures.values())))
    return entries


def _schedule_all(procs, engine):
    return [
        schedule_procedure_multi(proc, PAPER_PROCESSORS, engine=engine)
        for proc in procs
    ]


def _best_of(n, fn, *args):
    best = float("inf")
    for _ in range(n):
        started = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - started)
    return best


def _issue_slots(processor):
    """Effective issue slots per cycle: the issue-width cap or, when the
    machine is width-unlimited, the sum of its unit counts."""
    if processor.issue_width is not None:
        return processor.issue_width
    return sum(processor.unit_counts.values())


def _utilization(results):
    """Aggregate per-preset occupancy over a list of multi-machine
    scheduling results: ops placed, schedule cycles, issue slots,
    utilization, and cycles where nothing issued at all."""
    stats = {
        p.name: {"ops": 0, "cycles": 0, "slots": 0, "zero": 0}
        for p in PAPER_PROCESSORS
    }
    for per_machine in results:
        for processor in PAPER_PROCESSORS:
            row = stats[processor.name]
            width = _issue_slots(processor)
            for schedule in per_machine[processor.name].schedules.values():
                issued = {}
                for cycle in schedule.cycles.values():
                    issued[cycle] = issued.get(cycle, 0) + 1
                row["ops"] += len(schedule.cycles)
                row["cycles"] += schedule.length
                row["slots"] += schedule.length * width
                row["zero"] += schedule.length - len(issued)
    return stats


def _utilization_table(stats):
    lines = [
        "Issue-slot utilization per paper preset "
        "(all registry programs, raw + FRP-converted)",
        f"{'machine':<12}{'ops':>8}{'cycles':>9}{'slots':>10}"
        f"{'util%':>8}{'zero-issue':>12}",
    ]
    for name, row in stats.items():
        util = 100.0 * row["ops"] / row["slots"] if row["slots"] else 0.0
        lines.append(
            f"{name:<12}{row['ops']:>8}{row['cycles']:>9}{row['slots']:>10}"
            f"{util:>7.1f}%{row['zero']:>12}"
        )
    return "\n".join(lines)


def test_hotpath_speedup_gate():
    """Multi-machine scheduling, object vs. SoA engine, best-of-3 per
    program; the median speedup across the corpus is the gate."""
    corpus = _corpus()
    ratios = {}
    for label, procs in corpus:
        object_time = _best_of(ROUNDS, _schedule_all, procs, "object")
        soa_time = _best_of(ROUNDS, _schedule_all, procs, "soa")
        ratios[label] = object_time / soa_time
    median = statistics.median(ratios.values())
    worst = min(ratios, key=ratios.get)
    lines = [
        "Scheduler hot-path speedup: schedule_procedure_multi over the "
        "five paper presets",
        f"(object-engine time / SoA-engine time, best of {ROUNDS})",
        "",
        f"{'program':<20}{'speedup':>9}",
    ]
    for label in sorted(ratios, key=ratios.get, reverse=True):
        lines.append(f"{label:<20}{ratios[label]:>8.2f}x")
    lines += [
        "",
        f"median: {median:.2f}x   "
        f"min: {ratios[worst]:.2f}x ({worst})   gate: >={MIN_HOTPATH_RATIO}x",
    ]
    text = "\n".join(lines)
    print("\n" + text)
    write_output("hotpath_speedup.txt", text)
    assert median >= MIN_HOTPATH_RATIO, text


def test_hotpath_utilization_tables_engine_invariant():
    """The utilization and zero-issue numbers are schedule properties:
    both engines must produce the identical table (and identical
    ``sched.*`` counters), and the SoA table is what ships."""
    corpus = _corpus()
    tables = {}
    counters_by_engine = {}
    for engine in ENGINES:
        counters = CounterSet()
        with activate_counters(counters):
            results = [
                result
                for _, procs in corpus
                for result in _schedule_all(procs, engine)
            ]
        tables[engine] = _utilization(results)
        counters_by_engine[engine] = counters.to_dict()
    assert tables["object"] == tables["soa"]
    assert counters_by_engine["object"] == counters_by_engine["soa"]
    text = _utilization_table(tables["soa"])
    print("\n" + text)
    write_output("hotpath_utilization.txt", text)
    # Sanity anchors: the sequential machine is a single-issue pipe, so a
    # non-trivial corpus keeps it busy; the infinite machine is slot-rich
    # and mostly idle.
    seq = tables["soa"]["sequential"]
    inf = tables["soa"]["infinite"]
    assert seq["ops"] > 0 and seq["slots"] >= seq["ops"]
    assert inf["slots"] > inf["ops"]
