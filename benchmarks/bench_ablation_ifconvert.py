"""Ablation: traditional if-conversion ahead of control CPR.

The paper's closing discussion notes its experiments apply no classic
if-conversion and that doing so "could eliminate many unbiased branches
and thus further improve the effectiveness of control CPR". This bench
implements that follow-up: the go proxy (the paper's worst case, dominated
by unbiased branches) is built with and without diamond if-conversion, and
we report both the CPR speedup and the absolute baseline improvement the
predication itself brings.
"""

from benchmarks.conftest import write_output
from repro.machine import WIDE
from repro.perf import estimate_program_cycles
from repro.pipeline import PipelineOptions, build_workload
from repro.workloads.registry import get_workload

WORKLOADS = ["099.go", "132.ijpeg", "eqn"]


def build(name, if_convert):
    workload = get_workload(name)
    return build_workload(
        workload.name,
        workload.compile(),
        workload.inputs,
        PipelineOptions(if_convert=if_convert),
    )


def test_ablation_if_conversion(benchmark):
    def run():
        lines = [
            "Ablation: if-conversion before CPR (wide machine)",
            f"{'benchmark':<10}{'base cycles':>14}{'ifc cycles':>14}"
            f"{'ifc gain':>10}{'CPR spdup':>11}",
        ]
        table = {}
        for name in WORKLOADS:
            plain = build(name, if_convert=False)
            converted = build(name, if_convert=True)
            base_plain = estimate_program_cycles(
                plain.baseline, WIDE, plain.baseline_profile
            ).total
            base_converted = estimate_program_cycles(
                converted.baseline, WIDE, converted.baseline_profile
            ).total
            cpr_converted = estimate_program_cycles(
                converted.transformed, WIDE, converted.transformed_profile
            ).total
            gain = base_plain / base_converted
            cpr_speedup = base_converted / cpr_converted
            table[name] = (gain, cpr_speedup)
            lines.append(
                f"{name:<10}{base_plain:>14.0f}{base_converted:>14.0f}"
                f"{gain:>10.2f}{cpr_speedup:>11.2f}"
            )
        text = "\n".join(lines)
        print("\n" + text)
        write_output("ablation_ifconvert.txt", text)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    # go: unbiased diamonds collapse; predication must be a clear win.
    gain, _ = table["099.go"]
    assert gain > 1.3
