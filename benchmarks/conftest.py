"""Shared infrastructure for the experiment benches.

Workload evaluations are expensive (each runs the functional simulator
four times plus five scheduling passes), so results are cached at session
scope and shared between the Table 2 and Table 3 benches.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — input-size multiplier (default 1);
* ``REPRO_BENCH_SUBSET`` — comma-separated workload names to restrict the
  tables to (default: the full 24-benchmark suite).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.perf.report import evaluate_workload
from repro.workloads.registry import all_names, get_workload

SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "1"))

_subset = os.environ.get("REPRO_BENCH_SUBSET", "")
BENCH_WORKLOADS = (
    [name.strip() for name in _subset.split(",") if name.strip()]
    if _subset
    else all_names()
)

#: Small representative subset used by the ablation benches.
ABLATION_WORKLOADS = ["strcpy", "cmp", "wc", "099.go"]

OUTPUT_DIR = Path(__file__).resolve().parent / "out"

_result_cache = {}


def evaluate_cached(name: str):
    """Evaluate one workload (full methodology), memoized per session."""
    if name not in _result_cache:
        _result_cache[name] = evaluate_workload(
            get_workload(name, scale=SCALE)
        )
    return _result_cache[name]


def cached_results():
    return dict(_result_cache)


def write_output(filename: str, text: str):
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / filename).write_text(text + "\n")


@pytest.fixture(scope="session")
def bench_workloads():
    return list(BENCH_WORKLOADS)
