"""Micro-benchmarks of the library's own components (compile-time cost).

These are genuine pytest-benchmark timings (multiple rounds): the
functional simulator's interpretation rate, dependence-graph construction,
list scheduling, predicate-expression queries, and the mini-C frontend.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from conftest import build_strcpy_program  # noqa: E402

from repro.analysis import (  # noqa: E402
    AtomUniverse,
    DependenceGraph,
    LivenessAnalysis,
    PredicateTracker,
)
from repro.frontend import compile_source  # noqa: E402
from repro.machine import MEDIUM, PAPER_LATENCIES  # noqa: E402
from repro.sched import schedule_block  # noqa: E402
from repro.sim.interpreter import Interpreter  # noqa: E402
from repro.workloads.registry import get_workload  # noqa: E402


def test_interpreter_throughput(benchmark):
    workload = get_workload("wc")
    program = workload.compile()

    def run():
        interp = Interpreter(program)
        args = tuple(workload.inputs[0](interp))
        return interp.run(args=args).ops_executed

    ops = benchmark(run)
    assert ops > 10_000


def test_dependence_graph_construction(benchmark):
    program = build_strcpy_program(unroll=8)
    proc = program.procedure("main")
    block = proc.block("Loop")
    liveness = LivenessAnalysis(proc)

    def build():
        return len(
            DependenceGraph(
                block, PAPER_LATENCIES, liveness=liveness
            ).edges
        )

    edges = benchmark(build)
    assert edges > 50


def test_list_scheduler(benchmark):
    program = build_strcpy_program(unroll=8)
    proc = program.procedure("main")
    block = proc.block("Loop")
    liveness = LivenessAnalysis(proc)

    length = benchmark(
        lambda: schedule_block(block, MEDIUM, liveness=liveness).length
    )
    assert length > 0


def test_predicate_tracker(benchmark):
    program = build_strcpy_program(unroll=8)
    block = program.procedure("main").block("Loop")

    def track():
        tracker = PredicateTracker(block)
        branches = block.exit_branches()
        return tracker.disjoint(branches[0], branches[-1])

    benchmark(track)


def test_predicate_expression_queries(benchmark):
    def run():
        universe = AtomUniverse()
        atoms = [universe.atom() for _ in range(12)]
        conjunction = universe.true()
        disjunction = universe.false()
        for atom in atoms:
            conjunction = conjunction & ~atom
            disjunction = disjunction | atom
        return conjunction.disjoint_with(disjunction)

    assert benchmark(run) is True


def test_frontend_compilation(benchmark):
    source = get_workload("085.cc1").source
    program = benchmark(lambda: compile_source(source))
    assert program.procedures
