"""Build-farm scaling: cold vs parallel vs warm-cache vs supervised.

Measures the same workload set three ways — cold sequential (``jobs=1``,
no cache), cold parallel (``jobs=4``), and warm (second run against a
populated cache) — asserts every configuration produces bit-for-bit
identical results, and reports honest wall-clock numbers for this
machine. A second benchmark prices the supervision layer (heartbeats,
deadline bookkeeping, the write-ahead journal) against the plain pool on
a clean run and gates its overhead at 10%. The warm/cold ratio is the acceptance-relevant speedup (the
evaluation cache skips compilation, every pass, and all interpreter
sweeps); the parallel/cold ratio depends on how many physical cores the
host actually has, and is reported alongside ``os.cpu_count()`` so a
single-core CI box reading ~1.0x is self-explanatory.

Environment knobs (see ``benchmarks/conftest.py``): ``REPRO_BENCH_SUBSET``
restricts the workload set, ``REPRO_BENCH_SCALE`` grows inputs.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

from benchmarks.conftest import BENCH_WORKLOADS, SCALE, write_output
from repro.farm.farm import FarmOptions, build_farm

PARALLEL_JOBS = 4


def _options(jobs: int, cache_root=None) -> FarmOptions:
    return FarmOptions(jobs=jobs, cache_root=cache_root, scale=SCALE)


def _timed(names, options):
    started = time.perf_counter()
    result = build_farm(names, options)
    return time.perf_counter() - started, result


def test_farm_scaling(benchmark):
    names = list(BENCH_WORKLOADS)
    cache_root = tempfile.mkdtemp(prefix="repro-farm-bench-")

    def run():
        cold_s, cold = _timed(names, _options(jobs=1))
        parallel_s, parallel = _timed(names, _options(jobs=PARALLEL_JOBS))
        prime_s, primed = _timed(
            names, _options(jobs=1, cache_root=cache_root)
        )
        warm_s, warm = _timed(
            names, _options(jobs=1, cache_root=cache_root)
        )
        return {
            "cold_s": cold_s,
            "parallel_s": parallel_s,
            "prime_s": prime_s,
            "warm_s": warm_s,
            "results": [cold, parallel, primed, warm],
        }

    try:
        data = benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)

    cold, parallel, primed, warm = data["results"]
    # Determinism across every configuration, the farm's core contract.
    reference = [s.comparable() for s in cold.summaries]
    for label, other in (
        (f"jobs={PARALLEL_JOBS}", parallel),
        ("cache-priming", primed),
        ("warm-cache", warm),
    ):
        assert [s.comparable() for s in other.summaries] == reference, (
            f"{label} run diverged from the cold sequential build"
        )
    assert all(s.from_cache for s in warm.summaries)

    warm_speedup = data["cold_s"] / max(data["warm_s"], 1e-9)
    parallel_speedup = data["cold_s"] / max(data["parallel_s"], 1e-9)
    lines = [
        "Build-farm scaling "
        f"({len(names)} workloads, scale={SCALE}, "
        f"cpu_count={os.cpu_count()})",
        f"{'configuration':<28}{'wall s':>10}{'speedup':>10}",
        f"{'cold, jobs=1':<28}{data['cold_s']:>10.2f}{1.0:>10.2f}",
        f"{'cold, jobs=' + str(PARALLEL_JOBS):<28}"
        f"{data['parallel_s']:>10.2f}{parallel_speedup:>10.2f}",
        f"{'cache priming, jobs=1':<28}{data['prime_s']:>10.2f}"
        f"{data['cold_s'] / max(data['prime_s'], 1e-9):>10.2f}",
        f"{'warm cache, jobs=1':<28}{data['warm_s']:>10.2f}"
        f"{warm_speedup:>10.2f}",
        "",
        "results identical across all configurations: yes",
        f"warm-cache speedup: {warm_speedup:.1f}x (acceptance floor: 5x)",
        f"parallel speedup on this host: {parallel_speedup:.2f}x "
        f"({os.cpu_count()} CPU(s) visible; >=2x requires >=2 cores)",
    ]
    text = "\n".join(lines)
    print("\n" + text)
    write_output("farm_scaling.txt", text)

    assert warm_speedup >= 5.0, (
        f"warm rebuild only {warm_speedup:.1f}x faster than cold"
    )


#: Acceptance ceiling for supervised/unsupervised wall-clock on a clean
#: run: the supervisor may cost at most 10% over the plain pool.
SUPERVISION_OVERHEAD_CEILING = 1.10


def test_supervision_overhead(benchmark, tmp_path):
    """Supervision must be near-free when nothing goes wrong.

    Heartbeats, deadline bookkeeping, and the fsync-per-record journal
    all run off the build's critical path; best-of-2 per configuration
    keeps one scheduler hiccup on a loaded CI box from failing the gate.
    """
    from repro.farm.supervisor import SupervisorOptions

    names = list(BENCH_WORKLOADS)

    def supervised_options(run_index: int) -> FarmOptions:
        return FarmOptions(
            jobs=PARALLEL_JOBS,
            scale=SCALE,
            supervisor=SupervisorOptions(
                journal_path=str(tmp_path / f"bench-{run_index}.journal"),
            ),
        )

    def run():
        plain_s = min(
            _timed(names, _options(jobs=PARALLEL_JOBS))[0]
            for _ in range(2)
        )
        timings = []
        supervised = None
        for index in range(2):
            wall_s, supervised = _timed(names, supervised_options(index))
            timings.append(wall_s)
        return {
            "plain_s": plain_s,
            "supervised_s": min(timings),
            "plain": _timed(names, _options(jobs=PARALLEL_JOBS))[1],
            "supervised": supervised,
        }

    data = benchmark.pedantic(run, rounds=1, iterations=1)

    plain, supervised = data["plain"], data["supervised"]
    assert [s.comparable() for s in supervised.summaries] == [
        s.comparable() for s in plain.summaries
    ], "supervised run diverged from the plain pool"
    assert supervised.quarantined == []

    overhead = data["supervised_s"] / max(data["plain_s"], 1e-9)
    lines = [
        "Supervision overhead "
        f"({len(names)} workloads, scale={SCALE}, jobs={PARALLEL_JOBS}, "
        "best of 2)",
        f"{'configuration':<28}{'wall s':>10}",
        f"{'plain pool':<28}{data['plain_s']:>10.2f}",
        f"{'supervised + journal':<28}{data['supervised_s']:>10.2f}",
        "",
        f"overhead: {overhead:.3f}x "
        f"(ceiling: {SUPERVISION_OVERHEAD_CEILING:.2f}x)",
    ]
    text = "\n".join(lines)
    print("\n" + text)
    write_output("supervision_overhead.txt", text)

    assert overhead <= SUPERVISION_OVERHEAD_CEILING, (
        f"supervision costs {overhead:.3f}x over the plain pool "
        f"(ceiling {SUPERVISION_OVERHEAD_CEILING:.2f}x)"
    )
