"""Regenerate the paper's Table 2: ICBM speedups per benchmark x machine.

Each bench row runs the full methodology for one benchmark (baseline
superblock build, FRP + ICBM build, differential verification, cycle
estimation on the five paper machines); the final bench renders the
complete table to stdout and ``benchmarks/out/table2.txt``.

The paper's corresponding numbers are embedded for side-by-side reading;
we reproduce the *shape* (ordering across machines, who wins) rather than
absolute magnitudes — see EXPERIMENTS.md.
"""

import pytest

from benchmarks.conftest import (
    BENCH_WORKLOADS,
    cached_results,
    evaluate_cached,
    write_output,
)
from repro.perf.report import Table2, geometric_mean

#: Paper Table 2 (Seq, Nar, Med, Wid, Inf) for reference in the output.
PAPER_TABLE2 = {
    "008.espresso": (1.15, 1.04, 1.08, 1.14, 1.15),
    "022.li": (1.08, 1.03, 1.04, 1.06, 1.06),
    "023.eqntott": (0.85, 0.87, 1.10, 1.23, 1.23),
    "026.compress": (0.95, 1.05, 1.15, 1.16, 1.17),
    "056.ear": (1.09, 1.01, 1.12, 1.33, 1.52),
    "072.sc": (1.16, 1.07, 1.16, 1.21, 1.23),
    "085.cc1": (1.13, 1.06, 1.12, 1.15, 1.18),
    "099.go": (0.96, 1.01, 1.02, 1.02, 1.02),
    "124.m88ksim": (1.15, 1.07, 1.10, 1.12, 1.13),
    "126.gcc": (1.02, 1.03, 1.06, 1.07, 1.07),
    "129.compress": (1.10, 1.03, 1.08, 1.12, 1.14),
    "130.li": (1.06, 1.06, 1.07, 1.07, 1.07),
    "132.ijpeg": (1.11, 1.08, 1.12, 1.16, 1.21),
    "134.perl": (1.06, 1.05, 1.10, 1.12, 1.12),
    "147.vortex": (1.12, 1.02, 1.08, 1.14, 1.14),
    "cccp": (1.11, 1.10, 1.36, 1.50, 1.58),
    "cmp": (1.53, 1.25, 1.79, 2.87, 3.60),
    "eqn": (1.16, 1.06, 1.15, 1.24, 1.26),
    "grep": (1.26, 1.03, 1.32, 2.11, 2.61),
    "lex": (1.29, 1.08, 1.34, 1.97, 2.26),
    "strcpy": (1.73, 1.27, 1.53, 2.76, 4.26),
    "tbl": (1.02, 0.99, 1.06, 1.13, 1.14),
    "wc": (1.17, 1.07, 1.31, 1.34, 1.34),
    "yacc": (1.15, 1.05, 1.26, 1.40, 1.46),
}

MACHINES = ["sequential", "narrow", "medium", "wide", "infinite"]


@pytest.mark.parametrize("name", BENCH_WORKLOADS)
def test_table2_row(benchmark, name):
    """Build + measure one benchmark (timed once; result cached)."""
    result = benchmark.pedantic(
        evaluate_cached, args=(name,), rounds=1, iterations=1
    )
    speedups = [result.speedup(machine) for machine in MACHINES]
    assert all(s > 0 for s in speedups)
    # Sanity: no transformation may lose more than 25% anywhere (the
    # paper's worst case is eqntott's 0.85 on sequential).
    assert min(speedups) > 0.75, f"{name}: {speedups}"


def test_table2_render(benchmark):
    """Assemble and print the full table with paper reference columns."""
    results = cached_results()
    rows = [results[name] for name in BENCH_WORKLOADS if name in results]

    def render():
        table = Table2(processors=MACHINES, rows=rows)
        lines = [
            "Table 2 — speedup from control CPR (ours | paper)",
            f"{'benchmark':<14}"
            + "".join(f"{m[:3]:>14}" for m in MACHINES),
        ]
        for result in rows:
            paper = PAPER_TABLE2.get(result.name)
            cells = []
            for i, machine in enumerate(MACHINES):
                ours = result.speedup(machine)
                ref = f"{paper[i]:.2f}" if paper else "  - "
                cells.append(f"{ours:>6.2f} |{ref:>5}")
            lines.append(f"{result.name:<14}" + " ".join(cells))
        for label, category in (
            ("Gmean-spec95", "spec95"), ("Gmean-all", None)
        ):
            gmeans = table.gmean_row(category)
            paper_row = _paper_gmean(category)
            cells = [
                f"{ours:>6.2f} |{ref:>5.2f}"
                for ours, ref in zip(gmeans, paper_row)
            ]
            lines.append(f"{label:<14}" + " ".join(cells))
        return "\n".join(lines)

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    print("\n" + text)
    write_output("table2.txt", text)

    # Shape assertions against the paper (full suite only).
    if len(rows) == len(PAPER_TABLE2):
        table = Table2(processors=MACHINES, rows=rows)
        overall = table.gmean_row(None)
        assert overall[1] < overall[0], "narrow must trail sequential"
        assert overall[1] < overall[2] < overall[3] < overall[4], (
            "speedup must grow with machine width"
        )


def _paper_gmean(category):
    spec95 = {
        "099.go", "124.m88ksim", "126.gcc", "129.compress", "130.li",
        "132.ijpeg", "134.perl", "147.vortex",
    }
    names = [
        n for n in PAPER_TABLE2
        if category is None or (category == "spec95" and n in spec95)
    ]
    return [
        geometric_mean(PAPER_TABLE2[n][i] for n in names)
        for i in range(5)
    ]
