"""The paper's Section 6 worked example as a bench: structure numbers plus
the raw transformation throughput of the ICBM implementation itself."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from conftest import build_strcpy_program  # noqa: E402

from benchmarks.conftest import write_output  # noqa: E402
from repro.analysis import LivenessAnalysis  # noqa: E402
from repro.core import CPRConfig, apply_icbm  # noqa: E402
from repro.machine import INFINITE  # noqa: E402
from repro.opt import frp_convert_procedure  # noqa: E402
from repro.sched import schedule_block  # noqa: E402
from repro.sim.profiler import profile_program  # noqa: E402


def strcpy_profile(program):
    def setup(interp):
        data = [(i % 9) + 1 for i in range(41)] + [0]
        interp.poke_array("A", data)
        return (interp.segment_base("A"), interp.segment_base("B"))

    return profile_program(program, inputs=[setup])


def transform_once():
    program = build_strcpy_program(unroll=4)
    proc = program.procedure("main")
    frp_convert_procedure(proc)
    profile = strcpy_profile(program)
    apply_icbm(
        proc, profile,
        CPRConfig(exit_weight_threshold=0.5, max_branches=2),
    )
    return program


def test_section6_numbers(benchmark):
    """Reproduce the worked example's summary metrics."""
    program = benchmark.pedantic(transform_once, rounds=1, iterations=1)
    proc = program.procedure("main")
    baseline = build_strcpy_program(unroll=4)
    base_proc = baseline.procedure("main")

    base_ops = len(base_proc.block("Loop").ops)
    on_trace = len(proc.block("Loop").ops)
    compensation = sum(
        len(block.ops)
        for block in proc.blocks
        if block.label.name.startswith("Cmp")
    )
    base_height = schedule_block(
        base_proc.block("Loop"), INFINITE,
        liveness=LivenessAnalysis(base_proc),
    ).length
    cpr_height = schedule_block(
        proc.block("Loop"), INFINITE, liveness=LivenessAnalysis(proc)
    ).length

    lines = [
        "Section 6 worked example (ours | paper)",
        f"on-trace loop ops:    {base_ops} -> {on_trace}  | 30 -> 28",
        f"compensation ops:     {compensation}  | 11",
        f"dependence height:    {base_height} -> {cpr_height}  | 8 -> 7",
        f"on-trace branches:    4 -> {len(proc.block('Loop').exit_branches())}",
    ]
    text = "\n".join(lines)
    print("\n" + text)
    write_output("section6.txt", text)

    assert base_height == 8        # exact match with the paper
    assert on_trace <= base_ops + 2
    assert 0 < compensation <= 20


def test_icbm_transformation_throughput(benchmark):
    """How fast is the transformation itself (compile-time cost)?

    Measures FRP conversion + speculation + match + restructure + motion
    + DCE over a fresh 8x-unrolled superblock each round.
    """

    def run_transform():
        program = build_strcpy_program(unroll=8)
        proc = program.procedure("main")
        frp_convert_procedure(proc)
        profile = strcpy_profile(program)
        apply_icbm(proc, profile, CPRConfig())
        return proc.op_count()

    ops = benchmark(run_transform)
    assert ops > 0
