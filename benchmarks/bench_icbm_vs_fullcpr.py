"""Head-to-head: ICBM versus full (redundant) CPR — paper Section 4.

The paper motivates ICBM against full CPR [SK95]: full CPR accelerates
*every* path and needs no profile, but its compare count grows
quadratically and every executed iteration pays all of the redundant
lookahead work. ICBM is irredundant on-trace but bets on the profile.

This bench builds both on the same baselines and reports wide-machine
speedup plus static/dynamic op growth side by side.
"""

from benchmarks.conftest import write_output
from repro.analysis import LivenessAnalysis
from repro.core import apply_full_cpr, speculate_block
from repro.ir import verify_program
from repro.machine import SEQUENTIAL, WIDE
from repro.opt import frp_convert_procedure
from repro.perf import estimate_program_cycles, operation_counts
from repro.pipeline import apply_control_cpr, build_baseline
from repro.sim.profiler import profile_program
from repro.workloads.registry import get_workload

WORKLOADS = ["strcpy", "cmp", "grep", "099.go"]


def build_full_cpr(baseline, inputs):
    transformed = baseline.clone()
    for proc in transformed.procedures.values():
        frp_convert_procedure(proc)
        for block in proc.blocks:
            if len(block.exit_branches()) >= 2:
                speculate_block(proc, block, LivenessAnalysis(proc))
        apply_full_cpr(proc)
    verify_program(transformed)
    profile = profile_program(transformed, inputs=inputs)
    return transformed, profile


def test_icbm_vs_full_cpr(benchmark):
    def run():
        lines = [
            "ICBM vs full CPR (wide machine)",
            f"{'benchmark':<10}{'ICBM spdup':>12}{'full spdup':>12}"
            f"{'ICBM Stot':>11}{'full Stot':>11}"
            f"{'ICBM Dtot':>11}{'full Dtot':>11}",
        ]
        table = {}
        for name in WORKLOADS:
            workload = get_workload(name)
            baseline, base_profile = build_baseline(
                workload.compile(), workload.inputs
            )
            base_cycles = estimate_program_cycles(
                baseline, WIDE, base_profile
            ).total
            base_counts = operation_counts(baseline, base_profile)

            icbm, icbm_profile, _ = apply_control_cpr(
                baseline, workload.inputs
            )
            icbm_speedup = base_cycles / estimate_program_cycles(
                icbm, WIDE, icbm_profile
            ).total
            icbm_ratios = operation_counts(
                icbm, icbm_profile
            ).ratios_against(base_counts)

            full, full_profile = build_full_cpr(
                baseline, workload.inputs
            )
            full_speedup = base_cycles / estimate_program_cycles(
                full, WIDE, full_profile
            ).total
            full_ratios = operation_counts(
                full, full_profile
            ).ratios_against(base_counts)

            table[name] = (icbm_speedup, full_speedup,
                           icbm_ratios, full_ratios)
            lines.append(
                f"{name:<10}{icbm_speedup:>12.2f}{full_speedup:>12.2f}"
                f"{icbm_ratios[0]:>11.2f}{full_ratios[0]:>11.2f}"
                f"{icbm_ratios[2]:>11.2f}{full_ratios[2]:>11.2f}"
            )
        text = "\n".join(lines)
        print("\n" + text)
        write_output("icbm_vs_fullcpr.txt", text)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    for name in ("strcpy", "cmp"):
        icbm_speedup, full_speedup, icbm_ratios, full_ratios = table[name]
        # Full CPR executes its redundant lookaheads on every iteration:
        # ICBM must be leaner both statically and dynamically...
        assert icbm_ratios[0] < full_ratios[0]
        assert icbm_ratios[2] < full_ratios[2]
        # ...and faster: the redundant work eats the height win even on
        # the wide machine (exactly the paper's argument for ICBM).
        assert icbm_speedup > full_speedup
        assert icbm_speedup > 1.05 and full_speedup > 0.9


def test_full_cpr_dynamic_redundancy(benchmark):
    """Sequential machine: full CPR's executed-op overhead is visible as a
    direct slowdown, while ICBM (irredundant) speeds up — the paper's
    motivation for ICBM on minimal-parallelism processors."""

    def run():
        workload = get_workload("cmp")
        baseline, base_profile = build_baseline(
            workload.compile(), workload.inputs
        )
        base = estimate_program_cycles(
            baseline, SEQUENTIAL, base_profile
        ).total
        icbm, icbm_profile, _ = apply_control_cpr(
            baseline, workload.inputs
        )
        full, full_profile = build_full_cpr(baseline, workload.inputs)
        return (
            base / estimate_program_cycles(
                icbm, SEQUENTIAL, icbm_profile
            ).total,
            base / estimate_program_cycles(
                full, SEQUENTIAL, full_profile
            ).total,
        )

    icbm_speedup, full_speedup = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(
        f"\nsequential machine: ICBM {icbm_speedup:.2f} vs "
        f"full CPR {full_speedup:.2f}"
    )
    assert icbm_speedup > full_speedup
