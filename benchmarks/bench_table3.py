"""Regenerate the paper's Table 3: operation-count ratios (medium machine).

Columns: S tot / S br (static total / branch op ratio) and D tot / D br
(dynamic ratios), transformed over baseline. Reuses the builds cached by
the Table 2 bench when both run in one session.
"""

import pytest

from benchmarks.conftest import (
    BENCH_WORKLOADS,
    cached_results,
    evaluate_cached,
    write_output,
)
from repro.perf.report import Table3, geometric_mean

#: Paper Table 3 (S tot, S br, D tot, D br) for the output's reference.
PAPER_TABLE3 = {
    "008.espresso": (1.10, 1.06, 0.98, 0.39),
    "022.li": (1.03, 1.01, 0.99, 0.63),
    "023.eqntott": (1.11, 1.04, 1.04, 0.54),
    "026.compress": (1.14, 1.06, 1.06, 0.61),
    "056.ear": (1.06, 1.03, 0.94, 0.35),
    "072.sc": (1.05, 1.02, 0.92, 0.52),
    "085.cc1": (1.05, 1.02, 0.97, 0.63),
    "099.go": (1.08, 1.04, 1.04, 0.86),
    "124.m88ksim": (1.03, 1.02, 0.99, 0.44),
    "126.gcc": (1.05, 1.02, 1.01, 0.81),
    "129.compress": (1.19, 1.08, 0.99, 0.53),
    "130.li": (1.04, 1.02, 1.02, 0.66),
    "132.ijpeg": (1.07, 1.05, 0.93, 0.51),
    "134.perl": (1.01, 1.01, 0.97, 0.66),
    "147.vortex": (1.02, 1.01, 0.91, 0.62),
    "cccp": (1.10, 1.06, 0.88, 0.39),
    "cmp": (1.08, 1.01, 0.71, 0.13),
    "eqn": (1.03, 1.01, 0.91, 0.48),
    "grep": (1.12, 1.03, 0.85, 0.15),
    "lex": (1.12, 1.04, 0.83, 0.20),
    "strcpy": (1.16, 1.00, 0.61, 0.07),
    "tbl": (1.06, 1.03, 1.00, 0.65),
    "wc": (1.20, 1.08, 0.94, 0.40),
    "yacc": (1.15, 1.07, 0.95, 0.36),
}


@pytest.mark.parametrize("name", BENCH_WORKLOADS)
def test_table3_row(benchmark, name):
    result = benchmark.pedantic(
        evaluate_cached, args=(name,), rounds=1, iterations=1
    )
    s_tot, s_br, d_tot, d_br = result.count_ratios()
    assert s_tot >= 1.0 - 1e-9      # CPR only adds static code
    assert d_br <= 1.0 + 1e-9       # never more dynamic branches
    assert d_tot <= 1.15            # irredundancy (small tolerance for
    #                                 untransformed-region noise)


def test_table3_render(benchmark):
    results = cached_results()
    rows = [results[name] for name in BENCH_WORKLOADS if name in results]

    def render():
        lines = [
            "Table 3 — operation-count ratios, CPR/baseline "
            "(ours | paper)",
            f"{'benchmark':<14}"
            + "".join(
                f"{c:>14}" for c in ("S tot", "S br", "D tot", "D br")
            ),
        ]
        for result in rows:
            ratios = result.count_ratios()
            paper = PAPER_TABLE3.get(result.name)
            cells = []
            for i in range(4):
                ref = f"{paper[i]:.2f}" if paper else "  - "
                cells.append(f"{ratios[i]:>6.2f} |{ref:>5}")
            lines.append(f"{result.name:<14}" + " ".join(cells))
        table = Table3(rows=rows)
        for label, category in (
            ("Gmean-spec95", "spec95"), ("Gmean-all", None)
        ):
            gmeans = table.gmean_row(category)
            cells = [f"{v:>6.2f} |  -  " for v in gmeans]
            lines.append(f"{label:<14}" + " ".join(cells))
        return "\n".join(lines)

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    print("\n" + text)
    write_output("table3.txt", text)

    if len(rows) >= 20:
        table = Table3(rows=rows)
        s_tot, s_br, d_tot, d_br = table.gmean_row(None)
        # Paper gmeans: 1.08 / 1.03 / 0.93 / 0.42.
        assert 1.0 <= s_tot <= 1.3
        assert d_tot <= 1.02
        assert d_br <= 0.8
