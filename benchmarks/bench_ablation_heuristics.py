"""Ablations over ICBM's heuristics (DESIGN.md's design-choice studies).

Four sweeps on a representative subset (strcpy, cmp, wc, 099.go):

* exit-weight threshold — how aggressively CPR blocks may accumulate
  off-trace probability;
* CPR blocking (``max_branches``) — the paper's Section 4.1 "blocking"
  discussion;
* taken variation on/off — the value of accelerating likely-taken exits;
* predicate speculation on/off — without it, separability fails at almost
  every block (paper Section 5.1), so ICBM should collapse to a no-op.

Each bench prints a small table and records it under ``benchmarks/out/``.
"""

import pytest

from benchmarks.conftest import ABLATION_WORKLOADS, write_output
from repro.core import CPRConfig
from repro.machine import MEDIUM, WIDE
from repro.perf import estimate_program_cycles
from repro.pipeline import PipelineOptions, build_workload
from repro.workloads.registry import get_workload


def build_with(name, config):
    workload = get_workload(name)
    return build_workload(
        workload.name,
        workload.compile(),
        workload.inputs,
        PipelineOptions(cpr=config),
    )


def speedup(build, machine):
    base = estimate_program_cycles(
        build.baseline, machine, build.baseline_profile
    ).total
    cpr = estimate_program_cycles(
        build.transformed, machine, build.transformed_profile
    ).total
    return base / cpr if cpr else float("nan")


def sweep(benchmark, title, filename, configs, machine=WIDE):
    def run():
        lines = [title, f"{'benchmark':<10}" + "".join(
            f"{label:>12}" for label, _ in configs
        )]
        table = {}
        for name in ABLATION_WORKLOADS:
            row = f"{name:<10}"
            for label, config in configs:
                value = speedup(build_with(name, config), machine)
                table[(name, label)] = value
                row += f"{value:>12.2f}"
            lines.append(row)
        text = "\n".join(lines)
        print("\n" + text)
        write_output(filename, text)
        return table

    return benchmark.pedantic(run, rounds=1, iterations=1)


def test_ablation_exit_weight(benchmark):
    configs = [
        (f"w={w}", CPRConfig(exit_weight_threshold=w))
        for w in (0.05, 0.15, 0.35, 0.75)
    ]
    table = sweep(
        benchmark,
        "Ablation: exit-weight threshold (wide machine speedup)",
        "ablation_exit_weight.txt",
        configs,
    )
    # go must stay ~1.0 under every threshold (its branches are unbiased
    # enough that even permissive thresholds find nothing worth keeping).
    for label, _ in configs:
        assert 0.9 <= table[("099.go", label)] <= 1.1


def test_ablation_blocking(benchmark):
    configs = [
        (f"max={m}", CPRConfig(max_branches=m))
        for m in (1, 2, 4, None)
    ]
    table = sweep(
        benchmark,
        "Ablation: CPR blocking via max_branches (wide machine speedup)",
        "ablation_blocking.txt",
        configs,
    )
    # max=1 means unit CPR blocks only: the identity transformation.
    for name in ABLATION_WORKLOADS:
        assert table[(name, "max=1")] == pytest.approx(1.0)
    # Unbounded blocks must beat unit blocks on the biased workloads.
    assert table[("cmp", "max=None")] > table[("cmp", "max=1")]


def test_ablation_taken_variation(benchmark):
    configs = [
        ("taken=on", CPRConfig(enable_taken_variation=True)),
        ("taken=off", CPRConfig(enable_taken_variation=False)),
    ]
    table = sweep(
        benchmark,
        "Ablation: taken-variation schema (wide machine speedup)",
        "ablation_taken.txt",
        configs,
    )
    # The taken variation is a height-versus-throughput tradeoff: folding
    # the likely-taken latch into the CPR block makes every on-trace store
    # wait on its condition too (costing height on wide machines) but
    # saves the extra bypass branch. Assert the tradeoff's two sides:
    # cycles stay in the same ballpark...
    assert table[("strcpy", "taken=on")] >= (
        table[("strcpy", "taken=off")] - 0.25
    )
    # ...and the branch-count claim holds: the taken variation executes
    # strictly fewer branches (no bypass + compensation double hop).
    from repro.perf import operation_counts

    on = build_with("strcpy", CPRConfig(enable_taken_variation=True))
    off = build_with("strcpy", CPRConfig(enable_taken_variation=False))
    on_branches = operation_counts(
        on.transformed, on.transformed_profile
    ).dynamic_branches
    off_branches = operation_counts(
        off.transformed, off.transformed_profile
    ).dynamic_branches
    assert on_branches < off_branches


def test_ablation_speculation(benchmark):
    configs = [
        ("spec=on", CPRConfig(enable_speculation=True)),
        ("spec=off", CPRConfig(enable_speculation=False)),
    ]
    table = sweep(
        benchmark,
        "Ablation: predicate speculation (wide machine speedup)",
        "ablation_speculation.txt",
        configs,
    )
    # Paper Section 5.1: without speculation, separability fails at almost
    # every block. CPR blocks shrink to fragments — at best the identity
    # transformation, at worst chained per-fragment FRP initializations
    # that *lose* performance. Either way, speculation must dominate.
    for name in ("strcpy", "cmp"):
        assert table[(name, "spec=off")] < table[(name, "spec=on")]
        assert table[(name, "spec=off")] <= 1.02


def test_ablation_branch_latency(benchmark):
    """Exposed branch latency sweep: CPR's advantage grows with latency
    (more delay-slot pressure per eliminated branch)."""

    def run():
        config = CPRConfig()
        lines = [
            "Ablation: exposed branch latency (medium machine speedup)",
            f"{'benchmark':<10}" + "".join(
                f"{f'lat={lat}':>12}" for lat in (1, 2, 3)
            ),
        ]
        table = {}
        for name in ABLATION_WORKLOADS:
            build = build_with(name, config)
            row = f"{name:<10}"
            for latency in (1, 2, 3):
                machine = MEDIUM.with_branch_latency(latency)
                value = speedup(build, machine)
                table[(name, latency)] = value
                row += f"{value:>12.2f}"
            lines.append(row)
        text = "\n".join(lines)
        print("\n" + text)
        write_output("ablation_branch_latency.txt", text)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    assert table[("cmp", 3)] >= table[("cmp", 1)] - 0.02
