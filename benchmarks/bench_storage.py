"""Storage-integrity overhead: what does verify-on-every-read cost?

Since cache format v5 every entry carries a sha256 digest checked on
every read (:mod:`repro.farm.cache`). The check runs on the warm fast
path — the one place the cache is supposed to be saving time — so this
bench prices it directly: warm rebuilds against one primed cache, with
``cache_verify=True`` (the default) vs ``cache_verify=False`` (header
stripped, digest skipped; results are identical either way). Best-of-N
per configuration keeps one scheduler hiccup from failing the gate.

The acceptance gate: checksummed warm reads may cost at most 5% over
unverified ones (:data:`VERIFY_OVERHEAD_CEILING`). sha256 over a few KB
of JSON/pickle is tens of microseconds against a multi-millisecond
workload evaluation, so a breach means the integrity layer grew a real
hot-path bug, not that hashing got slow.

Environment knobs (see ``benchmarks/conftest.py``): ``REPRO_BENCH_SUBSET``
restricts the workload set, ``REPRO_BENCH_SCALE`` grows inputs.
"""

from __future__ import annotations

import shutil
import tempfile
import time

from benchmarks.conftest import BENCH_WORKLOADS, SCALE, write_output
from repro.farm.cache import PassCache
from repro.farm.farm import FarmOptions, build_farm

#: Acceptance ceiling: warm-cache checksum verification may cost at most
#: 5% of warm wall-clock.
VERIFY_OVERHEAD_CEILING = 1.05

#: Absolute slack under the ratio gate: with a small workload subset the
#: whole warm rebuild takes a few milliseconds, and 5% of that is below
#: scheduler jitter. The gate is ``verified <= max(trusting * ceiling,
#: trusting + slack)`` — tight on real timings, immune to micro-noise.
ABS_SLACK_S = 0.05

#: Best-of-N warm runs per configuration.
ROUNDS = 3


def _options(cache_root: str, verify: bool) -> FarmOptions:
    return FarmOptions(
        jobs=1, cache_root=cache_root, cache_verify=verify, scale=SCALE,
    )


def _timed(names, options):
    started = time.perf_counter()
    result = build_farm(names, options)
    return time.perf_counter() - started, result


def test_warm_cache_verify_overhead(benchmark):
    names = list(BENCH_WORKLOADS)
    cache_root = tempfile.mkdtemp(prefix="repro-storage-bench-")

    def run():
        prime_s, primed = _timed(names, _options(cache_root, verify=True))
        verified_s = min(
            _timed(names, _options(cache_root, verify=True))[0]
            for _ in range(ROUNDS)
        )
        trusting_s = min(
            _timed(names, _options(cache_root, verify=False))[0]
            for _ in range(ROUNDS)
        )
        verified = _timed(names, _options(cache_root, verify=True))[1]
        trusting = _timed(names, _options(cache_root, verify=False))[1]
        return {
            "prime_s": prime_s,
            "verified_s": verified_s,
            "trusting_s": trusting_s,
            "results": [primed, verified, trusting],
        }

    try:
        data = benchmark.pedantic(run, rounds=1, iterations=1)
        entries = PassCache(cache_root).entry_count()
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)

    primed, verified, trusting = data["results"]
    reference = [s.comparable() for s in primed.summaries]
    for label, other in (("verify=True", verified), ("verify=False", trusting)):
        assert [s.comparable() for s in other.summaries] == reference, (
            f"warm {label} run diverged from the priming build"
        )
    assert all(s.from_cache for s in verified.summaries)
    storage = verified.metrics.to_json_dict()["storage"]
    assert storage["verified_reads"] >= len(names)
    assert storage["checksum_failures"] == 0

    overhead = data["verified_s"] / max(data["trusting_s"], 1e-9)
    ceiling_s = max(
        data["trusting_s"] * VERIFY_OVERHEAD_CEILING,
        data["trusting_s"] + ABS_SLACK_S,
    )
    lines = [
        "Warm-cache checksum overhead "
        f"({len(names)} workloads, scale={SCALE}, {entries} cache "
        f"entries, best of {ROUNDS})",
        f"{'configuration':<28}{'wall s':>10}",
        f"{'prime (cold, verify on)':<28}{data['prime_s']:>10.2f}",
        f"{'warm, verify on':<28}{data['verified_s']:>10.2f}",
        f"{'warm, verify off':<28}{data['trusting_s']:>10.2f}",
        "",
        f"verified reads (warm run): {storage['verified_reads']}",
        f"overhead: {overhead:.3f}x "
        f"(gate: {VERIFY_OVERHEAD_CEILING:.2f}x or "
        f"+{ABS_SLACK_S * 1000:.0f}ms, whichever is larger)",
    ]
    text = "\n".join(lines)
    print("\n" + text)
    write_output("storage_verify_overhead.txt", text)

    assert data["verified_s"] <= ceiling_s, (
        f"checksum verification costs {overhead:.3f}x on the warm path "
        f"({data['verified_s']:.3f}s vs gate {ceiling_s:.3f}s)"
    )
