"""Estimator validation: compiler estimation versus cycle simulation.

The paper justifies its methodology by noting that the block-length x
frequency estimate "accurately determines the performance obtained via
simulation of an equivalent, statically-scheduled processor where dynamic
effects are ignored". We built that simulator
(:mod:`repro.sim.cycle_sim`), so the claim is testable: for a set of
workloads, both baseline and CPR builds, the exit-aware estimate must
match the cycle-by-cycle execution of the scheduled code.
"""

from benchmarks.conftest import write_output
from repro.machine import MEDIUM, WIDE
from repro.perf import estimate_program_cycles
from repro.pipeline import build_workload
from repro.sim import simulate_scheduled
from repro.workloads.registry import get_workload

WORKLOADS = ["strcpy", "cmp", "wc", "grep", "099.go", "132.ijpeg"]


def test_estimation_matches_simulation(benchmark):
    def run():
        lines = [
            "Estimator validation (medium machine): estimate vs simulated",
            f"{'benchmark':<12}{'build':>10}{'estimated':>12}"
            f"{'simulated':>12}{'error %':>9}",
        ]
        worst = 0.0
        for name in WORKLOADS:
            workload = get_workload(name)
            build = build_workload(
                workload.name, workload.compile(), workload.inputs
            )
            setup = workload.inputs[0]
            for label, program, profile in (
                ("baseline", build.baseline, build.baseline_profile),
                ("cpr", build.transformed, build.transformed_profile),
            ):
                estimated = estimate_program_cycles(
                    program, MEDIUM, profile, mode="exit-aware"
                ).total
                # Scale single-run simulation up to the profile's run count.
                runs = max(profile.runs, 1)
                simulated = simulate_scheduled(
                    program, MEDIUM, setup=setup
                ).total_cycles * runs
                error = abs(estimated - simulated) / simulated * 100
                worst = max(worst, error)
                lines.append(
                    f"{name:<12}{label:>10}{estimated:>12.0f}"
                    f"{simulated:>12}{error:>9.3f}"
                )
        lines.append(f"\nworst-case error: {worst:.3f}%")
        text = "\n".join(lines)
        print("\n" + text)
        write_output("validation.txt", text)
        return worst

    worst = benchmark.pedantic(run, rounds=1, iterations=1)
    assert worst < 0.5  # estimation is essentially exact


def test_wide_machine_validation(benchmark):
    def run():
        workload = get_workload("cmp")
        build = build_workload(
            workload.name, workload.compile(), workload.inputs
        )
        setup = workload.inputs[0]
        estimated = estimate_program_cycles(
            build.transformed, WIDE, build.transformed_profile,
            mode="exit-aware",
        ).total
        simulated = simulate_scheduled(
            build.transformed, WIDE, setup=setup
        ).total_cycles
        return estimated, simulated

    estimated, simulated = benchmark.pedantic(run, rounds=1, iterations=1)
    assert abs(estimated - simulated) / simulated < 0.005
