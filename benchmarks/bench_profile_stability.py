"""Profile stability: train on one input, run another (the [FF92] premise).

ICBM bets on the profile ("prior work has shown that branch profiles are
relatively consistent across multiple data sets", Section 2). This bench
tests that bet end-to-end: the transformation is driven by a *training*
input's profile, then both builds are measured under a fresh *test*
input's profile. Speedups must persist (within noise) for the biased
workloads, and the differential equivalence check must hold on inputs the
compiler never saw.
"""

from benchmarks.conftest import write_output
from repro.machine import WIDE
from repro.perf import estimate_program_cycles
from repro.pipeline import build_workload
from repro.sim.profiler import profile_program
from repro.workloads import cmp as cmp_mod
from repro.workloads import wc
from repro.workloads.base import Lcg


def wc_input(seed, length=3000):
    rng = Lcg(seed=seed)
    text = wc.make_text(rng, length)

    def setup(target):
        target.poke_array("TEXT", text)
        return (len(text) - 1,)

    return setup


def cmp_input(seed, length=2400):
    rng = Lcg(seed=seed)
    file_a = rng.ints(length, 1, 250)
    file_b = list(file_a)
    file_b[-1] = file_a[-1] + 1
    file_a += [0]
    file_b += [0]

    def setup(target):
        target.poke_array("FA", file_a)
        target.poke_array("FB", file_b)
        return (0,)

    return setup


CASES = [
    ("wc", wc.workload, wc_input),
    ("cmp", cmp_mod.workload, cmp_input),
]


def test_profile_stability(benchmark):
    def run():
        lines = [
            "Profile stability: train-input vs test-input speedup "
            "(wide machine)",
            f"{'benchmark':<10}{'train spdup':>13}{'test spdup':>13}",
        ]
        table = {}
        for name, factory, make_input in CASES:
            workload = factory()
            test_inputs = [make_input(seed=987654 + hash(name) % 1000)]
            # Build (and transform) using only the training inputs; the
            # pipeline's differential check also replays the test input
            # below via fresh profiling runs.
            build = build_workload(
                workload.name, workload.compile(), workload.inputs
            )
            train_speedup = (
                estimate_program_cycles(
                    build.baseline, WIDE, build.baseline_profile
                ).total
                / estimate_program_cycles(
                    build.transformed, WIDE, build.transformed_profile
                ).total
            )
            base_test_profile = profile_program(
                build.baseline, inputs=test_inputs
            )
            cpr_test_profile = profile_program(
                build.transformed, inputs=test_inputs
            )
            test_speedup = (
                estimate_program_cycles(
                    build.baseline, WIDE, base_test_profile
                ).total
                / estimate_program_cycles(
                    build.transformed, WIDE, cpr_test_profile
                ).total
            )
            table[name] = (train_speedup, test_speedup)
            lines.append(
                f"{name:<10}{train_speedup:>13.2f}{test_speedup:>13.2f}"
            )
        text = "\n".join(lines)
        print("\n" + text)
        write_output("profile_stability.txt", text)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, (train, test) in table.items():
        assert test > 1.0, f"{name}: speedup must survive a fresh input"
        assert abs(train - test) < 0.25, f"{name}: {train} vs {test}"
