"""Measure the cost of armed observability: traced vs. untraced builds.

The tracer, ledger, and counters are ContextVar-gated no-ops by default,
so an untraced build pays one context-variable read per instrumentation
site. This bench quantifies both sides:

* the *inactive* cost — the full registry built exactly as
  ``bench_table2`` builds it (tracing off), which is the configuration
  every other bench and test measures; and
* the *armed* cost — the same farm build with ``FarmOptions(trace=True)``
  plus the per-transform ledger schedule estimates.

The headline number (see DESIGN.md section 10) is the armed/inactive
wall-clock ratio; the gate here is deliberately looser than the measured
value to keep the bench robust on loaded CI machines.
"""

import time

from benchmarks.conftest import BENCH_WORKLOADS, write_output
from repro.farm.farm import FarmOptions, build_farm

#: CI-safe ceiling for armed tracing overhead (measured: ~1-3%).
MAX_OVERHEAD_RATIO = 1.10


def _farm_build(trace: bool):
    return build_farm(
        list(BENCH_WORKLOADS), FarmOptions(trace=trace)
    )


def _best_of(n, fn, *args):
    best = float("inf")
    for _ in range(n):
        started = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - started)
    return best


def test_trace_overhead(benchmark):
    """Full-registry farm build, untraced then traced, best-of-two each
    (min filters scheduler noise on shared machines)."""
    untraced = _best_of(2, _farm_build, False)
    traced = benchmark.pedantic(
        lambda: _best_of(2, _farm_build, True), rounds=1, iterations=1
    )
    ratio = traced / untraced
    lines = [
        "Observability overhead (full registry, best of 2)",
        f"untraced build: {untraced:.2f}s",
        f"traced build:   {traced:.2f}s",
        f"ratio:          {ratio:.3f}",
    ]
    text = "\n".join(lines)
    print("\n" + text)
    write_output("trace_overhead.txt", text)
    assert ratio <= MAX_OVERHEAD_RATIO, text


def test_traced_build_reports_spans_and_ledger():
    """Arming the tracer must change nothing but add the data: every
    workload ships a span tree and results stay comparable."""
    plain = _farm_build(False)
    traced = _farm_build(True)
    assert set(traced.traces) == set(BENCH_WORKLOADS)
    assert [s.comparable() for s in plain.summaries] == [
        s.comparable() for s in traced.summaries
    ]
    events = traced.chrome_trace()["traceEvents"]
    assert len(events) > len(BENCH_WORKLOADS)
