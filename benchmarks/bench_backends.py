"""Three-way backend head-to-head: ICBM vs full CPR vs branch melding.

The rival comparison the melding pass exists to answer: over identical
classical baselines, what does each branch-elimination strategy buy?
Two corpora, one table each:

* the ablation workload subset from the registry (real benchmark
  shapes, written to ``out/backends_registry.txt``);
* a fixed fuzz corpus (generated mini-C programs, written to
  ``out/backends_fuzz.txt``). The default window, seeds 12:20, is the
  first one where every backend transforms at least one program —
  classical baseline optimization already consumes most generated
  diamonds, so backend-triggering seeds are sparse and the window is
  pinned rather than sampled.

Columns are :mod:`repro.perf.headtohead`'s: estimated speedup, static
op growth (S tot), static and dynamic branch ratios (S br / D br), and
schedule length, with per-backend geometric means.

Environment knobs:

* ``REPRO_BENCH_BACKEND_SEEDS`` — fuzz corpus, 'A:B' (default 12:20).
"""

from __future__ import annotations

import os

from benchmarks.conftest import ABLATION_WORKLOADS, write_output
from repro.perf.headtohead import compare_corpus, compare_workloads
from repro.pipeline import BACKENDS
from repro.workloads.registry import get_workload

_span = os.environ.get("REPRO_BENCH_BACKEND_SEEDS", "12:20").split(":")
SEEDS = range(int(_span[0]), int(_span[-1]))


def _assert_table_is_complete(table, expected_rows):
    assert not [row.name for row in table.rows if row.error], (
        "head-to-head rows errored: "
        + ", ".join(f"{r.name}: {r.error}" for r in table.rows if r.error)
    )
    assert len(table.rows) == expected_rows
    for row in table.rows:
        assert set(row.measurements) == set(BACKENDS)


def test_backends_over_registry(benchmark):
    def run():
        workloads = [get_workload(name) for name in ABLATION_WORKLOADS]
        return compare_workloads(workloads)

    table = benchmark(run)
    _assert_table_is_complete(table, len(ABLATION_WORKLOADS))
    # Full CPR must not lose to conservative ICBM on dynamic branches:
    # reducing branch height is the whole point of the paper.
    assert table.gmean("cpr", "dynamic_branch_ratio") <= (
        table.gmean("icbm", "dynamic_branch_ratio") + 1e-9
    )
    write_output("backends_registry.txt", table.render())


def test_backends_over_fuzz_corpus(benchmark):
    def run():
        return compare_corpus(SEEDS)

    table = benchmark(run)
    _assert_table_is_complete(table, len(SEEDS))
    # Every backend must fire somewhere in the window: a zero means the
    # generator's shapes and that backend's pattern drifted apart.
    fired = {
        backend: sum(
            row.measurements[backend].detail.get(key, 0)
            for row in table.rows
        )
        for backend, key in (
            ("icbm", "cpr_blocks"),
            ("cpr", "cpr_blocks"),
            ("meld", "melds"),
        )
    }
    assert all(count > 0 for count in fired.values()), fired
    write_output("backends_fuzz.txt", table.render())
