"""Setuptools shim.

Everything lives in pyproject.toml; this file exists so fully offline
environments (no `wheel` package available for PEP 660 editable builds)
can still do ``python setup.py develop``.
"""

from setuptools import setup

setup()
