"""Differential fuzzing oracle over the rival backends.

For each seed the oracle regenerates the program, records the
**unoptimized interpreter semantics** as ground truth, then builds it
under every requested backend (``icbm``, full ``cpr``, ``meld``) and
checks two things per backend:

* **observable equivalence** — return values and the full store trace of
  every input must match the unoptimized reference exactly
  (:func:`repro.passes.manager.check_equivalent`);
* **the sanitizer battery** — every transformed procedure must pass the
  IR-level checks at the requested tier.

Builds run with ``verify_equivalence=False``: the pipeline's own
stage-level fallback would silently *repair* a miscompiling backend by
reverting to the baseline, which is exactly the masking this independent
oracle exists to see through.

On a divergence the failing seed is **auto-shrunk**: the generated
program's entry procedure is delta-debugged (:func:`reduce_procedure`)
against an oracle that splices each candidate into a fresh program,
rebuilds it under the same backend (re-deriving the same fault plan, so
injected faults replay bit-for-bit), and re-compares observables —
candidates that crash or hang do not reproduce and are rejected. The
minimized procedure is emitted as a self-contained repro bundle whose
``generator.json`` records the seed and knobs, so the original input can
be regenerated from two integers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import FuelExhausted, ReproError
from repro.fuzz.generator import FuzzKnobs, generate_workload
from repro.ir.cloning import clone_procedure
from repro.passes.manager import (
    TransactionPolicy,
    check_equivalent,
    run_inputs,
)
from repro.pipeline import (
    BACKENDS,
    PipelineOptions,
    apply_backend,
    build_baseline,
)
from repro.reduce.bundle import emit_repro_bundle
from repro.reduce.reducer import reduce_procedure
from repro.robustness.faultinject import FaultPlan, FaultSpec
from repro.sanitize.battery import run_battery
from repro.sanitize.findings import Finding
from repro.sim.interpreter import DEFAULT_FUEL

#: Interpreter fuel for fuzz runs: generated programs execute a few
#: thousand operations, so anything that needs more is a hang (e.g. a
#: reduction candidate that lost its loop increment) and must fail fast.
FUZZ_FUEL = 500_000

#: Tighter fuel for reduction trials. Generated programs execute a few
#: thousand operations, so the reference still terminates comfortably,
#: while hang-reproducing candidates fail ~6x faster than under
#: :data:`FUZZ_FUEL` — ddmin runs hundreds of trials, so this dominates
#: shrink latency.
SHRINK_FUEL = 80_000


@dataclass
class SeedResult:
    """Outcome of one seed across every requested backend."""

    seed: int
    status: str  # 'ok' | 'divergence' | 'finding' | 'error'
    backend: str = ""  # first offending backend, when not 'ok'
    detail: str = ""
    bundle: Optional[str] = None
    #: Per-backend statistics (branches removed, melds, ...).
    stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _fuzz_options(sanitize: Optional[str], inject: Optional[str],
                  seed: int, scope: str,
                  entry: str = "main",
                  fuel: int = FUZZ_FUEL) -> PipelineOptions:
    """Build options for one fuzz build.

    ``verify_equivalence`` is always off (see module docstring). When a
    fault is injected, the transaction-level defenses (verifier,
    differential re-run, sanitizer) are disarmed too, so the corruption
    survives to the end-to-end oracle — the point of the exercise is to
    prove the *oracle* catches what the armored pipeline would normally
    stop earlier.
    """
    options = PipelineOptions(
        verify_equivalence=False,
        sanitize=None if inject else sanitize,
        fuel=fuel,
    )
    if inject:
        # Strike the entry procedure: its hot loops make the corruption
        # reliably observable on the profiled inputs, where a fault in a
        # rarely-executed helper could dodge the oracle.
        plan = FaultPlan(
            [FaultSpec(kind=inject, times=1, proc_name=entry)], seed=seed
        ).derive(scope)
        options.fault_plan = plan
        options.transaction = TransactionPolicy(
            verify=False, differential=False
        )
    return options


def _build_backend(wl, backend, options):
    """(transformed, baseline, stats) for one backend build of *wl*."""
    program = wl.compile()
    baseline, profile = build_baseline(
        program, wl.inputs, options, wl.entry
    )
    transformed, _, icbm_report, meld_report = apply_backend(
        backend, baseline, wl.inputs, options, wl.entry
    )
    stats = {"static_ops": _static_ops(transformed)}
    if meld_report is not None:
        stats["melds"] = meld_report.melded_diamonds
        stats["removed_branches"] = meld_report.removed_branches
    elif icbm_report is not None:
        stats["removed_branches"] = getattr(
            icbm_report, "eliminated_branches", 0
        )
    return transformed, baseline, stats


def _static_ops(program) -> int:
    return sum(
        len(block.ops)
        for proc in program.procedures.values()
        for block in proc.blocks
    )


def _battery_findings(program, tier: str) -> List[Finding]:
    findings: List[Finding] = []
    for proc in program.procedures.values():
        findings.extend(run_battery(proc, tier=tier))
    return findings


def divergence_finding(backend: str, entry: str, detail: str) -> Finding:
    """A synthesized differential finding for bundle emission."""
    return Finding(
        check="differential",
        proc=entry,
        block="",
        detail=f"{backend}: observable divergence from reference",
        message=detail,
    )


def make_divergence_oracle(
    wl, backend: str, sanitize: Optional[str], inject: Optional[str],
    seed: int,
):
    """The reduction oracle: does *candidate* still miscompile?

    Each candidate replaces the entry procedure of a freshly generated
    program; the trial is interpreted for new reference semantics, then
    rebuilt under *backend* (with the same derived fault plan) and
    compared. Any crash, hang, or build error means "does not
    reproduce" — the reducer only keeps candidates that still diverge.
    """

    def oracle(candidate) -> bool:
        try:
            trial = wl.compile()
            trial.procedures[wl.entry] = clone_procedure(candidate)
            reference = run_inputs(trial, wl.inputs, wl.entry, SHRINK_FUEL)
        except Exception:
            return False  # the candidate itself is broken: reject
        try:
            options = _fuzz_options(
                sanitize, inject, seed, wl.name, wl.entry, fuel=SHRINK_FUEL
            )
            transformed, _, _ = _build_backend(
                wl_with(trial, wl), backend, options
            )
            results = run_inputs(
                transformed, wl.inputs, wl.entry, SHRINK_FUEL
            )
        except FuelExhausted:
            return True  # reference terminated, transform hangs: reproduces
        except Exception:
            return False
        try:
            check_equivalent(reference, results, stage=f"fuzz-{backend}")
        except ReproError:
            return True  # still diverges: the bug reproduces
        return False

    return oracle


class _TrialWorkload:
    """A workload view whose ``compile()`` returns a fixed program."""

    def __init__(self, program, template):
        self._program = program
        self.name = template.name
        self.inputs = template.inputs
        self.entry = template.entry

    def compile(self):
        from repro.ir.cloning import clone_program

        return clone_program(self._program)


def wl_with(program, template) -> _TrialWorkload:
    return _TrialWorkload(program, template)


def run_seed(
    seed: int,
    knobs: Optional[FuzzKnobs] = None,
    backends: Sequence[str] = BACKENDS,
    sanitize: Optional[str] = "fast",
    bundle_dir: Optional[str] = None,
    inject: Optional[str] = None,
    shrink: bool = True,
) -> SeedResult:
    """Generate, build, and differentially check one seed."""
    knobs = knobs or FuzzKnobs()
    for backend in backends:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; "
                f"expected one of {', '.join(BACKENDS)}"
            )
    wl = generate_workload(seed, knobs)
    try:
        program = wl.compile()
        reference = run_inputs(program, wl.inputs, wl.entry, FUZZ_FUEL)
    except Exception as error:  # generator bug: surface loudly
        return SeedResult(
            seed, "error", detail=f"generation failed: {error}"
        )

    stats: dict = {"baseline_ops": _static_ops(program)}
    for backend in backends:
        options = _fuzz_options(sanitize, inject, seed, wl.name, wl.entry)
        divergence: Optional[str] = None
        results = None
        try:
            transformed, baseline, backend_stats = _build_backend(
                wl, backend, options
            )
            results = run_inputs(
                transformed, wl.inputs, wl.entry, FUZZ_FUEL
            )
            stats[backend] = backend_stats
        except FuelExhausted as error:
            # The reference terminated under the same fuel, so a build or
            # run that exhausts it hangs: an observable miscompile, not an
            # infrastructure error.
            divergence = f"fuzz-{backend} hangs: {error}"
        except Exception as error:
            return SeedResult(
                seed, "error", backend=backend,
                detail=f"build failed: {error}", stats=stats,
            )

        if divergence is None:
            try:
                check_equivalent(
                    reference, results, stage=f"fuzz-{backend}"
                )
            except ReproError as error:
                divergence = str(error)

        if divergence is None and sanitize and not inject:
            findings = _battery_findings(transformed, sanitize)
            if findings:
                return SeedResult(
                    seed, "finding", backend=backend,
                    detail=findings[0].format(), stats=stats,
                )

        if divergence is not None:
            bundle = None
            if shrink and bundle_dir:
                bundle = _shrink_and_bundle(
                    wl, backend, divergence, knobs, seed,
                    sanitize, inject, bundle_dir, backends,
                )
            return SeedResult(
                seed, "divergence", backend=backend,
                detail=divergence, bundle=bundle, stats=stats,
            )
    return SeedResult(seed, "ok", stats=stats)


def _shrink_and_bundle(
    wl, backend, divergence, knobs, seed, sanitize, inject,
    bundle_dir, backends,
) -> Optional[str]:
    """ddmin the generated entry procedure, then emit a repro bundle."""
    try:
        oracle = make_divergence_oracle(
            wl, backend, sanitize, inject, seed
        )
        original = wl.compile().procedures[wl.entry]
        minimized = (
            reduce_procedure(original, oracle)
            if oracle(original)
            else original
        )
        finding = divergence_finding(backend, wl.entry, divergence)
        return emit_repro_bundle(
            bundle_dir,
            minimized,
            [finding],
            pass_name=f"fuzz-{backend}",
            tier=sanitize or "fast",
            generator={
                "seed": seed,
                "knobs": knobs.to_dict(),
                "backends": list(backends),
                "inject": inject,
                "entry": wl.entry,
                "command": (
                    f"python -m repro fuzz --seeds {seed} "
                    f"--backends {','.join(backends)}"
                    + (f" --inject {inject}" if inject else "")
                ),
            },
        )
    except Exception:
        return None  # bundles are best-effort, never fail the run


@dataclass
class CorpusResult:
    """Aggregate of one fuzzing campaign."""

    results: List[SeedResult] = field(default_factory=list)

    @property
    def ok(self) -> int:
        return sum(1 for r in self.results if r.status == "ok")

    @property
    def divergences(self) -> List[SeedResult]:
        return [r for r in self.results if r.status == "divergence"]

    @property
    def findings(self) -> List[SeedResult]:
        return [r for r in self.results if r.status == "finding"]

    @property
    def errors(self) -> List[SeedResult]:
        return [r for r in self.results if r.status == "error"]

    @property
    def clean(self) -> bool:
        return len(self.results) == self.ok


def run_corpus(
    seeds: Sequence[int],
    knobs: Optional[FuzzKnobs] = None,
    backends: Sequence[str] = BACKENDS,
    sanitize: Optional[str] = "fast",
    bundle_dir: Optional[str] = None,
    inject: Optional[str] = None,
    shrink: bool = True,
    progress=None,
) -> CorpusResult:
    """Run :func:`run_seed` over *seeds*; ``progress`` gets each result."""
    corpus = CorpusResult()
    for seed in seeds:
        result = run_seed(
            seed, knobs, backends, sanitize, bundle_dir, inject, shrink
        )
        corpus.results.append(result)
        if progress is not None:
            progress(result)
    return corpus
