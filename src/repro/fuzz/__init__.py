"""Seeded differential fuzzing of the rival backends.

:mod:`repro.fuzz.generator` produces deterministic mini-C programs;
:mod:`repro.fuzz.oracle` builds each one under every backend and checks
interpreter-observed semantics plus the sanitizer battery, auto-shrinking
divergences into self-contained repro bundles.
"""

from repro.fuzz.generator import (
    FuzzKnobs,
    fuzz_inputs,
    generate_source,
    generate_workload,
)
from repro.fuzz.oracle import (
    CorpusResult,
    FUZZ_FUEL,
    SeedResult,
    run_corpus,
    run_seed,
)

__all__ = [
    "CorpusResult",
    "FUZZ_FUEL",
    "FuzzKnobs",
    "SeedResult",
    "fuzz_inputs",
    "generate_source",
    "generate_workload",
    "run_corpus",
    "run_seed",
]
