"""Seeded random mini-C program generator.

Programs target the real frontend (lexer -> parser -> sema -> lower) and
are built to be **boring to execute and interesting to compile**: every
control shape the grammar offers (nested if/else diamonds, while / do-while
/ for loops, break/continue, helper calls, global array traffic) with none
of the undefined behaviour that would make a differential oracle noisy.

Safety invariants (the oracle depends on every one of them):

* **Termination** — every loop is bounded: a dedicated counter register
  (``i0``, ``i1``, ...) is initialized to zero, tested against a small
  constant bound, and incremented at the end of the body; the counter is
  never assigned anywhere else, and ``continue`` is only emitted inside
  ``for`` loops (whose lowering routes it through the step statement).
* **Bounded values** — every assignment masks its right-hand side with
  ``value_mask``, so values never grow without bound across iterations.
* **Total operations** — shift amounts are masked to ``& 15`` and
  divisors/moduli are forced nonzero via ``((e & 7) + 1)``, so no
  generated program can raise in the interpreter.
* **In-bounds addressing** — array sizes are powers of two and every
  index is masked with ``& (size - 1)``.
* **No recursion** — helper ``f<i>`` may only call ``f<j>`` with j < i.
* **Observability** — a dedicated ``OUT`` array receives stores along the
  way, so the interpreter's store trace (not just the return value)
  witnesses divergence.

Determinism: the same ``(seed, knobs)`` pair always yields the
byte-identical source (``random.Random(seed)`` is the only entropy
source), which is what lets repro bundles regenerate their input from two
recorded integers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, fields
from typing import List, Tuple

from repro.workloads.base import Workload

#: Comparison / arithmetic operators the expression generator draws from,
#: weighted roughly toward arithmetic so conditions stay diverse but
#: values keep moving.
_BINOPS = (
    "+", "+", "-", "-", "*", "&", "|", "^",
    "<", "<=", ">", ">=", "==", "!=", "<<", ">>", "/", "%",
)


@dataclass
class FuzzKnobs:
    """Size and shape controls for one generated program."""

    #: Maximum nesting depth of control structures.
    max_depth: int = 3
    #: Probability that a statement slot becomes an if/else diamond.
    branch_density: float = 0.4
    #: Loops attempted in ``main``'s top-level body.
    loop_count: int = 2
    #: Maximum statements per block.
    max_stmts: int = 6
    #: Global scratch arrays (read/write), each ``array_size`` wide.
    num_arrays: int = 2
    #: Power-of-two length of each global array.
    array_size: int = 16
    #: Helper functions callable from expressions.
    num_helpers: int = 2
    #: Maximum expression tree depth.
    expr_depth: int = 3
    #: Every assignment's right-hand side is masked with this.
    value_mask: int = 0xFFFF
    #: Cap on the product of enclosing loop bounds: a loop is only
    #: emitted while (product of live bounds) * (its bound) stays under
    #: this, keeping interpreter time per program roughly constant.
    iter_budget: int = 24
    #: Total statement budget per function (compound statements count 1
    #: plus their bodies); bounds static program size.
    func_stmts: int = 36

    def __post_init__(self):
        if self.array_size & (self.array_size - 1):
            raise ValueError("array_size must be a power of two")

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzKnobs":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


class _FunctionScope:
    """Names visible while generating one function body."""

    def __init__(self, params: List[str]):
        self.params = list(params)
        self.locals: List[str] = []
        self.counters: List[str] = []  # loop counters: read-only to stmts

    @property
    def readable(self) -> List[str]:
        return self.params + self.locals + self.counters

    @property
    def assignable(self) -> List[str]:
        return self.locals


class _Generator:
    def __init__(self, seed: int, knobs: FuzzKnobs):
        self.rng = random.Random(seed)
        self.knobs = knobs
        self.lines: List[str] = []
        self.indent = 0
        self.arrays = [f"A{i}" for i in range(knobs.num_arrays)]
        self.out_array = "OUT"
        self.counter_id = 0
        self.out_slot = 0
        self.loop_factor = 1  # product of enclosing loop bounds
        self.stmts_left = 0  # per-function statement budget

    # ------------------------------------------------------------------
    def emit(self, text: str):
        self.lines.append("    " * self.indent + text)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def expr(self, scope: _FunctionScope, depth: int, helpers: int) -> str:
        if depth <= 0 or self.rng.random() < 0.3:
            return self._leaf(scope, helpers)
        roll = self.rng.random()
        if roll < 0.12:
            op = "-" if self.rng.random() < 0.5 else "!"
            return f"{op}({self.expr(scope, depth - 1, helpers)})"
        op = self.rng.choice(_BINOPS)
        left = self.expr(scope, depth - 1, helpers)
        right = self.expr(scope, depth - 1, helpers)
        if op in ("<<", ">>"):
            right = f"(({right}) & 15)"
        elif op in ("/", "%"):
            right = f"((({right}) & 7) + 1)"
        return f"({left} {op} {right})"

    def _leaf(self, scope: _FunctionScope, helpers: int) -> str:
        choices = ["lit", "var", "array"]
        if helpers > 0:
            choices.append("call")
        kind = self.rng.choice(choices)
        if kind == "var" and scope.readable:
            return self.rng.choice(scope.readable)
        if kind == "array":
            return self._array_ref(scope)
        if kind == "call":
            callee = f"f{self.rng.randrange(helpers)}"
            args = ", ".join(
                self._leaf(scope, 0)
                for _ in range(2)
            )
            return f"{callee}({args})"
        return str(self.rng.randrange(0, 256))

    def _array_ref(self, scope: _FunctionScope) -> str:
        array = self.rng.choice(self.arrays + [self.out_array])
        index = self._leaf(scope, 0) if scope.readable else "0"
        return f"{array}[({index}) & {self.knobs.array_size - 1}]"

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def block(
        self,
        scope: _FunctionScope,
        depth: int,
        helpers: int,
        in_loop: bool,
        in_for: bool,
        loops_left: int,
    ):
        count = self.rng.randint(1, max(1, self.knobs.max_stmts))
        for _ in range(count):
            self.statement(
                scope, depth, helpers, in_loop, in_for, loops_left
            )
            if self.stmts_left <= 0:
                break

    def statement(
        self,
        scope: _FunctionScope,
        depth: int,
        helpers: int,
        in_loop: bool,
        in_for: bool,
        loops_left: int,
    ):
        self.stmts_left -= 1
        if self.stmts_left <= 0:
            self._assign(scope, helpers)
            return
        roll = self.rng.random()
        if depth > 0 and roll < self.knobs.branch_density:
            self._if(scope, depth, helpers, in_loop, in_for, loops_left)
        elif (
            depth > 0
            and loops_left > 0
            and self.loop_factor * 2 <= self.knobs.iter_budget
            and roll < self.knobs.branch_density + 0.2
        ):
            self._loop(scope, depth, helpers, loops_left)
        elif in_loop and roll > 0.96:
            self.emit("break;")
        elif in_for and roll > 0.93:
            self.emit("continue;")
        else:
            self._assign(scope, helpers)

    def _assign(self, scope: _FunctionScope, helpers: int):
        value = self.expr(scope, self.knobs.expr_depth, helpers)
        masked = f"({value}) & {self.knobs.value_mask}"
        roll = self.rng.random()
        if roll < 0.25:
            # Observable store: fixed slot so the trace is informative.
            slot = self.out_slot % self.knobs.array_size
            self.out_slot += 1
            self.emit(f"{self.out_array}[{slot}] = {masked};")
        elif roll < 0.45:
            self.emit(f"{self._array_ref(scope)} = {masked};")
        elif roll < 0.6 and scope.assignable:
            target = self.rng.choice(scope.assignable)
            op = self.rng.choice(["+=", "-="])
            self.emit(f"{target} {op} ({value}) & 255;")
        elif scope.assignable:
            target = self.rng.choice(scope.assignable)
            self.emit(f"{target} = {masked};")
        else:
            slot = self.out_slot % self.knobs.array_size
            self.out_slot += 1
            self.emit(f"{self.out_array}[{slot}] = {masked};")

    def _if(self, scope, depth, helpers, in_loop, in_for, loops_left):
        cond = self.expr(scope, self.knobs.expr_depth, helpers)
        self.emit(f"if ({cond}) {{")
        self.indent += 1
        self.block(scope, depth - 1, helpers, in_loop, in_for, loops_left)
        self.indent -= 1
        if self.rng.random() < 0.6:
            self.emit("} else {")
            self.indent += 1
            self.block(
                scope, depth - 1, helpers, in_loop, in_for, loops_left
            )
            self.indent -= 1
        self.emit("}")

    def _loop(self, scope, depth, helpers, loops_left):
        counter = f"i{self.counter_id}"
        self.counter_id += 1
        max_bound = max(2, self.knobs.iter_budget // self.loop_factor)
        bound = self.rng.randint(2, min(6, max_bound))
        kind = self.rng.choice(["while", "do", "for"])
        scope.counters.append(counter)
        self.loop_factor *= bound
        if kind == "while":
            self.emit(f"int {counter} = 0;")
            self.emit(f"while ({counter} < {bound}) {{")
            self.indent += 1
            self.block(
                scope, depth - 1, helpers, True, False, loops_left - 1
            )
            self.emit(f"{counter} += 1;")
            self.indent -= 1
            self.emit("}")
        elif kind == "do":
            self.emit(f"int {counter} = 0;")
            self.emit("do {")
            self.indent += 1
            self.block(
                scope, depth - 1, helpers, True, False, loops_left - 1
            )
            self.emit(f"{counter} += 1;")
            self.indent -= 1
            self.emit(f"}} while ({counter} < {bound});")
        else:
            self.emit(f"int {counter};")
            self.emit(
                f"for ({counter} = 0; {counter} < {bound}; "
                f"{counter} += 1) {{"
            )
            self.indent += 1
            self.block(
                scope, depth - 1, helpers, True, True, loops_left - 1
            )
            self.indent -= 1
            self.emit("}")
        self.loop_factor //= bound

    # ------------------------------------------------------------------
    # Declarations and functions
    # ------------------------------------------------------------------
    def _array_decl(self, name: str):
        values = [
            self.rng.randrange(0, self.knobs.value_mask + 1)
            for _ in range(self.knobs.array_size)
        ]
        body = ", ".join(str(v) for v in values)
        self.emit(f"int {name}[{self.knobs.array_size}] = {{{body}}};")

    def _helper(self, index: int):
        name = f"f{index}"
        params = ["a", "b"]
        scope = _FunctionScope([f"{name}_{p}" for p in params])
        self.emit(
            f"int {name}(int {scope.params[0]}, int {scope.params[1]}) {{"
        )
        self.indent += 1
        for i in range(2):
            local = f"{name}_v{i}"
            init = self.expr(scope, 1, index)
            scope.locals.append(local)
            self.emit(f"int {local} = ({init}) & {self.knobs.value_mask};")
        # Helpers stay shallow and loop-free (they may be called from
        # inside main's loop nest): depth 2, callable helpers < index.
        self.stmts_left = max(4, self.knobs.func_stmts // 4)
        self.block(scope, 2, index, False, False, 0)
        result = self.expr(scope, self.knobs.expr_depth, index)
        self.emit(f"return ({result}) & {self.knobs.value_mask};")
        self.indent -= 1
        self.emit("}")
        self.emit("")

    def _main(self):
        scope = _FunctionScope(["n"])
        self.emit("int main(int n) {")
        self.indent += 1
        for i in range(3):
            local = f"v{i}"
            init = self.expr(scope, 1, self.knobs.num_helpers)
            scope.locals.append(local)
            self.emit(f"int {local} = ({init}) & {self.knobs.value_mask};")
        self.stmts_left = self.knobs.func_stmts
        self.block(
            scope,
            self.knobs.max_depth,
            self.knobs.num_helpers,
            in_loop=False,
            in_for=False,
            loops_left=self.knobs.loop_count,
        )
        result = self.expr(scope, self.knobs.expr_depth,
                           self.knobs.num_helpers)
        self.emit(f"return ({result}) & {self.knobs.value_mask};")
        self.indent -= 1
        self.emit("}")

    def generate(self) -> str:
        for name in self.arrays:
            self._array_decl(name)
        self.emit(f"int {self.out_array}[{self.knobs.array_size}];")
        self.emit("")
        for i in range(self.knobs.num_helpers):
            self._helper(i)
        self._main()
        return "\n".join(self.lines) + "\n"


def generate_source(seed: int, knobs: FuzzKnobs = None) -> str:
    """The deterministic mini-C source for ``(seed, knobs)``."""
    return _Generator(seed, knobs or FuzzKnobs()).generate()


def fuzz_inputs(seed: int) -> List[Tuple[None, tuple]]:
    """Three deterministic argument sets for ``main(n)``."""
    return [
        (None, (seed % 97,)),
        (None, ((seed * 7 + 13) % 251,)),
        (None, (5,)),
    ]


def generate_workload(seed: int, knobs: FuzzKnobs = None) -> Workload:
    """A registry-shaped :class:`Workload` for one fuzz seed."""
    knobs = knobs or FuzzKnobs()
    return Workload(
        name=f"fuzz-{seed}",
        source=generate_source(seed, knobs),
        inputs=fuzz_inputs(seed),
        description=f"generated program (seed={seed})",
        category="util",
        entry="main",
    )
