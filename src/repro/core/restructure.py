"""Phase 3 of ICBM: restructure (paper Section 5.3).

For each non-trivial CPR block, insert the height-reducing machinery:

1. initialize the on-trace FRP (wired-and) to the CPR block's root
   predicate and the off-trace FRP (wired-or) to zero;
2. after each original compare, insert a *lookahead compare* with the same
   condition and sources, guarded by the root predicate, accumulating into
   the on-trace FRP with an AC action and the off-trace FRP with an ON
   action (the last compare's sense is inverted in the taken variation);
3. fall-through variation: insert the *bypass branch* — a pbr/branch pair
   to a fresh compensation block — right after the CPR block's final
   branch; taken variation: the final branch itself becomes the bypass, its
   source predicate rewired to the on-trace FRP, and the compensation block
   is the hyperblock's own tail (placed on the fall-through path);
4. rewire: operations after the bypass point whose guards are fall-through
   predicates computed by the original compares are re-guarded by the
   on-trace FRP (safe because at those program points the two are
   equivalent — execution past the CPR block implies no exit was taken).

The root predicate is read *live* from the first compare's current guard,
so restructuring earlier CPR blocks (whose rewiring retargets later
compares' guards onto their on-trace FRP) chains root predicates exactly as
in the paper's Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.analysis.defuse import branch_complement_pred, branch_taken_cond
from repro.core.match import CPRBlock
from repro.errors import TransformError
from repro.ir.block import Block
from repro.ir.opcodes import Opcode
from repro.ir.operands import Imm, Label, PredReg, TRUE_PRED
from repro.ir.operation import Operation, PredTarget
from repro.ir.procedure import Procedure
from repro.ir.semantics import Action


@dataclass
class RestructureContext:
    """Everything off-trace motion needs about one restructured CPR block."""

    cpr: CPRBlock
    block: Block
    comp_block: Block
    on_pred: PredReg
    off_pred: PredReg
    root_pred: PredReg
    bypass: Operation
    moved_branches: List[Operation] = field(default_factory=list)
    lookaheads: List[Operation] = field(default_factory=list)
    sp_preds: Set[PredReg] = field(default_factory=set)
    inserted_uids: Set[int] = field(default_factory=set)


def restructure_cpr_block(
    proc: Procedure, block: Block, cpr: CPRBlock
) -> RestructureContext:
    """Apply the restructure schema to one CPR block, in place."""
    if cpr.size < 2:
        raise TransformError("restructure requires a non-trivial CPR block")
    if len(cpr.compares) != cpr.size:
        raise TransformError("CPR block is missing guarding compares")

    root = cpr.compares[0].guard  # read live; see module docstring
    on_pred = proc.new_pred()
    off_pred = proc.new_pred()

    # Fall-through predicates of the CPR block's compares, plus the root:
    # exactly the suitable-predicate set match grew (recomputed here so the
    # rewiring below is self-contained).
    sp: Set[PredReg] = {root}
    for compare, branch in zip(cpr.compares, cpr.branches):
        fall = branch_complement_pred(compare, branch)
        if fall is not None:
            sp.add(fall)

    context = RestructureContext(
        cpr=cpr,
        block=block,
        comp_block=None,
        on_pred=on_pred,
        off_pred=off_pred,
        root_pred=root,
        bypass=None,
        sp_preds=sp,
    )

    # ------------------------------------------------------------------
    # 1. FRP initialization, right before the first compare.
    # ------------------------------------------------------------------
    init_source = Imm(1) if root == TRUE_PRED else root
    on_init = Operation(
        Opcode.PRED_SET, dests=[on_pred], srcs=[init_source]
    )
    off_init = Operation(Opcode.PRED_CLEAR, dests=[off_pred], srcs=[])
    on_init.attrs["cpr_init"] = True
    off_init.attrs["cpr_init"] = True
    first_compare = cpr.compares[0]
    block.insert_before(first_compare, on_init)
    block.insert_before(first_compare, off_init)
    context.inserted_uids.update((on_init.uid, off_init.uid))

    # ------------------------------------------------------------------
    # 2. Lookahead compares after each original compare.
    # ------------------------------------------------------------------
    for position, compare in enumerate(cpr.compares):
        is_last = position == cpr.size - 1
        # The ON term is the branch's *taken* condition (the compare's own
        # condition, negated when the branch is sourced from a UC target).
        cond = branch_taken_cond(compare, cpr.branches[position])
        if cpr.taken_variation and is_last:
            cond = cond.negate()  # accelerate the taken direction
        lookahead = Operation(
            Opcode.CMPP,
            dests=[
                PredTarget(on_pred, Action.AC),
                PredTarget(off_pred, Action.ON),
            ],
            srcs=list(compare.srcs),
            guard=root,
            cond=cond,
        )
        lookahead.attrs["cpr_lookahead"] = True
        block.insert_after(compare, lookahead)
        context.lookaheads.append(lookahead)
        context.inserted_uids.add(lookahead.uid)

    final_branch = cpr.branches[-1]

    # ------------------------------------------------------------------
    # 3. Bypass branch and compensation block.
    # ------------------------------------------------------------------
    if cpr.taken_variation:
        # The final branch becomes the bypass; its taken direction is the
        # accelerated on-trace path and the fall-through goes off-trace.
        final_branch.srcs[0] = on_pred
        context.bypass = final_branch
        context.moved_branches = list(cpr.branches[:-1])
        comp_label = proc.new_label("Cmp")
        comp_block = Block(label=comp_label, fallthrough=block.fallthrough)
        proc.add_block(comp_block, after=block)
        block.fallthrough = comp_label
    else:
        comp_label = proc.new_label("Cmp")
        comp_block = Block(label=comp_label, fallthrough=None)
        proc.add_block(comp_block)  # cold section: end of the procedure
        # Falling off the compensation block is impossible (suitability
        # guarantees some moved branch takes), but the block still needs a
        # structural terminator; the sentinel return makes any suitability
        # violation loudly visible in differential tests.
        trap = Operation(Opcode.RETURN, srcs=[Imm(-57005)])
        trap.attrs["cpr_trap"] = True
        comp_block.append(trap)
        btr = proc.new_btr()
        pbr = Operation(Opcode.PBR, dests=[btr], srcs=[comp_label])
        pbr.attrs["cpr_bypass"] = True
        bypass = Operation(Opcode.BRANCH, srcs=[off_pred, btr])
        bypass.attrs["target"] = comp_label
        bypass.attrs["cpr_bypass"] = True
        block.insert_after(final_branch, pbr)
        block.insert_after(pbr, bypass)
        context.bypass = bypass
        context.moved_branches = list(cpr.branches)
        context.inserted_uids.update((pbr.uid, bypass.uid))
    context.comp_block = comp_block

    # ------------------------------------------------------------------
    # 4. Rewire fall-through-predicate guards after the bypass point.
    #
    # Fall-through variation only: past the bypass, execution implies no
    # CPR-block exit was taken, so a fall-through predicate is equivalent
    # to the on-trace FRP there. In the taken variation everything after
    # the bypass is the off-trace path itself; it keeps its guards and is
    # moved wholesale by off-trace motion.
    # ------------------------------------------------------------------
    if not cpr.taken_variation:
        fall_preds = {
            pred for pred in (
                branch_complement_pred(compare, branch)
                for compare, branch in zip(cpr.compares, cpr.branches)
            ) if pred is not None
        }
        bypass_index = block.index_of(context.bypass)
        for op in block.ops[bypass_index + 1:]:
            if op.guard in fall_preds:
                op.guard = on_pred
            # Branch source predicates are never in fall_preds (they are
            # UN targets), so sources need no rewiring here.
    return context
