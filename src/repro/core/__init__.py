"""Control CPR via the Irredundant Consecutive Branch Method (ICBM) —
the paper's primary contribution."""

from repro.core.config import CPRConfig, DEFAULT_CONFIG
from repro.core.fullcpr import (
    FullCPRReport,
    apply_full_cpr,
    full_cpr_block,
)
from repro.core.icbm import (
    BlockCPRReport,
    ICBMReport,
    apply_icbm,
    apply_icbm_to_block,
    apply_icbm_to_program,
)
from repro.core.match import CPRBlock, match_cpr_blocks
from repro.core.offtrace import MotionReport, move_off_trace
from repro.core.restructure import RestructureContext, restructure_cpr_block
from repro.core.speculation import (
    SpeculationReport,
    speculate_block,
    speculate_procedure,
)

__all__ = [
    "BlockCPRReport",
    "CPRBlock",
    "CPRConfig",
    "DEFAULT_CONFIG",
    "FullCPRReport",
    "ICBMReport",
    "MotionReport",
    "apply_full_cpr",
    "full_cpr_block",
    "RestructureContext",
    "SpeculationReport",
    "apply_icbm",
    "apply_icbm_to_block",
    "apply_icbm_to_program",
    "match_cpr_blocks",
    "move_off_trace",
    "restructure_cpr_block",
    "speculate_block",
    "speculate_procedure",
]
