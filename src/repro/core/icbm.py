"""ICBM driver: the complete control CPR transformation (paper Section 5).

``apply_icbm`` runs the four-phase schema over every multi-branch block of a
procedure:

1. predicate speculation (:mod:`repro.core.speculation`);
2. match (:mod:`repro.core.match`) — CPR block identification under the
   suitability / separability / exit-weight / predict-taken tests;
3. restructure (:mod:`repro.core.restructure`) — lookahead compares, FRP
   initialization, bypass branch, compensation block, guard rewiring;
4. off-trace motion (:mod:`repro.core.offtrace`) — move/split redundant
   operations into the compensation block;

followed by a pass of predicate-aware dead-code elimination.

Trivial CPR blocks (fewer than ``config.min_branches`` branches) are left
untouched, exactly as the unit-length CPR block in the paper's Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.dependence import DependenceGraph
from repro.analysis.liveness import LivenessAnalysis
from repro.core.config import CPRConfig, DEFAULT_CONFIG
from repro.core.match import CPRBlock, match_cpr_blocks
from repro.core.offtrace import move_off_trace
from repro.core.restructure import restructure_cpr_block
from repro.core.speculation import speculate_block
from repro.errors import ReproError
from repro.ir.block import Block
from repro.ir.cloning import restore_procedure, snapshot_procedure
from repro.ir.procedure import Procedure, Program
from repro.ir.verify import verify_procedure
from repro.machine.latency import LatencyModel, PAPER_LATENCIES
from repro.machine.processor import MEDIUM
from repro.obs import current_ledger
from repro.opt.dce import eliminate_dead_code
from repro.sched.list_scheduler import schedule_block
from repro.sim.profiler import ProfileData


@dataclass
class BlockCPRReport:
    """What ICBM did to one hyperblock."""

    label: str
    proc_name: str = ""
    cpr_blocks: List[CPRBlock] = field(default_factory=list)
    transformed: int = 0
    taken_variations: int = 0
    moved_ops: int = 0
    split_ops: int = 0
    promoted: int = 0
    demoted: int = 0


@dataclass
class ICBMReport:
    """Aggregate transformation report for a procedure or program."""

    blocks: List[BlockCPRReport] = field(default_factory=list)
    dce_removed: int = 0
    # Hyperblocks skipped by :func:`apply_icbm_isolated` after their
    # transform failed and was rolled back, as "proc/label" strings.
    skipped_blocks: List[str] = field(default_factory=list)

    @property
    def transformed_cpr_blocks(self) -> int:
        return sum(b.transformed for b in self.blocks)

    @property
    def total_cpr_blocks(self) -> int:
        return sum(len(b.cpr_blocks) for b in self.blocks)


def apply_icbm_to_block(
    proc: Procedure,
    block: Block,
    profile: Optional[ProfileData],
    config: CPRConfig,
    latencies: LatencyModel,
    liveness: LivenessAnalysis,
) -> BlockCPRReport:
    report = BlockCPRReport(label=block.label.name, proc_name=proc.name)

    if config.enable_speculation:
        spec = speculate_block(
            proc, block, liveness, demote=config.enable_demotion
        )
        report.promoted = spec.promoted
        report.demoted = spec.demoted

    graph = DependenceGraph(block, latencies, liveness=liveness)
    cprs = match_cpr_blocks(proc.name, block, graph, profile, config)
    report.cpr_blocks = cprs

    # A mid-hyperblock taken variation moves the tail (including any later
    # CPR blocks' operations) into its compensation block; subsequent CPR
    # blocks are transformed there.
    current_block = block
    for cpr in cprs:
        if cpr.is_trivial(config) or not cpr.compares:
            continue
        if cpr.branches and not any(
            op is cpr.branches[0] for op in current_block.ops
        ):
            continue  # displaced by an earlier failure; leave untouched
        ledger = current_ledger()
        claim_executed = claim_taken = None
        if profile is not None:
            stats = [
                profile.branch_profile(proc.name, b) for b in cpr.branches
            ]
            # The bypass branch of the restructured code executes once per
            # region entry. Its taken count is the wired-OR of the merged
            # exits (fall-through variation) or — because the lookahead
            # chain accumulates by and-complement — exactly the final
            # branch's original taken count (taken variation).
            claim_executed = stats[0].executed
            if cpr.taken_variation:
                claim_taken = stats[-1].taken
            else:
                claim_taken = sum(s.taken for s in stats)
        sched_before = None
        if ledger is not None:
            sched_before = _ledger_schedule_length(proc, current_block)
        context = restructure_cpr_block(proc, current_block, cpr)
        # Liveness changed (new blocks/ops); recompute for motion.
        motion_liveness = LivenessAnalysis(proc)
        motion = move_off_trace(context, motion_liveness)
        report.transformed += 1
        report.moved_ops += motion.moved
        report.split_ops += motion.split
        if ledger is not None:
            exits = current_block.exit_branches()
            bypass_index = next(
                (i for i, op in enumerate(exits) if op is context.bypass),
                -1,
            )
            attrs = {
                "variation": (
                    "taken" if cpr.taken_variation else "fall-through"
                ),
                "size": cpr.size,
                "bypass_exit_index": bypass_index,
                "comp_block": context.comp_block.label.name,
                "moved_ops": motion.moved,
                "split_ops": motion.split,
                "sched_len_before": sched_before,
                "sched_len_after": _ledger_schedule_length(
                    proc, current_block
                ),
            }
            if claim_executed is not None:
                attrs["claim_executed"] = claim_executed
                attrs["claim_taken"] = claim_taken
            ledger.record(
                "cpr-transform",
                proc.name,
                current_block.label.name,
                **attrs,
            )
        if cpr.taken_variation:
            report.taken_variations += 1
            current_block = context.comp_block
    return report


def _ledger_schedule_length(proc: Procedure, block: Block):
    """The block's MEDIUM schedule length, for ledger bookkeeping only.

    Recorded before and after each restructure so a trace can attribute
    height changes to individual CPR blocks; any scheduling failure is the
    transaction checker's business, not the ledger's, so it reads as None.
    """
    try:
        liveness = LivenessAnalysis(proc)
        return schedule_block(block, MEDIUM, liveness=liveness).length
    except ReproError:
        return None


def apply_icbm(
    proc: Procedure,
    profile: Optional[ProfileData] = None,
    config: Optional[CPRConfig] = None,
    latencies: LatencyModel = PAPER_LATENCIES,
) -> ICBMReport:
    """Run ICBM over every candidate block of *proc*, then clean up."""
    config = config or DEFAULT_CONFIG
    report = ICBMReport()
    for block in list(proc.blocks):
        if len(block.exit_branches()) < 2:
            continue
        liveness = LivenessAnalysis(proc)
        report.blocks.append(
            apply_icbm_to_block(
                proc, block, profile, config, latencies, liveness
            )
        )
    report.dce_removed = eliminate_dead_code(proc)
    return report


def apply_icbm_isolated(
    proc: Procedure,
    profile: Optional[ProfileData] = None,
    config: Optional[CPRConfig] = None,
    latencies: LatencyModel = PAPER_LATENCIES,
    program: Optional[Program] = None,
) -> ICBMReport:
    """ICBM with per-hyperblock fault isolation.

    The last retry rung of the pass manager's degradation ladder: each
    candidate hyperblock is transformed inside its own procedure-level
    transaction, so a match/restructure failure rolls back (and skips) only
    that hyperblock while control CPR still lands on the others. Skipped
    hyperblocks are listed in the report's ``skipped_blocks``.
    """
    config = config or DEFAULT_CONFIG
    report = ICBMReport()
    labels = [
        block.label for block in proc.blocks
        if len(block.exit_branches()) >= 2
    ]
    for label in labels:
        if not proc.has_block(label):
            continue  # displaced by an earlier taken-variation transform
        snapshot = snapshot_procedure(proc)
        try:
            liveness = LivenessAnalysis(proc)
            block_report = apply_icbm_to_block(
                proc, proc.block(label), profile, config, latencies, liveness
            )
            verify_procedure(proc, program)
        except ReproError:
            restore_procedure(proc, snapshot)
            report.skipped_blocks.append(f"{proc.name}/{label.name}")
            continue
        report.blocks.append(block_report)
    report.dce_removed = eliminate_dead_code(proc)
    return report


def apply_icbm_to_program(
    program: Program,
    profile: Optional[ProfileData] = None,
    config: Optional[CPRConfig] = None,
    latencies: LatencyModel = PAPER_LATENCIES,
) -> ICBMReport:
    combined = ICBMReport()
    for proc in program.procedures.values():
        partial = apply_icbm(proc, profile, config, latencies)
        combined.blocks.extend(partial.blocks)
        combined.dce_removed += partial.dce_removed
    return combined
