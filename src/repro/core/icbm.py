"""ICBM driver: the complete control CPR transformation (paper Section 5).

``apply_icbm`` runs the four-phase schema over every multi-branch block of a
procedure:

1. predicate speculation (:mod:`repro.core.speculation`);
2. match (:mod:`repro.core.match`) — CPR block identification under the
   suitability / separability / exit-weight / predict-taken tests;
3. restructure (:mod:`repro.core.restructure`) — lookahead compares, FRP
   initialization, bypass branch, compensation block, guard rewiring;
4. off-trace motion (:mod:`repro.core.offtrace`) — move/split redundant
   operations into the compensation block;

followed by a pass of predicate-aware dead-code elimination.

Trivial CPR blocks (fewer than ``config.min_branches`` branches) are left
untouched, exactly as the unit-length CPR block in the paper's Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.dependence import DependenceGraph
from repro.analysis.liveness import LivenessAnalysis
from repro.core.config import CPRConfig, DEFAULT_CONFIG
from repro.core.match import CPRBlock, match_cpr_blocks
from repro.core.offtrace import move_off_trace
from repro.core.restructure import restructure_cpr_block
from repro.core.speculation import speculate_block
from repro.errors import ReproError
from repro.ir.block import Block
from repro.ir.cloning import restore_procedure, snapshot_procedure
from repro.ir.procedure import Procedure, Program
from repro.ir.verify import verify_procedure
from repro.machine.latency import LatencyModel, PAPER_LATENCIES
from repro.opt.dce import eliminate_dead_code
from repro.sim.profiler import ProfileData


@dataclass
class BlockCPRReport:
    """What ICBM did to one hyperblock."""

    label: str
    proc_name: str = ""
    cpr_blocks: List[CPRBlock] = field(default_factory=list)
    transformed: int = 0
    taken_variations: int = 0
    moved_ops: int = 0
    split_ops: int = 0
    promoted: int = 0
    demoted: int = 0


@dataclass
class ICBMReport:
    """Aggregate transformation report for a procedure or program."""

    blocks: List[BlockCPRReport] = field(default_factory=list)
    dce_removed: int = 0
    # Hyperblocks skipped by :func:`apply_icbm_isolated` after their
    # transform failed and was rolled back, as "proc/label" strings.
    skipped_blocks: List[str] = field(default_factory=list)

    @property
    def transformed_cpr_blocks(self) -> int:
        return sum(b.transformed for b in self.blocks)

    @property
    def total_cpr_blocks(self) -> int:
        return sum(len(b.cpr_blocks) for b in self.blocks)


def apply_icbm_to_block(
    proc: Procedure,
    block: Block,
    profile: Optional[ProfileData],
    config: CPRConfig,
    latencies: LatencyModel,
    liveness: LivenessAnalysis,
) -> BlockCPRReport:
    report = BlockCPRReport(label=block.label.name, proc_name=proc.name)

    if config.enable_speculation:
        spec = speculate_block(
            proc, block, liveness, demote=config.enable_demotion
        )
        report.promoted = spec.promoted
        report.demoted = spec.demoted

    graph = DependenceGraph(block, latencies, liveness=liveness)
    cprs = match_cpr_blocks(proc.name, block, graph, profile, config)
    report.cpr_blocks = cprs

    # A mid-hyperblock taken variation moves the tail (including any later
    # CPR blocks' operations) into its compensation block; subsequent CPR
    # blocks are transformed there.
    current_block = block
    for cpr in cprs:
        if cpr.is_trivial(config) or not cpr.compares:
            continue
        if cpr.branches and not any(
            op is cpr.branches[0] for op in current_block.ops
        ):
            continue  # displaced by an earlier failure; leave untouched
        context = restructure_cpr_block(proc, current_block, cpr)
        # Liveness changed (new blocks/ops); recompute for motion.
        motion_liveness = LivenessAnalysis(proc)
        motion = move_off_trace(context, motion_liveness)
        report.transformed += 1
        report.moved_ops += motion.moved
        report.split_ops += motion.split
        if cpr.taken_variation:
            report.taken_variations += 1
            current_block = context.comp_block
    return report


def apply_icbm(
    proc: Procedure,
    profile: Optional[ProfileData] = None,
    config: Optional[CPRConfig] = None,
    latencies: LatencyModel = PAPER_LATENCIES,
) -> ICBMReport:
    """Run ICBM over every candidate block of *proc*, then clean up."""
    config = config or DEFAULT_CONFIG
    report = ICBMReport()
    for block in list(proc.blocks):
        if len(block.exit_branches()) < 2:
            continue
        liveness = LivenessAnalysis(proc)
        report.blocks.append(
            apply_icbm_to_block(
                proc, block, profile, config, latencies, liveness
            )
        )
    report.dce_removed = eliminate_dead_code(proc)
    return report


def apply_icbm_isolated(
    proc: Procedure,
    profile: Optional[ProfileData] = None,
    config: Optional[CPRConfig] = None,
    latencies: LatencyModel = PAPER_LATENCIES,
    program: Optional[Program] = None,
) -> ICBMReport:
    """ICBM with per-hyperblock fault isolation.

    The last retry rung of the pass manager's degradation ladder: each
    candidate hyperblock is transformed inside its own procedure-level
    transaction, so a match/restructure failure rolls back (and skips) only
    that hyperblock while control CPR still lands on the others. Skipped
    hyperblocks are listed in the report's ``skipped_blocks``.
    """
    config = config or DEFAULT_CONFIG
    report = ICBMReport()
    labels = [
        block.label for block in proc.blocks
        if len(block.exit_branches()) >= 2
    ]
    for label in labels:
        if not proc.has_block(label):
            continue  # displaced by an earlier taken-variation transform
        snapshot = snapshot_procedure(proc)
        try:
            liveness = LivenessAnalysis(proc)
            block_report = apply_icbm_to_block(
                proc, proc.block(label), profile, config, latencies, liveness
            )
            verify_procedure(proc, program)
        except ReproError:
            restore_procedure(proc, snapshot)
            report.skipped_blocks.append(f"{proc.name}/{label.name}")
            continue
        report.blocks.append(block_report)
    report.dce_removed = eliminate_dead_code(proc)
    return report


def apply_icbm_to_program(
    program: Program,
    profile: Optional[ProfileData] = None,
    config: Optional[CPRConfig] = None,
    latencies: LatencyModel = PAPER_LATENCIES,
) -> ICBMReport:
    combined = ICBMReport()
    for proc in program.procedures.values():
        partial = apply_icbm(proc, profile, config, latencies)
        combined.blocks.extend(partial.blocks)
        combined.dce_removed += partial.dce_removed
    return combined
