"""Phase 2 of ICBM: match — CPR block identification (paper Section 5.2).

Match grows a list of CPR blocks covering all conditional exit branches of a
hyperblock, following the paper's Figure 5 pseudo-code. Growth of a CPR
block past a candidate branch is controlled by four tests:

* **suitability** (correctness) — the candidate's guarding cmpp must compute
  the branch predicate with an unconditional (UN) action, and the cmpp's
  own guard must be in the *suitable predicate set* SP seeded with the CPR
  block's root predicate and grown with each compare's UC fall-through
  predicate. This guarantees the schema's simplified off-trace FRP
  ``root AND (bc1 OR ... OR bcn)`` is true exactly when some branch takes.
* **separability** (correctness) — no dependence may run from a compare
  that ICBM will move off-trace into a lookahead compare that must stay
  on-trace. Implemented via the dependence graph: the candidate's guarding
  compare must not be a (transitive) dependence successor of any compare
  already in the CPR block, where chains passing merely through a
  fall-through-guard use on a later branch-controlling compare are exempt.
* **exit-weight** (profile heuristic) — cumulative exit frequency of the
  CPR block over its entry frequency must stay below a threshold.
* **predict-taken** (profile heuristic) — a likely-taken candidate is
  appended, flags the CPR block for the taken variation, and ends growth.

One guard beyond the paper (needed because our ICBM may be handed arbitrary
regions): growing past a branch requires every non-speculative operation
between it and the candidate to be guarded — an *unguarded* store between
branches cannot be left on-trace nor moved off, so the CPR block ends
there. FRP-converted input always satisfies this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.defuse import (
    DefUseChains,
    branch_complement_pred,
    branch_source_action,
    guarding_compare,
)
from repro.analysis.dependence import DependenceGraph
from repro.core.config import CPRConfig
from repro.ir.block import Block
from repro.ir.opcodes import Opcode
from repro.ir.operands import PredReg, TRUE_PRED
from repro.ir.operation import Operation
from repro.ir.semantics import Action
from repro.obs import ledger_record
from repro.sim.profiler import ProfileData


@dataclass
class CPRBlock:
    """One identified CPR block: a run of consecutive exit branches."""

    branches: List[Operation] = field(default_factory=list)
    compares: List[Operation] = field(default_factory=list)
    root_pred: PredReg = TRUE_PRED
    taken_variation: bool = False

    @property
    def size(self) -> int:
        return len(self.branches)

    def is_trivial(self, config: CPRConfig) -> bool:
        return self.size < config.min_branches

    def __repr__(self):
        kind = "taken" if self.taken_variation else "fall-through"
        return f"<CPRBlock {self.size} branches, {kind}>"


class _Matcher:
    """State for growing CPR blocks over one hyperblock."""

    def __init__(
        self,
        proc_name: str,
        block: Block,
        graph: DependenceGraph,
        profile: Optional[ProfileData],
        config: CPRConfig,
    ):
        self.proc_name = proc_name
        self.block = block
        self.graph = graph
        self.profile = profile
        self.config = config
        self.chains = DefUseChains.build(block)
        self.position = {op.uid: i for i, op in enumerate(block.ops)}
        self.branches = block.exit_branches()
        self.compare_of: Dict[int, Optional[Operation]] = {
            b.uid: guarding_compare(block, self.chains, b)
            for b in self.branches
        }
        self.branch_of_compare: Dict[int, Operation] = {}
        for branch in self.branches:
            compare = self.compare_of[branch.uid]
            if compare is not None:
                self.branch_of_compare.setdefault(compare.uid, branch)
        # Suitability/separability state (re-seeded per CPR block).
        self.sp: Set[PredReg] = set()
        self.succ: Set[int] = set()
        self.entry_weight = 0
        self.exit_weight = 0

    # ------------------------------------------------------------------
    # Per-branch profile helpers
    # ------------------------------------------------------------------
    def _branch_stats(self, branch: Operation):
        if self.profile is None:
            return 0, 0
        stats = self.profile.branch_profile(self.proc_name, branch)
        return stats.taken, stats.executed

    # ------------------------------------------------------------------
    # Test initialization (CPR block of length one)
    # ------------------------------------------------------------------
    def seed(self, branch: Operation) -> Optional[CPRBlock]:
        compare = self.compare_of[branch.uid]
        if compare is None:
            return None
        if branch_source_action(compare, branch) is None:
            return None
        cpr = CPRBlock(
            branches=[branch],
            compares=[compare],
            root_pred=compare.guard,
        )
        self.sp = {compare.guard}
        fall = branch_complement_pred(compare, branch)
        if fall is not None:
            self.sp.add(fall)
        self.succ = set(self._compare_successors(compare))
        taken, executed = self._branch_stats(branch)
        self.entry_weight = executed
        self.exit_weight = taken
        return cpr

    # ------------------------------------------------------------------
    # Growth tests
    # ------------------------------------------------------------------
    def suitability_ok(self, candidate: Operation) -> bool:
        compare = self.compare_of[candidate.uid]
        if compare is None:
            return False
        if branch_source_action(compare, candidate) is None:
            return False
        return compare.guard in self.sp

    def separability_ok(self, candidate: Operation) -> bool:
        compare = self.compare_of[candidate.uid]
        if compare is None:
            return False
        return self.position[compare.uid] not in self.succ

    def guarded_region_ok(
        self, last_branch: Operation, candidate: Operation
    ) -> bool:
        """No unguarded non-speculative op between the branches."""
        start = self.position[last_branch.uid] + 1
        end = self.position[candidate.uid]
        for index in range(start, end):
            op = self.block.ops[index]
            if op.opcode in (Opcode.STORE, Opcode.CALL) and (
                op.guard == TRUE_PRED
            ):
                return False
            if op.opcode in (Opcode.JUMP, Opcode.RETURN):
                return False
        return True

    def predict_taken(self, candidate: Operation) -> bool:
        taken, executed = self._branch_stats(candidate)
        if executed < self.config.min_profile_weight:
            return False
        return taken / executed >= self.config.predict_taken_threshold

    def exit_weight_ok(self, candidate: Operation) -> bool:
        taken, executed = self._branch_stats(candidate)
        if self.entry_weight < self.config.min_profile_weight:
            # No meaningful profile: be conservative, stop growth.
            return False
        ratio = (self.exit_weight + taken) / self.entry_weight
        return ratio <= self.config.exit_weight_threshold

    # ------------------------------------------------------------------
    def append(self, cpr: CPRBlock, candidate: Operation):
        compare = self.compare_of[candidate.uid]
        cpr.branches.append(candidate)
        cpr.compares.append(compare)
        fall = branch_complement_pred(compare, candidate)
        if fall is not None:
            self.sp.add(fall)
        self.succ |= self._compare_successors(compare)
        taken, _ = self._branch_stats(candidate)
        self.exit_weight += taken

    def _compare_successors(self, compare: Operation) -> Set[int]:
        """append-successors: transitive dependence successors of *compare*,
        exempting chains that exist only through the use of its fall-through
        predicate as the guard of a later branch-controlling compare."""
        index = self.position[compare.uid]
        branch_compare_uids = {
            c.uid for c in self.compare_of.values() if c is not None
        }

        def skip(edge):
            src_op = self.block.ops[edge.src]
            dst_op = self.block.ops[edge.dst]
            if edge.kind != "flow":
                return False
            if src_op.opcode is not Opcode.CMPP:
                return False
            if dst_op.opcode is not Opcode.CMPP:
                return False
            if dst_op.uid not in branch_compare_uids:
                return False
            src_branch = self.branch_of_compare.get(src_op.uid)
            if src_branch is None:
                return False
            fall = branch_complement_pred(src_op, src_branch)
            return fall is not None and dst_op.guard == fall

        return self.graph.transitive_successors(index, skip_edge=skip)


def match_cpr_blocks(
    proc_name: str,
    block: Block,
    graph: DependenceGraph,
    profile: Optional[ProfileData],
    config: CPRConfig,
) -> List[CPRBlock]:
    """Partition the hyperblock's exit branches into CPR blocks
    (the paper's Figure 5 algorithm)."""
    matcher = _Matcher(proc_name, block, graph, profile, config)
    branches = matcher.branches
    label = block.label.name
    result: List[CPRBlock] = []
    index = 0
    total = len(branches)
    while index < total:
        seed_branch = branches[index]
        seed_index = index
        cpr = matcher.seed(seed_branch)
        if cpr is None:
            # Unsuitable seed: it forms an untransformable unit block.
            ledger_record(
                "match-seed",
                proc_name,
                label,
                exit_index=index,
                reason="no-suitable-compare",
            )
            result.append(
                CPRBlock(branches=[seed_branch], compares=[])
            )
            index += 1
            continue
        pred_taken_flag = (
            config.enable_taken_variation
            and matcher.predict_taken(seed_branch)
        )
        if pred_taken_flag:
            cpr.taken_variation = True
        index += 1
        while not pred_taken_flag and index < total:
            candidate = branches[index]
            stop_test = None
            if (
                config.max_branches is not None
                and cpr.size >= config.max_branches
            ):
                stop_test = "max-branches"
            elif not matcher.suitability_ok(candidate):
                stop_test = "suitability"
            elif not matcher.separability_ok(candidate):
                stop_test = "separability"
            elif not matcher.guarded_region_ok(cpr.branches[-1], candidate):
                stop_test = "guarded-region"
            elif matcher.predict_taken(candidate):
                # Predict-taken takes priority over exit-weight: the likely
                # exit joins the CPR block as its final branch and selects
                # the taken restructure variation.
                if config.enable_taken_variation:
                    matcher.append(cpr, candidate)
                    cpr.taken_variation = True
                    index += 1
                    break
                stop_test = "predict-taken"
            elif not matcher.exit_weight_ok(candidate):
                stop_test = "exit-weight"
            if stop_test is not None:
                ledger_record(
                    "match-reject",
                    proc_name,
                    label,
                    exit_index=index,
                    test=stop_test,
                    cpr_size=cpr.size,
                )
                break
            matcher.append(cpr, candidate)
            index += 1
        # A CPR block of n branches replaces them with one bypass branch
        # on-trace: the estimated branch-height saving is n - 1.
        ledger_record(
            "match-accept",
            proc_name,
            label,
            first_exit_index=seed_index,
            size=cpr.size,
            taken_variation=cpr.taken_variation,
            trivial=cpr.is_trivial(config),
            est_height_saved=max(0, cpr.size - 1),
        )
        result.append(cpr)
    return result
