"""Phase 1 of ICBM: predicate speculation (paper Section 5.1).

Two bottom-up concerns realized as two passes over each hyperblock:

* **Promotion** — each guarded operation's predicate is promoted to TRUE
  when the [JS96]-style liveness check passes: the value the operation
  overwrites is never needed under conditions where the operation would not
  originally have executed. Promotion both shortens dependence chains and —
  critically for ICBM — removes the dependences that would make the
  separability test fail at nearly every basic block of FRP-converted code
  (the block predicate guards the operations computing the next block's
  predicate).

  Candidates exclude compare-to-predicate operations (the paper's explicit
  exception) and non-speculative operations (stores, branches, calls):
  promoting a store is exactly the case the paper's second pass always
  demotes back, so we skip the round trip.

* **Demotion** — promotion that cannot reduce dependence height is undone.
  Our test mirrors the paper's example: when the operation's original guard
  is available no later than its last data input (so re-guarding adds no
  height), the original guard is restored, recovering nullification's
  second-order benefits (fewer executed ops, cleaner predicate usage)
  for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.defuse import DefUseChains
from repro.analysis.liveness import (
    LivenessAnalysis,
    liveness_expressions,
    promotion_is_legal,
)
from repro.analysis.predtrack import PredicateTracker
from repro.ir.block import Block
from repro.ir.opcodes import Opcode
from repro.ir.operands import TRUE_PRED
from repro.ir.procedure import Procedure
from repro.obs import ledger_record

_NEVER_PROMOTE = frozenset(
    {
        Opcode.CMPP,
        Opcode.PRED_CLEAR,
        Opcode.PRED_SET,
        Opcode.STORE,
        Opcode.BRANCH,
        Opcode.JUMP,
        Opcode.CALL,
        Opcode.RETURN,
    }
)


@dataclass
class SpeculationReport:
    promoted: int = 0
    demoted: int = 0
    original_guards: Dict[int, object] = field(default_factory=dict)


def speculate_block(
    proc: Procedure,
    block: Block,
    liveness: LivenessAnalysis,
    demote: bool = True,
) -> SpeculationReport:
    """Run promotion (and optionally demotion) on one block, in place.

    Demotion recovers nullification for promotions that bought no height,
    but re-guarding address arithmetic hides it from memory disambiguation
    and forces extra split copies during off-trace motion, so the ICBM
    driver disables it by default (see ``CPRConfig.enable_demotion``).
    """
    report = SpeculationReport()
    tracker = PredicateTracker(block)
    needed_after = liveness_expressions(block, tracker, liveness)

    # ------------------------------------------------------------------
    # Pass 1: promotion.
    # ------------------------------------------------------------------
    promoted_ops: List = []
    for index, op in enumerate(block.ops):
        if op.opcode in _NEVER_PROMOTE:
            continue
        if op.guard == TRUE_PRED:
            continue
        if not promotion_is_legal(op, needed_after[index], tracker):
            continue
        ledger_record(
            "speculate-promote",
            proc.name,
            block.label.name,
            op_index=index,
            opcode=op.opcode.name,
            guard=str(op.guard),
            justification="dest-dead-when-guard-false",
        )
        report.original_guards[op.uid] = op.guard
        op.guard = TRUE_PRED
        report.promoted += 1
        promoted_ops.append(op)

    if not demote:
        return report

    # ------------------------------------------------------------------
    # Pass 2: selective demotion.
    #
    # A promotion is kept when it can shorten the region's critical
    # compare chains — i.e. when the operation (transitively) feeds some
    # cmpp. Otherwise, if re-guarding adds no height (the guard's producer
    # is available no later than the operation's last data input), the
    # original guard is restored.
    # ------------------------------------------------------------------
    chains = DefUseChains.build(block)
    position = {op.uid: i for i, op in enumerate(block.ops)}
    feeds_compare = _compare_feeders(block, chains, position)
    for op in promoted_ops:
        if op.uid in feeds_compare:
            continue  # promotion breaks a compare chain: keep it
        original = report.original_guards[op.uid]
        index = position[op.uid]
        guard_def = chains.reaching_def(index, original)
        if guard_def is None:
            guard_position = -1  # guard available at block entry
        else:
            guard_position = position.get(guard_def.uid, -1)
        input_positions = [
            position[d.uid]
            for d in (
                chains.reaching_def(index, reg)
                for reg in op.source_registers()
                if reg != original
            )
            if d is not None and d.uid in position
        ]
        latest_input = max(input_positions, default=-1)
        if guard_position <= latest_input:
            # Restoring the guard costs no height: demote.
            ledger_record(
                "speculate-demote",
                proc.name,
                block.label.name,
                op_index=index,
                opcode=op.opcode.name,
                guard=str(original),
                justification="guard-ready-by-last-input",
            )
            op.guard = original
            del report.original_guards[op.uid]
            report.promoted -= 1
            report.demoted += 1
    return report


def _compare_feeders(block, chains: DefUseChains, position) -> set:
    """Uids of ops on some data-dependence chain into a cmpp's sources."""
    feeders = set()
    worklist = []
    for op in block.ops:
        if op.opcode is Opcode.CMPP:
            index = position[op.uid]
            for src in op.srcs:
                producer = chains.reaching_def(index, src)
                if producer is not None:
                    worklist.append(producer)
    while worklist:
        producer = worklist.pop()
        if producer.uid in feeders:
            continue
        feeders.add(producer.uid)
        index = position.get(producer.uid)
        if index is None:
            continue
        for reg in producer.source_registers():
            upstream = chains.reaching_def(index, reg)
            if upstream is not None and upstream.uid not in feeders:
                worklist.append(upstream)
    return feeders


def speculate_procedure(proc: Procedure) -> List[SpeculationReport]:
    liveness = LivenessAnalysis(proc)
    return [
        speculate_block(proc, block, liveness)
        for block in proc.blocks
        if block.exit_branches()
    ]
