"""Full (redundant) control CPR — the [SK95] scheme ICBM is contrasted
against.

Where ICBM accelerates only the predicted path (moving the original
branches off-trace and paying a compensation block), *full CPR* computes
every branch's fully-resolved taken predicate independently from the
region entry::

    q_i  =  not c_1  AND  ...  AND  not c_{i-1}  AND  c_i

using a private wired-and accumulation per branch. Every branch then
depends only on its own height-reduced compare tree: all paths are
accelerated, no profile is needed, and no code moves — at the cost of a
quadratic number of static compare operations (the paper's Section 4:
"aggressively accelerates all paths within a region at the cost of a
quadratic growth in the number of compares").

Implemented for FRP-converted (or plain suitable) superblocks so the two
schemes can be compared head-to-head; see
``benchmarks/bench_icbm_vs_fullcpr.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.defuse import (
    DefUseChains,
    branch_complement_pred,
    branch_source_action,
    branch_taken_cond,
    guarding_compare,
)
from repro.ir.block import Block
from repro.ir.opcodes import Opcode
from repro.ir.operands import Imm, TRUE_PRED
from repro.ir.operation import Operation, PredTarget
from repro.ir.procedure import Procedure
from repro.ir.semantics import Action
from repro.opt.dce import eliminate_dead_code


@dataclass
class FullCPRReport:
    chains: int = 0
    rewired_branches: int = 0
    added_compares: int = 0
    dce_removed: int = 0


def _chain_is_computable(block, chains, compare) -> bool:
    """Every source of *compare* must come from an unguarded producer (or
    a block input): the lookaheads execute unconditionally and must read
    architecturally valid values."""
    index = block.index_of(compare)
    for reg in compare.srcs:
        if not hasattr(reg, "index"):
            continue
        for producer in chains.may_defs(index, reg):
            if producer.guard != TRUE_PRED:
                return False
    return True


def _suitable_chains(block: Block) -> List[List[Operation]]:
    """Maximal runs of consecutive branches satisfying the suitability
    induction (root predicate + fall-through chain), as in ICBM's match."""
    chains = DefUseChains.build(block)
    branches = block.exit_branches()
    runs: List[List[Operation]] = []
    index = 0
    while index < len(branches):
        seed = branches[index]
        compare = guarding_compare(block, chains, seed)
        if (
            compare is None
            or compare.guard != TRUE_PRED
            or branch_source_action(compare, seed) is None
            or not _chain_is_computable(block, chains, compare)
        ):
            index += 1
            continue
        run = [(seed, compare)]
        suitable = {TRUE_PRED, branch_complement_pred(compare, seed)}
        index += 1
        while index < len(branches):
            candidate = branches[index]
            cand_compare = guarding_compare(block, chains, candidate)
            if (
                cand_compare is None
                or branch_source_action(cand_compare, candidate) is None
                or cand_compare.guard not in suitable
                or not _chain_is_computable(block, chains, cand_compare)
            ):
                break
            run.append((candidate, cand_compare))
            suitable.add(
                branch_complement_pred(cand_compare, candidate)
            )
            index += 1
        if len(run) >= 2:
            runs.append(run)
    return runs


def full_cpr_block(proc: Procedure, block: Block) -> FullCPRReport:
    """Apply full CPR to every suitable chain of *block*, in place."""
    report = FullCPRReport()
    for run in _suitable_chains(block):
        report.chains += 1
        branches = [branch for branch, _ in run]
        compares = [compare for _, compare in run]
        taken_conds = [
            branch_taken_cond(compare, branch)
            for branch, compare in run
        ]
        # One private wired-and accumulation per branch.
        new_preds = [proc.new_pred() for _ in run]
        first_compare = compares[0]
        for q in new_preds:
            init = Operation(Opcode.PRED_SET, dests=[q], srcs=[Imm(1)])
            init.attrs["full_cpr"] = True
            block.insert_before(first_compare, init)
        for j, compare in enumerate(compares):
            # Branch j's own term uses the taken condition directly (an
            # AC of the *negated* condition); branches after j accumulate
            # the fall-through term (AC of the condition itself).
            own = Operation(
                Opcode.CMPP,
                dests=[PredTarget(new_preds[j], Action.AC)],
                srcs=list(compare.srcs),
                cond=taken_conds[j].negate(),
            )
            own.attrs["full_cpr"] = True
            block.insert_after(compare, own)
            report.added_compares += 1
            for i in range(j + 1, len(run)):
                term = Operation(
                    Opcode.CMPP,
                    dests=[PredTarget(new_preds[i], Action.AC)],
                    srcs=list(compare.srcs),
                    cond=taken_conds[j],
                )
                term.attrs["full_cpr"] = True
                block.insert_after(compare, term)
                report.added_compares += 1
        for branch, q in zip(branches, new_preds):
            branch.srcs[0] = q
            report.rewired_branches += 1
    return report


def apply_full_cpr(
    proc: Procedure, min_branches: int = 2
) -> FullCPRReport:
    """Full CPR over every multi-branch block of *proc*, plus DCE."""
    combined = FullCPRReport()
    for block in list(proc.blocks):
        if len(block.exit_branches()) < min_branches:
            continue
        partial = full_cpr_block(proc, block)
        combined.chains += partial.chains
        combined.rewired_branches += partial.rewired_branches
        combined.added_compares += partial.added_compares
    combined.dce_removed = eliminate_dead_code(proc)
    return combined
