"""Tunable parameters of the ICBM transformation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class CPRConfig:
    """Heuristic thresholds and feature switches for control CPR.

    * ``exit_weight_threshold`` — a candidate branch is rejected when the
      CPR block's cumulative exit frequency divided by its entry frequency
      would exceed this (paper Section 5.2, exit-weight test).
    * ``predict_taken_threshold`` — a candidate whose taken ratio meets
      this is a likely exit; it terminates the CPR block and selects the
      taken variation (predict-taken test).
    * ``min_branches`` — CPR blocks shorter than this are left untouched
      ("the middle (unit length) CPR block remains unchanged", Figure 3).
    * ``max_branches`` — optional cap on CPR block length (None = unlimited),
      exposed for the blocking ablation.
    * ``enable_taken_variation`` — when False, likely-taken branches simply
      terminate CPR blocks without the taken restructure schema.
    * ``enable_speculation`` — run the predicate speculation phase.
    * ``min_profile_weight`` — branches executed fewer times than this in
      the profile are treated as unpredictable (their blocks still form,
      but growth uses the conservative exit-weight path).
    """

    exit_weight_threshold: float = 0.35
    predict_taken_threshold: float = 0.75
    min_branches: int = 2
    max_branches: Optional[int] = None
    enable_taken_variation: bool = True
    enable_speculation: bool = True
    enable_demotion: bool = False
    min_profile_weight: int = 1

    def __post_init__(self):
        if not 0.0 < self.exit_weight_threshold <= 1.0:
            raise ValueError("exit_weight_threshold must be in (0, 1]")
        if not 0.0 < self.predict_taken_threshold <= 1.0:
            raise ValueError("predict_taken_threshold must be in (0, 1]")
        if self.min_branches < 1:
            raise ValueError("min_branches must be >= 1")
        if self.max_branches is not None and self.max_branches < 1:
            raise ValueError("max_branches must be >= 1 or None")


#: Defaults tuned (like the paper's) for the medium processor.
DEFAULT_CONFIG = CPRConfig()
