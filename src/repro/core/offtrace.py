"""Phase 4 of ICBM: off-trace motion (paper Section 5.4).

After restructure, the original compares and branches of a CPR block are
redundant on-trace. Three op sets are identified over the hyperblock and
then moved/split:

* **set 1** — the original compares, the branches displaced by the bypass,
  and all their transitive data-dependence successors (operations guarded
  by or reading the predicates they compute, and everything downstream). In
  the taken variation, the hyperblock tail past the bypass also belongs to
  the off-trace path wholesale.
* **set 2** — the subset of set 1 whose results are also needed on-trace:
  stores whose guard lies on the fall-through chain (they would have
  executed when every exit falls through), and value-producing operations
  feeding on-trace ops or live out of the block. These are *split*: a clone
  guarded by the on-trace FRP stays on-trace (after the bypass in the
  fall-through variation, before it in the taken variation — the bypass
  transfers control away on-trace there).
* **set 3** — operations outside set 1 whose results are used *only* by
  moved operations (classically the pbr feeding a moved branch); moving
  them benefits the on-trace path.

Set 1 and set 3 ops are moved to the compensation block in original program
order, preserving sequential semantics on the off-trace path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.analysis.defuse import DefUseChains
from repro.analysis.liveness import LivenessAnalysis
from repro.analysis.memaddr import AddressResolver, may_alias_forms
from repro.core.restructure import RestructureContext
from repro.ir.opcodes import Opcode
from repro.ir.operands import TRUE_PRED
from repro.ir.operation import Operation


@dataclass
class MotionReport:
    moved: int = 0
    split: int = 0


def move_off_trace(
    context: RestructureContext,
    liveness: LivenessAnalysis,
) -> MotionReport:
    """Perform off-trace motion for one restructured CPR block."""
    block = context.block
    cpr = context.cpr
    report = MotionReport()
    chains = DefUseChains.build(block)
    position = {op.uid: i for i, op in enumerate(block.ops)}
    live_out = liveness.live_out(block.label)

    # ------------------------------------------------------------------
    # Set 1: seeds plus transitive data-dependence successors.
    #
    # Users positioned past the bypass stay on-trace (the values they read
    # from moved producers are re-supplied by set-2 split clones) unless
    # their guard is one of the CPR block's taken predicates — those are
    # dynamically dead past the bypass and ride along off-trace.
    # ------------------------------------------------------------------
    taken_preds = {branch.srcs[0] for branch in cpr.branches}
    bypass_position = position[context.bypass.uid]
    seeds: List[Operation] = list(cpr.compares) + list(
        context.moved_branches
    )
    set1: Set[int] = set()

    def grow(worklist: List[Operation]) -> None:
        while worklist:
            op = worklist.pop()
            if op.uid in set1:
                continue
            set1.add(op.uid)
            for user in chains.users_of(op):
                if user.uid in context.inserted_uids:
                    continue  # lookaheads/bypass/init must remain on-trace
                if user is context.bypass:
                    continue
                if (
                    not cpr.taken_variation
                    and position[user.uid] > bypass_position
                    and user.guard not in taken_preds
                ):
                    continue
                if user.uid not in set1:
                    worklist.append(user)

    grow(list(seeds))

    if cpr.taken_variation:
        for op in block.ops[bypass_position + 1:]:
            set1.add(op.uid)

    # ------------------------------------------------------------------
    # Memory dependences. A moved store/call re-enters the on-trace
    # stream as a split clone below the bypass, which slides it past
    # every stationary operation between its original position and the
    # bypass. A promoted load left stationary in that span would then
    # read memory the store has not written yet. Widen set 1 with each
    # stationary memory operation that may conflict (same alias test as
    # the dependence graph: calls are barriers, regions disambiguate,
    # then linear address forms) with an earlier moved memory op, plus
    # its users under the same closure rules — clones keep program
    # order among themselves, so riding along restores the original
    # load/store order on both paths. Fixpoint: a pulled store puts the
    # hazard in front of the accesses behind it.
    # ------------------------------------------------------------------
    memory_ops = (Opcode.LOAD, Opcode.STORE, Opcode.CALL)
    resolver = AddressResolver(block)
    forms: Dict[int, object] = {}

    def address_form(index: int):
        if index not in forms:
            forms[index] = resolver.form_for(index, block.ops[index].srcs[0])
        return forms[index]

    def memory_conflict(index_a: int, index_b: int) -> bool:
        op_a, op_b = block.ops[index_a], block.ops[index_b]
        if Opcode.CALL in (op_a.opcode, op_b.opcode):
            return True
        if op_a.opcode is Opcode.LOAD and op_b.opcode is Opcode.LOAD:
            return False
        region_a = op_a.attrs.get("region")
        region_b = op_b.attrs.get("region")
        if (
            region_a is not None
            and region_b is not None
            and region_a != region_b
        ):
            return False
        return may_alias_forms(address_form(index_a), address_form(index_b))

    widened = True
    while widened:
        widened = False
        moved_memory = sorted(
            position[uid]
            for uid in set1
            if block.ops[position[uid]].opcode in memory_ops
        )
        if not moved_memory:
            break
        for op in block.ops:
            if op.uid in set1 or op.uid in context.inserted_uids:
                continue
            if op.opcode not in memory_ops:
                continue
            pos = position[op.uid]
            if not cpr.taken_variation and pos > bypass_position:
                continue  # clones land above it: order already preserved
            if any(
                moved < pos and memory_conflict(moved, pos)
                for moved in moved_memory
            ):
                grow([op])
                widened = True

    # ------------------------------------------------------------------
    # Set 2: the subset of set 1 needed on-trace (fixpoint: a moved
    # producer feeding a split clone is itself needed on-trace).
    # ------------------------------------------------------------------
    ops_by_uid: Dict[int, Operation] = {op.uid: op for op in block.ops}
    on_trace_guards = context.sp_preds | {TRUE_PRED}
    set2: Set[int] = set()
    changed = True
    while changed:
        changed = False
        for uid in set1:
            if uid in set2:
                continue
            op = ops_by_uid[uid]
            if op.is_branch and op.opcode is not Opcode.CALL:
                continue  # control transfers cannot be cloned on-trace
            if op.guard not in on_trace_guards:
                continue  # guarded by a taken predicate: off-trace only
            if cpr.taken_variation and position[uid] > bypass_position:
                # The tail past a taken-variation bypass is off-trace only.
                continue
            if op.opcode in (Opcode.STORE, Opcode.CALL):
                # Side-effecting ops on the fall-through chain would have
                # executed on-trace; exactly one of {split clone, moved
                # original} executes dynamically, so both must exist.
                needed = True
            else:
                needed = _value_needed_on_trace(
                    op, chains, set1, set2, live_out
                )
            if needed:
                set2.add(uid)
                changed = True

    # ------------------------------------------------------------------
    # Set 3: ops used only off-trace (e.g. the pbr of a moved branch).
    # ------------------------------------------------------------------
    set3: Set[int] = set()
    for op in block.ops:
        if op.uid in set1 or op.uid in context.inserted_uids:
            continue
        if not op.opcode.is_speculable() or op.is_branch:
            continue
        dests = op.dest_registers()
        if not dests or any(reg in live_out for reg in dests):
            continue
        users = chains.users_of(op)
        if not users:
            continue
        if all(user.uid in set1 and user.uid not in set2 for user in users):
            set3.add(op.uid)

    # ------------------------------------------------------------------
    # Motion and splitting.
    # ------------------------------------------------------------------
    move_set = set1 | set3
    clones: List[Operation] = []
    survivors: List[Operation] = []
    moved_ops: List[Operation] = []
    for op in block.ops:
        if op.uid in move_set:
            moved_ops.append(op)
            if op.uid in set2:
                clone = op.clone()
                clone.guard = context.on_pred
                clone.attrs["cpr_split"] = True
                clones.append(clone)
                report.split += 1
            report.moved += 1
        else:
            survivors.append(op)
    block.ops = survivors
    context.comp_block.ops = moved_ops + context.comp_block.ops

    if clones:
        new_bypass_position = block.index_of(context.bypass)
        if cpr.taken_variation:
            insert_at = new_bypass_position  # before the branch-away
        else:
            insert_at = new_bypass_position + 1
        block.ops[insert_at:insert_at] = clones
    return report


def _value_needed_on_trace(
    op: Operation,
    chains: DefUseChains,
    set1: Set[int],
    set2: Set[int],
    live_out: Set,
) -> bool:
    dests = op.dest_registers()
    if any(reg in live_out for reg in dests):
        return True
    for user in chains.users_of(op):
        if user.uid not in set1:
            return True  # read by an op that stays on-trace
        if user.uid in set2 and any(reg in user.srcs for reg in dests):
            # Read as a *data* source by a split clone. (A use as the
            # clone's guard does not count: clones are re-guarded by the
            # on-trace FRP.)
            return True
    return False
