"""Stable content hashes for cache keys.

Every cache key the farm uses is composed here, from four ingredients:

1. **IR content** — :func:`procedure_signature` / :func:`program_signature`
   walk blocks and operations and serialize everything that affects a
   pass's output: labels, fall-through edges, the formatted operation
   text, and the operation attrs (``region``, ``callee``, ``target``, ...)
   that the textual form omits. Operation uids are deliberately *excluded*:
   they are process-local and two structurally identical procedures must
   hash equal across processes.
2. **Pass configuration** — :func:`options_fingerprint` covers every
   :class:`~repro.pipeline.PipelineOptions` knob that steers a pass
   (superblock heuristics, CPR thresholds, transaction policy, fuel).
   The configs are plain dataclasses, so their reprs are stable.
3. **Machine description** — processor and latency model reprs, included
   wherever schedules or cycle estimates are cached.
4. **Profile provenance** — the workload inputs key: profiles are a pure
   function of (program, inputs), so hashing the deterministic input
   recipe (workload name, scale, source, entry) pins them without
   hashing the input closures themselves.

Key composition (documented contract, see also DESIGN.md):

* transaction key = ``H(version, context, pass, proc name, proc
  signature, policy)`` where ``context = H(original program signature,
  inputs key, options fingerprint)``;
* evaluation key = ``H(version, workload name, scale, source, entry,
  options fingerprint, processor fingerprints, estimate mode)``.

Invalidation is versioned: bump
:data:`repro.farm.cache.CACHE_FORMAT_VERSION` whenever pass semantics or
the stored payloads change; old entries are simply never looked at again.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Optional

from repro.ir.procedure import Procedure, Program


def stable_hash(*parts) -> str:
    """SHA-256 over the string forms of *parts*, NUL-separated."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(str(part).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def operation_signature(op) -> str:
    """One operation's content: formatted text plus sorted attrs.

    The textual form (:meth:`Operation.format`) omits analysis attrs like
    ``region``; they change dependence results, so they are part of the
    content. Uids are excluded on purpose.
    """
    attrs = ",".join(
        f"{key}={op.attrs[key]}" for key in sorted(op.attrs)
    )
    return f"{op.format()}|{attrs}"


def procedure_signature(proc: Procedure) -> str:
    """Deterministic, uid-free serialization of one procedure."""
    lines = [
        f"proc {proc.name}({', '.join(str(p) for p in proc.params)})"
    ]
    for block in proc.blocks:
        lines.append(f"{block.label.name}: ft={block.fallthrough}")
        lines.extend(operation_signature(op) for op in block.ops)
    return "\n".join(lines)


def program_signature(program: Program) -> str:
    """Deterministic serialization of a whole program (segments + procs)."""
    parts = []
    for segment in program.segments.values():
        parts.append(
            f"data {segment.name}[{segment.size}]={segment.initial}"
        )
    parts.extend(
        procedure_signature(proc) for proc in program.procedures.values()
    )
    return "\n\n".join(parts)


def options_fingerprint(options) -> str:
    """Every :class:`PipelineOptions` knob that steers pass output.

    ``fault_plan`` is excluded because cached transactions are never taken
    from (or stored by) fault-injected builds; ``resilient`` is excluded
    because it changes failure *handling*, not the committed IR of a
    successful transaction. ``sanitize`` is included: a sanitized build
    can roll transactions back (different committed IR), so its entries
    must not alias unsanitized ones. ``repro_dir`` only steers artifact
    output and is excluded.
    """
    return "|".join(
        [
            repr(options.superblock),
            repr(options.cpr),
            repr(options.if_convert),
            repr(options.if_convert_config),
            repr(getattr(options, "meld_config", None)),
            repr(options.verify_equivalence),
            repr(options.fuel),
            repr(options.transaction),
            repr(getattr(options, "sanitize", None)),
        ]
    )


def workload_inputs_key(
    name: str, scale: int, source: str, entry: str
) -> str:
    """Pin a workload's deterministic input recipe.

    Inputs are closures, so they cannot be hashed directly; but every
    registered workload derives its input data deterministically from
    (name, scale, source) via the fixed-seed :class:`Lcg`, so this tuple
    identifies the profile the pipeline will observe.
    """
    return stable_hash("inputs", name, scale, source, entry)


def transaction_context(
    program: Program, options, inputs_key: str
) -> str:
    """The per-build salt shared by all of one build's transaction keys."""
    return stable_hash(
        "context",
        program_signature(program),
        options_fingerprint(options),
        inputs_key,
    )


def transaction_key(
    version: int,
    context: str,
    pass_name: str,
    proc: Procedure,
    policy,
) -> str:
    """Content address of one per-procedure pass transaction."""
    return stable_hash(
        "txn",
        version,
        context,
        pass_name,
        proc.name,
        procedure_signature(proc),
        repr(policy),
    )


def evaluation_key(
    version: int,
    name: str,
    scale: int,
    source: str,
    entry: str,
    options_fp: str,
    processors: Iterable,
    estimate_mode: str,
    extra: Optional[str] = None,
) -> str:
    """Content address of one whole-workload evaluation."""
    return stable_hash(
        "eval",
        version,
        name,
        scale,
        source,
        entry,
        options_fp,
        ";".join(repr(p) for p in processors),
        estimate_mode,
        extra or "",
    )
