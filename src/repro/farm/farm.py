"""The parallel build farm: fan workload builds out, merge deterministically.

:func:`build_farm` is the one entry point. It takes workload names (in any
order), evaluates each one — in-process for ``jobs == 1``, across a
``concurrent.futures`` process pool otherwise — and returns a
:class:`FarmResult` whose summaries are ordered exactly as requested,
independent of worker completion order. Each worker:

1. checks the evaluation cache (warm fast path: one JSON read, no IR);
2. otherwise compiles and builds with the per-pass transaction cache and
   a local :class:`~repro.farm.metrics.CompileMetrics` recorder;
3. returns a JSON-safe summary (cycles, counts, IR digests, the full
   :class:`~repro.passes.incidents.BuildReport` as a dict) plus metrics.

Library errors raised inside a worker are shipped back by type name and
re-raised in the parent — with the worker's formatted traceback and the
failing workload attached (``exc.worker_traceback`` / ``exc.workload``) —
so CLI exit codes (2/3/4/5) are identical with and without ``--jobs``.

When supervision is armed (:attr:`FarmOptions.supervisor` or a chaos
schedule), :func:`build_farm` dispatches to
:mod:`repro.farm.supervisor` instead of the bare pool: same merged
results, plus heartbeats, deadlines, retry/backoff, quarantine, and the
write-ahead completion journal (:mod:`repro.farm.journal`).

Determinism contract: for fixed workloads and options, the summaries —
schedule-bearing IR digests, cycle counts, counts, incidents — are
bit-for-bit identical across ``jobs`` values and cache states (cold, pass
-cache warm, evaluation-cache warm). ``benchmarks/bench_farm_scaling.py``
and ``tests/farm/test_cache_correctness.py`` enforce this.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import errors
from repro.farm.cache import CACHE_FORMAT_VERSION, PassCache
from repro.farm.fingerprint import (
    evaluation_key,
    options_fingerprint,
    program_signature,
    stable_hash,
    workload_inputs_key,
)
from repro.farm.metrics import CompileMetrics
from repro.machine.processor import PAPER_PROCESSORS, processor_by_name
from repro.obs import (
    CounterSet,
    Tracer,
    activate_counters,
    activate_tracer,
    chrome_trace_document,
    trace_span,
)
from repro.farm.journal import QuarantineIncident
from repro.obs.ledger import DecisionLedger
from repro.passes.incidents import BuildReport
from repro.perf.report import measure_build
from repro.pipeline import PipelineOptions, build_workload
from repro.sched import use_engine
from repro.sim.interpreter import DEFAULT_FUEL
from repro.sim.interpreter import use_engine as use_interp_engine
from repro.workloads.registry import get_workload

#: Environment override consulted by :func:`resolve_jobs` when no job
#: count is given. Accepts the same values as ``--jobs``.
JOBS_ENV = "REPRO_JOBS"

#: Machine names evaluated by default (the paper's Table 2 set).
DEFAULT_PROCESSOR_NAMES = tuple(p.name for p in PAPER_PROCESSORS)

_COUNT_FIELDS = (
    "static_total", "static_branches", "dynamic_total", "dynamic_branches",
)


@dataclass
class FarmOptions:
    """Build-farm knobs, all picklable (they cross process boundaries)."""

    jobs: int = 1
    cache_root: Optional[str] = None  # None = caching disabled
    scale: int = 1
    strict: bool = False
    fuel: Optional[int] = None
    processors: Sequence[str] = DEFAULT_PROCESSOR_NAMES
    estimate_mode: str = "exit-aware"
    sanitize: Optional[str] = None  # None | "fast" | "full"
    repro_dir: Optional[str] = None
    #: Collect a per-workload span tree (shipped back as JSON; see
    #: :meth:`FarmResult.chrome_trace`). Counters are always collected —
    #: they cost one dict update per sample — tracing is opt-in because
    #: it timestamps every pass transaction.
    trace: bool = False
    #: Arm the supervision layer (:mod:`repro.farm.supervisor`): worker
    #: heartbeats, per-workload deadlines, retry with backoff, the
    #: crash-loop circuit breaker, and the write-ahead completion journal.
    #: ``None`` keeps the plain process-pool path.
    supervisor: Optional["SupervisorOptions"] = None
    #: Chaos schedule for the supervised path (duck-typed: anything with
    #: ``action_for(name, attempt)``; see :mod:`repro.robustness.chaos`).
    #: Setting this implies supervision.
    chaos: Optional[object] = None
    #: List-scheduler engine for every build this farm runs: ``"soa"``
    #: (the struct-of-arrays core, the default) or ``"object"`` (the
    #: reference engine). The engines are bit-identical, so the choice is
    #: excluded from cache keys; it only changes compile speed.
    sched_engine: str = "soa"
    #: Interpreter engine for every reference run, profile sweep, and
    #: differential check this farm performs: ``"soa"`` (the array core,
    #: the default) or ``"object"`` (the reference engine). Bit-identical
    #: profiles, so — like ``sched_engine`` — it is excluded from cache
    #: keys.
    interp_engine: str = "soa"
    #: Verify cache-entry payload digests on every read (see
    #: :class:`~repro.farm.cache.PassCache`). Entries are identical
    #: either way, so — like the engine knobs — this is excluded from
    #: cache keys and the journal run key; ``False`` exists for the
    #: storage benchmark's baseline only.
    cache_verify: bool = True

    def pipeline_options(self) -> PipelineOptions:
        return PipelineOptions(
            resilient=not self.strict,
            fuel=DEFAULT_FUEL if self.fuel is None else self.fuel,
            sanitize=self.sanitize,
            repro_dir=self.repro_dir,
        )


@dataclass
class WorkloadSummary:
    """One workload's measured results in JSON-safe form.

    Exposes the same query surface as
    :class:`~repro.perf.report.WorkloadResult` (``name``, ``category``,
    ``speedup``, ``count_ratios``), so the Table 2 / Table 3 renderers
    accept summaries unchanged.
    """

    name: str
    category: str
    cycles: Dict[str, Dict[str, float]] = field(default_factory=dict)
    counts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    ir_digests: Dict[str, str] = field(default_factory=dict)
    report: dict = field(default_factory=dict)
    icbm: dict = field(default_factory=dict)
    from_cache: bool = False
    wall_s: float = 0.0

    def speedup(self, processor_name: str) -> float:
        cell = self.cycles[processor_name]
        if cell["transformed"] == 0:
            return float("nan")
        return cell["baseline"] / cell["transformed"]

    def count_ratios(self) -> Tuple[float, float, float, float]:
        """(S tot, S br, D tot, D br) transformed/baseline ratios."""
        baseline = self.counts["baseline"]
        transformed = self.counts["transformed"]

        def ratio(key):
            if not baseline[key]:
                return float("nan")
            return transformed[key] / baseline[key]

        return tuple(ratio(key) for key in _COUNT_FIELDS)

    def build_report(self) -> BuildReport:
        return BuildReport.from_dict(self.report)

    def comparable(self) -> dict:
        """The determinism-relevant content: everything but timings."""
        return {
            "name": self.name,
            "category": self.category,
            "cycles": self.cycles,
            "counts": self.counts,
            "ir_digests": self.ir_digests,
            "report": self.report,
            "icbm": self.icbm,
        }

    @classmethod
    def from_dict(cls, data: dict, **extra) -> "WorkloadSummary":
        return cls(**data, **extra)


@dataclass
class FarmResult:
    """Everything one farm run produced, in deterministic order."""

    summaries: List[WorkloadSummary]
    metrics: CompileMetrics
    jobs: int = 1
    cache_enabled: bool = False
    cache_root: Optional[str] = None
    #: Per-workload serialized span trees, present when tracing was on.
    traces: Dict[str, dict] = field(default_factory=dict)
    #: Workloads the supervisor's crash-loop circuit breaker gave up on
    #: (request order). Always empty on the unsupervised path.
    quarantined: List[QuarantineIncident] = field(default_factory=list)
    #: Supervision event ledger (worker spawns/kills, retries,
    #: quarantines, journal replays); ``None`` when unsupervised.
    supervision: Optional[DecisionLedger] = None
    #: The write-ahead journal this run appended to, when enabled.
    journal_path: Optional[str] = None
    #: How many workload outcomes were replayed from the journal.
    resumed: int = 0

    def summary_for(self, name: str) -> WorkloadSummary:
        for summary in self.summaries:
            if summary.name == name:
                return summary
        raise KeyError(name)

    def chrome_trace(self) -> dict:
        """All workload traces as one Chrome ``trace_event`` document."""
        return chrome_trace_document(self.traces)

    def metrics_json(self) -> dict:
        return self.metrics.to_json_dict(
            jobs=self.jobs,
            cache_enabled=self.cache_enabled,
            cache_root=self.cache_root,
        )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _summarize(build, category: str, processor_names, estimate_mode) -> dict:
    processors = [processor_by_name(n) for n in processor_names]
    result = measure_build(
        build,
        category=category,
        processors=processors,
        estimate_mode=estimate_mode,
    )
    counts = {}
    for label, oc in (
        ("baseline", result.baseline_counts),
        ("transformed", result.transformed_counts),
    ):
        counts[label] = {key: getattr(oc, key) for key in _COUNT_FIELDS}
    return {
        "name": build.name,
        "category": category,
        "cycles": {
            name: {
                "baseline": result.baseline_cycles[name],
                "transformed": result.transformed_cycles[name],
            }
            for name in processor_names
        },
        "counts": counts,
        "ir_digests": {
            "baseline": stable_hash(program_signature(build.baseline)),
            "transformed": stable_hash(
                program_signature(build.transformed)
            ),
        },
        "report": build.build_report.to_dict(),
        "icbm": {
            "transformed_cpr_blocks":
                build.icbm_report.transformed_cpr_blocks,
            "total_cpr_blocks": build.icbm_report.total_cpr_blocks,
            "dce_removed": build.icbm_report.dce_removed,
            "skipped_blocks": list(build.icbm_report.skipped_blocks),
        },
    }


def _evaluate_task(task: dict) -> dict:
    """Evaluate one workload; runs in a worker process (or in-process).

    Must stay a module-level function: the process pool pickles it by
    reference. Returns ``{"summary", "metrics", "wall_s", "from_cache"}``
    or ``{"error": {"type", "message"}}`` for library failures.
    """
    started = time.perf_counter()
    task = dict(task)
    name = task.pop("_workload")
    options = FarmOptions(**task)
    metrics = CompileMetrics()
    cache = (
        PassCache(options.cache_root, verify=options.cache_verify)
        if options.cache_root else None
    )
    tracer = Tracer() if options.trace else None
    counters = CounterSet()
    try:
        with activate_counters(counters), activate_tracer(tracer), \
                use_engine(options.sched_engine), \
                use_interp_engine(options.interp_engine):
            outcome = _evaluate_workload(
                name, options, metrics, cache, started
            )
    except errors.ReproError as exc:
        return {
            "error": {
                "type": type(exc).__name__,
                "message": str(exc),
                "workload": name,
                "traceback": traceback.format_exc(),
            }
        }
    # Counters accumulated during the build are part of the metrics
    # payload (schema v2); fold them in after the recording window closes
    # so the serialized dict is complete.
    metrics.counters = metrics.counters.merge(counters)
    outcome["metrics"] = metrics.to_dict()
    if tracer is not None:
        outcome["trace"] = tracer.to_dict()
    return outcome


def workload_eval_key(workload, options: FarmOptions) -> str:
    """The evaluation-cache key for *workload* under *options*.

    Shared by the worker's warm fast path and the serve daemon's
    cache-only answers (:mod:`repro.serve.backend`), so both paths agree
    byte-for-byte on what counts as "the same evaluation".
    """
    return evaluation_key(
        CACHE_FORMAT_VERSION,
        workload.name,
        options.scale,
        workload.source,
        workload.entry,
        options_fingerprint(options.pipeline_options()),
        list(options.processors),
        options.estimate_mode,
    )


def _evaluate_workload(name, options, metrics, cache, started) -> dict:
    workload = get_workload(name, scale=options.scale)
    pipeline_options = options.pipeline_options()
    eval_key = workload_eval_key(workload, options)
    if cache is not None:
        summary = cache.get_evaluation(eval_key)
        if summary is not None:
            # The warm fast path builds nothing, so the trace shows one
            # flat workload span attributed to the evaluation cache.
            with trace_span(f"workload:{name}", kind="workload") as span:
                span.set_attr("cache", "eval-hit")
            wall = time.perf_counter() - started
            metrics.record_workload(
                workload.name,
                wall,
                from_cache=True,
                transactions=summary["report"].get("transactions", 0),
                incidents=len(summary["report"].get("incidents", [])),
            )
            metrics.record_cache_stats(cache.stats)
            return {
                "summary": summary,
                "metrics": metrics.to_dict(),
                "wall_s": wall,
                "from_cache": True,
            }
    program = workload.compile()
    inputs_key = workload_inputs_key(
        workload.name, options.scale, workload.source, workload.entry
    )
    build = build_workload(
        workload.name,
        program,
        workload.inputs,
        pipeline_options,
        entry=workload.entry,
        cache=cache,
        metrics=metrics,
        inputs_key=inputs_key,
    )
    summary = _summarize(
        build, workload.category, options.processors, options.estimate_mode
    )
    if cache is not None:
        cache.put_evaluation(eval_key, summary)
    wall = time.perf_counter() - started
    metrics.record_workload(
        workload.name,
        wall,
        from_cache=False,
        transactions=build.build_report.transactions,
        incidents=len(build.build_report.incidents),
    )
    if cache is not None:
        metrics.record_cache_stats(cache.stats)
    return {
        "summary": summary,
        "metrics": metrics.to_dict(),
        "wall_s": wall,
        "from_cache": False,
    }


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------
def resolve_jobs(jobs=None) -> int:
    """Resolve a worker count: 'auto' -> cpu count, ints validated.

    ``None`` falls back to ``$REPRO_JOBS`` (same grammar) and then to 1.
    Zero and negative counts are rejected with a
    :class:`~repro.errors.UsageError` — historically ``0`` silently meant
    "auto", which hid genuinely broken values coming from the environment.
    """
    import os

    source = "jobs"
    if jobs is None:
        env = os.environ.get(JOBS_ENV)
        if env is None or not env.strip():
            return 1
        source = JOBS_ENV
        jobs = env.strip()
    if jobs == "auto":
        return os.cpu_count() or 1
    try:
        count = int(jobs)
    except (TypeError, ValueError):
        raise errors.UsageError(
            f"{source} must be a positive integer or 'auto', got {jobs!r}"
        ) from None
    if count < 1:
        raise errors.UsageError(
            f"{source} must be a positive integer or 'auto', got {jobs!r}"
        )
    return count


def _task(name: str, options: FarmOptions) -> dict:
    task = {
        "jobs": 1,  # workers never nest pools
        "cache_root": options.cache_root,
        "scale": options.scale,
        "strict": options.strict,
        "fuel": options.fuel,
        "processors": list(options.processors),
        "estimate_mode": options.estimate_mode,
        "sanitize": options.sanitize,
        "repro_dir": options.repro_dir,
        "trace": options.trace,
        "sched_engine": options.sched_engine,
        "interp_engine": options.interp_engine,
        "cache_verify": options.cache_verify,
    }
    task["_workload"] = name
    return task


def _raise_worker_error(error: dict):
    """Re-raise a worker's shipped error dict in the calling process.

    The exception type and message cross by name; the worker's formatted
    traceback and the failing workload ride along as
    ``exc.worker_traceback`` / ``exc.workload`` so a cross-process failure
    is as debuggable as an in-process one (the CLI prints both with
    ``--strict``-style diagnostics; tests assert on them directly).
    """
    exc_class = getattr(errors, error["type"], errors.ReproError)
    if not (
        isinstance(exc_class, type)
        and issubclass(exc_class, errors.ReproError)
    ):
        exc_class = errors.ReproError
    if exc_class is errors.VerificationError:
        exc = exc_class([error["message"]])
    else:
        exc = exc_class(error["message"])
    exc.workload = error.get("workload")
    exc.worker_traceback = error.get("traceback")
    if hasattr(exc, "add_note"):  # notes are 3.11+; attrs carry regardless
        if exc.workload:
            exc.add_note(f"workload: {exc.workload}")
        if exc.worker_traceback:
            exc.add_note(
                "worker traceback:\n" + exc.worker_traceback.rstrip()
            )
    raise exc


def _merge_outcomes(raw: Sequence[dict]):
    """Fold ordered worker outcomes into (summaries, metrics, traces).

    Shared by the pool path and the supervisor: both must merge
    identically for the determinism contract to hold. Raises the original
    library error when an outcome carries one.
    """
    metrics = CompileMetrics()
    summaries: List[WorkloadSummary] = []
    traces: Dict[str, dict] = {}
    for outcome in raw:
        if "error" in outcome:
            _raise_worker_error(outcome["error"])
        metrics.merge(CompileMetrics.from_dict(outcome["metrics"]))
        summary = WorkloadSummary.from_dict(
            outcome["summary"],
            from_cache=outcome["from_cache"],
            wall_s=outcome["wall_s"],
        )
        summaries.append(summary)
        if "trace" in outcome:
            traces[summary.name] = outcome["trace"]
    return summaries, metrics, traces


def build_farm(
    names: Sequence[str],
    options: Optional[FarmOptions] = None,
) -> FarmResult:
    """Evaluate *names* across the farm and merge results in input order.

    With :attr:`FarmOptions.supervisor` (or a chaos schedule) set, the
    run goes through the supervised path instead of the bare process
    pool — same results, plus heartbeats, deadlines, retry/backoff,
    quarantine, and the write-ahead completion journal.
    """
    options = options or FarmOptions()
    if options.cache_root is not None:
        # Once per run, in the driver: clear out temp litter orphaned by
        # writers that were killed between mkstemp and replace.
        PassCache(options.cache_root).sweep_litter()
    if options.supervisor is not None or options.chaos is not None:
        from repro.farm.supervisor import run_supervised

        return run_supervised(names, options)
    jobs = resolve_jobs(options.jobs)
    tasks = [_task(name, options) for name in names]
    if jobs <= 1 or len(tasks) <= 1:
        raw = [_evaluate_task(task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            raw = list(pool.map(_evaluate_task, tasks))

    summaries, metrics, traces = _merge_outcomes(raw)
    # The submission queue's high-water mark: every task is enqueued
    # before the first worker drains one.
    metrics.counters.add("farm.task_queue_depth", len(tasks))
    return FarmResult(
        summaries=summaries,
        metrics=metrics,
        jobs=jobs,
        cache_enabled=options.cache_root is not None,
        cache_root=options.cache_root,
        traces=traces,
    )
