"""Compile metrics: where build wall-clock actually goes.

The farm records, per pass: invocation count, cache hits/misses, total
wall time, and static op counts before/after; per workload: build wall
time, whether it was served from the evaluation cache, and the build
report counters. Metrics merge associatively, so per-worker recordings
combine into one farm-wide report regardless of completion order.

The JSON form (``--metrics-json``) is schema-versioned
(:data:`METRICS_SCHEMA`) and covered by a golden CLI test; extend it by
adding keys, never by repurposing existing ones.

v2 adds the ``counters`` section: observability counters/gauges
(:mod:`repro.obs.stats`) sampled in the list scheduler, the estimator,
and the farm itself (queue depth, cache restore latency), merged across
workers like every other metric.

Supervised runs (:mod:`repro.farm.supervisor`) contribute
``farm.supervisor.*`` counters — worker spawns/kills/crashes,
heartbeats, retries, backoff seconds, deadline and heartbeat-timeout
kills, journal replays. They describe the *run*, not the program: unlike
every deterministic metric above, their values legitimately differ
between a chaotic run and a clean one, so nothing downstream may treat
them as part of the determinism contract.

v3 adds the serve-daemon family: ``farm.cache.*`` counters (hit/miss/
store totals, mirrored from the cache-stats section so cross-path
comparisons — direct farm vs. served — read one namespace), the
``serve.*`` counters (``repro.serve.*`` family: accepted/rejected/shed/
retried/recovered/nacked/replayed plus the ``serve.queue_depth``
high-water gauge and ``serve.shed_transitions``), and an optional
``serve`` section in the JSON document carrying the daemon's live state
(shed level, queue depth/limit). The section is present only in
documents produced by ``repro serve``; farm-only documents are unchanged
apart from the schema tag.

v4 adds the ``storage`` section: durable-storage integrity totals
derived from the ``storage.*`` counters (verified cache reads, checksum
failures, quarantined entries, degraded-to-cache-off transitions; see
:mod:`repro.storage`). Like the supervision counters these describe the
*run*, not the program — a faulted disk legitimately changes them — so
they are excluded from the determinism contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.obs.stats import CounterSet

METRICS_SCHEMA = "repro.farm.metrics/v4"

#: ``storage`` section keys -> the counter each total is drawn from.
_STORAGE_COUNTERS = (
    ("verified_reads", "storage.verified_reads"),
    ("checksum_failures", "storage.checksum_failures"),
    ("quarantines", "storage.quarantines"),
    ("degraded_to_off", "storage.degraded_to_off"),
)


@dataclass
class PassMetrics:
    """Aggregated measurements for one named pass."""

    calls: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    wall_s: float = 0.0
    ops_before: int = 0
    ops_after: int = 0

    def merge(self, other: "PassMetrics") -> "PassMetrics":
        self.calls += other.calls
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.wall_s += other.wall_s
        self.ops_before += other.ops_before
        self.ops_after += other.ops_after
        return self

    def to_dict(self) -> dict:
        return {
            "calls": self.calls,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "wall_s": self.wall_s,
            "ops_before": self.ops_before,
            "ops_after": self.ops_after,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PassMetrics":
        return cls(**data)


@dataclass
class WorkloadMetrics:
    """Measurements for one workload's build."""

    wall_s: float = 0.0
    from_cache: bool = False
    transactions: int = 0
    incidents: int = 0

    def to_dict(self) -> dict:
        return {
            "wall_s": self.wall_s,
            "from_cache": self.from_cache,
            "transactions": self.transactions,
            "incidents": self.incidents,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadMetrics":
        return cls(**data)


@dataclass
class CompileMetrics:
    """Mergeable farm-wide compile metrics."""

    passes: Dict[str, PassMetrics] = field(default_factory=dict)
    workloads: Dict[str, WorkloadMetrics] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0
    counters: CounterSet = field(default_factory=CounterSet)

    # ------------------------------------------------------------------
    # Recording (called from the pass manager and the farm driver)
    # ------------------------------------------------------------------
    def record_pass(
        self,
        name: str,
        wall_s: float,
        ops_before: int,
        ops_after: int,
        cache_hit: Optional[bool] = None,
    ):
        entry = self.passes.setdefault(name, PassMetrics())
        entry.calls += 1
        entry.wall_s += wall_s
        entry.ops_before += ops_before
        entry.ops_after += ops_after
        if cache_hit is True:
            entry.cache_hits += 1
        elif cache_hit is False:
            entry.cache_misses += 1

    def record_workload(
        self,
        name: str,
        wall_s: float,
        from_cache: bool = False,
        transactions: int = 0,
        incidents: int = 0,
    ):
        self.workloads[name] = WorkloadMetrics(
            wall_s=wall_s,
            from_cache=from_cache,
            transactions=transactions,
            incidents=incidents,
        )

    def record_cache_stats(self, stats):
        """Fold a :class:`~repro.farm.cache.CacheStats` into the totals.

        Also mirrored into ``farm.cache.*`` counters (as floats, so the
        counter types are stable whether or not any hits occurred) so the
        serve daemon and the direct farm path expose cache behaviour
        under one comparable namespace.
        """
        self.cache_hits += stats.hits
        self.cache_misses += stats.misses
        self.cache_stores += stats.stores
        self.counters.add("farm.cache.hits", float(stats.hits))
        self.counters.add("farm.cache.misses", float(stats.misses))
        self.counters.add("farm.cache.stores", float(stats.stores))

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def merge(self, other: "CompileMetrics") -> "CompileMetrics":
        for name, entry in other.passes.items():
            self.passes.setdefault(name, PassMetrics()).merge(entry)
        self.workloads.update(other.workloads)
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_stores += other.cache_stores
        self.counters = self.counters.merge(other.counters)
        return self

    @property
    def total_wall_s(self) -> float:
        return sum(w.wall_s for w in self.workloads.values())

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "passes": {
                name: entry.to_dict()
                for name, entry in sorted(self.passes.items())
            },
            "workloads": {
                name: entry.to_dict()
                for name, entry in sorted(self.workloads.items())
            },
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_stores": self.cache_stores,
            "counters": self.counters.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CompileMetrics":
        metrics = cls(
            cache_hits=data.get("cache_hits", 0),
            cache_misses=data.get("cache_misses", 0),
            cache_stores=data.get("cache_stores", 0),
        )
        for name, entry in data.get("passes", {}).items():
            metrics.passes[name] = PassMetrics.from_dict(entry)
        for name, entry in data.get("workloads", {}).items():
            metrics.workloads[name] = WorkloadMetrics.from_dict(entry)
        metrics.counters = CounterSet.from_dict(data.get("counters", {}))
        return metrics

    def to_json_dict(
        self,
        jobs: int = 1,
        cache_enabled: bool = False,
        cache_root: Optional[str] = None,
        serve: Optional[dict] = None,
    ) -> dict:
        """The schema-versioned ``--metrics-json`` document.

        ``serve`` (v3) attaches the serve daemon's live-state section;
        farm-only documents omit it entirely.
        """
        document = {
            "schema": METRICS_SCHEMA,
            "jobs": jobs,
            "cache": {
                "enabled": cache_enabled,
                "root": cache_root,
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "stores": self.cache_stores,
            },
            "totals": {
                "wall_s": self.total_wall_s,
                "workloads": len(self.workloads),
                "pass_invocations": sum(
                    p.calls for p in self.passes.values()
                ),
            },
            "passes": {
                name: entry.to_dict()
                for name, entry in sorted(self.passes.items())
            },
            "workloads": {
                name: entry.to_dict()
                for name, entry in sorted(self.workloads.items())
            },
            "counters": self.counters.to_dict(),
            "storage": {
                key: int(self.counters.get(counter).total)
                for key, counter in _STORAGE_COUNTERS
            },
        }
        if serve is not None:
            document["serve"] = dict(serve)
        return document
