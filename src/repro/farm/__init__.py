"""Parallel build farm with content-addressed pass caching.

The farm turns the repo's serial build/benchmark loop into a production
build service in miniature:

* :mod:`repro.farm.fingerprint` — stable content hashes of IR, pass
  configuration, and machine descriptions, composed into cache keys;
* :mod:`repro.farm.cache` — the on-disk content-addressed store with
  versioned invalidation (per-pass transaction entries and whole-workload
  evaluation entries);
* :mod:`repro.farm.metrics` — compile metrics: per-pass wall time, cache
  hit/miss counters, ops before/after, per-workload build times;
* :mod:`repro.farm.farm` — the process-pool driver: fans workload builds
  out across workers, merges results deterministically (registry order,
  independent of completion order), and collects per-worker incidents
  into the usual :class:`~repro.passes.incidents.BuildReport` form;
* :mod:`repro.farm.supervisor` — the supervised twin of the pool driver:
  worker heartbeats, per-workload deadlines, retry with exponential
  backoff, the crash-loop circuit breaker (quarantine), a global
  wall-clock budget, and graceful SIGINT/SIGTERM drains;
* :mod:`repro.farm.journal` — the write-ahead completion journal
  (``repro.farm.journal/v1``) that makes interrupted supervised runs
  resumable with ``--resume``.
"""

from repro.farm.cache import (
    CACHE_FORMAT_VERSION,
    CacheStats,
    PassCache,
    default_cache_root,
)
from repro.farm.farm import (
    FarmOptions,
    FarmResult,
    WorkloadSummary,
    build_farm,
    resolve_jobs,
)
from repro.farm.journal import (
    JOURNAL_SCHEMA,
    JournalState,
    JournalWriter,
    QuarantineIncident,
    journal_run_key,
    load_journal,
)
from repro.farm.fingerprint import (
    evaluation_key,
    operation_signature,
    options_fingerprint,
    procedure_signature,
    program_signature,
    stable_hash,
    transaction_key,
    workload_inputs_key,
)
from repro.farm.metrics import (
    METRICS_SCHEMA,
    CompileMetrics,
    PassMetrics,
    WorkloadMetrics,
)
from repro.farm.supervisor import SupervisorOptions, run_supervised

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "CompileMetrics",
    "FarmOptions",
    "FarmResult",
    "JOURNAL_SCHEMA",
    "JournalState",
    "JournalWriter",
    "METRICS_SCHEMA",
    "PassCache",
    "PassMetrics",
    "QuarantineIncident",
    "SupervisorOptions",
    "WorkloadMetrics",
    "WorkloadSummary",
    "build_farm",
    "default_cache_root",
    "evaluation_key",
    "journal_run_key",
    "load_journal",
    "operation_signature",
    "options_fingerprint",
    "procedure_signature",
    "program_signature",
    "resolve_jobs",
    "run_supervised",
    "stable_hash",
    "transaction_key",
    "workload_inputs_key",
]
