"""Parallel build farm with content-addressed pass caching.

The farm turns the repo's serial build/benchmark loop into a production
build service in miniature:

* :mod:`repro.farm.fingerprint` — stable content hashes of IR, pass
  configuration, and machine descriptions, composed into cache keys;
* :mod:`repro.farm.cache` — the on-disk content-addressed store with
  versioned invalidation (per-pass transaction entries and whole-workload
  evaluation entries);
* :mod:`repro.farm.metrics` — compile metrics: per-pass wall time, cache
  hit/miss counters, ops before/after, per-workload build times;
* :mod:`repro.farm.farm` — the process-pool driver: fans workload builds
  out across workers, merges results deterministically (registry order,
  independent of completion order), and collects per-worker incidents
  into the usual :class:`~repro.passes.incidents.BuildReport` form.
"""

from repro.farm.cache import (
    CACHE_FORMAT_VERSION,
    CacheStats,
    PassCache,
    default_cache_root,
)
from repro.farm.farm import (
    FarmOptions,
    FarmResult,
    WorkloadSummary,
    build_farm,
)
from repro.farm.fingerprint import (
    evaluation_key,
    operation_signature,
    options_fingerprint,
    procedure_signature,
    program_signature,
    stable_hash,
    transaction_key,
    workload_inputs_key,
)
from repro.farm.metrics import (
    METRICS_SCHEMA,
    CompileMetrics,
    PassMetrics,
    WorkloadMetrics,
)

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "CompileMetrics",
    "FarmOptions",
    "FarmResult",
    "METRICS_SCHEMA",
    "PassCache",
    "PassMetrics",
    "WorkloadMetrics",
    "WorkloadSummary",
    "build_farm",
    "default_cache_root",
    "evaluation_key",
    "operation_signature",
    "options_fingerprint",
    "procedure_signature",
    "program_signature",
    "stable_hash",
    "transaction_key",
    "workload_inputs_key",
]
