"""Supervised farm execution: heartbeats, deadlines, retries, quarantine.

The plain farm (:func:`repro.farm.farm.build_farm`) assumes every worker
is healthy: a hung worker stalls ``pool.map`` forever and a killed one
sinks the whole run. This module replaces the process pool with an
explicitly supervised worker fleet, mirroring the paper's off-trace
philosophy — pay for rare bad paths with bounded compensation instead of
collapsing the region:

* every worker owns a duplex pipe to the supervisor (tasks travel down,
  heartbeats and results travel up — one channel, no shared locks a
  SIGKILL could orphan) and runs a daemon heartbeat thread;
* the supervisor enforces a per-workload **deadline** and a per-worker
  **heartbeat timeout**; violators are SIGKILLed and their workload is
  requeued onto a surviving worker, excluding the observed-bad one;
* crashed workers are respawned with **exponential backoff**; a workload
  that kills ``retries + 1`` fresh workers trips the **crash-loop circuit
  breaker** and is quarantined with a structured
  :class:`~repro.farm.journal.QuarantineIncident` instead of retried
  forever;
* a global wall-clock **budget** bounds the whole run
  (:class:`~repro.errors.FarmTimeout`), and SIGINT/SIGTERM drain
  gracefully (:class:`~repro.errors.FarmInterrupted`): workers are torn
  down, the write-ahead journal stays valid, and ``--resume`` re-runs
  only the unfinished workloads.

Determinism: completed summaries merge in request order exactly as in the
unsupervised farm, retried attempts rebuild from scratch (a killed
worker's partial metrics die with it), and journal replay feeds recorded
outcomes back through the same merge — so a resumed run's summaries,
ledgers, and deterministic metrics match an uninterrupted cold run.
Supervision telemetry (``farm.supervisor.*`` counters, the supervision
event ledger) describes the run that actually happened and is kept out of
the determinism-relevant payloads.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as connection_wait
from typing import Deque, Dict, List, Optional, Set

from repro import errors
from repro.farm.journal import (
    JournalState,
    JournalWriter,
    QuarantineIncident,
    journal_run_key,
    load_journal,
)
from repro.obs.ledger import DecisionLedger
from repro.obs.stats import CounterSet

#: How long a worker gets to exit after the polite shutdown message
#: before it is SIGKILLed during teardown.
SHUTDOWN_GRACE_S = 1.0


@dataclass
class SupervisorOptions:
    """Supervision knobs; picklable, like every farm option.

    ``deadline_s`` bounds one workload build (``None`` disables the
    per-task deadline; the heartbeat timeout still catches dead workers).
    ``retries`` is the number of *re*-dispatches after a failed attempt,
    so a workload is tried at most ``retries + 1`` times before the
    crash-loop circuit breaker quarantines it.
    """

    deadline_s: Optional[float] = None
    budget_s: Optional[float] = None
    retries: int = 2
    heartbeat_interval_s: float = 0.25
    heartbeat_timeout_s: float = 10.0
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    journal_path: Optional[str] = None
    resume: bool = False


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _apply_chaos(chaos: dict, state: dict):
    """Misbehave as instructed by the chaos harness (test-only paths)."""
    action = chaos.get("action")
    if action in ("kill", "poison"):
        os.kill(os.getpid(), signal.SIGKILL)
    elif action == "hang":
        # Heartbeats keep flowing, so only the per-task deadline fires.
        while True:
            time.sleep(0.25)
    elif action == "stall":
        # Go silent long enough to trip the heartbeat timeout, while the
        # task itself would eventually finish — the slow-heartbeat case.
        stall_s = float(chaos.get("stall_s", 2.0))
        state["suppress_until"] = time.monotonic() + stall_s
        time.sleep(stall_s)
    elif action == "slow":
        # Sleep in small slices so a teardown SIGKILL lands promptly.
        until = time.monotonic() + float(chaos.get("slow_s", 1.0))
        while time.monotonic() < until:
            time.sleep(0.05)


def _worker_main(conn, heartbeat_interval_s: float):
    """One supervised worker process: heartbeat thread + evaluate loop."""
    from repro.farm.farm import _evaluate_task

    # The supervisor owns interrupt handling: a terminal Ctrl-C reaches
    # the whole process group, and the drain must find workers alive so
    # it can tear them down (and journal that it did).
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    send_lock = threading.Lock()
    state = {"task": None, "suppress_until": 0.0}
    stop = threading.Event()

    def _send(message) -> bool:
        with send_lock:
            try:
                conn.send(message)
                return True
            except (BrokenPipeError, OSError):
                return False

    def _beat():
        while not stop.wait(heartbeat_interval_s):
            if time.monotonic() < state["suppress_until"]:
                continue
            if not _send(("heartbeat", state["task"])):
                return

    threading.Thread(target=_beat, daemon=True).start()
    _send(("ready", None))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        name = message["name"]
        state["task"] = name
        chaos = message.get("chaos")
        if chaos:
            _apply_chaos(chaos, state)
        outcome = _evaluate_task(dict(message["task"]))
        ok = _send(("result", name, outcome))
        state["task"] = None
        if not ok:
            break
    stop.set()


# ----------------------------------------------------------------------
# Supervisor side
# ----------------------------------------------------------------------
class _TaskState:
    """One workload's dispatch state across attempts."""

    __slots__ = ("name", "task", "attempt", "started_at", "history",
                 "excluded")

    def __init__(self, name: str, task: dict):
        self.name = name
        self.task = task
        self.attempt = 1
        self.started_at: Optional[float] = None
        self.history: List[dict] = []
        self.excluded: Set[str] = set()


class _Slot:
    """One worker position: a live process, or a backoff timer."""

    __slots__ = ("index", "proc", "conn", "incarnation", "ready", "task",
                 "last_beat", "crashes", "respawn_at")

    def __init__(self, index: int):
        self.index = index
        self.proc = None
        self.conn = None
        self.incarnation = 0
        self.ready = False
        self.task: Optional[_TaskState] = None
        self.last_beat = 0.0
        self.crashes = 0
        self.respawn_at = 0.0

    @property
    def worker_id(self) -> str:
        return f"w{self.index}#{self.incarnation}"


class _Supervisor:
    def __init__(self, names, options, jobs: int):
        self.names = list(names)
        self.options = options
        self.sup: SupervisorOptions = options.supervisor or SupervisorOptions()
        self.jobs = jobs
        self.chaos = options.chaos
        self.counters = CounterSet()
        self.ledger = DecisionLedger()
        self.outcomes: Dict[str, dict] = {}
        self.quarantines: Dict[str, QuarantineIncident] = {}
        self.pending: Deque[_TaskState] = deque()
        self.slots: List[_Slot] = []
        self.journal: Optional[JournalWriter] = None
        self.replayed = 0
        self._signal: Optional[int] = None
        self._fatal_error: Optional[dict] = None
        self._mp = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        self._tick = min(0.05, self.sup.heartbeat_interval_s)

    # ------------------------------------------------------------------
    # Setup: journal, replay, signals
    # ------------------------------------------------------------------
    def _open_journal(self):
        run_key = journal_run_key(self.names, self.options)
        path = self.sup.journal_path
        if self.sup.resume:
            if not path:
                raise errors.UsageError(
                    "--resume requires a journal path"
                )
            state = load_journal(path)
            if state.corrupt:
                # Detected (not merged) corruption: each bad record cost
                # exactly its own workload, which re-runs below.
                self.counters.add(
                    "farm.supervisor.journal_corrupt", state.corrupt
                )
                self.ledger.record(
                    "journal-corrupt", "-", "-",
                    records=state.corrupt,
                    valid=state.valid,
                    truncated=state.truncated,
                )
            if state.run_key != run_key:
                raise errors.UsageError(
                    f"journal {path} was written for a different run "
                    f"(key {state.run_key}, this run {run_key}); "
                    "refusing to mix results"
                )
            self._replay(state)
            self.journal = JournalWriter(
                path, run_key, self.names, self.jobs, resume=True
            )
        elif path:
            self.journal = JournalWriter(path, run_key, self.names, self.jobs)

    def _replay(self, state: JournalState):
        for name, outcome in state.completions.items():
            if name in self.names:
                self.outcomes[name] = outcome
                self.replayed += 1
        for name, incident in state.quarantines.items():
            if name in self.names:
                self.quarantines[name] = QuarantineIncident.from_dict(
                    incident
                )
        if self.replayed:
            self.counters.add(
                "farm.supervisor.journal_replayed", self.replayed
            )
            self.ledger.record(
                "journal-replay", "-", "-",
                completed=self.replayed,
                quarantined=len(self.quarantines),
            )

    def _install_signals(self):
        if threading.current_thread() is not threading.main_thread():
            return {}
        previous = {}

        def _on_signal(signum, frame):
            self._signal = signum

        for sig in (signal.SIGINT, signal.SIGTERM):
            previous[sig] = signal.signal(sig, _on_signal)
        return previous

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, slot: _Slot):
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        proc = self._mp.Process(
            target=_worker_main,
            args=(child_conn, self.sup.heartbeat_interval_s),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        slot.proc = proc
        slot.conn = parent_conn
        slot.incarnation += 1
        slot.ready = False
        slot.task = None
        slot.last_beat = time.monotonic()
        self.counters.add("farm.supervisor.worker_spawns")
        self.ledger.record(
            "worker-spawn", "-", slot.worker_id, pid=proc.pid
        )
        if self.journal:
            self.journal.event(
                "worker-spawn", worker=slot.worker_id, pid=proc.pid
            )

    def _kill_slot(self, slot: _Slot, *, polite: bool = False):
        proc, conn = slot.proc, slot.conn
        slot.proc = None
        slot.conn = None
        slot.ready = False
        if proc is None:
            return
        if polite and proc.is_alive():
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            proc.join(SHUTDOWN_GRACE_S)
        if proc.is_alive():
            proc.kill()
        proc.join(5.0)
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass

    def _schedule_respawn(self, slot: _Slot, now: float):
        slot.crashes += 1
        delay = min(
            self.sup.backoff_base_s * (2 ** (slot.crashes - 1)),
            self.sup.backoff_max_s,
        )
        slot.respawn_at = now + delay
        self.counters.add("farm.supervisor.backoff_s", delay)

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _fail_task(self, slot: _Slot, kind: str, detail: str = ""):
        task = slot.task
        slot.task = None
        if task is None or task.name in self.outcomes:
            return
        task.history.append({
            "attempt": task.attempt,
            "worker": slot.worker_id,
            "kind": kind,
            "detail": detail,
        })
        task.excluded.add(slot.worker_id)
        self.ledger.record(
            "task-retry" if task.attempt <= self.sup.retries
            else "task-quarantine",
            task.name, slot.worker_id,
            attempt=task.attempt, failure=kind,
        )
        if task.attempt >= self.sup.retries + 1:
            incident = QuarantineIncident(
                workload=task.name,
                attempts=task.attempt,
                reason=kind,
                history=task.history,
            )
            self.quarantines[task.name] = incident
            self.counters.add("farm.supervisor.quarantines")
            if self.journal:
                self.journal.quarantine(incident)
        else:
            task.attempt += 1
            self.pending.appendleft(task)
            self.counters.add("farm.supervisor.retries")

    def _handle_dead_worker(self, slot: _Slot, kind: str, detail: str,
                            now: float, *, kill: bool = False):
        worker_id = slot.worker_id
        if kill:
            self.counters.add("farm.supervisor.worker_kills")
        else:
            self.counters.add("farm.supervisor.worker_crashes")
        self.ledger.record(
            "worker-kill" if kill else "worker-crash", "-", worker_id,
            reason=kind,
        )
        if self.journal:
            self.journal.event(
                "worker-kill" if kill else "worker-crash",
                worker=worker_id, reason=kind,
            )
        self._fail_task(slot, kind, detail)
        self._kill_slot(slot)
        self._schedule_respawn(slot, now)

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def _dispatch(self, now: float):
        for slot in self.slots:
            if not self.pending:
                return
            if slot.proc is None or not slot.ready or slot.task is not None:
                continue
            task = self._next_task_for(slot)
            if task is None:
                continue
            chaos = None
            if self.chaos is not None:
                chaos = self.chaos.action_for(task.name, task.attempt)
            try:
                slot.conn.send({
                    "name": task.name,
                    "task": task.task,
                    "chaos": chaos,
                })
            except (BrokenPipeError, OSError):
                # The worker died between polls; the reaper will respawn
                # it, and the task goes back to the head of the queue.
                self.pending.appendleft(task)
                continue
            task.started_at = now
            slot.task = task

    def _next_task_for(self, slot: _Slot) -> Optional[_TaskState]:
        for index, task in enumerate(self.pending):
            if slot.worker_id not in task.excluded:
                del self.pending[index]
                return task
        return None

    def _poll(self, now: float):
        by_conn = {
            slot.conn: slot for slot in self.slots if slot.proc is not None
        }
        if not by_conn:
            time.sleep(self._tick)
            return
        for conn in connection_wait(list(by_conn), timeout=self._tick):
            slot = by_conn[conn]
            try:
                message = conn.recv()
            except Exception:
                # EOF (worker death) or a stream truncated by a SIGKILL
                # mid-send; either way this incarnation is done.
                self._handle_dead_worker(
                    slot, "worker-crash", "result channel closed", now
                )
                continue
            slot.last_beat = now
            kind = message[0]
            if kind == "ready":
                slot.ready = True
            elif kind == "heartbeat":
                self.counters.add("farm.supervisor.heartbeats")
            elif kind == "result":
                _, name, outcome = message
                slot.task = None
                if "error" in outcome:
                    self._fatal_error = outcome["error"]
                elif name not in self.outcomes:
                    self.outcomes[name] = outcome
                    if self.journal:
                        self.journal.complete(name, outcome)

    def _reap_dead(self, now: float):
        for slot in self.slots:
            if slot.proc is not None and slot.proc.exitcode is not None:
                self._handle_dead_worker(
                    slot, "worker-crash",
                    f"exit code {slot.proc.exitcode}", now,
                )

    def _enforce_deadlines(self, now: float):
        for slot in self.slots:
            if slot.proc is None:
                continue
            task = slot.task
            if (
                task is not None
                and self.sup.deadline_s is not None
                and task.started_at is not None
                and now - task.started_at > self.sup.deadline_s
            ):
                self.counters.add("farm.supervisor.deadline_kills")
                self._handle_dead_worker(
                    slot, "deadline",
                    f"exceeded {self.sup.deadline_s}s", now, kill=True,
                )
            elif (
                (task is not None or not slot.ready)
                and now - slot.last_beat > self.sup.heartbeat_timeout_s
            ):
                self.counters.add("farm.supervisor.heartbeat_timeouts")
                self._handle_dead_worker(
                    slot, "heartbeat-timeout",
                    f"silent for {now - slot.last_beat:.2f}s", now,
                    kill=True,
                )

    def _respawn_due(self, now: float):
        if not self.pending:
            return
        for slot in self.slots:
            if slot.proc is None and slot.respawn_at <= now:
                self._spawn(slot)

    def _teardown(self):
        for slot in self.slots:
            self._kill_slot(slot, polite=True)
        if self.journal:
            self.journal.close()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self):
        from repro.farm.farm import (
            FarmResult,
            _merge_outcomes,
            _raise_worker_error,
            _task,
        )

        self._open_journal()
        for name in self.names:
            if name in self.outcomes or name in self.quarantines:
                continue
            self.pending.append(
                _TaskState(name, _task(name, self.options))
            )
        live_tasks = len(self.pending)
        started = time.monotonic()
        previous_signals = self._install_signals()
        self.slots = [
            _Slot(index)
            for index in range(max(1, min(self.jobs, max(live_tasks, 1))))
        ]
        try:
            if live_tasks:
                for slot in self.slots:
                    self._spawn(slot)
            while (
                self._fatal_error is None
                and (self.pending or any(s.task for s in self.slots))
            ):
                now = time.monotonic()
                if self._signal is not None:
                    self._interrupted()
                if (
                    self.sup.budget_s is not None
                    and now - started > self.sup.budget_s
                ):
                    self._budget_exhausted()
                self._poll(now)
                now = time.monotonic()
                self._reap_dead(now)
                self._enforce_deadlines(now)
                self._respawn_due(now)
                self._dispatch(now)
            if self._fatal_error is not None:
                _raise_worker_error(self._fatal_error)
        finally:
            self._teardown()
            for sig, handler in previous_signals.items():
                signal.signal(sig, handler)

        raw = [
            self.outcomes[name]
            for name in self.names
            if name in self.outcomes
        ]
        summaries, metrics, traces = _merge_outcomes(raw)
        metrics.counters.add("farm.task_queue_depth", live_tasks)
        metrics.counters = metrics.counters.merge(self.counters)
        return FarmResult(
            summaries=summaries,
            metrics=metrics,
            jobs=self.jobs,
            cache_enabled=self.options.cache_root is not None,
            cache_root=self.options.cache_root,
            traces=traces,
            quarantined=[
                self.quarantines[name]
                for name in self.names
                if name in self.quarantines
            ],
            supervision=self.ledger,
            journal_path=self.sup.journal_path,
            resumed=self.replayed,
        )

    def _interrupted(self):
        signum = self._signal
        name = signal.Signals(signum).name if signum is not None else "?"
        self._teardown()
        raise errors.FarmInterrupted(
            f"farm run interrupted by {name}: "
            f"{len(self.outcomes)}/{len(self.names)} workloads complete"
            + (
                f"; resume with --journal {self.sup.journal_path} --resume"
                if self.sup.journal_path else ""
            ),
            journal_path=self.sup.journal_path,
            completed=len(self.outcomes),
            signal_name=name,
        )

    def _budget_exhausted(self):
        self._teardown()
        raise errors.FarmTimeout(
            f"farm run exceeded its {self.sup.budget_s}s wall-clock "
            f"budget: {len(self.outcomes)}/{len(self.names)} workloads "
            "complete"
            + (
                f"; resume with --journal {self.sup.journal_path} --resume"
                if self.sup.journal_path
                else " (no journal: completed work is discarded)"
            ),
            journal_path=self.sup.journal_path,
            completed=len(self.outcomes),
            budget_s=self.sup.budget_s,
        )


def run_supervised(names, options):
    """Evaluate *names* under supervision; the armed-path twin of
    :func:`repro.farm.farm.build_farm` (which dispatches here whenever
    supervision or chaos options are set)."""
    from repro.farm.farm import resolve_jobs

    jobs = resolve_jobs(options.jobs)
    return _Supervisor(names, options, jobs).run()
