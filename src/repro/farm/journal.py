"""The write-ahead completion journal: ``repro.farm.journal/v2``.

A supervised farm run (:mod:`repro.farm.supervisor`) appends one line
per event to the journal file, flushing and fsyncing after every
record, so the on-disk state is always a valid prefix of the run. Since
v2 every appended line is a checksummed envelope
(:mod:`repro.storage.framing`): the record rides with a sha256 digest
of its canonical serialization, so a flipped bit that keeps the line
parseable is *detected*, not replayed into a merge. The records:

* ``header`` — schema, the :func:`journal_run_key` binding the journal to
  its workload list and result-affecting options, and the job count
  (written atomically and unframed, so schema detection never depends
  on the integrity machinery it selects);
* ``worker-spawn`` / ``worker-kill`` / ``worker-crash`` — supervision
  events with worker ids and pids (debugging aid, and how the signal
  tests verify no orphan processes survive a drain);
* ``complete`` — one workload's full outcome payload (summary, metrics,
  optional trace), verbatim as the worker returned it;
* ``quarantine`` — a workload the crash-loop circuit breaker gave up on,
  with its full attempt history.

Resume contract: ``--resume`` loads the journal, checks the run key, and
replays every ``complete``/``quarantine`` record into the merge exactly
as if the worker had just returned it — so a resumed run's summaries,
decision ledgers, and deterministic metrics (pass invocation counts, op
counts) are identical to an uninterrupted cold run. Only wall-clock
timings differ, as they do between any two runs.

Corruption contract: a record that fails its checksum (or cannot be
parsed in the interior of the file) is **skipped and counted**
(:attr:`JournalState.corrupt`), never merged and never used as an
excuse to drop the records after it — a corrupt ``complete`` costs
exactly one workload's re-run on resume. Only an unparseable *final*
line is a truncated tail (:attr:`JournalState.truncated`), the one
corruption an fsync-per-record appender can legitimately produce when
SIGKILLed mid-append. v1 journals (bare JSON records) still load; a
resumed run appends v2 envelopes to them, which the loader also
accepts in v1 mode.

Durability contract: a failed append raises
:class:`~repro.errors.JournalWriteError` (CLI exit code 8) — the
journal's whole point is "journalled before acted on", so continuing
past a failed append would silently void the resume guarantee.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import JournalWriteError, UsageError
from repro.farm.fingerprint import stable_hash
from repro.storage.atomic import atomic_write_bytes
from repro.storage.faults import corrupt_bytes, fault_error, storage_fault
from repro.storage.framing import (
    TRUNCATED,
    VALID,
    canonical_json,
    classify_lines,
    frame_record,
)

JOURNAL_SCHEMA = "repro.farm.journal/v2"
JOURNAL_SCHEMA_V1 = "repro.farm.journal/v1"

#: Schemas the loader accepts, mapped to whether their body lines are
#: checksummed envelopes (v2) or bare records (v1).
_KNOWN_SCHEMAS = {JOURNAL_SCHEMA: True, JOURNAL_SCHEMA_V1: False}


def journal_run_key(names, options) -> str:
    """Bind a journal to its workload list and result-affecting options.

    Includes every :class:`~repro.farm.farm.FarmOptions` knob that changes
    what the merged result contains — the request order, scale, strict
    mode, fuel, processor set, estimate mode, sanitizer tier, and whether
    traces are collected. Excludes ``jobs`` and the cache configuration:
    both change how fast results arrive, never what they are, so a run may
    legitimately resume with a different worker count or cache state.

    Hashed over the v1 schema tag on purpose: the v2 framing changes how
    records are protected, not what a run computes, so a v1 journal may
    resume under a v2 writer.
    """
    return stable_hash(
        "journal",
        JOURNAL_SCHEMA_V1,
        ";".join(names),
        options.scale,
        options.strict,
        options.fuel,
        ";".join(options.processors),
        options.estimate_mode,
        options.sanitize,
        options.trace,
    )


@dataclass
class QuarantineIncident:
    """A workload the supervisor gave up on after it killed fresh workers.

    ``history`` holds one record per failed attempt:
    ``{"attempt", "worker", "kind", "detail"}`` where ``kind`` is one of
    ``worker-crash``, ``deadline``, ``heartbeat-timeout``, or
    ``budget-exceeded``.
    """

    workload: str
    attempts: int
    reason: str
    history: List[dict] = field(default_factory=list)

    def format(self) -> str:
        trail = "; ".join(
            f"attempt {h['attempt']} on {h['worker']}: {h['kind']}"
            for h in self.history
        )
        return (
            f"[quarantined] {self.workload}: {self.reason} after "
            f"{self.attempts} attempt(s) ({trail})"
        )

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "attempts": self.attempts,
            "reason": self.reason,
            "history": list(self.history),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QuarantineIncident":
        return cls(
            workload=data["workload"],
            attempts=data["attempts"],
            reason=data["reason"],
            history=list(data.get("history", [])),
        )


@dataclass
class JournalState:
    """Everything a journal file holds, parsed and keyed for resume."""

    header: dict
    completions: Dict[str, dict] = field(default_factory=dict)
    quarantines: Dict[str, dict] = field(default_factory=dict)
    events: List[dict] = field(default_factory=list)
    #: True when the file ended in a partial line (SIGKILL mid-append).
    truncated: bool = False
    #: Records that parsed (header excluded) and passed their checksum.
    valid: int = 0
    #: Interior records that failed parse or checksum — detected
    #: corruption, each costing exactly its own record on resume.
    corrupt: int = 0

    @property
    def run_key(self) -> Optional[str]:
        return self.header.get("run_key")

    def worker_pids(self) -> List[int]:
        return [
            event["pid"]
            for event in self.events
            if event.get("kind") == "worker-spawn" and "pid" in event
        ]


def load_journal(path) -> JournalState:
    """Parse a journal file; raises :class:`UsageError` when unusable."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as exc:
        raise UsageError(
            f"cannot read journal {path}: {exc}"
        ) from None
    lines = [line for line in text.split("\n") if line]
    if not lines:
        raise UsageError(f"journal {path} does not start with a header")
    try:
        header = json.loads(lines[0])
    except ValueError:
        raise UsageError(
            f"journal {path} does not start with a header"
        ) from None
    if not isinstance(header, dict) or header.get("kind") != "header":
        raise UsageError(f"journal {path} does not start with a header")
    schema = header.get("schema")
    if schema not in _KNOWN_SCHEMAS:
        raise UsageError(
            f"journal {path} has schema "
            f"{schema!r}, expected {JOURNAL_SCHEMA!r}"
        )
    state = JournalState(header=header)
    for record, status in classify_lines(
        lines[1:], framed=_KNOWN_SCHEMAS[schema]
    ):
        if status == TRUNCATED:
            state.truncated = True
            break
        if status != VALID:
            state.corrupt += 1
            continue
        state.valid += 1
        kind = record.get("kind")
        if kind == "complete":
            state.completions[record["name"]] = record["outcome"]
        elif kind == "quarantine":
            state.quarantines[record["name"]] = record["incident"]
        else:
            state.events.append(record)
    return state


class JournalWriter:
    """Append-only, fsync-per-record writer for one farm run."""

    def __init__(self, path, run_key: str, names, jobs: int,
                 resume: bool = False):
        self.path = Path(path)
        self.run_key = run_key
        if not resume:
            header = {
                "kind": "header",
                "schema": JOURNAL_SCHEMA,
                "run_key": run_key,
                "names": list(names),
                "jobs": jobs,
            }
            line = canonical_json(header) + "\n"
            try:
                atomic_write_bytes(self.path, line.encode("utf-8"))
            except OSError as exc:
                raise JournalWriteError(
                    f"cannot start journal {self.path}: {exc}",
                    path=str(self.path),
                ) from exc
        self._handle = open(self.path, "ab")

    def _append(self, record: dict):
        data = (frame_record(record) + "\n").encode("utf-8")
        fault = storage_fault("journal-append", self.path)
        if fault is not None:
            kind, rng = fault
            if kind in ("enospc", "eio"):
                raise JournalWriteError(
                    f"cannot append to journal {self.path}: "
                    f"{fault_error(kind, 'journal-append', self.path)}",
                    path=str(self.path),
                )
            if kind == "lost-fsync":
                return
            data = corrupt_bytes(data, kind, rng)
        try:
            self._handle.write(data)
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except OSError as exc:
            raise JournalWriteError(
                f"cannot append to journal {self.path}: {exc}",
                path=str(self.path),
            ) from exc

    def complete(self, name: str, outcome: dict):
        self._append({"kind": "complete", "name": name, "outcome": outcome})

    def quarantine(self, incident: QuarantineIncident):
        self._append({
            "kind": "quarantine",
            "name": incident.workload,
            "incident": incident.to_dict(),
        })

    def event(self, kind: str, **fields):
        record = {"kind": kind}
        record.update(fields)
        self._append(record)

    def close(self):
        try:
            self._handle.close()
        except OSError:
            pass
