"""The write-ahead completion journal: ``repro.farm.journal/v1``.

A supervised farm run (:mod:`repro.farm.supervisor`) appends one JSON
line per event to the journal file, flushing and fsyncing after every
record, so the on-disk state is always a valid prefix of the run:

* ``header`` — schema, the :func:`journal_run_key` binding the journal to
  its workload list and result-affecting options, and the job count;
* ``worker-spawn`` / ``worker-kill`` / ``worker-crash`` — supervision
  events with worker ids and pids (debugging aid, and how the signal
  tests verify no orphan processes survive a drain);
* ``complete`` — one workload's full outcome payload (summary, metrics,
  optional trace), verbatim as the worker returned it;
* ``quarantine`` — a workload the crash-loop circuit breaker gave up on,
  with its full attempt history.

Resume contract: ``--resume`` loads the journal, checks the run key, and
replays every ``complete``/``quarantine`` record into the merge exactly
as if the worker had just returned it — so a resumed run's summaries,
decision ledgers, and deterministic metrics (pass invocation counts, op
counts) are identical to an uninterrupted cold run. Only wall-clock
timings differ, as they do between any two runs.

Crash safety: a SIGINT/SIGTERM drain closes the file cleanly; a SIGKILL
can at worst leave one truncated trailing line, which the loader ignores
(the half-written record's workload simply re-runs on resume). The
fresh-run header is written atomically (temp file + rename) so even a
kill at run start never leaves an unparseable journal.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import UsageError
from repro.farm.cache import atomic_write_bytes
from repro.farm.fingerprint import stable_hash

JOURNAL_SCHEMA = "repro.farm.journal/v1"


def journal_run_key(names, options) -> str:
    """Bind a journal to its workload list and result-affecting options.

    Includes every :class:`~repro.farm.farm.FarmOptions` knob that changes
    what the merged result contains — the request order, scale, strict
    mode, fuel, processor set, estimate mode, sanitizer tier, and whether
    traces are collected. Excludes ``jobs`` and the cache configuration:
    both change how fast results arrive, never what they are, so a run may
    legitimately resume with a different worker count or cache state.
    """
    return stable_hash(
        "journal",
        JOURNAL_SCHEMA,
        ";".join(names),
        options.scale,
        options.strict,
        options.fuel,
        ";".join(options.processors),
        options.estimate_mode,
        options.sanitize,
        options.trace,
    )


@dataclass
class QuarantineIncident:
    """A workload the supervisor gave up on after it killed fresh workers.

    ``history`` holds one record per failed attempt:
    ``{"attempt", "worker", "kind", "detail"}`` where ``kind`` is one of
    ``worker-crash``, ``deadline``, ``heartbeat-timeout``, or
    ``budget-exceeded``.
    """

    workload: str
    attempts: int
    reason: str
    history: List[dict] = field(default_factory=list)

    def format(self) -> str:
        trail = "; ".join(
            f"attempt {h['attempt']} on {h['worker']}: {h['kind']}"
            for h in self.history
        )
        return (
            f"[quarantined] {self.workload}: {self.reason} after "
            f"{self.attempts} attempt(s) ({trail})"
        )

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "attempts": self.attempts,
            "reason": self.reason,
            "history": list(self.history),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QuarantineIncident":
        return cls(
            workload=data["workload"],
            attempts=data["attempts"],
            reason=data["reason"],
            history=list(data.get("history", [])),
        )


@dataclass
class JournalState:
    """Everything a journal file holds, parsed and keyed for resume."""

    header: dict
    completions: Dict[str, dict] = field(default_factory=dict)
    quarantines: Dict[str, dict] = field(default_factory=dict)
    events: List[dict] = field(default_factory=list)
    #: True when the file ended in a partial line (SIGKILL mid-append).
    truncated: bool = False

    @property
    def run_key(self) -> Optional[str]:
        return self.header.get("run_key")

    def worker_pids(self) -> List[int]:
        return [
            event["pid"]
            for event in self.events
            if event.get("kind") == "worker-spawn" and "pid" in event
        ]


def load_journal(path) -> JournalState:
    """Parse a journal file; raises :class:`UsageError` when unusable."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise UsageError(
            f"cannot read journal {path}: {exc}"
        ) from None
    state: Optional[JournalState] = None
    truncated = False
    for line in text.split("\n"):
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            # A killed writer can leave one partial trailing line; anything
            # unparseable after that point is treated the same way.
            truncated = True
            break
        kind = record.get("kind")
        if kind == "header":
            if record.get("schema") != JOURNAL_SCHEMA:
                raise UsageError(
                    f"journal {path} has schema "
                    f"{record.get('schema')!r}, expected {JOURNAL_SCHEMA!r}"
                )
            state = JournalState(header=record)
        elif state is None:
            raise UsageError(f"journal {path} does not start with a header")
        elif kind == "complete":
            state.completions[record["name"]] = record["outcome"]
        elif kind == "quarantine":
            state.quarantines[record["name"]] = record["incident"]
        else:
            state.events.append(record)
    if state is None:
        raise UsageError(f"journal {path} does not start with a header")
    state.truncated = truncated
    return state


class JournalWriter:
    """Append-only, fsync-per-record writer for one farm run."""

    def __init__(self, path, run_key: str, names, jobs: int,
                 resume: bool = False):
        self.path = Path(path)
        self.run_key = run_key
        if resume:
            self._handle = open(self.path, "a", encoding="utf-8")
        else:
            header = {
                "kind": "header",
                "schema": JOURNAL_SCHEMA,
                "run_key": run_key,
                "names": list(names),
                "jobs": jobs,
            }
            line = json.dumps(header, sort_keys=True) + "\n"
            atomic_write_bytes(self.path, line.encode("utf-8"))
            self._handle = open(self.path, "a", encoding="utf-8")

    def _append(self, record: dict):
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def complete(self, name: str, outcome: dict):
        self._append({"kind": "complete", "name": name, "outcome": outcome})

    def quarantine(self, incident: QuarantineIncident):
        self._append({
            "kind": "quarantine",
            "name": incident.workload,
            "incident": incident.to_dict(),
        })

    def event(self, kind: str, **fields):
        record = {"kind": kind}
        record.update(fields)
        self._append(record)

    def close(self):
        try:
            self._handle.close()
        except OSError:
            pass
