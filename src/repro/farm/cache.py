"""On-disk content-addressed store for build artifacts.

Two entry kinds share one store:

* **transaction entries** (``.txn.pkl``) — the committed procedure and the
  pass's return value, pickled together so shared references (a report
  pointing at operations of the procedure) survive;
* **evaluation entries** (``.eval.json``) — a whole workload's measured
  summary (cycles, counts, IR digests, incidents), stored as JSON so the
  warm fast path never touches the IR at all.

Layout: ``<root>/v<CACHE_FORMAT_VERSION>/<key[:2]>/<key>.<kind>``. Writes
are durable and atomic (:func:`repro.storage.atomic.atomic_write_bytes`)
so concurrent workers racing on the same key simply last-write-win with
identical content.

Every entry is **self-verifying** (format v5): the payload is prefixed
with a one-line header carrying a magic tag and the payload's sha256
digest, checked on every read *before* the bytes reach ``pickle.loads``
or ``json.loads``. A mismatch — a flipped bit, a torn write that
happened to stay loadable — is moved to a ``quarantine/`` subdirectory
beside the entries and reported as a
:class:`~repro.storage.incidents.StorageIncident`; the read is a miss.

Degradation contract: a cache IO *error* (disk full, EIO) can never
abort a build. The first such error flips the handle to ``disabled`` —
every later read misses and every later write is a no-op — records an
incident, and bumps the ``storage.degraded_to_off`` counter. A missing
entry (``FileNotFoundError``) is the normal miss path, not an error.

Invalidation is versioned: bumping :data:`CACHE_FORMAT_VERSION` orphans
every old entry (they live under the old ``v<N>`` directory and are never
consulted again). Bump it whenever pass semantics, the IR pickle format,
the entry header, or the evaluation summary schema change.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any, List, Optional, Tuple

from repro.ir.procedure import Procedure
from repro.obs.ledger import LedgerEntry
from repro.obs.stats import record_counter
from repro.obs.tracer import trace_span
from repro.storage.atomic import atomic_write_bytes, sweep_tmp_litter
from repro.storage.faults import corrupt_bytes, fault_error, storage_fault
from repro.storage.incidents import StorageIncident

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "PassCache",
    "atomic_write_bytes",
    "default_cache_root",
]

#: Bump on any change to pass semantics or stored payload formats.
#: v2: sanitizer battery (entries produced before the battery existed
#: were never sanitized; ICBM also tags its inserted bookkeeping ops).
#: v3: transaction entries carry the committed rung's decision-ledger
#: entries, replayed on restore so warm builds report identically.
#: v5: self-verifying entry header (magic + payload sha256), checked on
#: every read; mismatches are quarantined, never unpickled.
CACHE_FORMAT_VERSION = 5

#: Environment override for the cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: First header field of every entry; bump with the header layout.
ENTRY_MAGIC = b"repro-store/1"

#: Subdirectory (under the version root) holding checksum-failed entries.
QUARANTINE_DIR = "quarantine"


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro-farm``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-farm"


def _seal(payload: bytes) -> bytes:
    """``<magic> <sha256(payload)>\\n<payload>`` — the stored entry."""
    digest = hashlib.sha256(payload).hexdigest().encode("ascii")
    return ENTRY_MAGIC + b" " + digest + b"\n" + payload


@dataclass
class CacheStats:
    """Hit/miss/store counters for one :class:`PassCache` handle."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def merge(self, other: "CacheStats") -> "CacheStats":
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        return self


class PassCache:
    """A content-addressed artifact store rooted at one directory.

    ``verify=False`` skips the digest check on reads (the header is
    still stripped); it exists for the storage benchmark's baseline and
    must never be used where the cache contents are not already
    trusted.
    """

    def __init__(self, root: Optional[os.PathLike] = None,
                 verify: bool = True):
        self.root = Path(root) if root is not None else default_cache_root()
        self.base = self.root / f"v{CACHE_FORMAT_VERSION}"
        self.stats = CacheStats()
        self.verify = verify
        #: Set after the first cache IO error; all later ops are no-ops.
        self.disabled = False
        self.disabled_reason: Optional[str] = None
        self.incidents: List[StorageIncident] = []

    # ------------------------------------------------------------------
    # Incident plumbing
    # ------------------------------------------------------------------
    def _incident(self, kind: str, op: str, path, detail: str, action: str):
        incident = StorageIncident(
            kind=kind, op=op, path=str(path), detail=detail, action=action
        )
        self.incidents.append(incident)
        with trace_span(
            "storage.incident", kind="storage",
            incident=kind, action=action, path=str(path),
        ):
            pass
        return incident

    def _degrade(self, op: str, path, exc):
        """First IO error wins: flip to cache-off, never abort the build."""
        if not self.disabled:
            self.disabled = True
            self.disabled_reason = f"{op} failed on {path}: {exc}"
            self._incident("io-error", op, path, str(exc), "cache-off")
            record_counter("storage.degraded_to_off")

    def _quarantine(self, path: Path, detail: str):
        """Move a checksum-failed entry aside; it is never loaded again."""
        target_dir = self.base / QUARANTINE_DIR
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target_dir / path.name)
            action = "quarantined"
        except OSError as exc:
            action = f"quarantine-failed: {exc}"
        self._incident("checksum-mismatch", "cache-read", path, detail, action)
        record_counter("storage.checksum_failures")
        record_counter("storage.quarantines")

    def sweep_litter(self) -> int:
        """Remove stale temp files orphaned by killed writers."""
        return sweep_tmp_litter(self.base, recursive=True)

    # ------------------------------------------------------------------
    # Raw byte storage
    # ------------------------------------------------------------------
    def _path(self, key: str, kind: str) -> Path:
        return self.base / key[:2] / f"{key}.{kind}"

    def _unseal(self, path: Path, data: bytes) -> Optional[bytes]:
        """Header-verified payload, or ``None`` (entry quarantined)."""
        header, sep, payload = data.partition(b"\n")
        if not sep or not header.startswith(ENTRY_MAGIC + b" "):
            self._quarantine(path, "missing or malformed entry header")
            return None
        if self.verify:
            expected = header[len(ENTRY_MAGIC) + 1:]
            actual = hashlib.sha256(payload).hexdigest().encode("ascii")
            if actual != expected:
                self._quarantine(
                    path,
                    f"payload digest {actual.decode()} != header "
                    f"{expected.decode()!r}",
                )
                return None
        return payload

    def _read(self, key: str, kind: str) -> Optional[bytes]:
        if self.disabled:
            self.stats.misses += 1
            return None
        path = self._path(key, kind)
        fault = storage_fault("cache-read", path)
        if fault is not None and fault[0] in ("enospc", "eio"):
            self._degrade(
                "cache-read", path, fault_error(fault[0], "cache-read", path)
            )
            self.stats.misses += 1
            return None
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError as exc:
            self._degrade("cache-read", path, exc)
            self.stats.misses += 1
            return None
        if fault is not None:
            data = corrupt_bytes(data, fault[0], fault[1])
        payload = self._unseal(path, data)
        if payload is None:
            self.stats.misses += 1
            return None
        record_counter("storage.verified_reads")
        self.stats.hits += 1
        return payload

    def _write(self, key: str, kind: str, data: bytes):
        if self.disabled:
            return
        path = self._path(key, kind)
        fault = storage_fault("cache-write", path)
        if fault is not None and fault[0] in ("enospc", "eio"):
            self._degrade(
                "cache-write", path, fault_error(fault[0], "cache-write", path)
            )
            return
        try:
            atomic_write_bytes(path, _seal(data))
        except OSError as exc:
            self._degrade("cache-write", path, exc)
            return
        self.stats.stores += 1

    def _drop(self, key: str, kind: str):
        try:
            os.unlink(self._path(key, kind))
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Transaction entries
    # ------------------------------------------------------------------
    def get_transaction(
        self, key: str
    ) -> Optional[Tuple[Procedure, Any, List[LedgerEntry]]]:
        """The committed (procedure, result, ledger entries) for *key*.

        The returned procedure is the pickled artifact verbatim — callers
        must re-mint uids (see :func:`repro.ir.cloning.adopt_procedure`)
        before installing it into a program, because the cached uids come
        from a foreign process and may collide with live side tables. The
        ledger entries are uid-free by construction, so they are replayed
        as-is after adoption. The payload digest was verified by
        :meth:`_read` before any bytes reach ``pickle.loads``.
        """
        data = self._read(key, "txn.pkl")
        if data is None:
            return None
        try:
            proc, result, entries = pickle.loads(data)
        except Exception:
            # Digest-valid but unloadable: version skew, not corruption.
            self._drop(key, "txn.pkl")
            self.stats.hits -= 1
            self.stats.misses += 1
            return None
        return proc, result, entries

    def put_transaction(
        self,
        key: str,
        proc: Procedure,
        result: Any,
        entries: Optional[List[LedgerEntry]] = None,
    ):
        self._write(
            key,
            "txn.pkl",
            pickle.dumps(
                (proc, result, list(entries or [])),
                protocol=pickle.HIGHEST_PROTOCOL,
            ),
        )

    def drop_transaction(self, key: str):
        """Invalidate one transaction entry (e.g. it failed the
        post-adoption sanitizer); mirrors the corrupt-entry handling."""
        self._drop(key, "txn.pkl")

    # ------------------------------------------------------------------
    # Evaluation entries
    # ------------------------------------------------------------------
    def get_evaluation(self, key: str) -> Optional[dict]:
        data = self._read(key, "eval.json")
        if data is None:
            return None
        try:
            return json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._drop(key, "eval.json")
            self.stats.hits -= 1
            self.stats.misses += 1
            return None

    def put_evaluation(self, key: str, summary: dict):
        self._write(
            key,
            "eval.json",
            json.dumps(summary, sort_keys=True).encode("utf-8"),
        )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def clear(self):
        """Remove every entry of the current format version."""
        if not self.base.exists():
            return
        for path in sorted(self.base.rglob("*"), reverse=True):
            if path.is_file():
                path.unlink()
            else:
                path.rmdir()

    def entry_count(self, kind: Optional[str] = None) -> int:
        if not self.base.exists():
            return 0
        pattern = f"*.{kind}" if kind else "*.*"
        return sum(
            1
            for path in self.base.rglob(pattern)
            if QUARANTINE_DIR not in path.parts
        )

    def quarantine_count(self) -> int:
        quarantine = self.base / QUARANTINE_DIR
        if not quarantine.exists():
            return 0
        return sum(1 for _ in quarantine.iterdir())
