"""On-disk content-addressed store for build artifacts.

Two entry kinds share one store:

* **transaction entries** (``.txn.pkl``) — the committed procedure and the
  pass's return value, pickled together so shared references (a report
  pointing at operations of the procedure) survive;
* **evaluation entries** (``.eval.json``) — a whole workload's measured
  summary (cycles, counts, IR digests, incidents), stored as JSON so the
  warm fast path never touches the IR at all.

Layout: ``<root>/v<CACHE_FORMAT_VERSION>/<key[:2]>/<key>.<kind>``. Writes
are atomic (temp file + ``os.replace``) so concurrent workers racing on
the same key simply last-write-win with identical content. Reads treat any
corrupt or unreadable entry as a miss and delete it.

Invalidation is versioned: bumping :data:`CACHE_FORMAT_VERSION` orphans
every old entry (they live under the old ``v<N>`` directory and are never
consulted again). Bump it whenever pass semantics, the IR pickle format,
or the evaluation summary schema change.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, List, Optional, Tuple

from repro.ir.procedure import Procedure
from repro.obs.ledger import LedgerEntry

#: Bump on any change to pass semantics or stored payload formats.
#: v2: sanitizer battery (entries produced before the battery existed
#: were never sanitized; ICBM also tags its inserted bookkeeping ops).
#: v3: transaction entries carry the committed rung's decision-ledger
#: entries, replayed on restore so warm builds report identically.
CACHE_FORMAT_VERSION = 4

#: Environment override for the cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro-farm``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-farm"


def atomic_write_bytes(path: Path, data: bytes):
    """Write *data* to *path* via temp file + ``os.replace``.

    Readers never observe a partial file: they see either the old content
    or the new content. Shared by the cache store and the completion
    journal (:mod:`repro.farm.journal`), whose fresh-run header must be
    whole even if the writer is killed mid-start.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@dataclass
class CacheStats:
    """Hit/miss/store counters for one :class:`PassCache` handle."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def merge(self, other: "CacheStats") -> "CacheStats":
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        return self


class PassCache:
    """A content-addressed artifact store rooted at one directory."""

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root) if root is not None else default_cache_root()
        self.base = self.root / f"v{CACHE_FORMAT_VERSION}"
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Raw byte storage
    # ------------------------------------------------------------------
    def _path(self, key: str, kind: str) -> Path:
        return self.base / key[:2] / f"{key}.{kind}"

    def _read(self, key: str, kind: str) -> Optional[bytes]:
        path = self._path(key, kind)
        try:
            data = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return data

    def _write(self, key: str, kind: str, data: bytes):
        atomic_write_bytes(self._path(key, kind), data)
        self.stats.stores += 1

    def _drop(self, key: str, kind: str):
        try:
            os.unlink(self._path(key, kind))
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Transaction entries
    # ------------------------------------------------------------------
    def get_transaction(
        self, key: str
    ) -> Optional[Tuple[Procedure, Any, List[LedgerEntry]]]:
        """The committed (procedure, result, ledger entries) for *key*.

        The returned procedure is the pickled artifact verbatim — callers
        must re-mint uids (see :func:`repro.ir.cloning.adopt_procedure`)
        before installing it into a program, because the cached uids come
        from a foreign process and may collide with live side tables. The
        ledger entries are uid-free by construction, so they are replayed
        as-is after adoption.
        """
        data = self._read(key, "txn.pkl")
        if data is None:
            return None
        try:
            proc, result, entries = pickle.loads(data)
        except Exception:
            # A corrupt or version-skewed entry is a miss, not an error.
            self._drop(key, "txn.pkl")
            self.stats.hits -= 1
            self.stats.misses += 1
            return None
        return proc, result, entries

    def put_transaction(
        self,
        key: str,
        proc: Procedure,
        result: Any,
        entries: Optional[List[LedgerEntry]] = None,
    ):
        self._write(
            key,
            "txn.pkl",
            pickle.dumps(
                (proc, result, list(entries or [])),
                protocol=pickle.HIGHEST_PROTOCOL,
            ),
        )

    def drop_transaction(self, key: str):
        """Invalidate one transaction entry (e.g. it failed the
        post-adoption sanitizer); mirrors the corrupt-entry handling."""
        self._drop(key, "txn.pkl")

    # ------------------------------------------------------------------
    # Evaluation entries
    # ------------------------------------------------------------------
    def get_evaluation(self, key: str) -> Optional[dict]:
        data = self._read(key, "eval.json")
        if data is None:
            return None
        try:
            return json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._drop(key, "eval.json")
            self.stats.hits -= 1
            self.stats.misses += 1
            return None

    def put_evaluation(self, key: str, summary: dict):
        self._write(
            key,
            "eval.json",
            json.dumps(summary, sort_keys=True).encode("utf-8"),
        )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def clear(self):
        """Remove every entry of the current format version."""
        if not self.base.exists():
            return
        for path in sorted(self.base.rglob("*"), reverse=True):
            if path.is_file():
                path.unlink()
            else:
                path.rmdir()

    def entry_count(self, kind: Optional[str] = None) -> int:
        if not self.base.exists():
            return 0
        pattern = f"*.{kind}" if kind else "*.*"
        return sum(1 for _ in self.base.rglob(pattern))
