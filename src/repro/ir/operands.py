"""Operand kinds for the PlayDoh-style IR.

The IR is a register machine with four register files plus immediates:

* ``Reg``     — general-purpose integer registers (``r1``, ``r2``, ...)
* ``FReg``    — floating-point registers (``f1``, ...)
* ``PredReg`` — one-bit predicate registers (``p1``, ...); these guard
  operations and are the destinations of ``cmpp`` operations
* ``BTR``     — branch-target registers written by ``pbr`` (prepare-to-branch)
  and read by ``branch`` operations, mirroring PlayDoh's two-step branches
* ``Imm``     — integer or float immediates
* ``Label``   — symbolic code label, used as the operand of ``pbr``/``jump``

All operand objects are immutable and hashable so they can key dependence
maps directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, order=True)
class Reg:
    """General-purpose integer register ``r<index>``."""

    index: int

    def __repr__(self):
        return f"r{self.index}"


@dataclass(frozen=True, order=True)
class FReg:
    """Floating-point register ``f<index>``."""

    index: int

    def __repr__(self):
        return f"f{self.index}"


@dataclass(frozen=True, order=True)
class PredReg:
    """One-bit predicate register ``p<index>``.

    ``PredReg(0)`` is reserved by convention as the always-true predicate and
    printed as ``T``; the builder exposes it as :data:`TRUE_PRED`.
    """

    index: int

    def __repr__(self):
        return "T" if self.index == 0 else f"p{self.index}"


@dataclass(frozen=True, order=True)
class BTR:
    """Branch-target register ``b<index>`` (PlayDoh prepare-to-branch)."""

    index: int

    def __repr__(self):
        return f"b{self.index}"


@dataclass(frozen=True)
class Imm:
    """Immediate operand; value may be int or float."""

    value: Union[int, float]

    def __repr__(self):
        return repr(self.value)


@dataclass(frozen=True, order=True)
class Label:
    """Symbolic code label naming a block (branch/pbr/jump target)."""

    name: str

    def __repr__(self):
        return self.name


#: The always-true guard predicate (printed ``T``).
TRUE_PRED = PredReg(0)

#: Every register-like operand kind (things that carry machine state).
RegisterOperand = (Reg, FReg, PredReg, BTR)

#: Anything that may appear as an operation source.
Operand = Union[Reg, FReg, PredReg, BTR, Imm, Label]


def is_register(operand) -> bool:
    """Return True when *operand* names mutable machine state."""
    return isinstance(operand, RegisterOperand)
