"""Procedures and whole programs.

A :class:`Procedure` owns an ordered list of :class:`~repro.ir.block.Block`
objects (layout order matters: fall-through edges follow it), its formal
parameter registers, and a register-number allocator so passes can mint fresh
virtual registers without collisions.

A :class:`Program` is a named collection of procedures plus global data
segments (named arrays with initial contents), which the simulator
materializes into memory at load time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import IRError
from repro.ir.block import Block
from repro.ir.operands import BTR, FReg, Label, PredReg, Reg


class Procedure:
    """A function body: ordered blocks, parameters, register allocator."""

    def __init__(self, name: str, params: Sequence[Reg] = ()):
        self.name = name
        self.params: List[Reg] = list(params)
        self.blocks: List[Block] = []
        self._by_label: Dict[Label, Block] = {}
        self._next_reg = 1
        self._next_pred = 1
        self._next_btr = 1
        self._next_freg = 1
        self._next_label = 1
        for param in self.params:
            self._next_reg = max(self._next_reg, param.index + 1)

    # ------------------------------------------------------------------
    # Block management
    # ------------------------------------------------------------------
    @property
    def entry(self) -> Block:
        if not self.blocks:
            raise IRError(f"procedure {self.name} has no blocks")
        return self.blocks[0]

    def add_block(self, block: Block, after: Optional[Block] = None) -> Block:
        if block.label in self._by_label:
            raise IRError(f"duplicate block label {block.label}")
        if after is None:
            self.blocks.append(block)
        else:
            self.blocks.insert(self.blocks.index(after) + 1, block)
        self._by_label[block.label] = block
        return block

    def remove_block(self, block: Block):
        self.blocks.remove(block)
        del self._by_label[block.label]

    def block(self, label) -> Block:
        if isinstance(label, str):
            label = Label(label)
        try:
            return self._by_label[label]
        except KeyError:
            raise IRError(
                f"no block {label} in procedure {self.name}"
            ) from None

    def has_block(self, label) -> bool:
        if isinstance(label, str):
            label = Label(label)
        return label in self._by_label

    def __iter__(self) -> Iterator[Block]:
        return iter(self.blocks)

    # ------------------------------------------------------------------
    # Fresh-name allocation
    # ------------------------------------------------------------------
    def new_reg(self) -> Reg:
        reg = Reg(self._next_reg)
        self._next_reg += 1
        return reg

    def new_freg(self) -> FReg:
        reg = FReg(self._next_freg)
        self._next_freg += 1
        return reg

    def new_pred(self) -> PredReg:
        pred = PredReg(self._next_pred)
        self._next_pred += 1
        return pred

    def new_btr(self) -> BTR:
        btr = BTR(self._next_btr)
        self._next_btr += 1
        return btr

    def new_label(self, stem: str = "L") -> Label:
        while True:
            label = Label(f"{stem}{self._next_label}")
            self._next_label += 1
            if label not in self._by_label:
                return label

    def note_used_names(self):
        """Bump allocators past every register already referenced, so fresh
        names never collide with hand-built or parsed code."""
        for block in self.blocks:
            for op in block.ops:
                for reg in op.dest_registers() + op.source_registers():
                    if isinstance(reg, Reg):
                        self._next_reg = max(self._next_reg, reg.index + 1)
                    elif isinstance(reg, PredReg):
                        self._next_pred = max(self._next_pred, reg.index + 1)
                    elif isinstance(reg, BTR):
                        self._next_btr = max(self._next_btr, reg.index + 1)
                    elif isinstance(reg, FReg):
                        self._next_freg = max(self._next_freg, reg.index + 1)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def all_ops(self):
        for block in self.blocks:
            yield from block.ops

    def op_count(self) -> int:
        return sum(len(block.ops) for block in self.blocks)

    def format(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        header = f"proc {self.name}({params})"
        return "\n".join([header] + [block.format() for block in self.blocks])

    def __repr__(self):
        return f"<Procedure {self.name} ({len(self.blocks)} blocks)>"


@dataclass
class DataSegment:
    """A named global array with optional initial integer contents."""

    name: str
    size: int
    initial: List[int] = field(default_factory=list)
    base: Optional[int] = None  # assigned by the simulator loader

    def __post_init__(self):
        if len(self.initial) > self.size:
            raise IRError(
                f"segment {self.name}: {len(self.initial)} initializers "
                f"exceed size {self.size}"
            )


class Program:
    """A compilation unit: procedures plus global data segments."""

    def __init__(self, name: str = "program"):
        self.name = name
        self.procedures: Dict[str, Procedure] = {}
        self.segments: Dict[str, DataSegment] = {}

    def add_procedure(self, proc: Procedure) -> Procedure:
        if proc.name in self.procedures:
            raise IRError(f"duplicate procedure {proc.name}")
        self.procedures[proc.name] = proc
        return proc

    def procedure(self, name: str) -> Procedure:
        try:
            return self.procedures[name]
        except KeyError:
            raise IRError(f"no procedure named {name}") from None

    def add_segment(self, segment: DataSegment) -> DataSegment:
        if segment.name in self.segments:
            raise IRError(f"duplicate data segment {segment.name}")
        self.segments[segment.name] = segment
        return segment

    def segment(self, name: str) -> DataSegment:
        try:
            return self.segments[name]
        except KeyError:
            raise IRError(f"no data segment named {name}") from None

    def clone(self) -> "Program":
        """Deep copy via print/parse round-trip-free structural cloning."""
        from repro.ir.cloning import clone_program

        return clone_program(self)

    def format(self) -> str:
        parts = []
        for segment in self.segments.values():
            init = ""
            if segment.initial:
                init = " = [" + ", ".join(map(str, segment.initial)) + "]"
            parts.append(f"data {segment.name}[{segment.size}]{init}")
        parts.extend(p.format() for p in self.procedures.values())
        return "\n\n".join(parts)

    def __repr__(self):
        return (
            f"<Program {self.name}: {len(self.procedures)} procs, "
            f"{len(self.segments)} segments>"
        )
