"""IR well-formedness verifier.

Checks structural invariants every pass must preserve:

* block labels are unique and every referenced label resolves;
* every ``branch`` has a predicate source, a BTR source, and a resolved
  target label consistent with its defining ``pbr`` when that is local;
* ``cmpp`` shape rules (enforced at construction, re-checked here);
* control never passes an unconditional transfer: no operations after an
  unguarded ``jump``/``return``, and at most one unguarded terminator
  per block (guarded early returns are fine — they are conditional);
* the final block does not fall off the end of the procedure;
* every ``call`` names a known procedure (when a Program context is given).

``verify_program``/``verify_procedure`` raise :class:`VerificationError`
listing all problems, so tests can assert the full set at once.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import VerificationError
from repro.ir.opcodes import Opcode
from repro.ir.operands import BTR, Label, PredReg
from repro.ir.procedure import Procedure, Program


def check_procedure(
    proc: Procedure, program: Optional[Program] = None
) -> List[str]:
    """Return a list of problem descriptions (empty when well-formed)."""
    problems: List[str] = []
    labels = {block.label for block in proc.blocks}
    if len(labels) != len(proc.blocks):
        problems.append(f"{proc.name}: duplicate block labels")
    if not proc.blocks:
        problems.append(f"{proc.name}: procedure has no blocks")
        return problems

    for block in proc.blocks:
        pbr_targets = {}
        terminated = None  # first unguarded jump/return seen
        for op in block.ops:
            where = f"{proc.name}/{block.label}/uid={op.uid}"
            unconditional_exit = (
                op.opcode in (Opcode.JUMP, Opcode.RETURN)
                and not op.is_guarded
            )
            if terminated is not None:
                if unconditional_exit:
                    problems.append(
                        f"{where}: second unconditional "
                        f"{op.opcode.name.lower()} in block (after "
                        f"uid={terminated.uid})"
                    )
                else:
                    problems.append(
                        f"{where}: unreachable op after unconditional "
                        f"{terminated.opcode.name.lower()} "
                        f"uid={terminated.uid}"
                    )
            elif unconditional_exit:
                terminated = op
            if op.opcode is Opcode.PBR:
                target = op.branch_target()
                if target is None:
                    problems.append(f"{where}: pbr without label source")
                elif op.dests and isinstance(op.dests[0], BTR):
                    pbr_targets[op.dests[0]] = target
                if not op.dests:
                    problems.append(f"{where}: pbr without BTR destination")
            elif op.opcode is Opcode.BRANCH:
                if len(op.srcs) != 2:
                    problems.append(
                        f"{where}: branch needs (pred, btr) sources"
                    )
                else:
                    pred, btr = op.srcs
                    if not isinstance(pred, PredReg):
                        problems.append(
                            f"{where}: branch predicate is {pred!r}"
                        )
                    if not isinstance(btr, BTR):
                        problems.append(f"{where}: branch through {btr!r}")
                target = op.branch_target()
                if target is None:
                    problems.append(f"{where}: branch with unresolved target")
                elif target not in labels:
                    problems.append(
                        f"{where}: branch target {target} not in procedure"
                    )
                elif (
                    len(op.srcs) == 2
                    and isinstance(op.srcs[1], BTR)
                    and op.srcs[1] in pbr_targets
                    and pbr_targets[op.srcs[1]] != target
                ):
                    problems.append(
                        f"{where}: branch target {target} disagrees with "
                        f"pbr target {pbr_targets[op.srcs[1]]}"
                    )
            elif op.opcode is Opcode.JUMP:
                target = op.branch_target()
                if target is None or target not in labels:
                    problems.append(f"{where}: jump to unknown {target}")
                if op is not block.ops[-1]:
                    problems.append(f"{where}: jump not at end of block")
            elif op.opcode is Opcode.CALL:
                callee = op.attrs.get("callee")
                if callee is None:
                    problems.append(f"{where}: call without callee attr")
                elif program is not None and callee not in program.procedures:
                    problems.append(f"{where}: call to unknown {callee}")

        if block.fallthrough is not None:
            if block.fallthrough not in labels:
                problems.append(
                    f"{proc.name}/{block.label}: falls through to unknown "
                    f"{block.fallthrough}"
                )
        elif block.terminator() is None and not block.has_return():
            if block is proc.blocks[-1]:
                problems.append(
                    f"{proc.name}/{block.label}: final block falls off the "
                    "end of the procedure"
                )
            else:
                problems.append(
                    f"{proc.name}/{block.label}: no fallthrough, jump, or "
                    "return"
                )
    return problems


def verify_procedure(proc: Procedure, program: Optional[Program] = None):
    problems = check_procedure(proc, program)
    if problems:
        raise VerificationError(problems)


def verify_program(program: Program):
    problems: List[str] = []
    for proc in program.procedures.values():
        problems.extend(check_procedure(proc, program))
    if problems:
        raise VerificationError(problems)
