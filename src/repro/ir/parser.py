"""Parser for the IR's textual assembly form.

Accepts the syntax produced by :meth:`Program.format` /
:meth:`Procedure.format`, enabling round-trip tests and letting workloads or
examples embed hand-written PlayDoh-style assembly::

    data A[64] = [1, 2, 3]

    proc main()
    Loop:
      r21 = add (r2, 0) if T
      store (r21, r34) if T
      p51, p61 = cmpp.un.uc eq (r31, 0) if T
      b1 = pbr (Exit)
      branch (p51, b1)  # -> Exit
      # falls through to Exit
    Exit:
      return ()

Comment lines beginning ``#`` are ignored except the block-trailer
``# falls through to <label>`` which restores fall-through edges, and the
branch-target annotation ``# -> <label>``.
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.errors import ParseError
from repro.ir.block import Block
from repro.ir.opcodes import Cond, Opcode
from repro.ir.operands import BTR, FReg, Imm, Label, PredReg, Reg, TRUE_PRED
from repro.ir.operation import Operation, PredTarget
from repro.ir.procedure import DataSegment, Procedure, Program
from repro.ir.semantics import parse_action

_OPCODES_BY_NAME = {op.value: op for op in Opcode}

_REG_RE = re.compile(r"^(r|f|p|b)(\d+)$")


def _parse_operand(token: str):
    token = token.strip()
    if not token:
        raise ParseError("empty operand")
    if token == "T":
        return TRUE_PRED
    match = _REG_RE.match(token)
    if match:
        kind, index = match.group(1), int(match.group(2))
        return {"r": Reg, "f": FReg, "p": PredReg, "b": BTR}[kind](index)
    try:
        return Imm(int(token))
    except ValueError:
        pass
    try:
        return Imm(float(token))
    except ValueError:
        pass
    if re.match(r"^[A-Za-z_][A-Za-z0-9_.$]*$", token):
        return Label(token)
    raise ParseError(f"cannot parse operand {token!r}")


def _split_operands(text: str) -> List[str]:
    text = text.strip()
    if not text:
        return []
    return [part.strip() for part in text.split(",")]


class _LineParser:
    """Parses one operation line into an :class:`Operation`."""

    LINE_RE = re.compile(
        r"^(?:(?P<dests>[^=]+?)\s*=\s*)?"
        r"(?P<mnemonic>[a-z_0-9.]+)\s*"
        r"(?:(?P<cond>eq|ne|lt|le|gt|ge)\s*)?"
        r"\((?P<srcs>[^)]*)\)"
        r"(?:\s*if\s+(?P<guard>\S+))?"
        r"(?:\s*#\s*->\s*(?P<target>\S+))?\s*$"
    )

    def parse(self, text: str, line_no: int) -> Operation:
        match = self.LINE_RE.match(text.strip())
        if not match:
            raise ParseError(f"cannot parse operation {text!r}", line=line_no)
        mnemonic = match.group("mnemonic")
        srcs = [_parse_operand(t) for t in _split_operands(match.group("srcs"))]
        guard_text = match.group("guard")
        guard = _parse_operand(guard_text) if guard_text else TRUE_PRED
        if not isinstance(guard, PredReg):
            raise ParseError(f"guard must be a predicate: {guard_text!r}",
                             line=line_no)
        dest_tokens = _split_operands(match.group("dests") or "")

        if mnemonic.startswith("cmpp."):
            actions = [parse_action(a) for a in mnemonic.split(".")[1:]]
            cond_text = match.group("cond")
            if cond_text is None:
                raise ParseError("cmpp requires a condition", line=line_no)
            if len(actions) != len(dest_tokens):
                raise ParseError(
                    "cmpp action count must match destination count",
                    line=line_no,
                )
            dests = []
            for token, action in zip(dest_tokens, actions):
                reg = _parse_operand(token)
                if not isinstance(reg, PredReg):
                    raise ParseError(
                        f"cmpp destination must be a predicate: {token!r}",
                        line=line_no,
                    )
                dests.append(PredTarget(reg, action))
            return Operation(
                Opcode.CMPP, dests=dests, srcs=srcs, guard=guard,
                cond=Cond(cond_text),
            )

        opcode = _OPCODES_BY_NAME.get(mnemonic)
        if opcode is None:
            raise ParseError(f"unknown opcode {mnemonic!r}", line=line_no)
        if match.group("cond") is not None:
            raise ParseError(
                f"{mnemonic} does not take a condition", line=line_no
            )
        dests = [_parse_operand(t) for t in dest_tokens]
        op = Operation(opcode, dests=dests, srcs=srcs, guard=guard)
        target_text = match.group("target")
        if target_text is not None and opcode is Opcode.BRANCH:
            op.attrs["target"] = Label(target_text)
        if opcode is Opcode.CALL and srcs and isinstance(srcs[0], Label):
            # call syntax: call (Callee, arg...)
            op.attrs["callee"] = srcs[0].name
            op.srcs = srcs[1:]
        return op


_FALLTHROUGH_RE = re.compile(r"^#\s*falls through to\s+(\S+)\s*$")
_DATA_RE = re.compile(
    r"^data\s+([A-Za-z_][A-Za-z0-9_]*)\[(\d+)\]\s*(?:=\s*\[([^\]]*)\])?\s*$"
)
_PROC_RE = re.compile(r"^proc\s+([A-Za-z_][A-Za-z0-9_]*)\(([^)]*)\)\s*$")
_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_.$]*):\s*$")


def parse_program(text: str, name: str = "program") -> Program:
    """Parse a whole textual program (segments + procedures)."""
    program = Program(name)
    proc: Optional[Procedure] = None
    block: Optional[Block] = None
    line_parser = _LineParser()

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue

        data_match = _DATA_RE.match(line)
        if data_match:
            name_, size, init = data_match.groups()
            initial = (
                [int(v) for v in _split_operands(init)] if init else []
            )
            program.add_segment(
                DataSegment(name=name_, size=int(size), initial=initial)
            )
            continue

        proc_match = _PROC_RE.match(line)
        if proc_match:
            params = [
                _parse_operand(t)
                for t in _split_operands(proc_match.group(2))
            ]
            proc = Procedure(proc_match.group(1), params=params)
            program.add_procedure(proc)
            block = None
            continue

        label_match = _LABEL_RE.match(line)
        if label_match:
            if proc is None:
                raise ParseError("label outside procedure", line=line_no)
            block = Block(label=Label(label_match.group(1)))
            proc.add_block(block)
            continue

        fall_match = _FALLTHROUGH_RE.match(line)
        if fall_match:
            if block is None:
                raise ParseError("fallthrough outside block", line=line_no)
            block.fallthrough = Label(fall_match.group(1))
            continue

        if line.startswith("#"):
            continue

        if block is None:
            raise ParseError(f"operation outside block: {line!r}",
                             line=line_no)
        block.append(line_parser.parse(line, line_no))

    _resolve_branch_targets(program)
    for procedure in program.procedures.values():
        procedure.note_used_names()
    return program


def parse_procedure(text: str, name: str = "main") -> Procedure:
    """Parse a single procedure body (no ``proc`` header required)."""
    if "proc " not in text:
        text = f"proc {name}()\n" + text
    program = parse_program(text)
    return next(iter(program.procedures.values()))


def _resolve_branch_targets(program: Program):
    """Fill branch targets from their defining pbr when not annotated."""
    for proc in program.procedures.values():
        for block in proc.blocks:
            btr_targets = {}
            for op in block.ops:
                if op.opcode is Opcode.PBR and op.dests:
                    btr_targets[op.dests[0]] = op.branch_target()
                elif (
                    op.opcode is Opcode.BRANCH
                    and "target" not in op.attrs
                    and len(op.srcs) == 2
                    and op.srcs[1] in btr_targets
                ):
                    op.attrs["target"] = btr_targets[op.srcs[1]]
