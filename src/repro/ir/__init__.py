"""PlayDoh-style predicated EPIC intermediate representation.

Public surface re-exported here: operand kinds, opcodes, cmpp action
semantics (the paper's Table 1), operations, blocks, procedures, programs,
the fluent builder, the textual parser, the CFG view, and the verifier.
"""

from repro.ir.block import Block
from repro.ir.builder import IRBuilder
from repro.ir.cfg import ControlFlowGraph, Edge
from repro.ir.cloning import clone_procedure, clone_program
from repro.ir.opcodes import Cond, Opcode
from repro.ir.operands import (
    BTR,
    FReg,
    Imm,
    Label,
    PredReg,
    Reg,
    TRUE_PRED,
    is_register,
)
from repro.ir.operation import Operation, PredTarget
from repro.ir.parser import parse_procedure, parse_program
from repro.ir.procedure import DataSegment, Procedure, Program
from repro.ir.semantics import Action, parse_action
from repro.ir.verify import check_procedure, verify_procedure, verify_program

__all__ = [
    "Action",
    "BTR",
    "Block",
    "Cond",
    "ControlFlowGraph",
    "DataSegment",
    "Edge",
    "FReg",
    "IRBuilder",
    "Imm",
    "Label",
    "Opcode",
    "Operation",
    "PredReg",
    "PredTarget",
    "Procedure",
    "Program",
    "Reg",
    "TRUE_PRED",
    "check_procedure",
    "clone_procedure",
    "clone_program",
    "is_register",
    "parse_action",
    "parse_procedure",
    "parse_program",
    "verify_procedure",
    "verify_program",
]
