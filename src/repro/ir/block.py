"""Blocks: single-entry, multi-exit linear operation regions.

Following the superblock/hyperblock view of the paper (and the IMPACT/Elcor
compilers it builds on), a :class:`Block` is *not* restricted to a single
terminator. It is a linear list of operations that may contain several exit
branches in the middle (superblock side exits) and optionally ends with an
unconditional ``jump``; otherwise control falls through to the block named by
``fallthrough``.

This representation makes FRP conversion and control CPR local rewrites of a
single block's operation list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.ir.opcodes import Opcode
from repro.ir.operands import Label
from repro.ir.operation import Operation


@dataclass
class Block:
    """A labeled linear code region with embedded exit branches."""

    label: Label
    ops: List[Operation] = field(default_factory=list)
    fallthrough: Optional[Label] = None
    # Profile annotations (filled by repro.sim.profiler / transforms).
    entry_count: int = 0

    def __post_init__(self):
        if isinstance(self.label, str):
            self.label = Label(self.label)
        if isinstance(self.fallthrough, str):
            self.fallthrough = Label(self.fallthrough)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def branches(self) -> List[Operation]:
        """All control-transfer operations, in program order."""
        return [op for op in self.ops if op.is_branch]

    def exit_branches(self) -> List[Operation]:
        """Conditional exits only (``branch`` ops, not the final jump)."""
        return [op for op in self.ops if op.opcode is Opcode.BRANCH]

    def terminator(self) -> Optional[Operation]:
        """The trailing unconditional transfer, if any."""
        if self.ops and self.ops[-1].opcode in (
            Opcode.JUMP,
            Opcode.RETURN,
        ):
            return self.ops[-1]
        return None

    def successor_labels(self) -> List[Label]:
        """Every label control may transfer to from this block, in order:
        each conditional exit target, then the jump target or fallthrough."""
        labels = []
        for op in self.ops:
            if op.opcode is Opcode.BRANCH:
                target = op.branch_target()
                if target is not None:
                    labels.append(target)
            elif op.opcode is Opcode.JUMP:
                labels.append(op.branch_target())
        terminator = self.terminator()
        if terminator is None and self.fallthrough is not None:
            labels.append(self.fallthrough)
        return labels

    def has_return(self) -> bool:
        return any(op.opcode is Opcode.RETURN for op in self.ops)

    def index_of(self, op: Operation) -> int:
        """Position of *op* (by identity) in the operation list."""
        for i, candidate in enumerate(self.ops):
            if candidate is op:
                return i
        raise ValueError(f"operation uid={op.uid} not in block {self.label}")

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, op: Operation) -> Operation:
        self.ops.append(op)
        return op

    def insert_after(self, anchor: Operation, op: Operation) -> Operation:
        self.ops.insert(self.index_of(anchor) + 1, op)
        return op

    def insert_before(self, anchor: Operation, op: Operation) -> Operation:
        self.ops.insert(self.index_of(anchor), op)
        return op

    def remove(self, op: Operation):
        self.ops.pop(self.index_of(op))

    def clone(self, new_label: Label, preserve_uids: bool = False) -> "Block":
        """Copy with fresh operation uids under a new label.

        The fallthrough is preserved; callers retarget as needed.
        ``preserve_uids=True`` keeps operation uids (snapshot/rollback use).
        """
        copy = Block(label=new_label, fallthrough=self.fallthrough)
        copy.ops = [op.clone(preserve_uid=preserve_uids) for op in self.ops]
        copy.entry_count = self.entry_count
        return copy

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self):
        return f"<Block {self.label} ({len(self.ops)} ops)>"

    def format(self) -> str:
        lines = [f"{self.label}:"]
        lines.extend(f"  {op.format()}" for op in self.ops)
        if self.fallthrough is not None and self.terminator() is None:
            lines.append(f"  # falls through to {self.fallthrough}")
        return "\n".join(lines)
