"""Structural deep-cloning of procedures and programs.

Cloning preserves labels and register names but mints fresh operation uids,
so a cloned procedure can be transformed independently while side tables
keyed by uid never alias the original.
"""

from __future__ import annotations

from repro.ir.procedure import DataSegment, Procedure, Program


def clone_procedure(proc: Procedure) -> Procedure:
    copy = Procedure(proc.name, params=list(proc.params))
    for block in proc.blocks:
        copy.add_block(block.clone(block.label))
    copy._next_reg = proc._next_reg
    copy._next_pred = proc._next_pred
    copy._next_btr = proc._next_btr
    copy._next_freg = proc._next_freg
    copy._next_label = proc._next_label
    return copy


def clone_program(program: Program) -> Program:
    copy = Program(program.name)
    for segment in program.segments.values():
        copy.add_segment(
            DataSegment(
                name=segment.name,
                size=segment.size,
                initial=list(segment.initial),
            )
        )
    for proc in program.procedures.values():
        copy.add_procedure(clone_procedure(proc))
    return copy
