"""Structural deep-cloning of procedures and programs.

Cloning preserves labels and register names but mints fresh operation uids,
so a cloned procedure can be transformed independently while side tables
keyed by uid never alias the original.

:func:`snapshot_procedure` / :func:`restore_procedure` are the exception:
they implement the pass manager's transactional rollback, where the restored
procedure must be *indistinguishable* from the pre-pass original — same
labels, same registers, and same operation uids, so profile data collected
before the pass still applies after a rollback.
"""

from __future__ import annotations

from repro.ir.procedure import DataSegment, Procedure, Program


def clone_procedure(proc: Procedure, preserve_uids: bool = False) -> Procedure:
    copy = Procedure(proc.name, params=list(proc.params))
    for block in proc.blocks:
        copy.add_block(block.clone(block.label, preserve_uids=preserve_uids))
    copy._next_reg = proc._next_reg
    copy._next_pred = proc._next_pred
    copy._next_btr = proc._next_btr
    copy._next_freg = proc._next_freg
    copy._next_label = proc._next_label
    return copy


def snapshot_procedure(proc: Procedure) -> Procedure:
    """Take a frozen pre-pass copy of *proc* for transactional rollback.

    Operation uids are preserved so that restoring the snapshot keeps every
    uid-keyed side table (branch profiles, op counts) valid.
    """
    return clone_procedure(proc, preserve_uids=True)


def restore_procedure(proc: Procedure, snapshot: Procedure) -> Procedure:
    """Restore *proc* in place from *snapshot* and return it.

    The restore is in place — ``proc`` keeps its object identity, so the
    owning :class:`Program` and any pass-local references stay valid. The
    snapshot itself is never installed (a fresh uid-preserving clone is),
    so one snapshot supports any number of restores.
    """
    fresh = clone_procedure(snapshot, preserve_uids=True)
    proc.params = fresh.params
    proc.blocks = fresh.blocks
    proc._by_label = fresh._by_label
    proc._next_reg = fresh._next_reg
    proc._next_pred = fresh._next_pred
    proc._next_btr = fresh._next_btr
    proc._next_freg = fresh._next_freg
    proc._next_label = fresh._next_label
    return proc


def adopt_procedure(proc: Procedure, replacement: Procedure) -> Procedure:
    """Replace *proc*'s body in place with a fresh-uid clone of *replacement*.

    The dual of :func:`restore_procedure`, for installing a procedure that
    came from *outside* the current process (a cache entry): the clone
    mints fresh uids from this process's counter, so the adopted ops can
    never alias uid-keyed side tables populated by other procedures.
    Profile data collected *before* the adoption no longer applies to the
    adopted ops; callers that feed a pre-adoption profile into a later
    pass must re-profile first.
    """
    fresh = clone_procedure(replacement, preserve_uids=False)
    proc.params = fresh.params
    proc.blocks = fresh.blocks
    proc._by_label = fresh._by_label
    proc._next_reg = fresh._next_reg
    proc._next_pred = fresh._next_pred
    proc._next_btr = fresh._next_btr
    proc._next_freg = fresh._next_freg
    proc._next_label = fresh._next_label
    return proc


def clone_program(program: Program) -> Program:
    copy = Program(program.name)
    for segment in program.segments.values():
        copy.add_segment(
            DataSegment(
                name=segment.name,
                size=segment.size,
                initial=list(segment.initial),
            )
        )
    for proc in program.procedures.values():
        copy.add_procedure(clone_procedure(proc))
    return copy
