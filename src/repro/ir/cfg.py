"""Control-flow graph view over a procedure.

The CFG is a derived, read-only index: nodes are block labels, edges are the
possible transfers computed from each block's exit branches, terminator, and
fall-through. Edges are tagged with their kind so profile attribution and
superblock formation can distinguish side exits from fall-through flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.ir.block import Block
from repro.ir.opcodes import Opcode
from repro.ir.operands import Label
from repro.ir.operation import Operation
from repro.ir.procedure import Procedure


@dataclass(frozen=True)
class Edge:
    """One control-flow edge, tagged with its origin."""

    src: Label
    dst: Label
    kind: str  # 'branch', 'jump', or 'fallthrough'
    op_uid: Optional[int] = None  # uid of the branch/jump op, if any

    def __repr__(self):
        return f"{self.src} -[{self.kind}]-> {self.dst}"


class ControlFlowGraph:
    """Immutable snapshot of a procedure's control flow."""

    def __init__(self, proc: Procedure):
        self.proc = proc
        self.entry = proc.entry.label
        self.edges: List[Edge] = []
        self._succs: Dict[Label, List[Edge]] = {b.label: [] for b in proc}
        self._preds: Dict[Label, List[Edge]] = {b.label: [] for b in proc}
        for block in proc:
            for edge in _block_edges(block):
                if edge.dst not in self._succs:
                    # Target outside the procedure (verifier will flag it).
                    continue
                self.edges.append(edge)
                self._succs[edge.src].append(edge)
                self._preds[edge.dst].append(edge)

    def successors(self, label: Label) -> List[Label]:
        return [edge.dst for edge in self._succs[label]]

    def predecessors(self, label: Label) -> List[Label]:
        return [edge.src for edge in self._preds[label]]

    def out_edges(self, label: Label) -> List[Edge]:
        return list(self._succs[label])

    def in_edges(self, label: Label) -> List[Edge]:
        return list(self._preds[label])

    def reachable(self) -> Set[Label]:
        """Labels reachable from the entry block."""
        seen: Set[Label] = set()
        stack = [self.entry]
        while stack:
            label = stack.pop()
            if label in seen:
                continue
            seen.add(label)
            stack.extend(self.successors(label))
        return seen

    def reverse_postorder(self) -> List[Label]:
        """Reverse postorder over reachable blocks (good dataflow order)."""
        seen: Set[Label] = set()
        order: List[Label] = []

        def visit(label: Label):
            stack = [(label, iter(self.successors(label)))]
            seen.add(label)
            while stack:
                current, successors = stack[-1]
                advanced = False
                for succ in successors:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(self.successors(succ))))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self.entry)
        order.reverse()
        return order


def _block_edges(block: Block) -> List[Edge]:
    edges: List[Edge] = []
    for op in block.ops:
        if op.opcode is Opcode.BRANCH:
            target = op.branch_target()
            if target is not None:
                edges.append(Edge(block.label, target, "branch", op.uid))
        elif op.opcode is Opcode.JUMP:
            target = op.branch_target()
            if target is not None:
                edges.append(Edge(block.label, target, "jump", op.uid))
    if block.terminator() is None and block.fallthrough is not None:
        edges.append(Edge(block.label, block.fallthrough, "fallthrough"))
    return edges


def branch_for_edge(block: Block, edge: Edge) -> Optional[Operation]:
    """The branch operation realizing *edge*, or None for fall-through."""
    if edge.op_uid is None:
        return None
    for op in block.ops:
        if op.uid == edge.op_uid:
            return op
    return None
