"""Fluent construction helpers for IR procedures.

:class:`IRBuilder` keeps a current insertion block and exposes one method per
opcode; each returns the destination register (or the operation itself for
void ops) so code reads like straight-line assembly::

    builder = IRBuilder(proc)
    entry = builder.start_block("Loop")
    value = builder.load(addr)
    taken, fall = builder.cmpp2(Cond.EQ, value, 0)
    builder.branch_to("Exit", taken)

Branches are built PlayDoh-style: ``branch_to`` emits the ``pbr`` (prepare to
branch) and the guarded ``branch`` pair, recording the resolved target on the
branch operation for CFG construction.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.errors import IRError
from repro.ir.block import Block
from repro.ir.opcodes import Cond, Opcode
from repro.ir.operands import (
    BTR,
    FReg,
    Imm,
    Label,
    PredReg,
    Reg,
    TRUE_PRED,
)
from repro.ir.operation import Operation, PredTarget
from repro.ir.procedure import Procedure
from repro.ir.semantics import Action

Value = Union[Reg, FReg, PredReg, Imm, int, float]


def _lift(value: Value):
    """Wrap bare Python numbers as immediates."""
    if isinstance(value, bool):
        return Imm(int(value))
    if isinstance(value, (int, float)):
        return Imm(value)
    return value


class IRBuilder:
    """Builds operations into the blocks of one procedure."""

    def __init__(self, proc: Procedure):
        self.proc = proc
        self.block: Optional[Block] = None

    # ------------------------------------------------------------------
    # Block control
    # ------------------------------------------------------------------
    def start_block(
        self, label: Union[str, Label], fallthrough: Optional[str] = None
    ) -> Block:
        if isinstance(label, str):
            label = Label(label)
        block = Block(label=label, fallthrough=fallthrough)
        self.proc.add_block(block)
        self.block = block
        return block

    def use_block(self, block: Block) -> Block:
        self.block = block
        return block

    def emit(self, op: Operation) -> Operation:
        if self.block is None:
            raise IRError("no current block; call start_block first")
        self.block.append(op)
        return op

    # ------------------------------------------------------------------
    # Arithmetic and moves
    # ------------------------------------------------------------------
    def _binop(self, opcode: Opcode, a, b, guard, dest=None):
        dest = dest or self.proc.new_reg()
        self.emit(
            Operation(
                opcode,
                dests=[dest],
                srcs=[_lift(a), _lift(b)],
                guard=guard or TRUE_PRED,
            )
        )
        return dest

    def add(self, a, b, guard=None, dest=None):
        return self._binop(Opcode.ADD, a, b, guard, dest)

    def sub(self, a, b, guard=None, dest=None):
        return self._binop(Opcode.SUB, a, b, guard, dest)

    def mul(self, a, b, guard=None, dest=None):
        return self._binop(Opcode.MUL, a, b, guard, dest)

    def div(self, a, b, guard=None, dest=None):
        return self._binop(Opcode.DIV, a, b, guard, dest)

    def rem(self, a, b, guard=None, dest=None):
        return self._binop(Opcode.REM, a, b, guard, dest)

    def and_(self, a, b, guard=None, dest=None):
        return self._binop(Opcode.AND, a, b, guard, dest)

    def or_(self, a, b, guard=None, dest=None):
        return self._binop(Opcode.OR, a, b, guard, dest)

    def xor(self, a, b, guard=None, dest=None):
        return self._binop(Opcode.XOR, a, b, guard, dest)

    def shl(self, a, b, guard=None, dest=None):
        return self._binop(Opcode.SHL, a, b, guard, dest)

    def shr(self, a, b, guard=None, dest=None):
        return self._binop(Opcode.SHR, a, b, guard, dest)

    def mov(self, a, guard=None, dest=None):
        dest = dest or self.proc.new_reg()
        self.emit(
            Operation(
                Opcode.MOV, dests=[dest], srcs=[_lift(a)],
                guard=guard or TRUE_PRED,
            )
        )
        return dest

    def fadd(self, a, b, guard=None, dest=None):
        dest = dest or self.proc.new_freg()
        return self._binop(Opcode.FADD, a, b, guard, dest)

    def fsub(self, a, b, guard=None, dest=None):
        dest = dest or self.proc.new_freg()
        return self._binop(Opcode.FSUB, a, b, guard, dest)

    def fmul(self, a, b, guard=None, dest=None):
        dest = dest or self.proc.new_freg()
        return self._binop(Opcode.FMUL, a, b, guard, dest)

    def fdiv(self, a, b, guard=None, dest=None):
        dest = dest or self.proc.new_freg()
        return self._binop(Opcode.FDIV, a, b, guard, dest)

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def load(self, addr, guard=None, dest=None, region=None):
        dest = dest or self.proc.new_reg()
        op = Operation(
            Opcode.LOAD, dests=[dest], srcs=[_lift(addr)],
            guard=guard or TRUE_PRED,
        )
        if region is not None:
            op.attrs["region"] = region
        self.emit(op)
        return dest

    def store(self, addr, value, guard=None, region=None):
        op = Operation(
            Opcode.STORE, srcs=[_lift(addr), _lift(value)],
            guard=guard or TRUE_PRED,
        )
        if region is not None:
            op.attrs["region"] = region
        return self.emit(op)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def cmpp(
        self,
        cond: Cond,
        a,
        b,
        targets: Sequence[PredTarget],
        guard=None,
    ) -> Operation:
        return self.emit(
            Operation(
                Opcode.CMPP,
                dests=list(targets),
                srcs=[_lift(a), _lift(b)],
                guard=guard or TRUE_PRED,
                cond=cond,
            )
        )

    def cmpp1(self, cond: Cond, a, b, action=Action.UN, guard=None, dest=None):
        """Single-target cmpp; returns the destination predicate."""
        dest = dest or self.proc.new_pred()
        self.cmpp(cond, a, b, [PredTarget(dest, action)], guard=guard)
        return dest

    def cmpp2(
        self,
        cond: Cond,
        a,
        b,
        actions=(Action.UN, Action.UC),
        guard=None,
        dests=None,
    ):
        """Two-target cmpp (e.g. UN/UC taken + fall-through pair)."""
        if dests is None:
            dests = (self.proc.new_pred(), self.proc.new_pred())
        targets = [PredTarget(d, act) for d, act in zip(dests, actions)]
        self.cmpp(cond, a, b, targets, guard=guard)
        return dests

    def pred_clear(self, dest=None, guard=None):
        dest = dest or self.proc.new_pred()
        self.emit(
            Operation(
                Opcode.PRED_CLEAR, dests=[dest], srcs=[],
                guard=guard or TRUE_PRED,
            )
        )
        return dest

    def pred_set(self, source, dest=None, guard=None):
        dest = dest or self.proc.new_pred()
        self.emit(
            Operation(
                Opcode.PRED_SET, dests=[dest], srcs=[_lift(source)],
                guard=guard or TRUE_PRED,
            )
        )
        return dest

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    def pbr(self, target: Union[str, Label], dest=None) -> BTR:
        if isinstance(target, str):
            target = Label(target)
        dest = dest or self.proc.new_btr()
        self.emit(Operation(Opcode.PBR, dests=[dest], srcs=[target]))
        return dest

    def branch(self, pred: PredReg, btr: BTR, target=None) -> Operation:
        """Emit ``branch (pred, btr)``; *target* caches the resolved label."""
        op = Operation(Opcode.BRANCH, srcs=[pred, btr])
        if target is not None:
            if isinstance(target, str):
                target = Label(target)
            op.attrs["target"] = target
        return self.emit(op)

    def branch_to(self, target: Union[str, Label], pred: PredReg):
        """pbr + branch pair to *target*, taken when *pred* is true."""
        btr = self.pbr(target)
        if isinstance(target, str):
            target = Label(target)
        return self.branch(pred, btr, target=target)

    def jump(self, target: Union[str, Label]) -> Operation:
        if isinstance(target, str):
            target = Label(target)
        return self.emit(Operation(Opcode.JUMP, srcs=[target]))

    def call(self, callee: str, args=(), dest=None):
        """Direct call; *dest* receives the return value when provided."""
        op = Operation(
            Opcode.CALL,
            dests=[dest] if dest is not None else [],
            srcs=[_lift(a) for a in args],
        )
        op.attrs["callee"] = callee
        self.emit(op)
        return dest

    def ret(self, value=None) -> Operation:
        srcs = [] if value is None else [_lift(value)]
        return self.emit(Operation(Opcode.RETURN, srcs=srcs))
