"""Executable semantics of PlayDoh ``cmpp`` destination actions.

This module is the single source of truth for the paper's Table 1: the
behaviour of the six two-letter action specifiers (UN, UC, ON, OC, AN, AC)
that a ``cmpp`` may apply to each of its destination predicates.

An action is applied given the operation's *guard* predicate value and the
boolean *compare result*; it either writes a value to the destination
predicate or leaves it untouched (returned as ``None``).

Action grammar: first letter is the action type —

* ``U`` (unconditional): always writes; writes ``guard AND result``.
* ``O`` (wired-or): writes 1 only when ``guard AND result`` is true.
* ``A`` (wired-and): writes 0 only when ``guard AND NOT result`` is true
  (i.e. guard true and the condition failed).

Second letter is the mode: ``N`` (normal) uses the compare result as-is,
``C`` (complemented) complements it first.
"""

from __future__ import annotations

import enum
from typing import Optional


class Action(enum.Enum):
    """Two-letter cmpp destination action specifier."""

    UN = "un"
    UC = "uc"
    ON = "on"
    OC = "oc"
    AN = "an"
    AC = "ac"

    @property
    def kind(self) -> str:
        """'U', 'O' or 'A' — the action type letter."""
        return self.value[0].upper()

    @property
    def complemented(self) -> bool:
        """True for complement-mode actions (second letter 'C')."""
        return self.value[1] == "c"

    def apply(self, guard: bool, result: bool) -> Optional[bool]:
        """Return the value written to the destination, or None if untouched.

        Implements the paper's Table 1 exactly:

        ======  ======  ====  ====  ====  ====  ====  ====
        guard   result   un    uc    on    oc    an    ac
        ======  ======  ====  ====  ====  ====  ====  ====
        0       0        0     0     -     -     -     -
        0       1        0     0     -     -     -     -
        1       0        0     1     -     1     0     -
        1       1        1     0     1     -     -     0
        ======  ======  ====  ====  ====  ====  ====  ====
        """
        effective = (not result) if self.complemented else result
        if self.kind == "U":
            return bool(guard and effective)
        if not guard:
            return None
        if self.kind == "O":
            return True if effective else None
        # Wired-and: clears the destination when the effective result fails.
        return False if not effective else None


def parse_action(text: str) -> Action:
    """Parse an action specifier like ``'un'`` or ``'AC'``."""
    try:
        return Action(text.lower())
    except ValueError:
        raise ValueError(f"unknown cmpp action specifier: {text!r}") from None
