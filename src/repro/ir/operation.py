"""The :class:`Operation` — one guarded PlayDoh-style instruction.

Every operation has the shape::

    dests = opcode(srcs) if guard

where *guard* is a predicate register (``TRUE_PRED`` when unguarded). A
``cmpp`` additionally carries a comparison condition and, per destination,
an :class:`~repro.ir.semantics.Action` specifier, so a single operation may
read ``dests`` as ``[PredTarget(p, UN), PredTarget(q, UC)]``.

Operations carry a process-unique ``uid`` so passes can key side tables by
operation identity even across cloning, plus a free-form ``attrs`` dict used
sparingly for pass-private annotations (e.g. ICBM tags operations it
introduced).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import IRError
from repro.ir.opcodes import Cond, Opcode
from repro.ir.operands import (
    BTR,
    Imm,
    Label,
    PredReg,
    Reg,
    TRUE_PRED,
    is_register,
)
from repro.ir.semantics import Action

_uid_counter = itertools.count(1)


@dataclass(frozen=True)
class PredTarget:
    """A cmpp destination: predicate register plus its action specifier."""

    reg: PredReg
    action: Action

    def __repr__(self):
        return f"{self.reg}:{self.action.value}"


@dataclass
class Operation:
    """One IR operation. Mutable: passes rewrite guards/operands in place."""

    opcode: Opcode
    dests: List[object] = field(default_factory=list)
    srcs: List[object] = field(default_factory=list)
    guard: PredReg = TRUE_PRED
    cond: Optional[Cond] = None
    attrs: dict = field(default_factory=dict)
    uid: int = field(default_factory=lambda: next(_uid_counter))

    def __post_init__(self):
        self._check_shape()

    # ------------------------------------------------------------------
    # Structure checks and accessors
    # ------------------------------------------------------------------
    def _check_shape(self):
        if self.opcode is Opcode.CMPP:
            if self.cond is None:
                raise IRError("cmpp requires a comparison condition")
            if not self.dests or len(self.dests) > 2:
                raise IRError("cmpp takes one or two predicate targets")
            for dest in self.dests:
                if not isinstance(dest, PredTarget):
                    raise IRError(f"cmpp dest must be PredTarget, got {dest!r}")
            if len(self.srcs) != 2:
                raise IRError("cmpp takes exactly two sources")
        elif self.cond is not None:
            raise IRError(f"{self.opcode.value} must not carry a condition")

    @property
    def is_branch(self) -> bool:
        return self.opcode.is_branch()

    @property
    def is_guarded(self) -> bool:
        """True when the guard is a real predicate (not the constant T)."""
        return self.guard != TRUE_PRED

    def dest_registers(self):
        """All registers written, unwrapping cmpp PredTargets."""
        regs = []
        for dest in self.dests:
            if isinstance(dest, PredTarget):
                regs.append(dest.reg)
            elif is_register(dest):
                regs.append(dest)
        return regs

    def source_registers(self):
        """All registers read, including the guard when it is not T."""
        regs = [src for src in self.srcs if is_register(src)]
        if self.is_guarded:
            regs.append(self.guard)
        return regs

    def pred_targets(self):
        """The PredTarget list of a cmpp (empty for other opcodes)."""
        if self.opcode is not Opcode.CMPP:
            return []
        return list(self.dests)

    def unconditional_writes(self):
        """Registers this op writes on *every* execution where guard holds.

        Wired-or/and targets only conditionally update, so they are excluded;
        unconditional (U-kind) cmpp targets and all ordinary destinations are
        included. Used by liveness/reaching analyses.
        """
        regs = []
        for dest in self.dests:
            if isinstance(dest, PredTarget):
                if dest.action.kind == "U":
                    regs.append(dest.reg)
            elif is_register(dest):
                regs.append(dest)
        return regs

    def always_writes(self):
        """Registers written regardless of the guard value.

        Per Table 1, a U-kind cmpp target is assigned even when the guard is
        false (it receives 0); every other write is nullified by a false
        guard. Analyses use this to decide which definitions *kill*.
        """
        regs = []
        for dest in self.dests:
            if isinstance(dest, PredTarget):
                if dest.action.kind == "U":
                    regs.append(dest.reg)
            elif is_register(dest) and not self.is_guarded:
                regs.append(dest)
        return regs

    # ------------------------------------------------------------------
    # Branch helpers
    # ------------------------------------------------------------------
    def branch_target(self) -> Optional[Label]:
        """The statically known target label of a control transfer.

        ``branch`` ops record their resolved target (from the defining pbr) in
        ``attrs['target']``; ``jump``/``pbr`` carry a Label source; ``call``
        names the callee; ``return`` has no target.
        """
        if self.opcode in (Opcode.JUMP, Opcode.PBR):
            for src in self.srcs:
                if isinstance(src, Label):
                    return src
            return None
        if self.opcode is Opcode.BRANCH:
            return self.attrs.get("target")
        return None

    def set_branch_target(self, label: Label):
        if self.opcode is Opcode.BRANCH:
            self.attrs["target"] = label
        elif self.opcode in (Opcode.JUMP, Opcode.PBR):
            self.srcs = [
                label if isinstance(src, Label) else src for src in self.srcs
            ]
        else:
            raise IRError(f"{self.opcode.value} has no branch target")

    # ------------------------------------------------------------------
    # Cloning and rewriting
    # ------------------------------------------------------------------
    def clone(self, preserve_uid: bool = False) -> "Operation":
        """Deep-enough copy (operands are immutable).

        Mints a fresh uid by default so side tables keyed by uid never alias
        the original. ``preserve_uid=True`` is for snapshot/rollback copies:
        restoring such a copy keeps profile data (keyed by uid) valid.
        """
        copy = Operation(
            opcode=self.opcode,
            dests=list(self.dests),
            srcs=list(self.srcs),
            guard=self.guard,
            cond=self.cond,
            attrs=dict(self.attrs),
        )
        if preserve_uid:
            copy.uid = self.uid
        return copy

    def replace_sources(self, mapping):
        """Rewrite sources (and the guard) through ``mapping`` where present."""
        self.srcs = [mapping.get(src, src) for src in self.srcs]
        if self.guard in mapping:
            self.guard = mapping[self.guard]

    def replace_dests(self, mapping):
        new_dests = []
        for dest in self.dests:
            if isinstance(dest, PredTarget) and dest.reg in mapping:
                new_dests.append(PredTarget(mapping[dest.reg], dest.action))
            else:
                new_dests.append(mapping.get(dest, dest))
        self.dests = new_dests

    # ------------------------------------------------------------------
    # Printing
    # ------------------------------------------------------------------
    def __repr__(self):
        return self.format()

    def format(self) -> str:
        """Render in the paper's assembly style, e.g.::

            p51, p61 = cmpp.un.uc eq (r31, 0) if T
            store (r21, r34) if T
            branch (p51, b41)
        """
        guard = f" if {self.guard}"
        if self.opcode is Opcode.CMPP:
            targets = ", ".join(str(t.reg) for t in self.dests)
            actions = ".".join(t.action.value for t in self.dests)
            srcs = ", ".join(str(s) for s in self.srcs)
            return (
                f"{targets} = cmpp.{actions} {self.cond.value} ({srcs}){guard}"
            )
        srcs = ", ".join(str(s) for s in self.srcs)
        if self.opcode is Opcode.BRANCH:
            text = f"branch ({srcs}){guard}"
            target = self.attrs.get("target")
            if target is not None:
                text += f"  # -> {target}"
            return text
        if not self.dests:
            return f"{self.opcode.value} ({srcs}){guard}"
        dests = ", ".join(str(d) for d in self.dests)
        return f"{dests} = {self.opcode.value} ({srcs}){guard}"
