"""Opcode and condition enumerations for the PlayDoh-style IR.

Opcode classes mirror the machine model of the paper's Section 7: integer
ALU, floating point, multiply/divide, memory, compare-to-predicate, and
branch-related operations. The resource class an opcode consumes and its
latency come from :mod:`repro.machine`, keyed by :meth:`Opcode.unit_class`.
"""

from __future__ import annotations

import enum


class Opcode(enum.Enum):
    """Every operation kind the IR supports."""

    # Integer ALU (latency "simple integer").
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    MOV = "mov"
    # Integer multiply/divide/remainder.
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    # Floating point.
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FMOV = "fmov"
    CVT_IF = "cvt_if"   # int -> float
    CVT_FI = "cvt_fi"   # float -> int (truncating)
    # Memory.
    LOAD = "load"
    STORE = "store"
    # Predicate machinery.
    CMPP = "cmpp"       # compare-to-predicate with up to two dest actions
    PRED_CLEAR = "pred_clear"   # p = 0      (wired-or initialization)
    PRED_SET = "pred_set"       # p = src    (wired-and initialization)
    # Control flow.
    PBR = "pbr"         # branch-target register = prepare-to-branch(label)
    BRANCH = "branch"   # conditional branch through a BTR, guarded
    JUMP = "jump"       # unconditional jump to a label
    CALL = "call"       # direct call; interpreter-level frames
    RETURN = "return"   # return (optionally with a value)

    def is_branch(self) -> bool:
        """True for operations that (may) transfer control."""
        return self in _BRANCHES

    def is_memory(self) -> bool:
        return self in (Opcode.LOAD, Opcode.STORE)

    def is_cmpp(self) -> bool:
        return self is Opcode.CMPP

    def is_speculable(self) -> bool:
        """True when the op may be hoisted above a guarding branch.

        Following the paper: stores, branches, and calls are non-speculative;
        everything else (arithmetic, loads, compares) may execute
        speculatively. Loads are speculable under PlayDoh's non-faulting
        (dismissible) load support.
        """
        return self not in _NON_SPECULATIVE

    def unit_class(self) -> str:
        """Functional-unit class consumed: 'I', 'F', 'M', or 'B'."""
        if self in _FLOAT_OPS:
            return "F"
        if self in (Opcode.LOAD, Opcode.STORE):
            return "M"
        if self in _BRANCHES:
            return "B"
        return "I"


_BRANCHES = frozenset({Opcode.BRANCH, Opcode.JUMP, Opcode.CALL, Opcode.RETURN})

_NON_SPECULATIVE = frozenset(
    {Opcode.STORE, Opcode.BRANCH, Opcode.JUMP, Opcode.CALL, Opcode.RETURN}
)

_FLOAT_OPS = frozenset(
    {
        Opcode.FADD,
        Opcode.FSUB,
        Opcode.FMUL,
        Opcode.FDIV,
        Opcode.FMOV,
        Opcode.CVT_IF,
        Opcode.CVT_FI,
    }
)


class Cond(enum.Enum):
    """Comparison conditions for ``cmpp`` operations."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"

    def evaluate(self, a, b) -> bool:
        if self is Cond.EQ:
            return a == b
        if self is Cond.NE:
            return a != b
        if self is Cond.LT:
            return a < b
        if self is Cond.LE:
            return a <= b
        if self is Cond.GT:
            return a > b
        return a >= b

    def negate(self) -> "Cond":
        """The condition computing the complement result (used by the taken
        variation of restructure, paper Section 5.3)."""
        return _NEGATIONS[self]

    def swap(self) -> "Cond":
        """The condition equivalent under operand exchange (a?b == b?'a)."""
        return _SWAPS[self]


_NEGATIONS = {
    Cond.EQ: Cond.NE,
    Cond.NE: Cond.EQ,
    Cond.LT: Cond.GE,
    Cond.GE: Cond.LT,
    Cond.GT: Cond.LE,
    Cond.LE: Cond.GT,
}

_SWAPS = {
    Cond.EQ: Cond.EQ,
    Cond.NE: Cond.NE,
    Cond.LT: Cond.GT,
    Cond.GT: Cond.LT,
    Cond.LE: Cond.GE,
    Cond.GE: Cond.LE,
}
