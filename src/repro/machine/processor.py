"""Processor configurations.

The paper defines regular EPIC processors by an (I, F, M, B) tuple of
functional-unit counts plus one width-capped *sequential* machine:

* sequential — exactly one operation of any type per cycle
* narrow     — (2, 1, 1, 1)
* medium     — (4, 2, 2, 1)
* wide       — (8, 4, 4, 2)
* infinite   — (75, 25, 25, 25)

Each :class:`ProcessorConfig` bundles the resource tuple with a latency
model and can mint a fresh :class:`~repro.machine.resources.ResourceTable`
for a scheduling run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.errors import MachineConfigError
from repro.machine.latency import LatencyModel, PAPER_LATENCIES
from repro.machine.resources import ResourceTable


@dataclass(frozen=True)
class ProcessorConfig:
    """An EPIC machine: unit counts, optional issue-width cap, latencies."""

    name: str
    int_units: Optional[int]
    float_units: Optional[int]
    memory_units: Optional[int]
    branch_units: Optional[int]
    issue_width: Optional[int] = None
    latencies: LatencyModel = field(default_factory=LatencyModel)

    def __post_init__(self):
        for label, count in (
            ("int", self.int_units),
            ("float", self.float_units),
            ("memory", self.memory_units),
            ("branch", self.branch_units),
        ):
            if count is not None and count < 1:
                raise MachineConfigError(
                    f"{self.name}: {label} unit count must be >= 1"
                )
        if self.issue_width is not None and self.issue_width < 1:
            raise MachineConfigError(
                f"{self.name}: issue width must be >= 1"
            )

    @property
    def unit_counts(self) -> Dict[str, Optional[int]]:
        return {
            "I": self.int_units,
            "F": self.float_units,
            "M": self.memory_units,
            "B": self.branch_units,
        }

    def resource_table(self) -> ResourceTable:
        return ResourceTable(self.unit_counts, issue_width=self.issue_width)

    def with_latencies(self, latencies: LatencyModel) -> "ProcessorConfig":
        return replace(self, latencies=latencies)

    def with_branch_latency(self, cycles: int) -> "ProcessorConfig":
        return replace(
            self, latencies=self.latencies.with_branch_latency(cycles)
        )

    def __str__(self):
        tup = (
            self.int_units,
            self.float_units,
            self.memory_units,
            self.branch_units,
        )
        width = f", issue={self.issue_width}" if self.issue_width else ""
        return f"{self.name}{tup}{width}"


def _paper_machine(name, i, f, m, b, issue_width=None) -> ProcessorConfig:
    return ProcessorConfig(
        name=name,
        int_units=i,
        float_units=f,
        memory_units=m,
        branch_units=b,
        issue_width=issue_width,
        latencies=PAPER_LATENCIES,
    )


#: One op of any type per cycle; unit counts are effectively the width cap.
SEQUENTIAL = _paper_machine("sequential", 1, 1, 1, 1, issue_width=1)
NARROW = _paper_machine("narrow", 2, 1, 1, 1)
MEDIUM = _paper_machine("medium", 4, 2, 2, 1)
WIDE = _paper_machine("wide", 8, 4, 4, 2)
INFINITE = _paper_machine("infinite", 75, 25, 25, 25)

#: The five machines of the paper's Table 2, in presentation order.
PAPER_PROCESSORS = (SEQUENTIAL, NARROW, MEDIUM, WIDE, INFINITE)

#: Name -> config, for callers (the build farm's worker processes) that
#: must ship machine selections across process boundaries by name.
PROCESSORS_BY_NAME = {p.name: p for p in PAPER_PROCESSORS}


def processor_by_name(name: str) -> ProcessorConfig:
    try:
        return PROCESSORS_BY_NAME[name]
    except KeyError:
        raise MachineConfigError(
            f"unknown processor {name!r}; "
            f"known: {', '.join(PROCESSORS_BY_NAME)}"
        ) from None
