"""EPIC machine models: resource configurations and latency tables."""

from repro.machine.latency import LatencyModel, PAPER_LATENCIES
from repro.machine.processor import (
    INFINITE,
    MEDIUM,
    NARROW,
    PAPER_PROCESSORS,
    ProcessorConfig,
    SEQUENTIAL,
    WIDE,
)
from repro.machine.resources import ResourceTable

__all__ = [
    "INFINITE",
    "LatencyModel",
    "MEDIUM",
    "NARROW",
    "PAPER_LATENCIES",
    "PAPER_PROCESSORS",
    "ProcessorConfig",
    "ResourceTable",
    "SEQUENTIAL",
    "WIDE",
]
