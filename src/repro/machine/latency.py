"""Operation latency model.

Default latencies follow the paper's Section 7 exactly: simple integer 1,
simple floating point 3, load 2, store 1, integer/float multiply 3,
integer/float divide 8, branch 1. The branch latency is overridable so the
ablation benches can sweep exposed branch latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.ir.opcodes import Opcode


@dataclass(frozen=True)
class LatencyModel:
    """Maps each opcode to its visible latency in cycles."""

    simple_int: int = 1
    simple_float: int = 3
    load: int = 2
    store: int = 1
    multiply: int = 3
    divide: int = 8
    branch: int = 1
    overrides: Dict[Opcode, int] = field(default_factory=dict)

    def latency(self, opcode: Opcode) -> int:
        if opcode in self.overrides:
            return self.overrides[opcode]
        if opcode in (Opcode.MUL, Opcode.FMUL):
            return self.multiply
        if opcode in (Opcode.DIV, Opcode.REM, Opcode.FDIV):
            return self.divide
        if opcode is Opcode.LOAD:
            return self.load
        if opcode is Opcode.STORE:
            return self.store
        if opcode.is_branch():
            return self.branch
        if opcode.unit_class() == "F":
            return self.simple_float
        # cmpp, pred init, pbr, moves, ALU all count as simple integer.
        return self.simple_int

    def with_branch_latency(self, cycles: int) -> "LatencyModel":
        """A copy of this model with a different exposed branch latency."""
        return replace(self, branch=cycles)


#: The latency assignment used throughout the paper's experiments.
PAPER_LATENCIES = LatencyModel()
