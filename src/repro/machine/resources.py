"""Per-cycle functional-unit resource accounting for the list scheduler.

A :class:`ResourceTable` tracks, cycle by cycle, how many operations of each
unit class ('I', 'F', 'M', 'B') have been placed, plus total issue slots for
width-capped machines (the *sequential* processor issues exactly one
operation of any kind per cycle).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional

from repro.errors import SchedulingError


class ResourceTable:
    """Mutable per-cycle usage map against a processor's unit counts."""

    def __init__(self, unit_counts: Dict[str, Optional[int]],
                 issue_width: Optional[int] = None):
        """``unit_counts`` maps class letter to available units (None for
        unlimited); ``issue_width`` caps total operations per cycle."""
        self.unit_counts = dict(unit_counts)
        self.issue_width = issue_width
        self._used: Dict[int, Dict[str, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        self._total: Dict[int, int] = defaultdict(int)

    def capacity(self, unit_class: str) -> Optional[int]:
        if unit_class not in self.unit_counts:
            raise SchedulingError(f"unknown unit class {unit_class!r}")
        return self.unit_counts[unit_class]

    def can_place(self, cycle: int, unit_class: str) -> bool:
        """True when one more *unit_class* op fits in *cycle*."""
        if cycle < 0:
            return False
        if (
            self.issue_width is not None
            and self._total[cycle] >= self.issue_width
        ):
            return False
        capacity = self.capacity(unit_class)
        if capacity is None:
            return True
        return self._used[cycle][unit_class] < capacity

    def place(self, cycle: int, unit_class: str):
        if not self.can_place(cycle, unit_class):
            raise SchedulingError(
                f"no free {unit_class} unit at cycle {cycle}"
            )
        self._used[cycle][unit_class] += 1
        self._total[cycle] += 1

    def usage(self, cycle: int, unit_class: str) -> int:
        return self._used[cycle][unit_class]

    def total_usage(self, cycle: int) -> int:
        return self._total[cycle]
