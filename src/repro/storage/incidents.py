"""Structured records for storage-integrity events.

A :class:`StorageIncident` is the storage layer's analogue of the pass
manager's :class:`~repro.passes.incidents.Incident`: a JSON-safe record
of something that went wrong with durable state and what the layer did
about it. Incidents describe the *run*, not the program — like the
``farm.supervisor.*`` counters they legitimately differ between a
faulted run and a clean one, so they are surfaced through counters,
metrics, and artifact files, never through the deterministic
:class:`~repro.passes.incidents.BuildReport`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class StorageIncident:
    """One detected storage fault and the action taken.

    ``kind`` is what was detected (``checksum-mismatch``, ``io-error``,
    ``journal-corrupt``); ``op`` is the IO site (``cache-read``,
    ``cache-write``, ``journal-append``, ``journal-load``); ``action``
    is the recovery taken (``quarantined``, ``cache-off``,
    ``record-skipped``, ``quarantine-failed``).
    """

    kind: str
    op: str
    path: str
    detail: str = ""
    action: str = ""

    def format(self) -> str:
        return (
            f"[storage] {self.kind} during {self.op} on {self.path}: "
            f"{self.detail or 'no detail'} -> {self.action or 'no action'}"
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "op": self.op,
            "path": self.path,
            "detail": self.detail,
            "action": self.action,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StorageIncident":
        return cls(
            kind=data["kind"],
            op=data["op"],
            path=data["path"],
            detail=data.get("detail", ""),
            action=data.get("action", ""),
        )
