"""Durable atomic file primitives: temp file, fsync, replace, fsync dir.

The original ``atomic_write_bytes`` (born in :mod:`repro.farm.cache`)
gave *atomicity* — readers see old content or new content, never a mix
— but not *durability*: it never fsynced the temp file before
``os.replace`` (a crash could surface a zero-length or partial file at
the final name) nor the parent directory after (the rename itself could
be lost). This module owns the corrected primitive, shared by the cache
store, both write-ahead journals' headers, and repro bundles, plus the
litter sweeper for temp files orphaned by writers killed between
``mkstemp`` and ``replace``.

Every IO step consults the storage-fault shim
(:mod:`repro.storage.faults`), so the chaos harness can prove the
callers' degradation contracts instead of trusting them.
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path

from repro.storage.faults import corrupt_bytes, fault_error, storage_fault

#: Temp litter younger than this is presumed to belong to a live writer
#: and is left alone; anything older was orphaned by a crash.
TMP_LITTER_MAX_AGE_S = 3600.0


def fsync_dir(path):
    """Flush a directory's entries (makes a rename durable). Best-effort:
    some filesystems refuse fsync on directories; that restores exactly
    the old behaviour rather than failing a write that did succeed."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path, data: bytes):
    """Write *data* to *path* durably and atomically.

    Temp file in the same directory -> write -> flush -> fsync ->
    ``os.replace`` -> fsync the parent directory. Readers never observe
    a partial file, and once this returns the new content survives a
    power cut. Raises ``OSError`` (e.g. ``ENOSPC``) on failure, with the
    temp file cleaned up.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fault = storage_fault("atomic-write", path)
    if fault is not None:
        kind, rng = fault
        if kind in ("enospc", "eio"):
            raise fault_error(kind, "atomic-write", path)
        if kind in ("torn-write", "bit-flip"):
            data = corrupt_bytes(data, kind, rng)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        if fault is not None and fault[0] == "crash-replace":
            # The writer "died" between mkstemp and replace: the
            # destination keeps its old content and the temp file stays
            # behind as litter for sweep_tmp_litter to find.
            return
        if fault is not None and fault[0] == "lost-fsync":
            # The page cache "lost" the write before it reached the
            # platter: the destination keeps its old content, no litter.
            os.unlink(tmp)
            return
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    fsync_dir(path.parent)


def sweep_tmp_litter(
    directory,
    max_age_s: float = TMP_LITTER_MAX_AGE_S,
    recursive: bool = False,
    now: float = None,
) -> int:
    """Delete stale ``*.tmp`` files under *directory*; returns the count.

    Litter accumulates when writers are killed inside the mkstemp ->
    replace window (or when the ``crash-replace`` fault fires). Only
    files older than *max_age_s* are removed, so a concurrent writer's
    live temp file is never swept out from under it.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return 0
    if now is None:
        now = time.time()
    removed = 0
    pattern = "**/*.tmp" if recursive else "*.tmp"
    for litter in sorted(directory.glob(pattern)):
        try:
            if now - litter.stat().st_mtime >= max_age_s:
                litter.unlink()
                removed += 1
        except OSError:
            continue
    return removed
