"""Per-record checksummed framing for the v2 journal formats.

A v1 journal line is a bare JSON record; JSON parsing is the only
integrity check, so a flipped bit that keeps the line parseable (a
digit in a cycle count, a character in a digest) replays silently into
a merge. A v2 line wraps the record in an envelope carrying a sha256
digest of its canonical serialization::

    {"r": {<record>}, "s": "<sha256(canonical(record))[:16]>"}

Readers classify every line into one of three states:

* :data:`VALID` — well-formed and (when framed) digest-verified;
* :data:`CORRUPT` — parseable-but-wrong (bad digest, non-envelope line
  in a framed file) *or* unparseable in the interior of the file;
* :data:`TRUNCATED` — unparseable and *final*: the signature of a
  writer killed mid-append, the one corruption append-only fsync'd
  writers can legitimately produce.

Only the final-line rule distinguishes truncation from corruption —
an interior unparseable line cannot be a torn tail, so it is reported,
never used as an excuse to drop everything after it.

Mixed files are legal: a run resumed over a v1 journal appends v2
envelopes, so v1-mode parsing also accepts (and verifies) envelopes.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterator, List, Optional, Tuple

#: Line classifications (see module docstring).
VALID, CORRUPT, TRUNCATED = "valid", "corrupt", "truncated"

_ENVELOPE_KEYS = frozenset(("r", "s"))


def canonical_json(record: dict) -> str:
    """The serialization the digest covers: sorted keys, no whitespace."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def record_digest(record: dict) -> str:
    return hashlib.sha256(
        canonical_json(record).encode("utf-8")
    ).hexdigest()[:16]


def frame_record(record: dict) -> str:
    """One v2 journal line (no trailing newline)."""
    return json.dumps(
        {"r": record, "s": record_digest(record)}, sort_keys=True
    )


def parse_record_line(
    line: str, framed: bool = True
) -> Tuple[Optional[dict], str]:
    """``(record, status)`` for one journal line.

    ``framed`` (v2): only a digest-verified envelope is VALID. Unframed
    (v1): a bare JSON object is VALID, and an envelope is *also*
    accepted and verified, because resumed runs append v2 lines to v1
    files. An unparseable line is reported CORRUPT here — the caller
    owns the only-the-final-line-is-truncation rule
    (:func:`classify_lines`).
    """
    try:
        payload = json.loads(line)
    except ValueError:
        return None, CORRUPT
    if isinstance(payload, dict) and set(payload) == _ENVELOPE_KEYS:
        record = payload["r"]
        if not isinstance(record, dict):
            return None, CORRUPT
        if record_digest(record) != payload["s"]:
            return None, CORRUPT
        return record, VALID
    if framed or not isinstance(payload, dict):
        return None, CORRUPT
    return payload, VALID


def classify_lines(
    lines: List[str], framed: bool
) -> Iterator[Tuple[Optional[dict], str]]:
    """Yield ``(record, status)`` per line, reclassifying the tail.

    An unparseable *final* line becomes TRUNCATED; a parseable final
    line with a bad digest stays CORRUPT (torn writes cannot produce
    valid JSON with a wrong checksum — only bit rot can).
    """
    last = len(lines) - 1
    for index, line in enumerate(lines):
        record, status = parse_record_line(line, framed=framed)
        if record is None and status == CORRUPT and index == last:
            try:
                json.loads(line)
            except ValueError:
                status = TRUNCATED
        yield record, status
