"""Seeded storage-fault injection: the disk misbehaves on schedule.

The shim sits at the four IO sites of the durable-storage layer
(:data:`FAULT_OPS`) and injects the failure modes real disks and
kernels exhibit (:data:`FAULT_KINDS`). Like the pass-level fault
harness (:mod:`repro.robustness.faultinject`) it is seeded through
:func:`~repro.robustness.faultinject.derive_seed`, so a storage-chaos
run is a pure function of its seed: the same faults corrupt the same
bytes on every machine, and a failing sweep replays exactly.

Activation is a ContextVar (:func:`activate_storage_faults`), matching
the tracer/counters/ledger discipline: production code pays one context
read per IO call and the shim is a no-op unless a chaos harness or test
armed it.

Fault kinds:

* ``enospc`` / ``eio`` — the write (or read) raises ``OSError`` with
  the matching errno;
* ``torn-write`` — only a seeded prefix of the payload reaches the
  file, yet the call "succeeds" (power loss after a partial write);
* ``bit-flip`` — one seeded bit of the payload is inverted (media rot,
  bad RAM on the way to the platter);
* ``lost-fsync`` — the call succeeds but the data never becomes
  durable (the page cache lied; the record simply is not there later);
* ``crash-replace`` — the writer dies between ``mkstemp`` and
  ``os.replace``: the destination is never updated and the temp file
  stays behind as litter.
"""

from __future__ import annotations

import errno
import random
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.robustness.faultinject import derive_seed

#: Every injectable failure mode.
FAULT_KINDS = (
    "enospc", "eio", "torn-write", "bit-flip", "lost-fsync", "crash-replace",
)

#: Instrumented IO sites. ``atomic-write`` covers every
#: :func:`repro.storage.atomic.atomic_write_bytes` caller (cache
#: entries, journal headers, bundle files); ``journal-append`` and
#: ``cache-read``/``cache-write`` target those paths specifically.
FAULT_OPS = ("atomic-write", "journal-append", "cache-read", "cache-write")


@dataclass
class StorageFaultSpec:
    """One scheduled fault: which kind fires at which IO site.

    ``op`` may be ``"*"`` (any site) or one of :data:`FAULT_OPS`;
    ``path_substr`` restricts the spec to paths containing it;
    ``times`` bounds how often it fires (0 = every match); ``skip``
    lets that many matching calls through first, so a test can corrupt
    e.g. the third append instead of the first.
    """

    kind: str
    op: str = "*"
    path_substr: str = ""
    times: int = 1
    skip: int = 0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown storage fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        if self.op != "*" and self.op not in FAULT_OPS:
            raise ValueError(
                f"unknown storage fault op {self.op!r}; "
                f"expected '*' or one of {FAULT_OPS}"
            )


class StorageFaultPlan:
    """A seeded schedule of storage faults, matched at each IO site.

    ``match`` returns ``(kind, rng)`` when a spec fires — the RNG is
    derived from ``(seed, kind, op, spec index, firing count)`` so the
    corrupted byte/bit positions are reproducible and independent of
    call interleaving across unrelated paths. Every firing is appended
    to :attr:`log` for the chaos harness's artifact files.
    """

    def __init__(self, specs, seed: int = 0):
        self.specs: List[StorageFaultSpec] = list(specs)
        self.seed = seed
        self._seen = [0] * len(self.specs)
        self._fired = [0] * len(self.specs)
        self.log: List[dict] = []

    def derive(self, scope: str) -> "StorageFaultPlan":
        """A fresh plan with a sub-seed for *scope* (same spec list)."""
        return StorageFaultPlan(self.specs, seed=derive_seed(self.seed, scope))

    @property
    def fired(self) -> int:
        return sum(self._fired)

    def match(self, op: str, path) -> Optional[Tuple[str, random.Random]]:
        for index, spec in enumerate(self.specs):
            if spec.op != "*" and spec.op != op:
                continue
            if spec.path_substr and spec.path_substr not in str(path):
                continue
            if spec.times and self._fired[index] >= spec.times:
                continue
            self._seen[index] += 1
            if self._seen[index] <= spec.skip:
                continue
            self._fired[index] += 1
            rng = random.Random(derive_seed(
                self.seed,
                f"{spec.kind}:{op}:{index}:{self._fired[index]}",
            ))
            self.log.append({"op": op, "path": str(path), "kind": spec.kind})
            return spec.kind, rng
        return None


_ACTIVE: ContextVar[Optional[StorageFaultPlan]] = ContextVar(
    "repro_storage_faults", default=None
)


@contextmanager
def activate_storage_faults(plan: Optional[StorageFaultPlan]):
    """Make *plan* the context's fault schedule (None disarms)."""
    token = _ACTIVE.set(plan)
    try:
        yield plan
    finally:
        _ACTIVE.reset(token)


def storage_fault(op: str, path) -> Optional[Tuple[str, random.Random]]:
    """The armed fault for this IO call, or ``None`` (the common case)."""
    plan = _ACTIVE.get()
    if plan is None:
        return None
    return plan.match(op, path)


def fault_error(kind: str, op: str, path) -> OSError:
    """The ``OSError`` an ``enospc``/``eio`` fault surfaces as."""
    code = errno.ENOSPC if kind == "enospc" else errno.EIO
    return OSError(code, f"injected {kind} during {op}", str(path))


def corrupt_bytes(data: bytes, kind: str, rng: random.Random) -> bytes:
    """*data* after a ``torn-write`` or ``bit-flip`` fault (seeded)."""
    if not data:
        return data
    if kind == "torn-write":
        return data[: rng.randrange(0, len(data))]
    if kind == "bit-flip":
        position = rng.randrange(len(data))
        flipped = data[position] ^ (1 << rng.randrange(8))
        return data[:position] + bytes([flipped]) + data[position + 1:]
    return data
