"""Self-verifying durable storage shared by cache, journals, bundles.

The crash-recovery features (farm ``--resume``, serve replay-or-NACK,
repro bundles) all rest on durable state; this package makes that state
self-verifying instead of blindly trusted:

* :mod:`repro.storage.atomic` — durable atomic writes (temp file +
  fsync + replace + directory fsync) and temp-litter sweeping;
* :mod:`repro.storage.framing` — per-record checksummed journal lines
  (format v2) with valid/corrupt/truncated classification;
* :mod:`repro.storage.faults` — the seeded IO-fault shim (ENOSPC, EIO,
  torn writes, bit flips, lost fsyncs, crash-between-tmp-and-replace);
* :mod:`repro.storage.incidents` — structured incident records.

Degradation contracts (see DESIGN.md §16): cache IO failure degrades a
run to cache-off and never aborts it; a corrupt cache entry is
quarantined, never unpickled; a corrupt journal record is skipped and
reported, costing exactly that record's work on resume; a failed
journal append aborts with :class:`~repro.errors.JournalWriteError`
(exit code 8) rather than continuing unjournaled.
"""

from repro.storage.atomic import (
    atomic_write_bytes,
    fsync_dir,
    sweep_tmp_litter,
)
from repro.storage.faults import (
    FAULT_KINDS,
    FAULT_OPS,
    StorageFaultPlan,
    StorageFaultSpec,
    activate_storage_faults,
    corrupt_bytes,
    fault_error,
    storage_fault,
)
from repro.storage.framing import (
    CORRUPT,
    TRUNCATED,
    VALID,
    canonical_json,
    classify_lines,
    frame_record,
    parse_record_line,
    record_digest,
)
from repro.storage.incidents import StorageIncident

__all__ = [
    "atomic_write_bytes",
    "fsync_dir",
    "sweep_tmp_litter",
    "FAULT_KINDS",
    "FAULT_OPS",
    "StorageFaultPlan",
    "StorageFaultSpec",
    "activate_storage_faults",
    "corrupt_bytes",
    "fault_error",
    "storage_fault",
    "CORRUPT",
    "TRUNCATED",
    "VALID",
    "canonical_json",
    "classify_lines",
    "frame_record",
    "parse_record_line",
    "record_digest",
    "StorageIncident",
]
