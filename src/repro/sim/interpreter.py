"""Functional interpreter for the predicated IR.

Executes programs with architectural fidelity — guarded nullification,
PlayDoh cmpp destination actions, prepare-to-branch registers, sparse word
memory, and a call stack — while recording the observable behaviour needed
for differential correctness checking:

* the *store trace* (ordered list of (address, value) pairs), and
* the return value of the entry procedure.

Two transformed versions of a procedure are deemed architecturally
equivalent when both observables match on the same inputs.

The interpreter also doubles as the dynamic-profile collector: it counts
block entries, per-operation executions, and per-branch taken/not-taken
outcomes (see :mod:`repro.sim.profiler` for the aggregation layer).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import FuelExhausted, SimulationError
from repro.ir.opcodes import Cond, Opcode
from repro.ir.operands import (
    BTR,
    FReg,
    Imm,
    Label,
    PredReg,
    Reg,
    TRUE_PRED,
)
from repro.ir.operation import Operation
from repro.ir.procedure import Procedure, Program

#: Default operation budget; generous enough for every workload input.
DEFAULT_FUEL = 20_000_000

#: The two interpreter engines, mirroring the scheduler's dual-engine
#: dispatch (:mod:`repro.sched.list_scheduler`): ``object`` walks Operation
#: objects (this module — the reference semantics), ``soa`` runs the lowered
#: struct-of-arrays core (:mod:`repro.sim.soa`). Both are bit-identical;
#: the default is the fast one.
ENGINES = ("object", "soa")

_default_engine = "soa"


def set_default_engine(name: str):
    """Set the process-wide default interpreter engine."""
    global _default_engine
    if name not in ENGINES:
        raise SimulationError(
            f"unknown interpreter engine {name!r}; "
            f"expected one of {', '.join(ENGINES)}"
        )
    _default_engine = name


def get_default_engine() -> str:
    return _default_engine


@contextmanager
def use_engine(name: str):
    """Temporarily select the default engine (tests, farm workers)."""
    previous = get_default_engine()
    set_default_engine(name)
    try:
        yield
    finally:
        set_default_engine(previous)


def _resolve_engine(engine: Optional[str]) -> str:
    if engine is None:
        return _default_engine
    if engine not in ENGINES:
        raise SimulationError(
            f"unknown interpreter engine {engine!r}; "
            f"expected one of {', '.join(ENGINES)}"
        )
    return engine


def make_interpreter(
    program: "Program",
    fuel: int = DEFAULT_FUEL,
    engine: Optional[str] = None,
    lowering=None,
):
    """Construct an interpreter for the selected engine.

    *lowering* (a :class:`repro.sim.soa.ProgramLowering`) lets repeated runs
    of the same program share one lowering; it is ignored by the object
    engine.
    """
    if _resolve_engine(engine) == "object":
        return Interpreter(program, fuel=fuel)
    from repro.sim.soa import SoAInterpreter

    return SoAInterpreter(program, fuel=fuel, lowering=lowering)


@dataclass
class ExecutionResult:
    """Observable outcome of one program run."""

    return_value: Optional[int]
    store_trace: List[Tuple[int, int]]
    memory: Dict[int, int]
    ops_executed: int
    branches_executed: int
    # Dynamic counters keyed by (procedure name, identifier).
    block_counts: Counter = field(default_factory=Counter)
    op_counts: Counter = field(default_factory=Counter)
    branch_taken: Counter = field(default_factory=Counter)
    branch_not_taken: Counter = field(default_factory=Counter)

    def stores_equal(self, other: "ExecutionResult") -> bool:
        return self.store_trace == other.store_trace

    def equivalent_to(self, other: "ExecutionResult") -> bool:
        """Architectural equivalence: same stores and return value."""
        return (
            self.return_value == other.return_value
            and self.store_trace == other.store_trace
        )


class _Frame:
    """One procedure activation: register files and resume point."""

    def __init__(self, proc: Procedure):
        self.proc = proc
        self.regs: Dict[Reg, int] = {}
        self.fregs: Dict[FReg, float] = {}
        self.preds: Dict[PredReg, bool] = {}
        self.btrs: Dict[BTR, Label] = {}
        # Where to store the callee's return value on resume.
        self.pending_dest = None


class Interpreter:
    """Executes a :class:`~repro.ir.procedure.Program`."""

    def __init__(self, program: Program, fuel: int = DEFAULT_FUEL):
        self.program = program
        self.fuel = fuel
        self.memory: Dict[int, int] = {}
        self.store_trace: List[Tuple[int, int]] = []
        self.block_counts: Counter = Counter()
        self.op_counts: Counter = Counter()
        self.branch_taken: Counter = Counter()
        self.branch_not_taken: Counter = Counter()
        self.ops_executed = 0
        self.branches_executed = 0
        self.segment_bases: Dict[str, int] = {}
        self._load_segments()

    # ------------------------------------------------------------------
    # Memory image
    # ------------------------------------------------------------------
    def _load_segments(self):
        base = 0x1000
        for segment in self.program.segments.values():
            segment.base = base
            self.segment_bases[segment.name] = base
            for offset, value in enumerate(segment.initial):
                self.memory[base + offset] = value
            base += segment.size + 16  # red zone between segments

    def segment_base(self, name: str) -> int:
        try:
            return self.segment_bases[name]
        except KeyError:
            raise SimulationError(f"no data segment {name!r}") from None

    def poke(self, address: int, value: int):
        """Write memory directly (input setup; not part of the store trace)."""
        self.memory[address] = value

    def poke_array(self, name: str, values):
        segment = self.program.segment(name)
        if len(values) > segment.size:
            raise SimulationError(
                f"poke_array: {len(values)} values overflow segment "
                f"{name!r} of size {segment.size}"
            )
        base = self.segment_base(name)
        for offset, value in enumerate(values):
            self.memory[base + offset] = value

    def peek(self, address: int) -> int:
        return self.memory.get(address, 0)

    def peek_array(self, name: str, count: int) -> List[int]:
        base = self.segment_base(name)
        return [self.memory.get(base + i, 0) for i in range(count)]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, entry: str = "main", args=()) -> ExecutionResult:
        value = self._call(entry, list(args), depth=0)
        return ExecutionResult(
            return_value=value,
            store_trace=list(self.store_trace),
            memory=dict(self.memory),
            ops_executed=self.ops_executed,
            branches_executed=self.branches_executed,
            block_counts=Counter(self.block_counts),
            op_counts=Counter(self.op_counts),
            branch_taken=Counter(self.branch_taken),
            branch_not_taken=Counter(self.branch_not_taken),
        )

    def _call(self, name: str, args, depth: int) -> Optional[int]:
        if depth > 200:
            raise SimulationError(f"call depth exceeded calling {name}")
        proc = self.program.procedure(name)
        frame = _Frame(proc)
        if len(args) != len(proc.params):
            raise SimulationError(
                f"{name} expects {len(proc.params)} args, got {len(args)}"
            )
        for param, arg in zip(proc.params, args):
            frame.regs[param] = arg

        block = proc.entry
        while True:
            self.block_counts[(proc.name, block.label.name)] += 1
            transfer = self._run_block(frame, block, depth)
            kind, payload = transfer
            if kind == "return":
                return payload
            if kind == "goto":
                block = proc.block(payload)
                continue
            if kind == "fallthrough":
                if block.fallthrough is not None:
                    block = proc.block(block.fallthrough)
                    continue
                index = proc.blocks.index(block)
                if index + 1 >= len(proc.blocks):
                    raise SimulationError(
                        f"{proc.name}/{block.label}: fell off the procedure"
                    )
                block = proc.blocks[index + 1]

    def _run_block(self, frame: _Frame, block, depth):
        for op in block.ops:
            self.fuel -= 1
            if self.fuel <= 0:
                raise FuelExhausted(
                    f"fuel exhausted in {frame.proc.name}/{block.label} "
                    f"after {self.ops_executed} operations",
                    proc=frame.proc.name,
                    block=block.label.name,
                    ops_executed=self.ops_executed,
                )
            self.ops_executed += 1
            self.op_counts[(frame.proc.name, op.uid)] += 1

            guard = self._read_pred(frame, op.guard)
            opcode = op.opcode

            if opcode is Opcode.CMPP:
                self._exec_cmpp(frame, op, guard)
                continue
            if opcode is Opcode.BRANCH:
                self.branches_executed += 1
                taken = guard and self._read_pred(frame, op.srcs[0])
                key = (frame.proc.name, op.uid)
                if taken:
                    self.branch_taken[key] += 1
                    target = frame.btrs.get(op.srcs[1])
                    if target is None:
                        target = op.branch_target()
                    if target is None:
                        raise SimulationError(
                            f"branch uid={op.uid} through unset BTR"
                        )
                    return ("goto", target)
                self.branch_not_taken[key] += 1
                continue
            if opcode is Opcode.JUMP:
                self.branches_executed += 1
                return ("goto", op.branch_target())
            if opcode is Opcode.RETURN:
                self.branches_executed += 1
                value = (
                    self._read(frame, op.srcs[0]) if op.srcs else None
                )
                return ("return", value)
            if opcode is Opcode.CALL:
                self.branches_executed += 1
                if not guard:
                    continue
                args = [self._read(frame, src) for src in op.srcs]
                result = self._call(op.attrs["callee"], args, depth + 1)
                if op.dests:
                    self._write(frame, op.dests[0], result)
                continue

            if not guard:
                continue  # nullified
            self._exec_simple(frame, op)
        return ("fallthrough", None)

    # ------------------------------------------------------------------
    # Operation execution helpers
    # ------------------------------------------------------------------
    def _exec_cmpp(self, frame: _Frame, op: Operation, guard: bool):
        a = self._read(frame, op.srcs[0])
        b = self._read(frame, op.srcs[1])
        result = op.cond.evaluate(a, b)
        for target in op.dests:
            written = target.action.apply(guard, result)
            if written is not None:
                frame.preds[target.reg] = written

    def _exec_simple(self, frame: _Frame, op: Operation):
        opcode = op.opcode
        if opcode is Opcode.STORE:
            address = self._read(frame, op.srcs[0])
            value = self._read(frame, op.srcs[1])
            self.memory[address] = value
            self.store_trace.append((address, value))
            return
        if opcode is Opcode.LOAD:
            address = self._read(frame, op.srcs[0])
            self._write(frame, op.dests[0], self.memory.get(address, 0))
            return
        if opcode is Opcode.PBR:
            frame.btrs[op.dests[0]] = op.srcs[0]
            return
        if opcode is Opcode.PRED_CLEAR:
            frame.preds[op.dests[0]] = False
            return
        if opcode is Opcode.PRED_SET:
            frame.preds[op.dests[0]] = bool(
                self._read(frame, op.srcs[0])
            )
            return
        if opcode in (Opcode.MOV, Opcode.FMOV):
            value = self._read(frame, op.srcs[0])
            if isinstance(value, Label):
                # mov from a data label materializes the segment's address.
                value = self.segment_base(value.name)
            self._write(frame, op.dests[0], value)
            return
        if opcode is Opcode.CVT_IF:
            self._write(frame, op.dests[0], float(self._read(frame, op.srcs[0])))
            return
        if opcode is Opcode.CVT_FI:
            self._write(frame, op.dests[0], int(self._read(frame, op.srcs[0])))
            return
        a = self._read(frame, op.srcs[0])
        b = self._read(frame, op.srcs[1])
        self._write(frame, op.dests[0], _ALU[opcode](a, b))

    # ------------------------------------------------------------------
    # Register access
    # ------------------------------------------------------------------
    def _read(self, frame: _Frame, operand):
        if isinstance(operand, Imm):
            return operand.value
        if isinstance(operand, Reg):
            return frame.regs.get(operand, 0)
        if isinstance(operand, FReg):
            return frame.fregs.get(operand, 0.0)
        if isinstance(operand, PredReg):
            return int(self._read_pred(frame, operand))
        if isinstance(operand, BTR):
            return frame.btrs.get(operand)
        if isinstance(operand, Label):
            return operand
        raise SimulationError(f"unreadable operand {operand!r}")

    def _read_pred(self, frame: _Frame, pred: PredReg) -> bool:
        if pred == TRUE_PRED:
            return True
        return frame.preds.get(pred, False)

    def _write(self, frame: _Frame, dest, value):
        if isinstance(dest, Reg):
            frame.regs[dest] = value
        elif isinstance(dest, FReg):
            frame.fregs[dest] = value
        elif isinstance(dest, PredReg):
            frame.preds[dest] = bool(value)
        elif isinstance(dest, BTR):
            frame.btrs[dest] = value
        else:
            raise SimulationError(f"unwritable destination {dest!r}")


def _int_div(a, b):
    if b == 0:
        raise SimulationError("integer division by zero")
    # C-style truncation toward zero.
    quotient = abs(a) // abs(b)
    return quotient if (a >= 0) == (b >= 0) else -quotient


def _int_rem(a, b):
    if b == 0:
        raise SimulationError("integer remainder by zero")
    return a - _int_div(a, b) * b


_ALU = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.DIV: _int_div,
    Opcode.REM: _int_rem,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: lambda a, b: a << b,
    Opcode.SHR: lambda a, b: a >> b,
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
    Opcode.FDIV: lambda a, b: a / b,
}


def run_program(
    program: Program,
    entry: str = "main",
    args=(),
    setup=None,
    fuel: int = DEFAULT_FUEL,
    engine: Optional[str] = None,
    lowering=None,
) -> ExecutionResult:
    """Convenience one-shot run.

    *setup*, when given, is called with the interpreter before execution so
    callers can poke input data into memory. *engine* selects the
    interpreter engine (default: the process-wide engine); *lowering* lets
    SoA runs of the same program share one lowering.
    """
    interp = make_interpreter(program, fuel=fuel, engine=engine, lowering=lowering)
    if setup is not None:
        setup(interp)
    return interp.run(entry=entry, args=args)
