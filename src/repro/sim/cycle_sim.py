"""Cycle-level simulation of *scheduled* EPIC code.

The sequential interpreter (:mod:`repro.sim.interpreter`) validates
transformations; this module validates **schedules**. It executes each
block's list-scheduled code cycle by cycle with PlayDoh's execution model:

* operations read their sources (and guard) at issue;
* results write back at issue + latency, invisible before then;
* a taken branch transfers control at issue + branch latency; operations
  issuing inside those delay-slot cycles still execute;
* two branches whose taken intervals overlap constitute the architecture's
  "indeterminate" case — the simulator raises, turning any illegal branch
  overlap the scheduler might produce into a loud failure.

Because the dependence graph is what guarantees that issue-time reads see
the right values, running the paper's workloads through this simulator
end-to-end cross-checks the whole analysis/scheduling stack against the
sequential semantics — and the per-traversal cycle counts it returns
validate the performance estimator (the exit-aware estimate must match the
simulated cycle count exactly).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import FuelExhausted, SimulationError
from repro.ir.opcodes import Opcode
from repro.ir.operands import BTR, FReg, Imm, Label, PredReg, Reg, TRUE_PRED
from repro.ir.procedure import Procedure, Program
from repro.machine.processor import ProcessorConfig
from repro.sched.list_scheduler import schedule_procedure
from repro.sim.interpreter import _ALU


@dataclass
class CycleSimResult:
    """Observable outcome plus the cycle accounting."""

    return_value: Optional[int]
    store_trace: List[Tuple[int, int]]
    total_cycles: int
    block_cycles: Dict[str, int] = field(default_factory=dict)
    block_entries: Dict[str, int] = field(default_factory=dict)

    def equivalent_to(self, other) -> bool:
        return (
            self.return_value == other.return_value
            and self.store_trace == other.store_trace
        )


class _MachineState:
    """Architectural state for one procedure activation."""

    def __init__(self):
        self.regs: Dict = {}
        self.preds: Dict = {}
        self.btrs: Dict = {}


class CycleSimulator:
    """Executes scheduled code for one program on one processor."""

    def __init__(
        self,
        program: Program,
        processor: ProcessorConfig,
        fuel_cycles: int = 20_000_000,
    ):
        self.program = program
        self.processor = processor
        self.latencies = processor.latencies
        self.fuel = fuel_cycles
        self.memory: Dict[int, int] = {}
        self.store_trace: List[Tuple[int, int]] = []
        self.segment_bases: Dict[str, int] = {}
        self.block_cycles: Dict[str, int] = {}
        self.block_entries: Dict[str, int] = {}
        self._schedules = {
            name: schedule_procedure(proc, processor)
            for name, proc in program.procedures.items()
        }
        self._load_segments()

    # ------------------------------------------------------------------
    def _load_segments(self):
        base = 0x1000
        for segment in self.program.segments.values():
            self.segment_bases[segment.name] = base
            for offset, value in enumerate(segment.initial):
                self.memory[base + offset] = value
            base += segment.size + 16

    def segment_base(self, name: str) -> int:
        return self.segment_bases[name]

    def poke_array(self, name: str, values):
        base = self.segment_base(name)
        for offset, value in enumerate(values):
            self.memory[base + offset] = value

    # ------------------------------------------------------------------
    def run(self, entry: str = "main", args=()) -> CycleSimResult:
        total_cycles, value = self._call(entry, list(args), depth=0)
        return CycleSimResult(
            return_value=value,
            store_trace=list(self.store_trace),
            total_cycles=total_cycles,
            block_cycles=dict(self.block_cycles),
            block_entries=dict(self.block_entries),
        )

    def _call(self, name: str, args, depth: int):
        if depth > 100:
            raise SimulationError(f"call depth exceeded calling {name}")
        proc = self.program.procedure(name)
        schedules = self._schedules[name]
        state = _MachineState()
        for param, arg in zip(proc.params, args):
            state.regs[param] = arg

        total_cycles = 0
        block = proc.entry
        while True:
            key = f"{name}/{block.label.name}"
            self.block_entries[key] = self.block_entries.get(key, 0) + 1
            cycles, transfer = self._run_block(
                proc, schedules.for_block(block.label), state, depth
            )
            total_cycles += cycles
            self.block_cycles[key] = (
                self.block_cycles.get(key, 0) + cycles
            )
            self.fuel -= max(cycles, 1)
            if self.fuel <= 0:
                raise FuelExhausted(f"cycle budget exhausted in {key}")
            kind, payload = transfer
            if kind == "return":
                return total_cycles, payload
            if kind == "goto":
                block = proc.block(payload)
                continue
            # Fall through.
            if block.fallthrough is not None:
                block = proc.block(block.fallthrough)
                continue
            index = proc.blocks.index(block)
            if index + 1 >= len(proc.blocks):
                raise SimulationError(
                    f"{name}/{block.label}: fell off the procedure"
                )
            block = proc.blocks[index + 1]

    # ------------------------------------------------------------------
    def _run_block(self, proc, schedule, state, depth):
        """Execute one scheduled block traversal.

        Returns (cycles consumed, transfer) where transfer is
        ('goto', label) | ('return', value) | ('fallthrough', None).
        """
        ops_by_cycle: Dict[int, List] = {}
        for op in schedule.block.ops:
            ops_by_cycle.setdefault(schedule.cycles[op.uid], []).append(op)
        if not schedule.block.ops:
            return 1, ("fallthrough", None)

        writebacks: List = []  # heap of (ready_cycle, seq, kind, a, b)
        seq = 0
        pending_transfer = None  # (effect_cycle, transfer)
        last_cycle = max(ops_by_cycle)

        cycle = 0
        while True:
            # Retire writes that complete at or before this cycle.
            while writebacks and writebacks[0][0] <= cycle:
                _, _, kind, dest, value = heapq.heappop(writebacks)
                if kind == "reg":
                    self._write(state, dest, value)
                else:
                    self.memory[dest] = value
                    self.store_trace.append((dest, value))

            if pending_transfer is not None and (
                pending_transfer[0] <= cycle
            ):
                # Control leaves. In-flight operations still complete (an
                # in-order machine does not squash issued work), so commit
                # every remaining write before transferring; block-local
                # scheduling assumes cross-block values are ready at the
                # successor's entry.
                while writebacks:
                    _, _, kind, dest, value = heapq.heappop(writebacks)
                    if kind == "reg":
                        self._write(state, dest, value)
                    else:
                        self.memory[dest] = value
                        self.store_trace.append((dest, value))
                return pending_transfer[0], pending_transfer[1]

            if cycle > last_cycle and pending_transfer is None:
                if not writebacks:
                    break
                cycle += 1
                continue

            for op in ops_by_cycle.get(cycle, ()):
                seq += 1
                transfer = self._issue(
                    proc, op, state, cycle, writebacks, seq, depth
                )
                if transfer is not None:
                    effect_cycle, payload = transfer
                    if pending_transfer is not None:
                        raise SimulationError(
                            f"overlapping taken branches in "
                            f"{schedule.block.label} (cycles "
                            f"{pending_transfer[0]} and {effect_cycle})"
                        )
                    pending_transfer = (effect_cycle, payload)
            cycle += 1

        return max(schedule.length, 1), ("fallthrough", None)

    # ------------------------------------------------------------------
    def _issue(self, proc, op, state, cycle, writebacks, seq, depth):
        """Issue one operation; returns (effect_cycle, transfer) for taken
        control transfers, else None."""
        guard = self._read_pred(state, op.guard)
        opcode = op.opcode
        latency = self.latencies.latency(opcode)

        if opcode is Opcode.CMPP:
            a = self._read(state, op.srcs[0])
            b = self._read(state, op.srcs[1])
            result = op.cond.evaluate(a, b)
            for target in op.dests:
                written = target.action.apply(guard, result)
                if written is not None:
                    heapq.heappush(
                        writebacks,
                        (cycle + latency, seq, "reg", target.reg, written),
                    )
            return None
        if opcode is Opcode.BRANCH:
            taken = guard and self._read_pred(state, op.srcs[0])
            if not taken:
                return None
            target = state.btrs.get(op.srcs[1]) or op.branch_target()
            if target is None:
                raise SimulationError(
                    f"branch uid={op.uid} through unset BTR"
                )
            return (cycle + latency, ("goto", target))
        if opcode is Opcode.JUMP:
            return (cycle + latency, ("goto", op.branch_target()))
        if opcode is Opcode.RETURN:
            value = self._read(state, op.srcs[0]) if op.srcs else None
            return (cycle + latency, ("return", value))
        if opcode is Opcode.CALL:
            if not guard:
                return None
            args = [self._read(state, src) for src in op.srcs]
            callee_cycles, value = self._call(
                op.attrs["callee"], args, depth + 1
            )
            if op.dests:
                heapq.heappush(
                    writebacks,
                    (cycle + latency, seq, "reg", op.dests[0], value),
                )
            # Account the callee's cycles by stretching this op's latency
            # bookkeeping (approximation: calls are rare in the suite).
            return None

        if not guard:
            return None
        if opcode is Opcode.STORE:
            address = self._read(state, op.srcs[0])
            value = self._read(state, op.srcs[1])
            heapq.heappush(
                writebacks, (cycle + latency, seq, "mem", address, value)
            )
            return None
        if opcode is Opcode.LOAD:
            address = self._read(state, op.srcs[0])
            value = self.memory.get(address, 0)
            heapq.heappush(
                writebacks,
                (cycle + latency, seq, "reg", op.dests[0], value),
            )
            return None
        if opcode is Opcode.PBR:
            heapq.heappush(
                writebacks,
                (cycle + latency, seq, "reg", op.dests[0], op.srcs[0]),
            )
            return None
        if opcode is Opcode.PRED_CLEAR:
            heapq.heappush(
                writebacks,
                (cycle + latency, seq, "reg", op.dests[0], False),
            )
            return None
        if opcode is Opcode.PRED_SET:
            value = bool(self._read(state, op.srcs[0]))
            heapq.heappush(
                writebacks,
                (cycle + latency, seq, "reg", op.dests[0], value),
            )
            return None
        if opcode in (Opcode.MOV, Opcode.FMOV):
            value = self._read(state, op.srcs[0])
            if isinstance(value, Label):
                value = self.segment_base(value.name)
            heapq.heappush(
                writebacks,
                (cycle + latency, seq, "reg", op.dests[0], value),
            )
            return None
        if opcode is Opcode.CVT_IF:
            value = float(self._read(state, op.srcs[0]))
        elif opcode is Opcode.CVT_FI:
            value = int(self._read(state, op.srcs[0]))
        else:
            a = self._read(state, op.srcs[0])
            b = self._read(state, op.srcs[1])
            value = _ALU[opcode](a, b)
        heapq.heappush(
            writebacks, (cycle + latency, seq, "reg", op.dests[0], value)
        )
        return None

    # ------------------------------------------------------------------
    def _read(self, state, operand):
        if isinstance(operand, Imm):
            return operand.value
        if isinstance(operand, Reg):
            return state.regs.get(operand, 0)
        if isinstance(operand, FReg):
            return state.regs.get(operand, 0.0)
        if isinstance(operand, PredReg):
            return int(self._read_pred(state, operand))
        if isinstance(operand, BTR):
            return state.btrs.get(operand)
        if isinstance(operand, Label):
            return operand
        raise SimulationError(f"unreadable operand {operand!r}")

    def _read_pred(self, state, pred) -> bool:
        if pred == TRUE_PRED:
            return True
        return bool(state.preds.get(pred, False))

    def _write(self, state, dest, value):
        if isinstance(dest, PredReg):
            state.preds[dest] = bool(value)
        elif isinstance(dest, BTR):
            state.btrs[dest] = value
        else:
            state.regs[dest] = value


def simulate_scheduled(
    program: Program,
    processor: ProcessorConfig,
    setup=None,
    entry: str = "main",
    args=(),
) -> CycleSimResult:
    """One-shot cycle simulation; *setup* may poke memory and return args."""
    simulator = CycleSimulator(program, processor)
    if setup is not None:
        returned = setup(simulator)
        if returned is not None and not args:
            args = tuple(returned)
    return simulator.run(entry=entry, args=args)
