"""Struct-of-arrays interpreter engine.

The object interpreter (:mod:`repro.sim.interpreter`) walks ``Operation``
objects and keeps register files as dicts keyed by frozen-dataclass
operands — architecturally faithful, but every op pays attribute lookups,
``isinstance`` ladders, and operand hashing. Reference runs, differential
checks, and the fuzz oracle execute millions of such ops per build, so the
interpreter inherits the scheduler's recipe (:mod:`repro.sched.soa`):

* **Lower once.** :func:`lower_procedure` flattens a procedure into parallel
  arrays — opcode dispatch ids, interned register slots (ints, preds, BTRs
  and fregs each get a dense slot space), immediates and pre-decoded operand
  ``(mode, arg)`` pairs, CSR tables for cmpp destination actions and call
  arguments, branch-target encodings, and per-block op ranges.
* **Run on arrays.** :class:`SoAInterpreter` executes the lowered form with
  a tight integer dispatch loop: register files are plain lists, BTRs hold
  pre-resolved block indices, counters are dense per-op hit arrays, and the
  hot loop touches no ``Operation`` attribute and hashes no operand.
* **Share the lowering.** A :class:`ProgramLowering` memoizes per-procedure
  lowerings so profiling sweeps, differential re-runs, and oracle replays of
  the same program lower each procedure exactly once. Its lifetime is one
  profiling/differential request: passes mutate IR in place, so lowerings
  must not outlive the pass pipeline (the same rule as the scheduler's
  ``ProcedureLowering``).

The engine is **bit-identical** to the object interpreter — same store
traces, return values, memory images, counters keyed by the same
``(procedure, uid)`` / ``(procedure, label)`` pairs, the same error
messages, and the same fuel-exhaustion points — which the lowering-contract
suite (``tests/sim/test_soa_interp.py``) and the hypothesis differential
(``tests/integration/test_property_interp_differential.py``) pin down.

One contract difference, by design: operand-kind errors ("unreadable
operand", "unwritable destination") surface at lowering time here, not at
first execution. They only fire on IR the verifier rejects anyway — no
frontend, builder, or pass emits such operands.
"""

from __future__ import annotations

import operator
from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.errors import FuelExhausted, IRError, SimulationError
from repro.ir.opcodes import Cond, Opcode
from repro.ir.operands import BTR, FReg, Imm, Label, PredReg, Reg
from repro.ir.procedure import Procedure, Program
from repro.sim.interpreter import (
    DEFAULT_FUEL,
    ExecutionResult,
    _int_div,
    _int_rem,
)

# ---------------------------------------------------------------------------
# Dispatch codes (dense ints; the hot loop switches on these)
# ---------------------------------------------------------------------------
OP_ALU = 0
OP_CMPP = 1
OP_BRANCH = 2
OP_LOAD = 3
OP_STORE = 4
OP_MOV = 5          # also FMOV: identical runtime behaviour
OP_JUMP = 6
OP_RETURN = 7
OP_CALL = 8
OP_PBR = 9
OP_PRED_CLEAR = 10
OP_PRED_SET = 11
OP_CVT_IF = 12
OP_CVT_FI = 13

# Operand (mode, arg) encodings. ``arg`` is a slot index for register modes,
# the literal value for M_CONST, and the Label object itself for M_LABEL.
M_NONE = -1
M_CONST = 0
M_REG = 1
M_FREG = 2
M_PRED = 3
M_BTR = 4
M_LABEL = 5

#: ALU dispatch table: C-level operator functions where semantics permit,
#: the interpreter's own div/rem helpers where error messages matter.
_ALU_FN = {
    Opcode.ADD: operator.add,
    Opcode.SUB: operator.sub,
    Opcode.MUL: operator.mul,
    Opcode.DIV: _int_div,
    Opcode.REM: _int_rem,
    Opcode.AND: operator.and_,
    Opcode.OR: operator.or_,
    Opcode.XOR: operator.xor,
    Opcode.SHL: operator.lshift,
    Opcode.SHR: operator.rshift,
    Opcode.FADD: operator.add,
    Opcode.FSUB: operator.sub,
    Opcode.FMUL: operator.mul,
    Opcode.FDIV: operator.truediv,
}

_COND_FN = {
    Cond.EQ: operator.eq,
    Cond.NE: operator.ne,
    Cond.LT: operator.lt,
    Cond.LE: operator.le,
    Cond.GT: operator.gt,
    Cond.GE: operator.ge,
}

#: cmpp action kinds, encoded for the hot loop (complement is a separate bit).
_KIND_U = 0
_KIND_O = 1
_KIND_A = 2
_KIND_CODE = {"U": _KIND_U, "O": _KIND_O, "A": _KIND_A}

_DISPATCH = {
    Opcode.CMPP: OP_CMPP,
    Opcode.BRANCH: OP_BRANCH,
    Opcode.LOAD: OP_LOAD,
    Opcode.STORE: OP_STORE,
    Opcode.MOV: OP_MOV,
    Opcode.FMOV: OP_MOV,
    Opcode.JUMP: OP_JUMP,
    Opcode.RETURN: OP_RETURN,
    Opcode.CALL: OP_CALL,
    Opcode.PBR: OP_PBR,
    Opcode.PRED_CLEAR: OP_PRED_CLEAR,
    Opcode.PRED_SET: OP_PRED_SET,
    Opcode.CVT_IF: OP_CVT_IF,
    Opcode.CVT_FI: OP_CVT_FI,
}


class ProcedureSoA:
    """One procedure lowered to flat arrays.

    Branch targets are encoded as ints: ``>= 0`` is a block index, ``-1``
    means "no target" (an unset BTR), and ``<= -2`` indexes ``bad_labels``
    (a payload that does not name a block — branching through it raises the
    same :class:`IRError` the object engine gets from ``Procedure.block``).
    The BTR register file holds these encodings directly, so a taken branch
    resolves its target without hashing a single operand.
    """

    __slots__ = (
        "name",
        "n_params",
        "param_slots",
        "n_regs",
        "n_fregs",
        "n_preds",
        "n_btrs",
        "reg_slots",
        "freg_slots",
        "pred_slots",
        "btr_slots",
        "n_ops",
        "source_ops",
        "code",
        "uid",
        "guard",
        "a_mode",
        "a_arg",
        "b_mode",
        "b_arg",
        "d_mode",
        "d_arg",
        "fn",
        "target",
        "callee",
        "cmpp_ptr",
        "cmpp_end",
        "cmpp_slot",
        "cmpp_kind",
        "cmpp_comp",
        "call_ptr",
        "call_end",
        "arg_mode",
        "arg_val",
        "br_pred",
        "br_btr",
        "n_blocks",
        "block_start",
        "block_end",
        "block_fall",
        "block_names",
        "block_strs",
        "block_labels",
        "label_to_idx",
        "bad_labels",
        "_bad_enc",
    )

    # ------------------------------------------------------------------
    # Target encoding
    # ------------------------------------------------------------------
    def encode_target(self, payload) -> int:
        """Encode a runtime BTR payload (Label / None / anything)."""
        if payload is None:
            return -1
        if isinstance(payload, Label):
            idx = self.label_to_idx.get(payload.name)
            if idx is not None:
                return idx
        enc = self._bad_enc.get(payload)
        if enc is None:
            enc = -2 - len(self.bad_labels)
            self.bad_labels.append(payload)
            self._bad_enc[payload] = enc
        return enc

    def decode_target(self, encoded: int):
        """Inverse of :meth:`encode_target` — what the object engine's BTR
        register file would hold."""
        if encoded >= 0:
            return self.block_labels[encoded]
        if encoded == -1:
            return None
        return self.bad_labels[-2 - encoded]


def _intern(table: Dict, operand) -> int:
    slot = table.get(operand)
    if slot is None:
        slot = len(table)
        table[operand] = slot
    return slot


def lower_procedure(proc: Procedure) -> ProcedureSoA:
    """Flatten *proc* into a :class:`ProcedureSoA`."""
    pl = ProcedureSoA()
    pl.name = proc.name

    regs: Dict[Reg, int] = {}
    fregs: Dict[FReg, int] = {}
    preds: Dict[PredReg, int] = {PredReg(0): 0}  # slot 0 = TRUE_PRED
    btrs: Dict[BTR, int] = {}

    pl.param_slots = [_intern(regs, param) for param in proc.params]
    pl.n_params = len(proc.params)

    blocks = list(proc.blocks)
    pl.n_blocks = len(blocks)
    pl.block_names = [block.label.name for block in blocks]
    pl.block_strs = [f"{block.label}" for block in blocks]
    pl.block_labels = [block.label for block in blocks]
    pl.label_to_idx = {
        block.label.name: idx for idx, block in enumerate(blocks)
    }
    pl.bad_labels = []
    pl._bad_enc = {}

    code: List[int] = []
    uid: List[int] = []
    guard: List[int] = []
    a_mode: List[int] = []
    a_arg: List[object] = []
    b_mode: List[int] = []
    b_arg: List[object] = []
    d_mode: List[int] = []
    d_arg: List[object] = []
    fn: List[object] = []
    target: List[int] = []
    callee: List[Optional[str]] = []
    cmpp_ptr: List[int] = []
    cmpp_end: List[int] = []
    cmpp_slot: List[int] = []
    cmpp_kind: List[int] = []
    cmpp_comp: List[bool] = []
    call_ptr: List[int] = []
    call_end: List[int] = []
    arg_mode: List[int] = []
    arg_val: List[object] = []
    br_pred: List[int] = []
    br_btr: List[int] = []
    source_ops = []
    block_start: List[int] = []
    block_end: List[int] = []
    block_fall: List[int] = []

    def encode_src(src) -> Tuple[int, object]:
        if isinstance(src, Imm):
            return M_CONST, src.value
        if isinstance(src, Reg):
            return M_REG, _intern(regs, src)
        if isinstance(src, FReg):
            return M_FREG, _intern(fregs, src)
        if isinstance(src, PredReg):
            return M_PRED, _intern(preds, src)
        if isinstance(src, BTR):
            return M_BTR, _intern(btrs, src)
        if isinstance(src, Label):
            return M_LABEL, src
        raise SimulationError(f"unreadable operand {src!r}")

    def encode_dest(dest) -> Tuple[int, object]:
        if isinstance(dest, Reg):
            return M_REG, _intern(regs, dest)
        if isinstance(dest, FReg):
            return M_FREG, _intern(fregs, dest)
        if isinstance(dest, PredReg):
            return M_PRED, _intern(preds, dest)
        if isinstance(dest, BTR):
            return M_BTR, _intern(btrs, dest)
        raise SimulationError(f"unwritable destination {dest!r}")

    for index, block in enumerate(blocks):
        block_start.append(len(code))
        for op in block.ops:
            opcode = op.opcode
            dispatch = _DISPATCH.get(opcode, OP_ALU)
            code.append(dispatch)
            uid.append(op.uid)
            guard.append(_intern(preds, op.guard))
            source_ops.append(op)

            am, aa = (M_NONE, 0)
            bm, ba = (M_NONE, 0)
            dm, da = (M_NONE, 0)
            op_fn = None
            op_target = -1
            op_callee = None
            cp = ce = len(cmpp_slot)
            kp = ke = len(arg_mode)
            bp = bb = -1

            if dispatch == OP_CMPP:
                am, aa = encode_src(op.srcs[0])
                bm, ba = encode_src(op.srcs[1])
                op_fn = _COND_FN[op.cond]
                for pt in op.dests:
                    cmpp_slot.append(_intern(preds, pt.reg))
                    cmpp_kind.append(_KIND_CODE[pt.action.kind])
                    cmpp_comp.append(pt.action.complemented)
                ce = len(cmpp_slot)
            elif dispatch == OP_BRANCH:
                src0 = op.srcs[0] if op.srcs else None
                if isinstance(src0, PredReg):
                    bp = _intern(preds, src0)
                src1 = op.srcs[1] if len(op.srcs) > 1 else None
                if isinstance(src1, BTR):
                    bb = _intern(btrs, src1)
                static = op.branch_target()
                op_target = (
                    -1 if static is None else pl.encode_target(static)
                )
            elif dispatch == OP_JUMP:
                op_target = pl.encode_target(op.branch_target())
            elif dispatch == OP_RETURN:
                if op.srcs:
                    am, aa = encode_src(op.srcs[0])
            elif dispatch == OP_CALL:
                op_callee = op.attrs["callee"]
                for src in op.srcs:
                    mode, val = encode_src(src)
                    arg_mode.append(mode)
                    arg_val.append(val)
                ke = len(arg_mode)
                if op.dests:
                    dm, da = encode_dest(op.dests[0])
            elif dispatch == OP_PBR:
                dm, da = encode_dest(op.dests[0])
                op_target = pl.encode_target(op.srcs[0])
            elif dispatch == OP_PRED_CLEAR:
                dm, da = encode_dest(op.dests[0])
            elif dispatch == OP_PRED_SET:
                am, aa = encode_src(op.srcs[0])
                dm, da = encode_dest(op.dests[0])
            elif dispatch in (OP_MOV, OP_CVT_IF, OP_CVT_FI, OP_LOAD):
                am, aa = encode_src(op.srcs[0])
                dm, da = encode_dest(op.dests[0])
            elif dispatch == OP_STORE:
                am, aa = encode_src(op.srcs[0])
                bm, ba = encode_src(op.srcs[1])
            else:  # plain binary ALU op
                am, aa = encode_src(op.srcs[0])
                bm, ba = encode_src(op.srcs[1])
                dm, da = encode_dest(op.dests[0])
                op_fn = _ALU_FN[opcode]

            a_mode.append(am)
            a_arg.append(aa)
            b_mode.append(bm)
            b_arg.append(ba)
            d_mode.append(dm)
            d_arg.append(da)
            fn.append(op_fn)
            target.append(op_target)
            callee.append(op_callee)
            cmpp_ptr.append(cp)
            cmpp_end.append(ce)
            call_ptr.append(kp)
            call_end.append(ke)
            br_pred.append(bp)
            br_btr.append(bb)

        block_end.append(len(code))
        if block.fallthrough is not None:
            block_fall.append(pl.encode_target(block.fallthrough))
        elif index + 1 < len(blocks):
            block_fall.append(index + 1)
        else:
            block_fall.append(-1)  # fell off the procedure

    pl.n_regs = len(regs)
    pl.n_fregs = len(fregs)
    pl.n_preds = len(preds)
    pl.n_btrs = len(btrs)
    pl.reg_slots = regs
    pl.freg_slots = fregs
    pl.pred_slots = preds
    pl.btr_slots = btrs
    pl.n_ops = len(code)
    pl.source_ops = source_ops
    pl.code = code
    pl.uid = uid
    pl.guard = guard
    pl.a_mode = a_mode
    pl.a_arg = a_arg
    pl.b_mode = b_mode
    pl.b_arg = b_arg
    pl.d_mode = d_mode
    pl.d_arg = d_arg
    pl.fn = fn
    pl.target = target
    pl.callee = callee
    pl.cmpp_ptr = cmpp_ptr
    pl.cmpp_end = cmpp_end
    pl.cmpp_slot = cmpp_slot
    pl.cmpp_kind = cmpp_kind
    pl.cmpp_comp = cmpp_comp
    pl.call_ptr = call_ptr
    pl.call_end = call_end
    pl.arg_mode = arg_mode
    pl.arg_val = arg_val
    pl.br_pred = br_pred
    pl.br_btr = br_btr
    pl.block_start = block_start
    pl.block_end = block_end
    pl.block_fall = block_fall
    return pl


class ProgramLowering:
    """Lazily lowers procedures, memoized by name.

    Lifetime: one profiling sweep / differential check / oracle replay.
    Passes mutate IR in place, so a lowering must be discarded as soon as
    the program may change underneath it.
    """

    def __init__(self, program: Program):
        self.program = program
        self._procs: Dict[str, ProcedureSoA] = {}

    def procedure(self, name: str) -> ProcedureSoA:
        pl = self._procs.get(name)
        if pl is None:
            pl = lower_procedure(self.program.procedure(name))
            self._procs[name] = pl
        return pl


class SoAInterpreter:
    """Array-core interpreter with the same observable surface as
    :class:`repro.sim.interpreter.Interpreter`."""

    def __init__(
        self,
        program: Program,
        fuel: int = DEFAULT_FUEL,
        lowering: Optional[ProgramLowering] = None,
    ):
        self.program = program
        self.fuel = fuel
        self.memory: Dict[int, int] = {}
        self.store_trace: List[Tuple[int, int]] = []
        self.ops_executed = 0
        self.branches_executed = 0
        self.segment_bases: Dict[str, int] = {}
        self._lowering = (
            lowering if lowering is not None else ProgramLowering(program)
        )
        # proc name -> (op hits, block hits, taken hits, not-taken hits)
        self._hits: Dict[str, Tuple[list, list, list, list]] = {}
        self._load_segments()

    # ------------------------------------------------------------------
    # Memory image (identical to the object engine)
    # ------------------------------------------------------------------
    def _load_segments(self):
        base = 0x1000
        for segment in self.program.segments.values():
            segment.base = base
            self.segment_bases[segment.name] = base
            for offset, value in enumerate(segment.initial):
                self.memory[base + offset] = value
            base += segment.size + 16  # red zone between segments

    def segment_base(self, name: str) -> int:
        try:
            return self.segment_bases[name]
        except KeyError:
            raise SimulationError(f"no data segment {name!r}") from None

    def poke(self, address: int, value: int):
        """Write memory directly (input setup; not part of the store trace)."""
        self.memory[address] = value

    def poke_array(self, name: str, values):
        segment = self.program.segment(name)
        if len(values) > segment.size:
            raise SimulationError(
                f"poke_array: {len(values)} values overflow segment "
                f"{name!r} of size {segment.size}"
            )
        base = self.segment_base(name)
        for offset, value in enumerate(values):
            self.memory[base + offset] = value

    def peek(self, address: int) -> int:
        return self.memory.get(address, 0)

    def peek_array(self, name: str, count: int) -> List[int]:
        base = self.segment_base(name)
        return [self.memory.get(base + i, 0) for i in range(count)]

    # ------------------------------------------------------------------
    # Counters: dense hit arrays, materialized into the object engine's
    # Counter shapes on demand (only nonzero entries are emitted, so the
    # Counters compare equal to the reference engine's).
    # ------------------------------------------------------------------
    @property
    def block_counts(self) -> Counter:
        counts = Counter()
        for name, (_, block_hits, _, _) in self._hits.items():
            names = self._lowering.procedure(name).block_names
            for idx, hits in enumerate(block_hits):
                if hits:
                    counts[(name, names[idx])] = hits
        return counts

    @property
    def op_counts(self) -> Counter:
        return self._materialize(0)

    @property
    def branch_taken(self) -> Counter:
        return self._materialize(2)

    @property
    def branch_not_taken(self) -> Counter:
        return self._materialize(3)

    def _materialize(self, which: int) -> Counter:
        counts = Counter()
        for name, hit_arrays in self._hits.items():
            uid = self._lowering.procedure(name).uid
            for idx, hits in enumerate(hit_arrays[which]):
                if hits:
                    counts[(name, uid[idx])] = hits
        return counts

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, entry: str = "main", args=()) -> ExecutionResult:
        value = self._call(entry, list(args), depth=0)
        return ExecutionResult(
            return_value=value,
            store_trace=list(self.store_trace),
            memory=dict(self.memory),
            ops_executed=self.ops_executed,
            branches_executed=self.branches_executed,
            block_counts=self.block_counts,
            op_counts=self.op_counts,
            branch_taken=self.branch_taken,
            branch_not_taken=self.branch_not_taken,
        )

    def _call(self, name: str, args, depth: int) -> Optional[int]:
        if depth > 200:
            raise SimulationError(f"call depth exceeded calling {name}")
        pl = self._lowering.procedure(name)
        if len(args) != pl.n_params:
            raise SimulationError(
                f"{name} expects {pl.n_params} args, got {len(args)}"
            )
        return self._exec(pl, args, depth)

    def _read_rare(self, pl, mode, arg, preds, btrs):
        if mode == M_PRED:
            return 1 if (arg == 0 or preds[arg]) else 0
        if mode == M_BTR:
            return pl.decode_target(btrs[arg])
        if mode == M_LABEL:
            return arg
        raise SimulationError(f"unreadable operand mode {mode}")

    def _write_rare(self, pl, mode, arg, value, preds, btrs):
        if mode == M_PRED:
            preds[arg] = bool(value)
        elif mode == M_BTR:
            btrs[arg] = pl.encode_target(value)
        else:
            raise SimulationError(f"unwritable destination mode {mode}")

    def _exec(self, pl: ProcedureSoA, args, depth: int) -> Optional[int]:
        hit_arrays = self._hits.get(pl.name)
        if hit_arrays is None:
            hit_arrays = (
                [0] * pl.n_ops,
                [0] * pl.n_blocks,
                [0] * pl.n_ops,
                [0] * pl.n_ops,
            )
            self._hits[pl.name] = hit_arrays
        op_hits, block_hits, taken_hits, nottaken_hits = hit_arrays

        regs: List = [0] * pl.n_regs
        fregs: List = [0.0] * pl.n_fregs
        preds: List = [False] * pl.n_preds
        btrs: List = [-1] * pl.n_btrs
        for slot, value in zip(pl.param_slots, args):
            regs[slot] = value

        # Bind every array to a local: the loop below is the hot path.
        code = pl.code
        uid = pl.uid
        guard = pl.guard
        a_mode = pl.a_mode
        a_arg = pl.a_arg
        b_mode = pl.b_mode
        b_arg = pl.b_arg
        d_mode = pl.d_mode
        d_arg = pl.d_arg
        fn = pl.fn
        target = pl.target
        callee = pl.callee
        cmpp_ptr = pl.cmpp_ptr
        cmpp_end = pl.cmpp_end
        cmpp_slot = pl.cmpp_slot
        cmpp_kind = pl.cmpp_kind
        cmpp_comp = pl.cmpp_comp
        call_ptr = pl.call_ptr
        call_end = pl.call_end
        arg_mode = pl.arg_mode
        arg_val = pl.arg_val
        br_pred = pl.br_pred
        br_btr = pl.br_btr
        block_start = pl.block_start
        block_end = pl.block_end
        block_fall = pl.block_fall
        block_strs = pl.block_strs
        block_names = pl.block_names
        memory = self.memory
        trace = self.store_trace
        segment_bases = self.segment_bases
        name = pl.name

        fuel = self.fuel
        ops = self.ops_executed
        branches = self.branches_executed
        blk = 0
        try:
            while True:
                block_hits[blk] += 1
                i = block_start[blk]
                end = block_end[blk]
                transferred = False
                while i < end:
                    fuel -= 1
                    if fuel <= 0:
                        raise FuelExhausted(
                            f"fuel exhausted in {name}/{block_strs[blk]} "
                            f"after {ops} operations",
                            proc=name,
                            block=block_names[blk],
                            ops_executed=ops,
                        )
                    ops += 1
                    op_hits[i] += 1
                    g = guard[i]
                    gval = True if g == 0 else preds[g]
                    c = code[i]
                    if c == 0:  # ALU
                        if gval:
                            m = a_mode[i]
                            x = a_arg[i]
                            if m == 1:
                                a = regs[x]
                            elif m == 0:
                                a = x
                            elif m == 2:
                                a = fregs[x]
                            else:
                                a = self._read_rare(pl, m, x, preds, btrs)
                            m = b_mode[i]
                            x = b_arg[i]
                            if m == 1:
                                b = regs[x]
                            elif m == 0:
                                b = x
                            elif m == 2:
                                b = fregs[x]
                            else:
                                b = self._read_rare(pl, m, x, preds, btrs)
                            v = fn[i](a, b)
                            m = d_mode[i]
                            x = d_arg[i]
                            if m == 1:
                                regs[x] = v
                            elif m == 2:
                                fregs[x] = v
                            else:
                                self._write_rare(pl, m, x, v, preds, btrs)
                    elif c == 1:  # CMPP: actions fire even on a false guard
                        m = a_mode[i]
                        x = a_arg[i]
                        if m == 1:
                            a = regs[x]
                        elif m == 0:
                            a = x
                        elif m == 2:
                            a = fregs[x]
                        else:
                            a = self._read_rare(pl, m, x, preds, btrs)
                        m = b_mode[i]
                        x = b_arg[i]
                        if m == 1:
                            b = regs[x]
                        elif m == 0:
                            b = x
                        elif m == 2:
                            b = fregs[x]
                        else:
                            b = self._read_rare(pl, m, x, preds, btrs)
                        r = fn[i](a, b)
                        j = cmpp_ptr[i]
                        je = cmpp_end[i]
                        while j < je:
                            eff = (not r) if cmpp_comp[j] else r
                            k = cmpp_kind[j]
                            if k == 0:  # unconditional
                                preds[cmpp_slot[j]] = bool(gval and eff)
                            elif gval:
                                if k == 1:  # wired-or
                                    if eff:
                                        preds[cmpp_slot[j]] = True
                                elif not eff:  # wired-and
                                    preds[cmpp_slot[j]] = False
                            j += 1
                    elif c == 2:  # BRANCH
                        branches += 1
                        ps = br_pred[i]
                        if gval and (ps == 0 or (ps > 0 and preds[ps])):
                            taken_hits[i] += 1
                            bs = br_btr[i]
                            t = btrs[bs] if bs >= 0 else -1
                            if t == -1:
                                t = target[i]
                            if t >= 0:
                                blk = t
                                transferred = True
                                break
                            if t == -1:
                                raise SimulationError(
                                    f"branch uid={uid[i]} through unset BTR"
                                )
                            raise IRError(
                                f"no block {pl.bad_labels[-2 - t]} "
                                f"in procedure {name}"
                            )
                        nottaken_hits[i] += 1
                    elif c == 3:  # LOAD
                        if gval:
                            m = a_mode[i]
                            x = a_arg[i]
                            if m == 1:
                                a = regs[x]
                            elif m == 0:
                                a = x
                            else:
                                a = self._read_rare(pl, m, x, preds, btrs)
                            v = memory.get(a, 0)
                            m = d_mode[i]
                            x = d_arg[i]
                            if m == 1:
                                regs[x] = v
                            elif m == 2:
                                fregs[x] = v
                            else:
                                self._write_rare(pl, m, x, v, preds, btrs)
                    elif c == 4:  # STORE
                        if gval:
                            m = a_mode[i]
                            x = a_arg[i]
                            if m == 1:
                                a = regs[x]
                            elif m == 0:
                                a = x
                            else:
                                a = self._read_rare(pl, m, x, preds, btrs)
                            m = b_mode[i]
                            x = b_arg[i]
                            if m == 1:
                                b = regs[x]
                            elif m == 0:
                                b = x
                            elif m == 2:
                                b = fregs[x]
                            else:
                                b = self._read_rare(pl, m, x, preds, btrs)
                            memory[a] = b
                            trace.append((a, b))
                    elif c == 5:  # MOV / FMOV
                        if gval:
                            m = a_mode[i]
                            x = a_arg[i]
                            if m == 1:
                                v = regs[x]
                            elif m == 0:
                                v = x
                            elif m == 2:
                                v = fregs[x]
                            elif m == 5:
                                # mov from a data label materializes the
                                # segment's address.
                                segname = x.name
                                try:
                                    v = segment_bases[segname]
                                except KeyError:
                                    raise SimulationError(
                                        f"no data segment {segname!r}"
                                    ) from None
                            else:
                                v = self._read_rare(pl, m, x, preds, btrs)
                                if isinstance(v, Label):
                                    v = self.segment_base(v.name)
                            m = d_mode[i]
                            x = d_arg[i]
                            if m == 1:
                                regs[x] = v
                            elif m == 2:
                                fregs[x] = v
                            else:
                                self._write_rare(pl, m, x, v, preds, btrs)
                    elif c == 6:  # JUMP ignores its guard
                        branches += 1
                        t = target[i]
                        if t >= 0:
                            blk = t
                            transferred = True
                            break
                        raise IRError(
                            f"no block {pl.bad_labels[-2 - t]} "
                            f"in procedure {name}"
                        )
                    elif c == 7:  # RETURN ignores its guard
                        branches += 1
                        m = a_mode[i]
                        if m == -1:
                            return None
                        x = a_arg[i]
                        if m == 1:
                            return regs[x]
                        if m == 0:
                            return x
                        if m == 2:
                            return fregs[x]
                        return self._read_rare(pl, m, x, preds, btrs)
                    elif c == 8:  # CALL
                        branches += 1
                        if gval:
                            call_args = []
                            j = call_ptr[i]
                            je = call_end[i]
                            while j < je:
                                m = arg_mode[j]
                                x = arg_val[j]
                                if m == 1:
                                    call_args.append(regs[x])
                                elif m == 0:
                                    call_args.append(x)
                                elif m == 2:
                                    call_args.append(fregs[x])
                                else:
                                    call_args.append(
                                        self._read_rare(
                                            pl, m, x, preds, btrs
                                        )
                                    )
                                j += 1
                            self.fuel = fuel
                            self.ops_executed = ops
                            self.branches_executed = branches
                            try:
                                v = self._call(
                                    callee[i], call_args, depth + 1
                                )
                            finally:
                                # Resync even when the callee raises, or the
                                # enclosing ``finally`` would clobber the
                                # callee's counters with stale locals.
                                fuel = self.fuel
                                ops = self.ops_executed
                                branches = self.branches_executed
                            m = d_mode[i]
                            if m != -1:
                                x = d_arg[i]
                                if m == 1:
                                    regs[x] = v
                                elif m == 2:
                                    fregs[x] = v
                                else:
                                    self._write_rare(
                                        pl, m, x, v, preds, btrs
                                    )
                    elif c == 9:  # PBR: target pre-encoded at lowering
                        if gval:
                            btrs[d_arg[i]] = target[i]
                    elif c == 10:  # PRED_CLEAR
                        if gval:
                            preds[d_arg[i]] = False
                    elif c == 11:  # PRED_SET
                        if gval:
                            m = a_mode[i]
                            x = a_arg[i]
                            if m == 1:
                                v = regs[x]
                            elif m == 0:
                                v = x
                            else:
                                v = self._read_rare(pl, m, x, preds, btrs)
                            preds[d_arg[i]] = bool(v)
                    elif c == 12:  # CVT_IF
                        if gval:
                            m = a_mode[i]
                            x = a_arg[i]
                            if m == 1:
                                v = regs[x]
                            elif m == 0:
                                v = x
                            elif m == 2:
                                v = fregs[x]
                            else:
                                v = self._read_rare(pl, m, x, preds, btrs)
                            v = float(v)
                            m = d_mode[i]
                            x = d_arg[i]
                            if m == 2:
                                fregs[x] = v
                            elif m == 1:
                                regs[x] = v
                            else:
                                self._write_rare(pl, m, x, v, preds, btrs)
                    else:  # CVT_FI
                        if gval:
                            m = a_mode[i]
                            x = a_arg[i]
                            if m == 1:
                                v = regs[x]
                            elif m == 0:
                                v = x
                            elif m == 2:
                                v = fregs[x]
                            else:
                                v = self._read_rare(pl, m, x, preds, btrs)
                            v = int(v)
                            m = d_mode[i]
                            x = d_arg[i]
                            if m == 1:
                                regs[x] = v
                            elif m == 2:
                                fregs[x] = v
                            else:
                                self._write_rare(pl, m, x, v, preds, btrs)
                    i += 1
                if transferred:
                    continue
                f = block_fall[blk]
                if f >= 0:
                    blk = f
                elif f == -1:
                    raise SimulationError(
                        f"{name}/{block_strs[blk]}: fell off the procedure"
                    )
                else:
                    raise IRError(
                        f"no block {pl.bad_labels[-2 - f]} "
                        f"in procedure {name}"
                    )
        finally:
            self.fuel = fuel
            self.ops_executed = ops
            self.branches_executed = branches
