"""Profile collection and aggregation.

The paper's heuristics (exit-weight, predict-taken) and its performance
estimator both consume *branch profiles*: taken / not-taken counts per
branch, plus block entry frequencies. This module runs the functional
interpreter over one or more inputs and aggregates the counters into a
:class:`ProfileData` the rest of the pipeline queries.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.ir.operation import Operation
from repro.ir.procedure import Program
from repro.sim.interpreter import (
    DEFAULT_FUEL,
    _resolve_engine,
    make_interpreter,
)


@dataclass
class BranchProfile:
    """Taken/not-taken statistics for a single branch operation."""

    taken: int = 0
    not_taken: int = 0

    @property
    def executed(self) -> int:
        return self.taken + self.not_taken

    @property
    def taken_ratio(self) -> float:
        if self.executed == 0:
            return 0.0
        return self.taken / self.executed

    def merge(self, other: "BranchProfile"):
        self.taken += other.taken
        self.not_taken += other.not_taken


@dataclass
class ProfileData:
    """Aggregated dynamic statistics for one program build.

    Keys are (procedure name, op uid) for operations and (procedure name,
    block label string) for blocks, matching the interpreter's counters.
    """

    block_counts: Counter = field(default_factory=Counter)
    op_counts: Counter = field(default_factory=Counter)
    branches: Dict[Tuple[str, int], BranchProfile] = field(
        default_factory=dict
    )
    runs: int = 0
    total_ops: int = 0
    total_branches: int = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def block_count(self, proc_name: str, label) -> int:
        name = label.name if hasattr(label, "name") else str(label)
        return self.block_counts[(proc_name, name)]

    def op_count(self, proc_name: str, op: Operation) -> int:
        return self.op_counts[(proc_name, op.uid)]

    def branch_profile(self, proc_name: str, op: Operation) -> BranchProfile:
        return self.branches.get(
            (proc_name, op.uid), BranchProfile()
        )

    def taken_ratio(self, proc_name: str, op: Operation) -> float:
        return self.branch_profile(proc_name, op).taken_ratio

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def absorb_result(self, result):
        self.runs += 1
        self.block_counts.update(result.block_counts)
        self.op_counts.update(result.op_counts)
        self.total_ops += result.ops_executed
        self.total_branches += result.branches_executed
        for key, taken in result.branch_taken.items():
            self.branches.setdefault(key, BranchProfile()).taken += taken
        for key, not_taken in result.branch_not_taken.items():
            self.branches.setdefault(
                key, BranchProfile()
            ).not_taken += not_taken


def profile_program(
    program: Program,
    inputs: Optional[Iterable] = None,
    entry: str = "main",
    fuel: int = DEFAULT_FUEL,
    engine: Optional[str] = None,
) -> ProfileData:
    """Run *program* over each input and aggregate profiles.

    Each input is either ``None`` (run with no setup), a callable
    ``setup(interpreter)``, or a tuple ``(setup, args)`` where *args* are the
    entry procedure's arguments. A bare callable may *return* the argument
    tuple (e.g. computed segment base addresses).

    *engine* selects the interpreter engine; with the SoA engine one
    program lowering is shared across every input of the sweep.
    """
    profile = ProfileData()
    if inputs is None:
        inputs = [None]
    engine = _resolve_engine(engine)
    lowering = None
    if engine == "soa":
        from repro.sim.soa import ProgramLowering

        lowering = ProgramLowering(program)
    for item in inputs:
        setup, args = _normalize_input(item)
        interp = make_interpreter(
            program, fuel=fuel, engine=engine, lowering=lowering
        )
        if setup is not None:
            returned = setup(interp)
            if returned is not None and not args:
                args = tuple(returned)
        result = interp.run(entry=entry, args=args)
        profile.absorb_result(result)
    return profile


def annotate_blocks(program: Program, profile: ProfileData):
    """Copy block entry counts from *profile* onto the IR blocks."""
    for proc in program.procedures.values():
        for block in proc.blocks:
            block.entry_count = profile.block_count(proc.name, block.label)


def _normalize_input(item):
    if item is None:
        return None, ()
    if callable(item):
        return item, ()
    setup, args = item
    return setup, tuple(args)
