"""Functional simulation: IR interpreter, profiler, and execution traces."""

from repro.sim.cycle_sim import (
    CycleSimResult,
    CycleSimulator,
    simulate_scheduled,
)
from repro.sim.interpreter import ExecutionResult, Interpreter, run_program
from repro.sim.profiler import BranchProfile, ProfileData, profile_program

__all__ = [
    "BranchProfile",
    "CycleSimResult",
    "CycleSimulator",
    "ExecutionResult",
    "Interpreter",
    "ProfileData",
    "profile_program",
    "run_program",
    "simulate_scheduled",
]
