"""Functional simulation: IR interpreter, profiler, and execution traces.

Two interpreter engines share one observable contract (see
:mod:`repro.sim.interpreter` for the dispatch and :mod:`repro.sim.soa` for
the array core); select one with ``use_engine``/``set_default_engine`` or
per call via ``make_interpreter``/``run_program(engine=...)``.
"""

from repro.sim.cycle_sim import (
    CycleSimResult,
    CycleSimulator,
    simulate_scheduled,
)
from repro.sim.interpreter import (
    ENGINES,
    ExecutionResult,
    Interpreter,
    get_default_engine,
    make_interpreter,
    run_program,
    set_default_engine,
    use_engine,
)
from repro.sim.profiler import BranchProfile, ProfileData, profile_program

__all__ = [
    "BranchProfile",
    "CycleSimResult",
    "CycleSimulator",
    "ENGINES",
    "ExecutionResult",
    "Interpreter",
    "ProfileData",
    "get_default_engine",
    "make_interpreter",
    "profile_program",
    "run_program",
    "set_default_engine",
    "simulate_scheduled",
    "use_engine",
]
