"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — the workload registry (paper Table 2 order);
* ``evaluate NAME [...]`` — run the full methodology for one or more
  workloads and print per-machine speedups and count ratios;
* ``table2`` / ``table3`` — regenerate the paper's tables
  (``--subset a,b,c`` restricts, ``--scale N`` grows inputs);
* ``show NAME --stage {source,ir,baseline,cpr}`` — inspect a workload at
  any pipeline stage.

Build commands accept ``--strict`` to disable transactional per-procedure
rollback (the first pass failure then aborts the build). In the default
resilient mode, any incidents recovered during a build are summarized on
stderr after the results.

Library failures never surface as tracebacks: a one-line diagnostic goes to
stderr and the process exits with a distinct code per failing subsystem —
parse/semantic = 2, verify/IR = 3, transform/scheduling = 4,
simulation = 5, any other library error = 1.
"""

from __future__ import annotations

import argparse
import sys

from repro import errors
from repro.perf.report import build_table2, build_table3, evaluate_workload
from repro.pipeline import PipelineOptions, build_workload
from repro.sim.interpreter import DEFAULT_FUEL
from repro.workloads.registry import all_names, get_workload

MACHINES = ("sequential", "narrow", "medium", "wide", "infinite")

#: Exit codes per failing subsystem, checked in order (subclasses first).
EXIT_CODES = (
    (errors.ParseError, 2),
    (errors.SemanticError, 2),
    (errors.VerificationError, 3),
    (errors.IRError, 3),
    (errors.TransformError, 4),
    (errors.SchedulingError, 4),
    (errors.SimulationError, 5),
)


def exit_code_for(exc: errors.ReproError) -> int:
    for klass, code in EXIT_CODES:
        if isinstance(exc, klass):
            return code
    return 1


def _selected(args) -> list:
    if getattr(args, "subset", None):
        return [name.strip() for name in args.subset.split(",")]
    return all_names()


def _pipeline_options(args) -> PipelineOptions:
    fuel = getattr(args, "fuel", None)
    return PipelineOptions(
        resilient=not getattr(args, "strict", False),
        fuel=DEFAULT_FUEL if fuel is None else fuel,
    )


def _print_incidents(build_report):
    """Summarize recovered incidents on stderr (silent for clean builds)."""
    if build_report is not None and build_report.incidents:
        print(build_report.summary(), file=sys.stderr)


def cmd_list(args) -> int:
    for name in all_names():
        workload = get_workload(name)
        print(f"{name:<14} [{workload.category:<6}] "
              f"{workload.description}")
    return 0


def cmd_evaluate(args) -> int:
    options = _pipeline_options(args)
    for name in args.names:
        result = evaluate_workload(
            get_workload(name, scale=args.scale), options=options
        )
        speedups = "  ".join(
            f"{machine[:3]}={result.speedup(machine):.2f}"
            for machine in MACHINES
        )
        s_tot, s_br, d_tot, d_br = result.count_ratios()
        print(f"{name:<14} {speedups}")
        print(
            f"{'':<14} Stot={s_tot:.2f}  Sbr={s_br:.2f}  "
            f"Dtot={d_tot:.2f}  Dbr={d_br:.2f}"
        )
        _print_incidents(result.build.build_report)
    return 0


def cmd_table2(args) -> int:
    workloads = [get_workload(n, scale=args.scale) for n in _selected(args)]
    table = build_table2(workloads, options=_pipeline_options(args))
    print(table.render())
    for row in table.rows:
        _print_incidents(row.build.build_report)
    return 0


def cmd_table3(args) -> int:
    workloads = [get_workload(n, scale=args.scale) for n in _selected(args)]
    table = build_table3(workloads, options=_pipeline_options(args))
    print(table.render())
    for row in table.rows:
        _print_incidents(row.build.build_report)
    return 0


def cmd_show(args) -> int:
    workload = get_workload(args.name, scale=args.scale)
    if args.stage == "source":
        print(workload.source)
        return 0
    program = workload.compile()
    if args.stage == "ir":
        print(program.format())
        return 0
    build = build_workload(
        workload.name, program, workload.inputs, _pipeline_options(args)
    )
    chosen = build.baseline if args.stage == "baseline" else (
        build.transformed
    )
    print(chosen.format())
    _print_incidents(build.build_report)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Control CPR: A Branch Height Reduction "
            "Optimization for EPIC Architectures' (PLDI 1999)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the workload registry")

    p_eval = sub.add_parser("evaluate", help="evaluate workloads")
    p_eval.add_argument("names", nargs="+", choices=all_names())
    p_eval.add_argument("--scale", type=int, default=1)
    p_eval.add_argument(
        "--fuel", type=int, default=None,
        help="interpreter operation budget per run",
    )

    for table in ("table2", "table3"):
        p_table = sub.add_parser(table, help=f"regenerate {table}")
        p_table.add_argument("--subset", default="")
        p_table.add_argument("--scale", type=int, default=1)

    p_show = sub.add_parser("show", help="inspect a workload's code")
    p_show.add_argument("name", choices=all_names())
    p_show.add_argument(
        "--stage",
        choices=("source", "ir", "baseline", "cpr"),
        default="ir",
    )
    p_show.add_argument("--scale", type=int, default=1)

    for p_build in sub.choices.values():
        p_build.add_argument(
            "--strict", action="store_true",
            help="abort the build on the first pass failure instead of "
                 "rolling back the affected procedure",
        )

    args = parser.parse_args(argv)
    handler = {
        "list": cmd_list,
        "evaluate": cmd_evaluate,
        "table2": cmd_table2,
        "table3": cmd_table3,
        "show": cmd_show,
    }[args.command]
    try:
        return handler(args)
    except errors.ReproError as exc:
        print(f"repro: {type(exc).__name__}: {exc}", file=sys.stderr)
        return exit_code_for(exc)


if __name__ == "__main__":
    sys.exit(main())
