"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — the workload registry (paper Table 2 order);
* ``evaluate NAME [...]`` — run the full methodology for one or more
  workloads and print per-machine speedups and count ratios;
* ``table2`` / ``table3`` — regenerate the paper's tables
  (``--subset a,b,c`` restricts, ``--scale N`` grows inputs);
* ``show NAME --stage {source,ir,baseline,cpr}`` — inspect a workload at
  any pipeline stage;
* ``trace NAME`` — build one workload with span tracing armed and print
  the pipeline span tree, the CPR decision ledger, and the observability
  counters (``--chrome PATH`` exports a Chrome ``trace_event`` document,
  ``--json PATH`` the raw trace, ``--kind K`` filters ledger entries);
* ``fuzz`` — differentially fuzz the rival backends
  (:mod:`repro.fuzz`) over seeded mini-C programs: every seed is built
  under each requested backend and checked against the unoptimized
  interpreter semantics plus the sanitizer battery; divergent seeds are
  delta-debugged and written as repro bundles (``--bundle-dir``) whose
  ``generator.json`` regenerates the input from the recorded seed and
  knobs. Exits 4 when any seed diverges. ``--inject KIND`` arms the
  fault-injection harness as an oracle self-test;
* ``compare`` — head-to-head backend table (speedup, static/dynamic
  branch ratios, code growth, schedule length, geometric means) over
  the registry (``--subset``) or a fuzz corpus (``--seeds``), every
  backend transforming one shared baseline per workload;
* ``serve`` — run the compile-as-a-service daemon (:mod:`repro.serve`):
  an HTTP/JSON server that dispatches compile requests onto the
  supervised farm, with per-client rate limiting, a bounded queue
  (429 + Retry-After when full), an overload-shedding ladder, and —
  with ``--journal PATH`` — a write-ahead request journal so a killed
  daemon restarted with ``--resume`` replays finished answers and
  explicitly NACKs whatever was in flight.

Build commands accept ``--strict`` to disable transactional per-procedure
rollback (the first pass failure then aborts the build). In the default
resilient mode, any incidents recovered during a build are summarized on
stderr after the results.

``evaluate``, ``table2`` and ``table3`` run on the build farm
(:mod:`repro.farm`): ``--jobs N`` (or ``auto``) fans workloads across a
process pool, ``--cache`` enables the content-addressed pass/evaluation
cache (``--cache-dir`` overrides its location, default
``$REPRO_CACHE_DIR`` or ``~/.cache/repro-farm``), and
``--metrics-json PATH`` writes the schema-versioned compile-metrics
document, and ``--trace PATH`` arms span tracing in every worker and
writes the merged Chrome ``trace_event`` document. Results are
deterministic: identical across ``--jobs`` values and cache states.

``--sanitize[=fast|full]`` arms the semantic sanitizer battery
(:mod:`repro.sanitize`) inside every pass transaction; findings roll the
transaction back and are shrunk by the delta-debugging reducer into
self-contained bundles under ``--repro-dir`` (default
``repro-bundles/``).

Farm commands can run **supervised** (:mod:`repro.farm.supervisor`):
``--deadline S`` bounds each workload build, ``--budget S`` bounds the
whole run's wall clock, ``--retries N`` sets how often a workload is
re-dispatched after it kills a worker before the crash-loop circuit
breaker quarantines it, and ``--journal PATH`` writes the write-ahead
completion journal so an interrupted run (Ctrl-C, SIGTERM, or a blown
budget) can be continued with ``--journal PATH --resume``, re-running
only the unfinished workloads. ``--chaos SPEC`` (e.g.
``strcpy=slow,cmp=kill;slow_s=20``) injects worker misbehaviour for
testing the supervisor (:mod:`repro.robustness.chaos`).

Library failures never surface as tracebacks: a one-line diagnostic goes to
stderr and the process exits with a distinct code per failing subsystem —
parse/semantic/usage = 2, verify/IR = 3, transform/scheduling = 4,
simulation = 5, any other library error = 1. Supervised runs add three
codes: 6 = the run completed but quarantined at least one workload
(incidents on stderr), 7 = the wall-clock budget expired
(:class:`~repro.errors.FarmTimeout`), 130 = interrupted by
SIGINT/SIGTERM after a graceful drain
(:class:`~repro.errors.FarmInterrupted`). Durable-storage failures that
would void a recovery promise — a write-ahead journal append that
cannot be made durable — exit 8
(:class:`~repro.errors.JournalWriteError`); recoverable storage
trouble (a corrupt cache entry, a full disk under the cache) degrades
gracefully and never changes the exit code.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import errors
from repro.farm.cache import default_cache_root
from repro.farm.farm import FarmOptions, build_farm, resolve_jobs
from repro.farm.supervisor import SupervisorOptions
from repro.obs import Tracer
from repro.perf.report import Table2, Table3
from repro.pipeline import PipelineOptions, build_workload
from repro.sim.interpreter import DEFAULT_FUEL
from repro.workloads.registry import all_names, get_workload, resolve_subset

MACHINES = ("sequential", "narrow", "medium", "wide", "infinite")

#: Exit code for a completed farm run that quarantined a workload.
EXIT_QUARANTINED = 6

#: Exit code for a durable-storage failure that would void a recovery
#: promise (journal append not durable; :class:`~repro.errors.StorageError`).
EXIT_STORAGE = 8

#: Exit codes per failing subsystem, checked in order (subclasses first).
EXIT_CODES = (
    (errors.ParseError, 2),
    (errors.SemanticError, 2),
    (errors.UsageError, 2),
    (errors.VerificationError, 3),
    (errors.IRError, 3),
    (errors.TransformError, 4),
    (errors.SchedulingError, 4),
    (errors.SimulationError, 5),
    (errors.FarmInterrupted, 130),
    (errors.FarmTimeout, 7),
    (errors.FarmQuarantine, EXIT_QUARANTINED),
    (errors.StorageError, EXIT_STORAGE),
)


def exit_code_for(exc: errors.ReproError) -> int:
    for klass, code in EXIT_CODES:
        if isinstance(exc, klass):
            return code
    return 1


def _selected(args) -> list:
    return resolve_subset(getattr(args, "subset", ""))


def _pipeline_options(args) -> PipelineOptions:
    fuel = getattr(args, "fuel", None)
    return PipelineOptions(
        resilient=not getattr(args, "strict", False),
        fuel=DEFAULT_FUEL if fuel is None else fuel,
    )


def _print_incidents(build_report):
    """Summarize recovered incidents on stderr (silent for clean builds)."""
    if build_report is not None and build_report.incidents:
        print(build_report.summary(), file=sys.stderr)


def _supervision(args):
    """(SupervisorOptions, chaos plan) from the CLI flags, or (None, None)
    when no supervision flag was given (keeps the plain pool path)."""
    deadline = getattr(args, "deadline", None)
    budget = getattr(args, "budget", None)
    retries = getattr(args, "retries", None)
    journal = getattr(args, "journal", None)
    resume = bool(getattr(args, "resume", False))
    chaos_spec = getattr(args, "chaos", None)
    if resume and not journal:
        raise errors.UsageError("--resume requires --journal PATH")
    if retries is not None and retries < 0:
        raise errors.UsageError(
            f"--retries must be >= 0, got {retries}"
        )
    armed = any(
        value is not None for value in (deadline, budget, retries, journal)
    ) or resume or chaos_spec
    if not armed:
        return None, None
    supervisor = SupervisorOptions(
        deadline_s=deadline,
        budget_s=budget,
        retries=2 if retries is None else retries,
        journal_path=journal,
        resume=resume,
    )
    chaos = None
    if chaos_spec:
        from repro.robustness.chaos import parse_spec

        chaos = parse_spec(chaos_spec)
    return supervisor, chaos


def _farm_exit(farm) -> int:
    """Report quarantined workloads on stderr; their distinct exit code."""
    for incident in farm.quarantined:
        print(f"repro: {incident.format()}", file=sys.stderr)
    return EXIT_QUARANTINED if farm.quarantined else 0


def _farm_options(args, processors=MACHINES) -> FarmOptions:
    cache_root = None
    if getattr(args, "cache", False):
        cache_root = str(
            getattr(args, "cache_dir", None) or default_cache_root()
        )
    supervisor, chaos = _supervision(args)
    return FarmOptions(
        jobs=resolve_jobs(getattr(args, "jobs", 1)),
        cache_root=cache_root,
        cache_verify=getattr(args, "cache_verify", True),
        scale=getattr(args, "scale", 1),
        strict=getattr(args, "strict", False),
        fuel=getattr(args, "fuel", None),
        processors=tuple(processors),
        sanitize=getattr(args, "sanitize", None),
        repro_dir=(
            getattr(args, "repro_dir", None)
            if getattr(args, "sanitize", None)
            else None
        ),
        trace=bool(getattr(args, "trace", None)),
        supervisor=supervisor,
        chaos=chaos,
        sched_engine=getattr(args, "sched_engine", "soa"),
        interp_engine=getattr(args, "interp_engine", "soa"),
    )


def _write_metrics(args, farm_result):
    path = getattr(args, "metrics_json", None)
    if path:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(farm_result.metrics_json(), handle, indent=2)
            handle.write("\n")


def _write_trace(args, farm_result):
    path = getattr(args, "trace", None)
    if path:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(farm_result.chrome_trace(), handle, indent=2)
            handle.write("\n")


def cmd_list(args) -> int:
    for name in all_names():
        workload = get_workload(name)
        print(f"{name:<14} [{workload.category:<6}] "
              f"{workload.description}")
    return 0


def cmd_evaluate(args) -> int:
    farm = build_farm(args.names, _farm_options(args))
    _write_trace(args, farm)
    for summary in farm.summaries:
        speedups = "  ".join(
            f"{machine[:3]}={summary.speedup(machine):.2f}"
            for machine in MACHINES
        )
        s_tot, s_br, d_tot, d_br = summary.count_ratios()
        print(f"{summary.name:<14} {speedups}")
        print(
            f"{'':<14} Stot={s_tot:.2f}  Sbr={s_br:.2f}  "
            f"Dtot={d_tot:.2f}  Dbr={d_br:.2f}"
        )
        _print_incidents(summary.build_report())
    _write_metrics(args, farm)
    return _farm_exit(farm)


def cmd_table2(args) -> int:
    farm = build_farm(_selected(args), _farm_options(args))
    _write_trace(args, farm)
    table = Table2(processors=list(MACHINES), rows=farm.summaries)
    print(table.render())
    for summary in farm.summaries:
        _print_incidents(summary.build_report())
    _write_metrics(args, farm)
    return _farm_exit(farm)


def cmd_table3(args) -> int:
    farm = build_farm(
        _selected(args), _farm_options(args, processors=("medium",))
    )
    _write_trace(args, farm)
    table = Table3(rows=farm.summaries)
    print(table.render())
    for summary in farm.summaries:
        _print_incidents(summary.build_report())
    _write_metrics(args, farm)
    return _farm_exit(farm)


def cmd_trace(args) -> int:
    """Build one workload fully instrumented and print what happened."""
    options = FarmOptions(
        jobs=1,
        scale=args.scale,
        strict=args.strict,
        fuel=args.fuel,
        processors=tuple(MACHINES),
        trace=True,
        sched_engine=getattr(args, "sched_engine", "soa"),
        interp_engine=getattr(args, "interp_engine", "soa"),
    )
    farm = build_farm([args.name], options)
    summary = farm.summaries[0]
    tracer = Tracer.from_dict(farm.traces[summary.name])
    tracer.counters = farm.metrics.counters
    ledger = summary.build_report().ledger

    print(tracer.summary())
    print()
    entries = ledger.entries
    if args.kind:
        entries = [e for e in entries if e.kind == args.kind]
    header = f"decision ledger ({len(entries)} entries"
    header += f", kind={args.kind})" if args.kind else ")"
    print(header)
    for entry in entries:
        print("  " + entry.render())
    if not args.kind:
        print()
        print("by kind:")
        for line in ledger.summary().splitlines():
            print("  " + line)

    if args.chrome:
        with open(args.chrome, "w", encoding="utf-8") as handle:
            json.dump(farm.chrome_trace(), handle, indent=2)
            handle.write("\n")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(farm.traces[summary.name], handle, indent=2)
            handle.write("\n")
    _print_incidents(summary.build_report())
    return 0


def cmd_show(args) -> int:
    workload = get_workload(args.name, scale=args.scale)
    if args.stage == "source":
        print(workload.source)
        return 0
    program = workload.compile()
    if args.stage == "ir":
        print(program.format())
        return 0
    build = build_workload(
        workload.name, program, workload.inputs, _pipeline_options(args)
    )
    chosen = build.baseline if args.stage == "baseline" else (
        build.transformed
    )
    print(chosen.format())
    _print_incidents(build.build_report)
    return 0


#: Exit code when the fuzz oracle observed a divergence or a sanitizer
#: finding: the same family as TransformError (a transform shipped wrong
#: code), distinct from infrastructure errors (1) and clean runs (0).
EXIT_DIVERGENCE = 4


def _parse_seeds(args) -> list:
    """Seeds from ``--seeds`` ('A:B' ranges and comma lists) or --count."""
    spec = getattr(args, "seeds", None)
    if not spec:
        return list(range(getattr(args, "count", 20)))
    seeds = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if ":" in token:
            lo, hi = token.split(":", 1)
            try:
                seeds.extend(range(int(lo), int(hi)))
            except ValueError:
                raise errors.UsageError(
                    f"bad seed range {token!r}; expected A:B"
                )
        else:
            try:
                seeds.append(int(token))
            except ValueError:
                raise errors.UsageError(
                    f"bad seed {token!r}; expected an integer"
                )
    if not seeds:
        raise errors.UsageError(f"--seeds {spec!r} selects no seeds")
    return seeds


def _parse_knobs(pairs):
    """FuzzKnobs from repeated ``--knob NAME=VALUE`` overrides."""
    from dataclasses import fields

    from repro.fuzz.generator import FuzzKnobs

    defaults = FuzzKnobs()
    legal = {f.name: type(getattr(defaults, f.name))
             for f in fields(FuzzKnobs)}
    overrides = {}
    for pair in pairs or ():
        name, sep, value = pair.partition("=")
        name = name.strip().replace("-", "_")
        if not sep or name not in legal:
            raise errors.UsageError(
                f"bad --knob {pair!r}; expected NAME=VALUE with NAME "
                f"one of {', '.join(sorted(legal))}"
            )
        try:
            overrides[name] = legal[name](value)
        except ValueError:
            raise errors.UsageError(
                f"bad --knob value {pair!r}; expected {legal[name].__name__}"
            )
    return FuzzKnobs.from_dict(overrides)


def _parse_backends(spec: str):
    from repro.pipeline import BACKENDS

    backends = tuple(b.strip() for b in spec.split(",") if b.strip())
    for backend in backends:
        if backend not in BACKENDS:
            raise errors.UsageError(
                f"unknown backend {backend!r}; choose from "
                f"{', '.join(BACKENDS)}"
            )
    return backends or BACKENDS


def cmd_fuzz(args) -> int:
    """Differentially fuzz the backends over a seeded corpus."""
    from repro.fuzz.oracle import run_corpus

    seeds = _parse_seeds(args)
    knobs = _parse_knobs(args.knob)
    backends = _parse_backends(args.backends)
    sanitize = None if args.sanitize == "none" else args.sanitize

    def progress(result):
        line = f"seed {result.seed}: {result.status}"
        if result.backend:
            line += f" [{result.backend}]"
        if result.detail:
            line += f" {result.detail}"
        if result.bundle:
            line += f" -> {result.bundle}"
        print(line, flush=True)

    corpus = run_corpus(
        seeds,
        knobs=knobs,
        backends=backends,
        sanitize=sanitize,
        bundle_dir=args.bundle_dir,
        inject=args.inject,
        shrink=not args.no_shrink,
        progress=progress,
    )
    divergent = corpus.divergences + corpus.findings
    print(
        f"fuzz: {len(corpus.results)} seeds, {corpus.ok} ok, "
        f"{len(corpus.divergences)} divergence(s), "
        f"{len(corpus.findings)} finding(s), "
        f"{len(corpus.errors)} error(s)"
    )
    if divergent:
        return EXIT_DIVERGENCE
    return 1 if corpus.errors else 0


def cmd_compare(args) -> int:
    """Head-to-head backend comparison over the registry or a corpus."""
    from repro.perf.headtohead import compare_corpus, compare_workloads

    backends = _parse_backends(args.backends)
    if args.seeds is not None:
        table = compare_corpus(
            _parse_seeds(args), knobs=_parse_knobs(args.knob),
            backends=backends,
        )
    else:
        workloads = [
            get_workload(name, scale=args.scale)
            for name in resolve_subset(args.subset)
        ]
        table = compare_workloads(workloads, backends=backends)
    print(table.render())
    return 1 if any(row.error for row in table.rows) else 0


def cmd_serve(args) -> int:
    """Run the compile-as-a-service daemon until drained or signalled."""
    import asyncio
    import signal

    from repro.serve.server import CompileServer, ServeOptions

    cache_root = None
    if args.cache:
        cache_root = str(args.cache_dir or default_cache_root())
    if args.resume and not args.journal:
        raise errors.UsageError("--resume requires --journal PATH")
    processors = tuple(
        name for name in args.processors.split(",") if name
    )
    for name in processors:
        if name not in MACHINES:
            raise errors.UsageError(
                f"unknown processor {name!r}; choose from "
                f"{', '.join(MACHINES)}"
            )
    options = ServeOptions(
        host=args.host,
        port=args.port,
        backend_jobs=resolve_jobs(args.backend_jobs),
        queue_limit=args.queue_limit,
        rate=args.rate,
        burst=args.burst,
        default_deadline_s=args.deadline,
        retries=2 if args.retries is None else args.retries,
        scale=args.scale,
        processors=processors or ("medium",),
        cache_root=cache_root,
        journal_path=args.journal,
        resume=args.resume,
        priority_floor=args.priority_floor,
        supervised=not args.no_supervise,
    )
    server = CompileServer(options)

    async def _serve():
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.request_stop)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        # The ready line is a contract: the chaos harness and benchmark
        # parse the port out of it, so keep the shape stable.
        print(
            f"repro serve: listening on "
            f"http://{options.host}:{server.port} "
            f"(queue={options.queue_limit}, jobs={options.backend_jobs})",
            flush=True,
        )
        state = server.recovered_state
        if state is not None:
            replayed = sum(
                1 for value in state.states.values() if value == "done"
            )
            print(
                f"repro serve: recovered {len(state.order)} journalled "
                f"request(s): {replayed} replayable, "
                f"{len(server.recovered_nacks)} NACKed",
                flush=True,
            )
        await server._stop.wait()
        await server._shutdown()

    asyncio.run(_serve())
    counters = server.counters
    print(
        "repro serve: drained; "
        f"accepted={counters.get('serve.accepted').count} "
        f"rejected={counters.get('serve.rejected').count} "
        f"shed={counters.get('serve.shed').count} "
        f"nacked={counters.get('serve.nacked').count}",
        file=sys.stderr,
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Control CPR: A Branch Height Reduction "
            "Optimization for EPIC Architectures' (PLDI 1999)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the workload registry")

    p_eval = sub.add_parser("evaluate", help="evaluate workloads")
    p_eval.add_argument("names", nargs="+", choices=all_names())
    p_eval.add_argument("--scale", type=int, default=1)
    p_eval.add_argument(
        "--fuel", type=int, default=None,
        help="interpreter operation budget per run",
    )
    farm_parsers = [p_eval]

    for table in ("table2", "table3"):
        p_table = sub.add_parser(table, help=f"regenerate {table}")
        p_table.add_argument("--subset", default="")
        p_table.add_argument("--scale", type=int, default=1)
        farm_parsers.append(p_table)

    for p_farm in farm_parsers:
        p_farm.add_argument(
            "--jobs", default="1", metavar="N",
            help="worker processes for the build farm "
                 "(an integer, or 'auto' for the CPU count)",
        )
        p_farm.add_argument(
            "--cache", action=argparse.BooleanOptionalAction, default=False,
            help="memoize pass transactions and workload evaluations in "
                 "the content-addressed on-disk cache",
        )
        p_farm.add_argument(
            "--cache-dir", default=None, metavar="PATH",
            help="cache location (default: $REPRO_CACHE_DIR or "
                 "~/.cache/repro-farm)",
        )
        p_farm.add_argument(
            "--cache-verify", action=argparse.BooleanOptionalAction,
            default=True,
            help="verify every cache entry's checksum on read and "
                 "quarantine mismatches (on by default; --no-cache-verify "
                 "is for benchmarking against trusted caches only — "
                 "results are identical either way)",
        )
        p_farm.add_argument(
            "--metrics-json", default=None, metavar="PATH",
            help="write compile metrics (per-pass wall time, cache "
                 "hit/miss counters, ops before/after) as JSON",
        )
        p_farm.add_argument(
            "--sanitize", nargs="?", const="fast", default=None,
            choices=("fast", "full"), metavar="TIER",
            help="run the semantic sanitizer battery inside every pass "
                 "transaction ('fast': IR checks only; 'full' adds "
                 "profile-flow and schedule-legality checks); findings "
                 "roll the transaction back and emit a minimized repro "
                 "bundle",
        )
        p_farm.add_argument(
            "--repro-dir", default="repro-bundles", metavar="PATH",
            help="where --sanitize writes delta-debugged repro bundles "
                 "for its findings",
        )
        p_farm.add_argument(
            "--trace", default=None, metavar="PATH",
            help="arm span tracing in every worker and write the merged "
                 "Chrome trace_event document (open in about://tracing "
                 "or Perfetto)",
        )
        p_farm.add_argument(
            "--deadline", type=float, default=None, metavar="S",
            help="supervised mode: kill and retry any workload build "
                 "exceeding S seconds",
        )
        p_farm.add_argument(
            "--budget", type=float, default=None, metavar="S",
            help="supervised mode: abort the whole run after S seconds "
                 "of wall clock (exit 7; resumable with --journal)",
        )
        p_farm.add_argument(
            "--retries", type=int, default=None, metavar="N",
            help="supervised mode: re-dispatch a workload at most N "
                 "times after it kills a worker before quarantining it "
                 "(default 2)",
        )
        p_farm.add_argument(
            "--journal", default=None, metavar="PATH",
            help="supervised mode: write the write-ahead completion "
                 "journal to PATH (fsync per record)",
        )
        p_farm.add_argument(
            "--resume", action="store_true",
            help="replay completed workloads from --journal PATH and "
                 "run only the unfinished ones",
        )
        p_farm.add_argument(
            "--chaos", default=None, metavar="SPEC",
            help="inject worker misbehaviour, e.g. "
                 "'strcpy=slow,cmp=kill;slow_s=20' "
                 "(actions: kill, hang, stall, slow, poison)",
        )
        p_farm.add_argument(
            "--sched-engine", default="soa", choices=("object", "soa"),
            dest="sched_engine",
            help="list-scheduler engine: 'soa' (struct-of-arrays hot "
                 "path, the default) or 'object' (the reference "
                 "engine); both produce bit-identical schedules",
        )
        p_farm.add_argument(
            "--interp-engine", default="soa", choices=("object", "soa"),
            dest="interp_engine",
            help="interpreter engine for profiling and differential "
                 "runs: 'soa' (array core, the default) or 'object' "
                 "(the reference engine); both produce bit-identical "
                 "profiles",
        )

    p_trace = sub.add_parser(
        "trace", help="build one workload and print its span tree, "
                      "decision ledger, and counters",
    )
    p_trace.add_argument("name", choices=all_names())
    p_trace.add_argument("--scale", type=int, default=1)
    p_trace.add_argument(
        "--fuel", type=int, default=None,
        help="interpreter operation budget per run",
    )
    p_trace.add_argument(
        "--kind", default=None, metavar="KIND",
        help="only print ledger entries of this kind "
             "(e.g. match-accept, cpr-transform, estimator-clamp)",
    )
    p_trace.add_argument(
        "--chrome", default=None, metavar="PATH",
        help="also write a Chrome trace_event JSON document",
    )
    p_trace.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the raw span-tree JSON (repro.obs.trace/v1)",
    )
    p_trace.add_argument(
        "--sched-engine", default="soa", choices=("object", "soa"),
        dest="sched_engine",
        help="list-scheduler engine for the instrumented build",
    )
    p_trace.add_argument(
        "--interp-engine", default="soa", choices=("object", "soa"),
        dest="interp_engine",
        help="interpreter engine for the instrumented build",
    )

    p_serve = sub.add_parser(
        "serve", help="run the compile-as-a-service daemon",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 picks a free one; see the ready line)",
    )
    p_serve.add_argument(
        "--backend-jobs", default="2", metavar="N",
        help="concurrent backend evaluations (an integer, or 'auto')",
    )
    p_serve.add_argument(
        "--queue-limit", type=int, default=16, metavar="N",
        help="requests allowed to wait for a backend slot before "
             "queue-full 429s",
    )
    p_serve.add_argument(
        "--rate", type=float, default=20.0, metavar="R",
        help="per-client sustained requests/second (token bucket)",
    )
    p_serve.add_argument(
        "--burst", type=int, default=40, metavar="N",
        help="per-client burst capacity (token bucket)",
    )
    p_serve.add_argument(
        "--deadline", type=float, default=120.0, metavar="S",
        help="default per-request deadline for requests without one",
    )
    p_serve.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="supervisor retries per request after a worker crash "
             "(default 2)",
    )
    p_serve.add_argument("--scale", type=int, default=1)
    p_serve.add_argument(
        "--processors", default="medium", metavar="A,B",
        help="processor models evaluated per request "
             f"(comma-separated from: {', '.join(MACHINES)})",
    )
    p_serve.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=False,
        help="share the content-addressed pass/evaluation cache across "
             "requests (required for the cache-only shedding rung)",
    )
    p_serve.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="cache location (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro-farm)",
    )
    p_serve.add_argument(
        "--journal", default=None, metavar="PATH",
        help="write-ahead request journal (fsync per record); makes "
             "accepted requests survive a daemon crash",
    )
    p_serve.add_argument(
        "--resume", action="store_true",
        help="replay --journal PATH: finished answers become replayable "
             "and in-flight requests are explicitly NACKed",
    )
    p_serve.add_argument(
        "--priority-floor", type=int, default=1, metavar="N",
        help="at the shed-low-priority rung, refuse requests with "
             "priority below N",
    )
    p_serve.add_argument(
        "--no-supervise", action="store_true",
        help="run request builds in-process instead of under the farm "
             "supervisor (faster startup; no crash isolation)",
    )

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differentially fuzz the backends with seeded mini-C "
             "programs (exit 4 on divergence)",
    )
    p_fuzz.add_argument(
        "--seeds", default=None, metavar="SPEC",
        help="seed selection: 'A:B' half-open ranges and comma lists, "
             "e.g. '0:200' or '3,17,40:50' (default: 0:COUNT)",
    )
    p_fuzz.add_argument(
        "--count", type=int, default=20, metavar="N",
        help="number of seeds when --seeds is not given (default 20)",
    )
    p_fuzz.add_argument(
        "--backends", default="icbm,cpr,meld", metavar="A,B",
        help="comma-separated backends to cross-check "
             "(from: icbm, cpr, meld)",
    )
    p_fuzz.add_argument(
        "--bundle-dir", default=None, metavar="PATH",
        help="shrink divergent seeds and write self-contained repro "
             "bundles under PATH (each records the generator seed and "
             "knobs for one-command regeneration)",
    )
    p_fuzz.add_argument(
        "--sanitize", default="fast", choices=("fast", "full", "none"),
        metavar="TIER",
        help="sanitizer battery tier run over every transformed program "
             "('none' disables; default fast)",
    )
    p_fuzz.add_argument(
        "--inject", default=None, metavar="KIND",
        choices=("raise", "fuel", "drop-branch", "clobber-pred"),
        help="arm the fault-injection harness inside every build "
             "(robustness self-test: the oracle must catch the "
             "corruption end-to-end)",
    )
    p_fuzz.add_argument(
        "--knob", action="append", default=None, metavar="NAME=VALUE",
        help="override a generator knob (repeatable), e.g. "
             "--knob func_stmts=12 --knob loop_count=3",
    )
    p_fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="report divergences without delta-debugging them first",
    )

    p_compare = sub.add_parser(
        "compare",
        help="head-to-head backend table (speedup, branch ratios, code "
             "growth) over the registry or a fuzz corpus",
    )
    p_compare.add_argument(
        "--subset", default="",
        help="registry subset spec (default: every workload)",
    )
    p_compare.add_argument(
        "--seeds", default=None, metavar="SPEC",
        help="compare over a fuzz corpus instead of the registry "
             "(same syntax as 'fuzz --seeds')",
    )
    p_compare.add_argument(
        "--backends", default="icbm,cpr,meld", metavar="A,B",
        help="comma-separated backends (from: icbm, cpr, meld)",
    )
    p_compare.add_argument(
        "--knob", action="append", default=None, metavar="NAME=VALUE",
        help="generator knob overrides for --seeds corpora",
    )
    p_compare.add_argument("--scale", type=int, default=1)

    p_show = sub.add_parser("show", help="inspect a workload's code")
    p_show.add_argument("name", choices=all_names())
    p_show.add_argument(
        "--stage",
        choices=("source", "ir", "baseline", "cpr"),
        default="ir",
    )
    p_show.add_argument("--scale", type=int, default=1)

    for p_build in sub.choices.values():
        p_build.add_argument(
            "--strict", action="store_true",
            help="abort the build on the first pass failure instead of "
                 "rolling back the affected procedure",
        )

    args = parser.parse_args(argv)
    handler = {
        "list": cmd_list,
        "evaluate": cmd_evaluate,
        "table2": cmd_table2,
        "table3": cmd_table3,
        "show": cmd_show,
        "trace": cmd_trace,
        "serve": cmd_serve,
        "fuzz": cmd_fuzz,
        "compare": cmd_compare,
    }[args.command]
    try:
        return handler(args)
    except errors.ReproError as exc:
        print(f"repro: {type(exc).__name__}: {exc}", file=sys.stderr)
        return exit_code_for(exc)
    except ValueError as exc:
        # Bad option values (e.g. --jobs garbage) read as usage errors.
        print(f"repro: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
