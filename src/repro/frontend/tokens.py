"""Token definitions for the mini-C frontend."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union


class TokenKind(enum.Enum):
    # Literals and identifiers.
    INT = "int-literal"
    IDENT = "identifier"
    # Keywords.
    KW_INT = "int"
    KW_VOID = "void"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_DO = "do"
    KW_FOR = "for"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    KW_RETURN = "return"
    KW_GOTO = "goto"
    # Punctuation.
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COMMA = ","
    COLON = ":"
    # Operators.
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    AMP = "&"
    PIPE = "|"
    CARET = "^"
    SHL = "<<"
    SHR = ">>"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND_AND = "&&"
    OR_OR = "||"
    BANG = "!"
    PLUS_EQ = "+="
    MINUS_EQ = "-="
    PLUS_PLUS = "++"
    MINUS_MINUS = "--"
    EOF = "<eof>"


KEYWORDS = {
    "int": TokenKind.KW_INT,
    "void": TokenKind.KW_VOID,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "while": TokenKind.KW_WHILE,
    "do": TokenKind.KW_DO,
    "for": TokenKind.KW_FOR,
    "break": TokenKind.KW_BREAK,
    "continue": TokenKind.KW_CONTINUE,
    "return": TokenKind.KW_RETURN,
    "goto": TokenKind.KW_GOTO,
}


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int
    value: Optional[Union[int, str]] = None

    def __repr__(self):
        return f"{self.kind.name}({self.text!r})@{self.line}:{self.column}"
