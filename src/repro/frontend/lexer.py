"""Hand-written lexer for the mini-C language."""

from __future__ import annotations

from typing import List

from repro.errors import ParseError
from repro.frontend.tokens import KEYWORDS, Token, TokenKind

_TWO_CHAR = {
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "<<": TokenKind.SHL,
    ">>": TokenKind.SHR,
    "&&": TokenKind.AND_AND,
    "||": TokenKind.OR_OR,
    "+=": TokenKind.PLUS_EQ,
    "-=": TokenKind.MINUS_EQ,
    "++": TokenKind.PLUS_PLUS,
    "--": TokenKind.MINUS_MINUS,
}

_ONE_CHAR = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    ":": TokenKind.COLON,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "&": TokenKind.AMP,
    "|": TokenKind.PIPE,
    "^": TokenKind.CARET,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "!": TokenKind.BANG,
}


def tokenize(source: str) -> List[Token]:
    """Lex *source* into a token list ending with an EOF token."""
    tokens: List[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    def error(message):
        raise ParseError(message, line=line, column=column)

    while index < length:
        ch = source[index]
        # Whitespace.
        if ch == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if ch in " \t\r":
            index += 1
            column += 1
            continue
        # Comments.
        if source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end < 0:
                error("unterminated block comment")
            skipped = source[index:end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            index = end + 2
            continue
        # Character literals become int literals ('a' -> 97).
        if ch == "'":
            end = index + 1
            if end < length and source[end] == "\\":
                escapes = {"n": 10, "t": 9, "0": 0, "\\": 92, "'": 39}
                if end + 1 >= length or source[end + 1] not in escapes:
                    error("bad escape in character literal")
                value = escapes[source[end + 1]]
                end += 2
            elif end < length:
                value = ord(source[end])
                end += 1
            else:
                error("unterminated character literal")
            if end >= length or source[end] != "'":
                error("unterminated character literal")
            text = source[index:end + 1]
            tokens.append(Token(TokenKind.INT, text, line, column, value))
            column += len(text)
            index = end + 1
            continue
        # Numbers.
        if ch.isdigit():
            end = index
            while end < length and (
                source[end].isalnum() or source[end] == "x"
            ):
                end += 1
            text = source[index:end]
            try:
                value = int(text, 0)
            except ValueError:
                error(f"bad integer literal {text!r}")
            tokens.append(Token(TokenKind.INT, text, line, column, value))
            column += len(text)
            index = end
            continue
        # Identifiers and keywords.
        if ch.isalpha() or ch == "_":
            end = index
            while end < length and (
                source[end].isalnum() or source[end] == "_"
            ):
                end += 1
            text = source[index:end]
            kind = KEYWORDS.get(text, TokenKind.IDENT)
            tokens.append(Token(kind, text, line, column, text))
            column += len(text)
            index = end
            continue
        # Operators and punctuation.
        two = source[index:index + 2]
        if two in _TWO_CHAR:
            tokens.append(Token(_TWO_CHAR[two], two, line, column))
            index += 2
            column += 2
            continue
        if ch in _ONE_CHAR:
            tokens.append(Token(_ONE_CHAR[ch], ch, line, column))
            index += 1
            column += 1
            continue
        error(f"unexpected character {ch!r}")

    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens
