"""Abstract syntax tree for the mini-C language.

The language is a small C subset sufficient to express the workload
kernels: global int arrays, functions with int parameters, local int
variables, the usual expression operators (including short-circuit ``&&``
and ``||``), array indexing, assignments (``=``, ``+=``, ``-=``, ``++``,
``--``), ``if``/``else``, ``while``, ``do-while``, ``for``, ``break``,
``continue``, ``goto``/labels, and ``return``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass
class Expr:
    line: int = 0


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class ArrayRef(Expr):
    array: str = ""
    index: Optional[Expr] = None


@dataclass
class Unary(Expr):
    op: str = ""  # '-', '!', '~'
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""  # + - * / % & | ^ << >> == != < <= > >= && ||
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Call(Expr):
    callee: str = ""
    args: List[Expr] = field(default_factory=list)


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass
class Stmt:
    line: int = 0


@dataclass
class DeclStmt(Stmt):
    name: str = ""
    init: Optional[Expr] = None


@dataclass
class AssignStmt(Stmt):
    target: Optional[Expr] = None  # VarRef or ArrayRef
    value: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class IfStmt(Stmt):
    cond: Optional[Expr] = None
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class WhileStmt(Stmt):
    cond: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class DoWhileStmt(Stmt):
    body: List[Stmt] = field(default_factory=list)
    cond: Optional[Expr] = None


@dataclass
class ForStmt(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class GotoStmt(Stmt):
    label: str = ""


@dataclass
class LabelStmt(Stmt):
    label: str = ""


# ----------------------------------------------------------------------
# Top level
# ----------------------------------------------------------------------
@dataclass
class ArrayDecl:
    name: str = ""
    size: int = 0
    initial: List[int] = field(default_factory=list)
    line: int = 0


@dataclass
class FunctionDecl:
    name: str = ""
    params: List[str] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)
    returns_value: bool = True
    line: int = 0


@dataclass
class TranslationUnit:
    arrays: List[ArrayDecl] = field(default_factory=list)
    functions: List[FunctionDecl] = field(default_factory=list)
