"""Mini-C frontend: the language the workload kernels are written in."""

from repro.frontend.lexer import tokenize
from repro.frontend.lower import compile_source, lower_unit
from repro.frontend.parser import parse_source
from repro.frontend.sema import check_unit

__all__ = [
    "check_unit",
    "compile_source",
    "lower_unit",
    "parse_source",
    "tokenize",
]
