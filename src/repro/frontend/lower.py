"""Lowering: mini-C AST to PlayDoh-style IR.

Each function lowers to one :class:`~repro.ir.procedure.Procedure`; global
arrays become data segments. Lowering choices that matter downstream:

* loops are shaped so each iteration is one linear block (condition, body
  and latch together) — the natural seed for superblock formation;
* comparisons feeding branches lower straight to ``cmpp``/``pbr``/``branch``
  triples with a single UN target (FRP conversion later adds the UC
  complement);
* ``&&``/``||`` lower to short-circuit control flow in condition context;
* array accesses compute ``base + index`` where the base register is a
  ``mov`` from the segment label (resolved to the segment's address by the
  simulator loader), and each load/store is tagged with its ``region`` so
  the dependence analysis can disambiguate distinct arrays.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.errors import SemanticError
from repro.frontend import ast
from repro.frontend.parser import parse_source
from repro.frontend.sema import check_unit
from repro.ir.block import Block
from repro.ir.builder import IRBuilder
from repro.ir.opcodes import Cond, Opcode
from repro.ir.operands import Imm, Label, Reg
from repro.ir.operation import Operation
from repro.ir.procedure import DataSegment, Procedure, Program

_COMPARISONS = {
    "==": Cond.EQ,
    "!=": Cond.NE,
    "<": Cond.LT,
    "<=": Cond.LE,
    ">": Cond.GT,
    ">=": Cond.GE,
}

_ARITHMETIC = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "%": Opcode.REM,
    "&": Opcode.AND,
    "|": Opcode.OR,
    "^": Opcode.XOR,
    "<<": Opcode.SHL,
    ">>": Opcode.SHR,
}


def compile_source(source: str, name: str = "program") -> Program:
    """Parse, check, and lower a mini-C source string to an IR program."""
    unit = parse_source(source)
    check_unit(unit)
    return lower_unit(unit, name)


def lower_unit(unit: ast.TranslationUnit, name: str = "program") -> Program:
    program = Program(name)
    for array in unit.arrays:
        program.add_segment(
            DataSegment(
                name=array.name, size=array.size, initial=list(array.initial)
            )
        )
    for function in unit.functions:
        program.add_procedure(_FunctionLowerer(function).lower())
    return program


_FOLDABLE = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
}


def _fold(expr: ast.Expr) -> ast.Expr:
    """Constant-fold literal arithmetic (one level; operands fold first)."""
    if isinstance(expr, ast.Unary) and expr.op == "-":
        operand = _fold(expr.operand)
        if isinstance(operand, ast.IntLit):
            return ast.IntLit(value=-operand.value, line=expr.line)
    if isinstance(expr, ast.Binary) and expr.op in _FOLDABLE:
        left = _fold(expr.left)
        right = _fold(expr.right)
        if isinstance(left, ast.IntLit) and isinstance(right, ast.IntLit):
            return ast.IntLit(
                value=_FOLDABLE[expr.op](left.value, right.value),
                line=expr.line,
            )
    return expr


class _LoopContext:
    def __init__(self, break_label: Label, continue_label: Label):
        self.break_label = break_label
        self.continue_label = continue_label


class _FunctionLowerer:
    def __init__(self, function: ast.FunctionDecl):
        self.function = function
        self.proc = Procedure(function.name)
        self.builder = IRBuilder(self.proc)
        self.variables: Dict[str, Reg] = {}
        self.array_bases: Dict[str, Reg] = {}
        self.loops: List[_LoopContext] = []
        self.goto_blocks: Dict[str, Label] = {}
        self._label_counter = 0

    # ------------------------------------------------------------------
    # Block plumbing
    # ------------------------------------------------------------------
    def _fresh_label(self, stem: str) -> Label:
        self._label_counter += 1
        return Label(f"{stem}{self._label_counter}")

    def _start(self, label: Label) -> Block:
        """Seal the current block (fall through to *label*) and open it."""
        current = self.builder.block
        if current is not None and current.terminator() is None:
            if current.fallthrough is None:
                current.fallthrough = label
        return self.builder.start_block(label)

    def _goto_block_label(self, name: str) -> Label:
        if name not in self.goto_blocks:
            self.goto_blocks[name] = Label(f"usr_{name}")
        return self.goto_blocks[name]

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def lower(self) -> Procedure:
        for param in self.function.params:
            reg = self.proc.new_reg()
            self.proc.params.append(reg)
            self.variables[param] = reg
        self.entry = self.builder.start_block("entry")
        self._lower_body(self.function.body)
        current = self.builder.block
        if current is not None and current.terminator() is None \
                and not current.has_return() and current.fallthrough is None:
            if self.function.returns_value:
                self.builder.ret(0)
            else:
                self.builder.ret()
        return self.proc

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _lower_body(self, body: List[ast.Stmt]):
        for stmt in body:
            self._lower_stmt(stmt)

    def _lower_stmt(self, stmt: ast.Stmt):
        if isinstance(stmt, ast.DeclStmt):
            reg = self.proc.new_reg()
            self.variables[stmt.name] = reg
            if stmt.init is not None:
                self._lower_expr_into(stmt.init, reg)
            else:
                self.builder.mov(0, dest=reg)
        elif isinstance(stmt, ast.AssignStmt):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_expr(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.DoWhileStmt):
            self._lower_do_while(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.BreakStmt):
            self.builder.jump(self.loops[-1].break_label)
            self._start(self._fresh_label("dead"))
        elif isinstance(stmt, ast.ContinueStmt):
            self.builder.jump(self.loops[-1].continue_label)
            self._start(self._fresh_label("dead"))
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                self.builder.ret(self._lower_expr(stmt.value))
            else:
                self.builder.ret()
            self._start(self._fresh_label("dead"))
        elif isinstance(stmt, ast.GotoStmt):
            self.builder.jump(self._goto_block_label(stmt.label))
            self._start(self._fresh_label("dead"))
        elif isinstance(stmt, ast.LabelStmt):
            self._start(self._goto_block_label(stmt.label))
        else:
            raise SemanticError(f"cannot lower {type(stmt).__name__}")

    def _lower_assign(self, stmt: ast.AssignStmt):
        target = stmt.target
        if isinstance(target, ast.VarRef):
            self._lower_expr_into(stmt.value, self.variables[target.name])
        else:
            address = self._array_address(target)
            value = self._lower_expr(stmt.value)
            self.builder.store(address, value, region=target.array)

    def _lower_if(self, stmt: ast.IfStmt):
        # `if (c) break/continue/goto;` lowers to a single conditional
        # branch with the common path falling through — the shape
        # superblock formation wants (no inversion needed later).
        if not stmt.else_body and len(stmt.then_body) == 1:
            only = stmt.then_body[0]
            target: Optional[Label] = None
            if isinstance(only, ast.BreakStmt):
                target = self.loops[-1].break_label
            elif isinstance(only, ast.ContinueStmt):
                target = self.loops[-1].continue_label
            elif isinstance(only, ast.GotoStmt):
                target = self._goto_block_label(only.label)
            if target is not None:
                self._lower_cond(stmt.cond, target, branch_when=True)
                return
        end_label = self._fresh_label("endif")
        if stmt.else_body:
            # Classic diamond: [cond][then][else][end] with the branch as
            # the cond block's final op — so superblock formation can
            # follow (and invert onto) either arm.
            else_label = self._fresh_label("else")
            then_label = self._fresh_label("then")
            self._lower_cond(stmt.cond, else_label, branch_when=False)
            head = self.builder.block
            head.fallthrough = then_label
            self.builder.start_block(then_label)
            self._lower_body(stmt.then_body)
            current = self.builder.block
            if current.terminator() is None and not current.has_return():
                self.builder.jump(end_label)
            self._start(else_label)
            self._lower_body(stmt.else_body)
            self._start(end_label)
        else:
            # Out-of-line then-body: the main path falls straight through
            # to the continuation; the body sits in its own block branched
            # to when the condition holds and jumps back. This keeps
            # superblock traces free of branches into their own middle.
            body_label = self._fresh_label("then")
            self._lower_cond(stmt.cond, body_label, branch_when=True)
            head = self.builder.block
            head.fallthrough = end_label
            self.builder.start_block(body_label)
            self._lower_body(stmt.then_body)
            current = self.builder.block
            if current.terminator() is None and not current.has_return():
                self.builder.jump(end_label)
            block = Block(label=end_label)
            self.proc.add_block(block)
            self.builder.use_block(block)

    def _lower_while(self, stmt: ast.WhileStmt):
        head = self._fresh_label("loop")
        exit_label = self._fresh_label("endloop")
        self.loops.append(_LoopContext(exit_label, head))
        self._start(head)
        self._lower_cond(stmt.cond, exit_label, branch_when=False)
        self._lower_body(stmt.body)
        current = self.builder.block
        if current.terminator() is None and not current.has_return():
            self.builder.jump(head)
        self.loops.pop()
        self._start(exit_label)

    def _lower_do_while(self, stmt: ast.DoWhileStmt):
        head = self._fresh_label("loop")
        latch = self._fresh_label("latch")
        exit_label = self._fresh_label("endloop")
        self.loops.append(_LoopContext(exit_label, latch))
        self._start(head)
        self._lower_body(stmt.body)
        self._start(latch)
        self._lower_cond(stmt.cond, head, branch_when=True)
        self.loops.pop()
        self._start(exit_label)

    def _lower_for(self, stmt: ast.ForStmt):
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        head = self._fresh_label("for")
        step_label = self._fresh_label("step")
        exit_label = self._fresh_label("endfor")
        self.loops.append(_LoopContext(exit_label, step_label))
        self._start(head)
        if stmt.cond is not None:
            self._lower_cond(stmt.cond, exit_label, branch_when=False)
        self._lower_body(stmt.body)
        self._start(step_label)
        if stmt.step is not None:
            self._lower_stmt(stmt.step)
        current = self.builder.block
        if current.terminator() is None and not current.has_return():
            self.builder.jump(head)
        self.loops.pop()
        self._start(exit_label)

    # ------------------------------------------------------------------
    # Conditions (short-circuit control flow)
    # ------------------------------------------------------------------
    def _lower_cond(self, expr: ast.Expr, target: Label, branch_when: bool):
        """Branch to *target* when *expr* evaluates to *branch_when*; fall
        through otherwise."""
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self._lower_cond(expr.operand, target, not branch_when)
            return
        if isinstance(expr, ast.Binary) and expr.op in ("&&", "||"):
            is_and = expr.op == "&&"
            if is_and != branch_when:
                # (a && b) branching on false, or (a || b) branching on
                # true: both subconditions branch the same way.
                self._lower_cond(expr.left, target, branch_when)
                self._lower_cond(expr.right, target, branch_when)
            else:
                # (a && b) branching on true (or || on false): short-circuit
                # around the second test.
                skip = self._fresh_label("skip")
                self._lower_cond(expr.left, skip, not branch_when)
                self._lower_cond(expr.right, target, branch_when)
                self._start(skip)
            return
        if isinstance(expr, ast.Binary) and expr.op in _COMPARISONS:
            cond = _COMPARISONS[expr.op]
            if not branch_when:
                cond = cond.negate()
            left = self._lower_expr(expr.left)
            right = self._lower_expr(expr.right)
            pred = self.builder.cmpp1(cond, left, right)
            self.builder.branch_to(target, pred)
            return
        if isinstance(expr, ast.IntLit):
            truthy = expr.value != 0
            if truthy == branch_when:
                self.builder.jump(target)
                self._start(self._fresh_label("dead"))
            return
        value = self._lower_expr(expr)
        cond = Cond.NE if branch_when else Cond.EQ
        pred = self.builder.cmpp1(cond, value, 0)
        self.builder.branch_to(target, pred)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _lower_expr(self, expr: ast.Expr) -> Union[Reg, Imm]:
        expr = _fold(expr)
        if isinstance(expr, ast.IntLit):
            return Imm(expr.value)
        if isinstance(expr, ast.VarRef):
            return self.variables[expr.name]
        return self._lower_expr_into(expr, None)

    def _lower_expr_into(
        self, expr: ast.Expr, dest: Optional[Reg]
    ) -> Union[Reg, Imm]:
        """Lower *expr*; when *dest* is given the final value lands there."""
        expr = _fold(expr)
        if isinstance(expr, ast.IntLit):
            if dest is None:
                return Imm(expr.value)
            return self.builder.mov(expr.value, dest=dest)
        if isinstance(expr, ast.VarRef):
            reg = self.variables[expr.name]
            if dest is None or dest == reg:
                return reg
            return self.builder.mov(reg, dest=dest)
        if isinstance(expr, ast.ArrayRef):
            address = self._array_address(expr)
            return self.builder.load(address, dest=dest, region=expr.array)
        if isinstance(expr, ast.Unary):
            if expr.op == "-":
                operand = self._lower_expr(expr.operand)
                return self.builder.sub(0, operand, dest=dest)
            if expr.op == "!":
                operand = self._lower_expr(expr.operand)
                pred = self.builder.cmpp1(Cond.EQ, operand, 0)
                return self.builder.mov(pred, dest=dest)
            raise SemanticError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, ast.Binary):
            if expr.op in _ARITHMETIC:
                left = self._lower_expr(expr.left)
                right = self._lower_expr(expr.right)
                opcode = _ARITHMETIC[expr.op]
                dest = dest or self.proc.new_reg()
                self.builder.emit(
                    Operation(opcode, dests=[dest], srcs=[left, right])
                )
                return dest
            if expr.op in _COMPARISONS:
                left = self._lower_expr(expr.left)
                right = self._lower_expr(expr.right)
                pred = self.builder.cmpp1(
                    _COMPARISONS[expr.op], left, right
                )
                return self.builder.mov(pred, dest=dest)
            if expr.op in ("&&", "||"):
                return self._lower_logical_value(expr, dest)
            raise SemanticError(f"unknown binary operator {expr.op!r}")
        if isinstance(expr, ast.Call):
            args = [self._lower_expr(arg) for arg in expr.args]
            dest = dest or self.proc.new_reg()
            self.builder.call(expr.callee, args, dest=dest)
            return dest
        raise SemanticError(f"cannot lower {type(expr).__name__}")

    def _lower_logical_value(
        self, expr: ast.Binary, dest: Optional[Reg]
    ) -> Reg:
        """Short-circuit && / || in value context via control flow."""
        dest = dest or self.proc.new_reg()
        is_and = expr.op == "&&"
        done = self._fresh_label("logic")
        self.builder.mov(0 if is_and else 1, dest=dest)
        # Branch to done with the default value on short-circuit.
        self._lower_cond(expr.left, done, branch_when=not is_and)
        value = self._lower_expr(expr.right)
        pred = self.builder.cmpp1(Cond.NE, value, 0)
        self.builder.mov(pred, dest=dest)
        self._start(done)
        return dest

    # ------------------------------------------------------------------
    def _array_address(self, ref: ast.ArrayRef) -> Reg:
        base = self.array_bases.get(ref.array)
        if base is None:
            base = self.proc.new_reg()
            self.array_bases[ref.array] = base
            # Materialize the base at function entry so it dominates uses.
            self.entry.ops.insert(
                0,
                Operation(
                    Opcode.MOV, dests=[base], srcs=[Label(ref.array)]
                ),
            )
        index = self._lower_expr(ref.index)
        if isinstance(index, Imm) and index.value == 0:
            return base
        return self.builder.add(base, index)
